"""Cross-layer integration tests: all mechanisms working together."""

import pytest

from repro.asm import assemble
from repro.core import Priority, Tag, Word
from repro.machine import JMachine, MachineConfig


class TestRemoteFutures:
    """Presence tags + messages: a remote producer feeding a consumer."""

    SOURCE = """
    ; consumer runs on node 0: asks node N for a value, then uses it.
    consumer:
        SEND  [A0+1]              ; producer node
        SEND2 #IP:produce, [A0+2] ; handler + replyto
        SENDE #21                 ; the operand to double
        MOVE  [A0+0], R0          ; cfut -> suspends here
        ADD   R0, #100, R0
        MOVE  R0, [A0+3]          ; final result
        SUSPEND

    ; producer: doubles the operand, writes it back remotely.
    produce:
        MOVE  [A3+2], R0
        ADD   R0, R0, R0
        SEND  [A3+1]
        SEND2E #IP:fill, R0
        SUSPEND

    ; landing on node 0: the write wakes the suspended consumer.
    fill:
        MOVE  [A3+1], [A0+0]
        SUSPEND
    """

    def test_suspend_until_remote_value_arrives(self):
        machine = JMachine.build(8)
        program = assemble(self.SOURCE)
        machine.load(program)
        base = program.end + 4
        for node in machine.nodes:
            node.proc.registers[Priority.P0].write(
                "A0", Word.segment(base, 8))
        consumer = machine.node(0).proc
        consumer.memory.poke(base + 0, Word.cfut())
        consumer.memory.poke(base + 1, Word.from_int(7))   # producer node
        consumer.memory.poke(base + 2, Word.from_int(0))   # reply to us
        machine.inject(0, program.entry("consumer"))
        machine.run(max_cycles=20_000)
        assert consumer.memory.peek(base + 3).value == 21 * 2 + 100
        assert consumer.counters.suspends == 1
        assert consumer.counters.restarts == 1


class TestNamingAcrossMessages:
    """enter/xlate used by handlers to locate objects by global name."""

    SOURCE = """
    ; setup thread: register object #500 at segment [A1]
    setup:
        ENTER #500, A1
        MOVE  #1, [A0+0]
        SUSPEND

    ; lookup: translate name 500, read slot k, reply with the value
    lookup:
        XLATE #500, A2
        MOVE  [A3+2], R0
        SEND  [A3+1]
        SEND  #IP:answer
        SENDE [A2+R0]
        SUSPEND

    answer:
        MOVE [A3+1], [A0+1]
        SUSPEND
    """

    def test_global_name_lookup_round_trip(self):
        machine = JMachine.build(4)
        program = assemble(self.SOURCE)
        machine.load(program)
        base = program.end + 8
        object_base = base + 16
        for node in machine.nodes:
            regs = node.proc.registers[Priority.P0]
            regs.write("A0", Word.segment(base, 8))
            regs.write("A1", Word.segment(object_base, 4))
        server = machine.node(3).proc
        server.memory.poke(object_base + 2, Word.from_int(777))
        machine.inject(3, program.entry("setup"))
        machine.run(max_cycles=5_000)
        machine.inject(3, program.entry("lookup"),
                       [Word.from_int(0), Word.from_int(2)], source=0)
        machine.run(max_cycles=20_000)
        assert machine.node(0).proc.memory.peek(base + 1).value == 777
        assert server.amt.hits >= 1


class TestBackpressureEndToEnd:
    """A slow receiver backpressures senders into send faults."""

    SOURCE = """
    ; sender: blast COUNT messages at node 1 as fast as possible
    blast:
        MOVE  [A0+0], R2
    loop:
        SEND  #1
        SEND2E #IP:slow, R2
        SUB   R2, #1, R2
        BT    R2, loop
        HALT

    ; receiver burns cycles per message (slower than the channel)
    slow:
        MOVE #12, R1
    spin:
        SUB  R1, #1, R1
        BT   R1, spin
        SUSPEND
    """

    def test_send_faults_under_congestion(self):
        machine = JMachine(MachineConfig(dims=(2, 1, 1), queue_words=16,
                                         send_buffer_words=8))
        program = assemble(self.SOURCE)
        machine.load(program)
        base = program.end + 4
        sender = machine.node(0).proc
        sender.registers[Priority.BACKGROUND].write(
            "A0", Word.segment(base, 4))
        sender.memory.poke(base, Word.from_int(60))
        machine.start_background(0, program.entry("blast"))
        machine.run(max_cycles=100_000)
        receiver = machine.node(1).proc
        assert receiver.counters.threads_completed == 60
        # The receiver cannot keep up: the sender must have stalled.
        assert sender.counters.send_faults > 0
        assert sender.counters.stall_cycles > 0

    def test_spill_mode_absorbs_burst_without_send_faults(self):
        machine = JMachine(MachineConfig(dims=(2, 1, 1), queue_words=16,
                                         send_buffer_words=64,
                                         queue_overflow_spills=True))
        program = assemble(self.SOURCE)
        machine.load(program)
        base = program.end + 4
        sender = machine.node(0).proc
        sender.registers[Priority.BACKGROUND].write(
            "A0", Word.segment(base, 4))
        sender.memory.poke(base, Word.from_int(60))
        machine.start_background(0, program.entry("blast"))
        machine.run(max_cycles=200_000)
        receiver = machine.node(1).proc
        assert receiver.counters.threads_completed == 60
        assert receiver.counters.spills > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_machines(self):
        def run_once():
            from repro.runtime import run_ping
            machine = JMachine.build(64)
            result = run_ping(machine, 0, 63, iterations=10)
            return (result.total_cycles, machine.now,
                    machine.total_instructions())

        assert run_once() == run_once()

    def test_macro_sim_deterministic(self):
        from repro.apps.radix_sort import RadixParams, run_parallel
        params = RadixParams(n_keys=512)
        a = run_parallel(8, params)
        b = run_parallel(8, params)
        assert a.cycles == b.cycles
        assert a.output == b.output


class TestCycleCounterProgram:
    """The CYCLE instruction timing a real message round trip."""

    SOURCE = """
    timer:
        CYCLE R0
        MOVE  R0, [A0+0]
        SEND  #1
        SENDE #IP:bounce
        SUSPEND
    bounce:
        SEND  #0
        SENDE #IP:stop
        SUSPEND
    stop:
        CYCLE R0
        MOVE  R0, [A0+1]
        SUSPEND
    """

    def test_measured_interval_matches_simulator_clock(self):
        machine = JMachine(MachineConfig(dims=(2, 1, 1)))
        program = assemble(self.SOURCE)
        machine.load(program)
        base = program.end + 4
        for node in machine.nodes:
            node.proc.registers[Priority.P0].write(
                "A0", Word.segment(base, 4))
        machine.inject(0, program.entry("timer"))
        machine.run(max_cycles=10_000)
        memory = machine.node(0).proc.memory
        start = memory.peek(base + 0).value
        end = memory.peek(base + 1).value
        # One round trip over one hop: tens of cycles, measured on-chip.
        assert 20 < end - start < 80
