"""Cross-validation: the two simulation levels agree on shared workloads.

DESIGN.md's central substitution claim is that the event-level macro
simulator re-expresses the cycle level's cost model faithfully.  These
tests run the *same* communication patterns on both simulators and check
the timings agree to within a modest factor — if someone retunes one
level's constants without the other, this suite fails.
"""

import pytest

from repro.asm import assemble
from repro.core import Priority, Word
from repro.jsim import MacroSimulator
from repro.machine import JMachine, MachineConfig


def cycle_level_relay(n_nodes: int, hops: int) -> int:
    """A token relayed ``hops`` times around a ring of MDPs (assembly)."""
    machine = JMachine(MachineConfig(dims=(n_nodes, 1, 1)))
    program = assemble(f"""
    .equ LAST, {n_nodes - 1}
    relay:
        MOVE  [A3+1], R0         ; hops left
        BF    R0, relay_done
        SUB   R0, #1, R0
        MOVEID R1
        EQ    R1, #LAST, R2      ; successor with wraparound
        BT    R2, wrap
        ADD   R1, #1, R1
        BR    send_it
    wrap:
        MOVE  #0, R1
    send_it:
        SEND  R1
        SEND2E #IP:relay, R0
        SUSPEND
    relay_done:
        MOVE  #1, [A0+0]
        SUSPEND
    """)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    machine.inject(0, program.entry("relay"), [Word.from_int(hops)])
    machine.run(max_cycles=1_000_000)
    finisher = machine.node(hops % n_nodes).proc
    assert finisher.memory.peek(base).value == 1
    return machine.now


def macro_level_relay(n_nodes: int, hops: int) -> int:
    """The same relay expressed as jsim handlers with matching work."""
    sim = MacroSimulator(n_nodes)

    def relay(ctx, remaining):
        # The assembly handler executes ~8 instructions of control.
        ctx.charge(instructions=8)
        if remaining:
            ctx.send((ctx.node_id + 1) % n_nodes, "relay", remaining - 1,
                     length=3)

    sim.register("relay", relay)
    sim.inject(0, "relay", hops)
    return sim.run()


class TestRelayAgreement:
    @pytest.mark.parametrize("hops", [8, 40, 120])
    def test_per_hop_cost_agrees(self, hops):
        cycle = cycle_level_relay(8, hops)
        macro = macro_level_relay(8, hops)
        per_hop_cycle = cycle / hops
        per_hop_macro = macro / hops
        # The two levels are independent implementations; agreement to
        # ~40% per hop means the shared cost model is intact.
        assert per_hop_macro == pytest.approx(per_hop_cycle, rel=0.4)

    def test_both_scale_linearly_in_hops(self):
        short_c = cycle_level_relay(8, 20)
        long_c = cycle_level_relay(8, 80)
        short_m = macro_level_relay(8, 20)
        long_m = macro_level_relay(8, 80)
        assert long_c / short_c == pytest.approx(4.0, rel=0.2)
        assert long_m / short_m == pytest.approx(4.0, rel=0.2)


class TestNetworkModelAgreement:
    """The macro level's analytic latency tracks the flit simulator."""

    @pytest.mark.parametrize("src,dst,length", [
        (0, 1, 2), (0, 21, 4), (0, 63, 8), (5, 40, 16),
    ])
    def test_unloaded_latency_within_30_percent(self, src, dst, length):
        from repro.core.message import Message
        from repro.core.word import Word
        from repro.jsim.netmodel import LatencyModel
        from repro.network.fabric import Fabric
        from repro.network.topology import Mesh3D

        arrivals = {}
        fabric = Fabric(Mesh3D(4, 4, 4), lambda n, m: True,
                        lambda n, m, t: arrivals.setdefault("t", t))
        words = [Word.ip(1)] + [Word.from_int(0)] * (length - 1)
        fabric.send(Message(words, source=src, dest=dst), 0)
        now = 0
        while fabric.active and now < 10_000:
            fabric.step(now)
            now += 1
        flit_latency = arrivals["t"]

        model = LatencyModel(Mesh3D(4, 4, 4))
        predicted = model.latency(src, dst, length, now=0)
        assert predicted == pytest.approx(flit_latency, rel=0.3)


class TestPingAgreement:
    def test_macro_round_trip_matches_cycle_ping(self):
        """A request/reply pair costs about the same at both levels."""
        from repro.runtime import run_ping

        machine = JMachine(MachineConfig(dims=(8, 1, 1)))
        cycle_rtt = run_ping(machine, 0, 1, iterations=20).round_trip_cycles

        sim = MacroSimulator(8)
        times = {}

        def request(ctx):
            times["start"] = ctx.now
            ctx.charge(instructions=4)
            ctx.send(1, "respond", length=2)

        def respond(ctx):
            ctx.charge(instructions=2)
            ctx.send(0, "finish", length=1)

        def finish(ctx):
            ctx.charge(instructions=2)
            times["end"] = ctx.now

        sim.register("request", request)
        sim.register("respond", respond)
        sim.register("finish", finish)
        sim.inject(0, "request")
        sim.run()
        macro_rtt = times["end"] - times["start"]
        assert macro_rtt == pytest.approx(cycle_rtt, rel=0.4)
