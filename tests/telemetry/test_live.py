"""The live sampler's contract: read-only frames, bit-identical runs.

docs/OBSERVABILITY.md §7: a :class:`LiveSampler` attached to either
simulator (or the parallel coordinator) takes periodic pull-based
snapshots during the run.  The load-bearing promise is that sampling is
*observation only* — a sampled run must be bit-identical to an
unsampled one, serial, parallel, and under chaos — and these tests pin
that with the same event-fingerprint currency the chaos and snapshot
suites use.
"""

import pytest

from repro.apps.lcs import LcsParams, estimate_cycles, run_parallel
from repro.chaos import ChaosEngine, FaultPlan
from repro.chaos.harness import event_fingerprint
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.rpc import run_ping
from repro.telemetry import LiveSampler, SamplePoint, SamplePolicy, Telemetry


def _strip_live(metrics):
    return {name: value for name, value in metrics.items()
            if not name.startswith("live.")}


def _ping_digest(machine):
    return {
        "now": machine.now,
        "deliveries": machine.deliveries_committed,
        "submitted": machine.fabric.stats.submitted,
        "completed": machine.fabric.stats.completed,
        "instructions": [node.proc.counters.instructions
                         for node in machine.nodes],
    }


class TestSamplePolicy:
    def test_needs_some_interval(self):
        with pytest.raises(ValueError):
            SamplePolicy()
        with pytest.raises(ValueError):
            SamplePolicy(every_cycles=0)
        with pytest.raises(ValueError):
            SamplePolicy(every_wall_s=-1.0)

    def test_first_due_only_arms(self):
        policy = SamplePolicy(every_cycles=100)
        assert policy.due(0) is False          # arming poll
        assert policy.due(50) is False
        assert policy.due(100) is True
        policy.mark(100)
        assert policy.due(150) is False
        assert policy.due(200) is True

    def test_wall_interval_fires(self):
        import time

        policy = SamplePolicy(every_wall_s=0.01, wall_stride=1)
        assert policy.due(0) is False          # arming poll
        time.sleep(0.03)
        assert policy.due(1) is True

    def test_wall_stride_throttles_clock_reads(self):
        import time

        policy = SamplePolicy(every_wall_s=0.01, wall_stride=1000)
        policy.due(0)                          # arming poll
        assert policy.due(1) is False          # consults clock, not yet due
        time.sleep(0.03)
        # Now overdue on the wall clock, but the consult above reset the
        # stride countdown: the next wall_stride - 1 polls are pure
        # integer decrements and never touch the clock.
        fired = [policy.due(i) for i in range(999)]
        assert not any(fired)
        assert policy.due(1000) is True


class TestSamplePoint:
    def test_dict_round_trip(self):
        point = SamplePoint(seq=3, sim_now=500, wall_s=1.25, source="serial",
                            metrics={"machine.cycles": 500.0},
                            derived={"progress": 0.5},
                            stall={"nodes_implicated": 1, "nodes": []})
        clone = SamplePoint.from_dict(point.to_dict())
        assert clone.to_dict() == point.to_dict()

    def test_stall_omitted_when_absent(self):
        point = SamplePoint(0, 0, 0.0, "macro", {}, {})
        assert "stall" not in point.to_dict()


class TestSamplerMechanics:
    def _machine(self, telemetry=None):
        machine = JMachine(MachineConfig(dims=(2, 2, 1)),
                           telemetry=telemetry)
        return machine

    def test_ring_bounded_with_eviction_count(self):
        machine = self._machine()
        sampler = LiveSampler(SamplePolicy(every_cycles=1), ring=4)
        sampler.attach(machine)
        for now in range(10):
            sampler.sample(machine, now)
        assert sampler.samples == 10
        assert len(sampler.points) == 4
        assert sampler.ring_evicted == 6
        assert [p.seq for p in sampler.points] == [6, 7, 8, 9]
        assert sampler.latest().metrics["live.ring_dropped"] == 5.0

    def test_host_run_limit_wins_over_loop_limit(self):
        machine = self._machine()
        sampler = LiveSampler(SamplePolicy(every_cycles=1))
        sampler.attach(machine, run_limit=1000)
        point = sampler.sample(machine, 500, run_limit=10_000_000)
        assert sampler.run_limit == 1000
        assert point.derived["run_limit"] == 1000
        assert point.derived["progress"] == 0.5

    def test_loop_limit_adopted_when_not_pinned(self):
        machine = self._machine()
        sampler = LiveSampler(SamplePolicy(every_cycles=1))
        sampler.attach(machine)
        point = sampler.sample(machine, 250, run_limit=1000)
        assert point.derived["progress"] == 0.25

    def test_stalled_frames_carry_node_snapshots(self):
        machine = self._machine()
        sampler = LiveSampler(SamplePolicy(every_cycles=1))
        sampler.attach(machine)
        first = sampler.sample(machine, 100)
        # Nothing ran between samples: the progress signature is
        # unchanged, so the second frame is a stall frame with the
        # watchdog's diagnostics attached (cycle level only).
        second = sampler.sample(machine, 200)
        assert first.derived["stalled"] == 0
        assert second.derived["stalled"] == 1
        assert second.stall is not None
        assert second.stall["nodes_implicated"] >= 1

    def test_health_source_registered_once(self):
        telemetry = Telemetry()
        machine = self._machine(telemetry)
        LiveSampler(SamplePolicy(every_cycles=1)).attach(machine)
        LiveSampler(SamplePolicy(every_cycles=1)).attach(machine)
        assert machine.telemetry.registry.names().count("live") == 1

    def test_frames_since_and_wait(self):
        machine = self._machine()
        sampler = LiveSampler(SamplePolicy(every_cycles=1))
        sampler.attach(machine)
        for now in range(3):
            sampler.sample(machine, now)
        assert [p.seq for p in sampler.frames_since(0)] == [1, 2]
        assert sampler.wait_for_frame(2, timeout=0.01) == []
        assert [p.seq for p in sampler.wait_for_frame(1, timeout=0.01)] \
            == [2]

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveSampler(ring=0)


class TestSerialEquivalence:
    def _run(self, sampler):
        telemetry = Telemetry(events=True)
        machine = JMachine(MachineConfig(dims=(2, 2, 1)),
                           telemetry=telemetry)
        if sampler is not None:
            sampler.attach(machine)
        run_ping(machine, 0, 3, iterations=4)
        return machine, event_fingerprint(telemetry.events)

    def test_sampled_run_bit_identical(self):
        plain, plain_digest = self._run(None)
        sampler = LiveSampler(SamplePolicy(every_cycles=50))
        sampled, sampled_digest = self._run(sampler)
        assert sampler.samples > 0            # the test is not vacuous
        assert sampled_digest == plain_digest
        assert _ping_digest(sampled) == _ping_digest(plain)
        # The final metric snapshots agree too, modulo the sampler's
        # own health source (absent from the unsampled run).
        plain_snap = plain.telemetry.registry.snapshot()
        sampled_snap = sampled.telemetry.registry.snapshot()
        assert _strip_live(sampled_snap) == plain_snap

    def test_frames_are_monotone_serial_source(self):
        sampler = LiveSampler(SamplePolicy(every_cycles=50))
        self._run(sampler)
        frames = list(sampler.points)
        assert frames
        for prev, point in zip(frames, frames[1:]):
            assert point.seq == prev.seq + 1
            assert point.sim_now > prev.sim_now
        assert all(point.source == "serial" for point in frames)
        assert all("events.collected" in point.metrics for point in frames)


class TestParallelEquivalence:
    def test_sampled_parallel_matches_serial_unsampled(self):
        runs = {}
        for shards, sampler in ((0, None),
                                (2, LiveSampler(
                                    SamplePolicy(every_cycles=200)))):
            machine = JMachine(
                MachineConfig(dims=(4, 2, 1), parallel_shards=shards))
            if sampler is not None:
                sampler.attach(machine)
            result = run_ping(machine, 0, 7, iterations=5,
                              stop="quiescent")
            runs[shards] = (result.total_cycles, _ping_digest(machine))
            if shards:
                assert machine._parallel_skip_reason is None
        assert runs[0] == runs[2]
        frames = list(sampler.points)
        parallel_frames = [p for p in frames if p.source == "parallel"]
        assert parallel_frames
        fold = parallel_frames[-1].metrics
        assert fold["parallel.shards"] == 2
        assert fold["net.submitted"] >= fold["net.completed"] > 0
        assert "live.samples" in fold


class TestMacroEquivalence:
    PARAMS = LcsParams().scaled(0.02)

    def _run(self, sampler, chaos=None, reliable=None):
        telemetry = Telemetry(events=True)
        result = run_parallel(4, self.PARAMS, telemetry=telemetry,
                              chaos=chaos, reliable=reliable,
                              sampler=sampler)
        return result, event_fingerprint(telemetry.events)

    def test_sampled_macro_bit_identical(self):
        _plain, plain_digest = self._run(None)
        sampler = LiveSampler(SamplePolicy(every_cycles=20_000))
        result, sampled_digest = self._run(sampler)
        assert sampler.samples > 0
        assert sampled_digest == plain_digest
        # The app seeded the progress denominator with its analytic
        # estimate, and the run report carries the sampler's health.
        assert sampler.run_limit == estimate_cycles(4, self.PARAMS, None)
        report = result.sim.report()
        assert report.metrics["live.samples"] == sampler.samples
        progresses = [p.derived["progress"] for p in sampler.points
                      if "progress" in p.derived]
        assert progresses == sorted(progresses)
        assert all(p.source == "macro" for p in sampler.points)

    def test_sampled_chaos_run_bit_identical(self):
        plan = FaultPlan.message_loss(0.02, seed=5)
        _plain, plain_digest = self._run(
            None, chaos=ChaosEngine(plan), reliable=True)
        sampler = LiveSampler(SamplePolicy(every_cycles=20_000))
        _sampled, sampled_digest = self._run(
            sampler, chaos=ChaosEngine(plan), reliable=True)
        assert sampler.samples > 0
        assert sampled_digest == plain_digest
        # Chaos health rides along in every frame.
        assert all("chaos.drops" in p.metrics for p in sampler.points)


class TestFabricFrames:
    """Probed runs carry a fabric payload in every frame; un-probed
    runs carry none (docs/OBSERVABILITY.md §8)."""

    def _sampled_ping(self, probe):
        machine = JMachine(MachineConfig(dims=(2, 2, 1), fabric_probe=probe),
                           telemetry=Telemetry())
        sampler = LiveSampler(SamplePolicy(every_cycles=50)).attach(machine)
        run_ping(machine, 0, 3, iterations=4)
        return sampler.latest()

    def test_point_round_trips_fabric(self):
        fabric = {"dims": [2, 2, 1], "elapsed": 10, "messages": 1,
                  "links": {}, "dim_hops": [0, 0, 0], "dim_phits": [0, 0, 0],
                  "stalls": {}, "node_backpressure": {},
                  "queue_occupancy": {}}
        point = SamplePoint(0, 0, 0.0, "serial", {}, {}, fabric=fabric)
        clone = SamplePoint.from_dict(point.to_dict())
        assert clone.fabric == fabric
        assert clone.to_dict() == point.to_dict()

    def test_fabric_omitted_when_absent(self):
        point = SamplePoint(0, 0, 0.0, "serial", {}, {})
        assert point.fabric is None
        assert "fabric" not in point.to_dict()

    def test_probed_frames_carry_link_loads(self):
        from repro.network.observatory import FabricReport

        point = self._sampled_ping(probe=True)
        assert point.fabric is not None
        report = FabricReport.from_dict(point.fabric)
        assert report.messages > 0 and report.links
        assert point.metrics["net.link.phits"] > 0

    def test_unprobed_frames_stay_clean(self):
        point = self._sampled_ping(probe=False)
        assert point.fabric is None
        assert not any(name.startswith(("net.link.", "net.stall.",
                                        "net.dim.", "net.router."))
                       for name in point.metrics)
