"""The terminal dashboard renders real frames without post-processing.

docs/OBSERVABILITY.md §7: ``render_frame`` turns one
:class:`SamplePoint` into the header / utilization heatmap / queue
bars / counters block, and ``watch_sampler`` drives it headlessly
(``--plain``) from a sampler's ring — the mode ``make live-smoke``
exercises end to end.
"""

import io

from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.rpc import run_ping
from repro.telemetry import LiveSampler, SamplePoint, SamplePolicy, Telemetry
from repro.telemetry.watch import render_frame, watch_sampler


def _sampled_ping():
    telemetry = Telemetry()
    machine = JMachine(MachineConfig(dims=(2, 2, 1)), telemetry=telemetry)
    sampler = LiveSampler(SamplePolicy(every_cycles=50)).attach(
        machine, run_limit=400)
    run_ping(machine, 0, 3, iterations=4)
    assert sampler.samples >= 2
    return sampler


class TestRenderFrame:
    def test_real_frame_has_every_section(self):
        sampler = _sampled_ping()
        frames = list(sampler.points)
        text = render_frame(frames[-1], frames[-2])
        assert "J-Machine live" in text
        assert f"t={frames[-1].sim_now}" in text
        assert "src=serial" in text
        assert "utilization" in text
        assert "queue high water" in text
        assert "health:" in text
        # run_limit was pinned at attach, so the header carries the
        # progress bar and percentage.
        assert "%" in text and "[" in text

    def test_stalled_frame_shows_banner(self):
        point = SamplePoint(
            seq=1, sim_now=100, wall_s=2.0, source="serial",
            metrics={"machine.cycles": 100.0},
            derived={"stalled": 1, "stalled_wall_s": 1.5},
            stall={"nodes_implicated": 3, "nodes": []})
        text = render_frame(point)
        assert "STALL" in text
        assert "3" in text

    def test_minimal_frame_renders_without_nodes(self):
        point = SamplePoint(0, 0, 0.0, "parallel", {"machine.cycles": 0.0},
                            {})
        text = render_frame(point)
        assert "J-Machine live" in text


class TestWatchSampler:
    def test_plain_mode_drains_finished_ring(self):
        sampler = _sampled_ping()
        screen = io.StringIO()
        shown = watch_sampler(sampler, done=lambda: True, plain=True,
                              out=screen)
        assert shown == len(sampler.points)
        rendered = screen.getvalue()
        assert rendered.count("J-Machine live") == shown
        assert "\x1b[" not in rendered          # plain mode: no ANSI

    def test_max_frames_caps_output(self):
        sampler = _sampled_ping()
        screen = io.StringIO()
        shown = watch_sampler(sampler, done=lambda: True, plain=True,
                              max_frames=1, out=screen)
        assert shown == 1


class TestFabricPane:
    def test_probed_frame_grows_fabric_pane(self):
        telemetry = Telemetry()
        machine = JMachine(MachineConfig(dims=(2, 2, 1), fabric_probe=True),
                           telemetry=telemetry)
        sampler = LiveSampler(SamplePolicy(every_cycles=50)).attach(
            machine, run_limit=400)
        run_ping(machine, 0, 3, iterations=4)
        text = render_frame(sampler.latest())
        assert "fabric:" in text and "links observed" in text
        assert "hot links (phits, *=midplane):" in text
        assert "link load: dim=X" in text

    def test_unprobed_frame_has_no_fabric_pane(self):
        text = render_frame(_sampled_ping().latest())
        assert "hot links" not in text
        assert "link load:" not in text
