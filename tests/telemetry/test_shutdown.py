"""Graceful shutdown of ``repro.telemetry serve``: SIGTERM == SIGINT.

Before PR 9, SIGTERM killed the process in a daemon thread without
closing SSE streams or releasing the port; only Ctrl-C (SIGINT →
KeyboardInterrupt) took the clean path.  Both signals now funnel into
one exit path: stop the HTTP server (which ends every ``/stream``
loop), release the socket, and exit 0.
"""

import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="POSIX signals required")


def _spawn_serve(*extra):
    # -u: the child must flush its URL line before we can proceed.
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.telemetry", "serve",
         "--workload", "lcs", "--nodes", "4", "--scale", "0.02",
         "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _await_url(proc, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        match = re.search(r"on (http://[\d.:]+) ", line)
        if match:
            return match.group(1)
    raise AssertionError("serve never printed its URL")


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_shuts_serve_down_cleanly(signum):
    proc = _spawn_serve()
    try:
        url = _await_url(proc)
        # The server is actually serving before the signal arrives.
        with urllib.request.urlopen(url + "/snapshot.json",
                                    timeout=10) as response:
            assert response.status == 200
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, err
    assert "shut down cleanly" in out


def test_port_released_after_sigterm():
    proc = _spawn_serve()
    try:
        url = _await_url(proc)
        port = int(url.rsplit(":", 1)[1])
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
        # Rebinding the exact port proves the socket was closed, not
        # abandoned to a dying daemon thread.
        import socket

        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", port))
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
