"""Unit tests for the event bus and its exporters."""

import json

import pytest

from repro.telemetry.events import EVENT_KINDS, EventBus


class TestEmit:
    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.emit("frobnicate", 0, 0)

    def test_limit_drops_and_counts(self):
        bus = EventBus(limit=3)
        for i in range(5):
            bus.emit("send", i, 0)
        assert len(bus) == 3
        assert bus.dropped == 2

    def test_clear(self):
        bus = EventBus(limit=1)
        bus.emit("send", 0, 0)
        bus.emit("send", 1, 0)
        bus.clear()
        assert len(bus) == 0 and bus.dropped == 0

    def test_all_kinds_accepted(self):
        bus = EventBus()
        for kind in EVENT_KINDS:
            bus.emit(kind, 0, 0)
        assert len(bus) == len(EVENT_KINDS)


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        bus = EventBus()
        bus.emit("dispatch", 10, 3, 1, name="handler@64", src=2)
        bus.emit("send", 12, 3, 0, dest=7, words=4)
        path = tmp_path / "events.jsonl"
        assert bus.write_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"ts": 10, "kind": "dispatch", "node": 3,
                            "priority": 1, "name": "handler@64", "src": 2}
        assert lines[1]["dest"] == 7 and lines[1]["words"] == 4


class TestChromeTrace:
    def test_structure(self, tmp_path):
        """The acceptance-criteria structural check: traceEvents list,
        ph/ts/pid/tid on every event."""
        bus = EventBus()
        bus.emit("dispatch", 0, 1, 0, name="h")
        bus.emit("send", 4, 1, 0, dest=2)
        bus.emit("thread-end", 9, 1, 0)
        path = tmp_path / "trace.json"
        bus.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(event)

    def test_tracks_are_node_by_priority(self):
        bus = EventBus()
        bus.emit("send", 0, 3, 1)
        bus.emit("send", 0, 5, 0)
        trace = bus.to_chrome_trace()
        body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert {(e["pid"], e["tid"]) for e in body} == {(3, 1), (5, 0)}
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["pid"], e["tid"], e["name"]): e["args"]["name"]
                 for e in meta}
        assert names[(3, 0, "process_name")] == "node 3"
        assert names[(3, 1, "thread_name")] == "P1"
        assert names[(5, 0, "thread_name")] == "P0"

    def test_begin_end_balanced(self):
        bus = EventBus()
        bus.emit("dispatch", 0, 0, 0, name="h")
        bus.emit("thread-end", 5, 0, 0)
        trace = bus.to_chrome_trace()
        phases = [e["ph"] for e in trace["traceEvents"] if e["ph"] != "M"]
        assert phases.count("B") == phases.count("E")

    def test_unmatched_end_demotes_to_instant(self):
        bus = EventBus()
        bus.emit("thread-end", 5, 0, 0)  # no open slice on the track
        trace = bus.to_chrome_trace()
        body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert body[0]["ph"] == "i"

    def test_unclosed_begin_is_terminated(self):
        bus = EventBus()
        bus.emit("dispatch", 0, 0, 0, name="h")
        bus.emit("send", 30, 0, 0)
        trace = bus.to_chrome_trace()
        body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        ends = [e for e in body if e["ph"] == "E"]
        assert len(ends) == 1
        assert ends[0]["ts"] == 30  # closed at the last timestamp

    def test_task_events_are_complete_slices(self):
        bus = EventBus()
        bus.emit("task", 10, 2, 0, name="NxtChar", dur=40)
        trace = bus.to_chrome_trace()
        body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert body[0]["ph"] == "X"
        assert body[0]["dur"] == 40

    def test_events_sorted_by_timestamp(self):
        bus = EventBus()
        bus.emit("send", 50, 0, 0)
        bus.emit("send", 10, 1, 0)
        trace = bus.to_chrome_trace()
        body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert [e["ts"] for e in body] == [10, 50]


class TestCounterTracks:
    """Perfetto counter tracks are opt-in and reconstructed offline."""

    def _loaded_bus(self):
        bus = EventBus()
        bus.emit("send", 0, 0, 0, dest=3, words=4)
        bus.emit("deliver", 10, 3, 0)
        bus.emit("deliver", 12, 3, 0)
        bus.emit("dispatch", 14, 3, 0, name="h")
        bus.emit("chaos", 20, 1, 0, name="link-outage")
        bus.emit("send", 25, 0, 0, dest=1, words=1)
        return bus

    def test_plain_trace_has_no_counters(self):
        trace = self._loaded_bus().to_chrome_trace()
        assert all(e["ph"] != "C" for e in trace["traceEvents"])

    def test_queue_depth_follows_deliver_and_dispatch(self):
        trace = self._loaded_bus().to_chrome_trace(counters=True)
        depth = [(e["ts"], e["args"]["messages"])
                 for e in trace["traceEvents"]
                 if e["ph"] == "C" and e["name"] == "queue depth"
                 and e["pid"] == 3]
        assert depth == [(10, 1), (12, 2), (14, 1)]

    def test_chaos_counter_is_cumulative_on_fabric_process(self):
        trace = self._loaded_bus().to_chrome_trace(counters=True)
        chaos = [e for e in trace["traceEvents"]
                 if e["ph"] == "C" and e["name"] == "chaos events"]
        assert [e["args"]["count"] for e in chaos] == [1]
        meta = {e["pid"]: e["args"]["name"]
                for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta[chaos[0]["pid"]] == "fabric"

    def test_link_tracks_replay_the_router(self):
        from repro.network.topology import Mesh3D

        trace = self._loaded_bus().to_chrome_trace(
            counters=True, mesh=Mesh3D(4, 4, 1))
        links = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "C" and e["name"].startswith("link "):
                links.setdefault(e["name"], []).append(e["args"]["phits"])
        # send 0->3 (4 words = 10 phits) crosses 0.x+ 1.x+ 2.x+; the
        # later send 0->1 (1 word = 4 phits) adds to 0.x+ cumulatively.
        assert links["link 0.x+ phits"] == [10, 14]
        assert links["link 1.x+ phits"] == [10]
        assert "link 3.x+ phits" not in links

    def test_link_tracks_cap_keeps_busiest(self):
        from repro.network.topology import Mesh3D

        trace = self._loaded_bus().to_chrome_trace(
            counters=True, mesh=Mesh3D(4, 4, 1), link_tracks=1)
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "C" and e["name"].startswith("link ")}
        assert names == {"link 0.x+ phits"}
