"""The streaming endpoints: Prometheus mapping, /snapshot.json, SSE.

docs/OBSERVABILITY.md §7 pins the name mapping — instance-identifying
components of the dotted schema become labels, everything flattens
under a ``jm_`` prefix — and the three-endpoint contract served by the
stdlib-only :class:`LiveServer`.
"""

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.rpc import run_ping
from repro.telemetry import LiveSampler, SamplePoint, SamplePolicy, Telemetry
from repro.telemetry.serve import (LiveServer, iter_sse, prometheus_name,
                                   render_prometheus)

#: Prometheus text exposition 0.0.4 metric line.
_PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$')


class TestPrometheusNames:
    @pytest.mark.parametrize("dotted,name,labels", [
        ("node.5.proc.busy_cycles",
         "jm_node_proc_busy_cycles", {"node": "5"}),
        ("node.5.queue.p0.high_water",
         "jm_node_queue_p0_high_water", {"node": "5"}),
        ("node.63.profile.compute",
         "jm_node_profile_compute", {"node": "63"}),
        ("handler.NxtChar.cycles",
         "jm_handler_cycles", {"handler": "NxtChar"}),
        ("net.latency.p99", "jm_net_latency_p99", {}),
        ("machine.cycles", "jm_machine_cycles", {}),
        ("macro.messages_sent", "jm_macro_messages_sent", {}),
        ("live.samples", "jm_live_samples", {}),
        ("events.dropped", "jm_events_dropped", {}),
    ])
    def test_documented_mapping(self, dotted, name, labels):
        assert prometheus_name(dotted) == (name, labels)

    def test_invalid_characters_become_underscores(self):
        name, _labels = prometheus_name("net.latency.p99.9")
        assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name)


class TestRenderPrometheus:
    def _point(self):
        return SamplePoint(
            seq=2, sim_now=1000, wall_s=0.5, source="serial",
            metrics={"machine.cycles": 1000.0,
                     "node.0.proc.busy_cycles": 400.0,
                     "handler.NxtChar.cycles": 7.0},
            derived={"cycles_per_sec": 2000.0, "progress": 0.25,
                     "stalled": 0})

    def test_every_line_is_exposition_format(self):
        body = render_prometheus(self._point())
        lines = [line for line in body.splitlines() if line]
        assert lines
        for line in lines:
            if line.startswith("#"):
                assert line.startswith("# TYPE jm_")
                assert line.endswith(" gauge")
            else:
                assert _PROM_LINE.match(line), line

    def test_labels_and_derived_series_present(self):
        body = render_prometheus(self._point())
        assert 'jm_node_proc_busy_cycles{node="0"} 400' in body
        assert 'jm_handler_cycles{handler="NxtChar"} 7' in body
        assert "jm_live_cycles_per_sec 2000" in body
        assert "jm_live_sim_now 1000" in body
        assert "jm_live_seq 2" in body

    def test_no_frames_yet_renders_comment_only(self):
        body = render_prometheus(None)
        assert all(line.startswith("#")
                   for line in body.splitlines() if line)


class TestLiveServer:
    @pytest.fixture()
    def sampler(self):
        telemetry = Telemetry()
        machine = JMachine(MachineConfig(dims=(2, 2, 1)),
                           telemetry=telemetry)
        rig = LiveSampler(SamplePolicy(every_cycles=50)).attach(machine)
        run_ping(machine, 0, 3, iterations=4)
        assert rig.samples >= 2
        return rig

    @pytest.fixture()
    def server(self, sampler):
        server = LiveServer(sampler)
        server.start_background()
        yield server
        server.stop()

    def test_metrics_endpoint_parses(self, server):
        body = urllib.request.urlopen(server.url + "/metrics",
                                      timeout=10).read().decode()
        lines = [line for line in body.splitlines()
                 if line and not line.startswith("#")]
        assert lines
        for line in lines:
            assert _PROM_LINE.match(line), line
        assert "jm_machine_cycles" in body
        assert "jm_live_samples" in body

    def test_snapshot_endpoint_serves_latest_frame(self, server, sampler):
        snap = json.loads(urllib.request.urlopen(
            server.url + "/snapshot.json", timeout=10).read())
        assert snap == sampler.latest().to_dict()

    def test_stream_replays_backlog_in_order(self, server, sampler):
        frames = []
        for frame in iter_sse(server.url + "/stream", timeout=10):
            frames.append(frame)
            if len(frames) >= 2:
                break
        assert len(frames) == 2
        assert frames[0]["seq"] + 1 == frames[1]["seq"]
        assert frames[0] == sampler.points[0].to_dict()

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert err.value.code == 404


class TestFabricEndpoint:
    @pytest.fixture()
    def probed_server(self):
        telemetry = Telemetry()
        machine = JMachine(MachineConfig(dims=(2, 2, 1), fabric_probe=True),
                           telemetry=telemetry)
        rig = LiveSampler(SamplePolicy(every_cycles=50)).attach(machine)
        run_ping(machine, 0, 3, iterations=4)
        server = LiveServer(rig)
        server.start_background()
        yield server, rig
        server.stop()

    def test_fabric_json_serves_latest_payload(self, probed_server):
        server, rig = probed_server
        payload = json.loads(urllib.request.urlopen(
            server.url + "/fabric.json", timeout=10).read())
        assert payload == rig.latest().fabric
        assert payload["links"]

    def test_fabric_json_empty_without_probe(self):
        machine = JMachine(MachineConfig(dims=(2, 2, 1)),
                           telemetry=Telemetry())
        rig = LiveSampler(SamplePolicy(every_cycles=50)).attach(machine)
        run_ping(machine, 0, 3, iterations=4)
        server = LiveServer(rig)
        server.start_background()
        try:
            payload = json.loads(urllib.request.urlopen(
                server.url + "/fabric.json", timeout=10).read())
        finally:
            server.stop()
        assert payload == {}

    def test_metrics_surface_links_and_event_counters(self, probed_server):
        server, _rig = probed_server
        body = urllib.request.urlopen(server.url + "/metrics",
                                      timeout=10).read().decode()
        assert "jm_net_link_phits" in body
        assert "jm_net_stall_channel_busy" in body
        assert "jm_events_collected" in body
        assert "jm_events_dropped" in body
