"""Telemetry wired into real simulations (cycle-level and macro).

These tests exercise the full path the ISSUE specifies: a ``Telemetry``
object attached at machine construction, metrics pulled from live
subsystem counters at snapshot time, events emitted from the hot paths,
and the Chrome-trace export validated structurally on a *real* run.
"""

import json

import pytest

from repro.apps.lcs import LcsParams, run_parallel
from repro.asm.assembler import assemble
from repro.core.amt import AssociativeMatchTable
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.rpc import run_ping
from repro.telemetry import SimReport, Telemetry


def _ping_machine(telemetry):
    machine = JMachine(MachineConfig(dims=(2, 2, 1)), telemetry=telemetry)
    run_ping(machine, 0, 3, iterations=4)
    return machine


class TestMachineIntegration:
    def test_metrics_cover_every_subsystem(self):
        telemetry = Telemetry()
        machine = _ping_machine(telemetry)
        snap = telemetry.registry.snapshot()
        assert snap["machine.cycles"] == machine.now
        assert snap["machine.nodes"] == 4
        assert snap["node.0.proc.instructions"] > 0
        assert snap["node.0.queue.p0.enqueued"] > 0
        assert "node.3.amt.hits" in snap
        assert snap["net.submitted"] == machine.fabric.stats.submitted
        assert snap["net.latency.count"] == machine.fabric.stats.submitted

    def test_probed_snapshot_matches_fabric_metrics_schema(self):
        """The wiring emits exactly the FABRIC_METRICS names: the
        scalar families appear on probed runs, the histogram expands
        like every LatencySummary, and un-probed snapshots carry none
        of them."""
        from repro.network.observatory import FABRIC_METRICS

        scalar = {name for name, kind, _unit, _site in FABRIC_METRICS
                  if kind != "histogram"}
        telemetry = Telemetry()
        machine = JMachine(MachineConfig(dims=(2, 2, 1), fabric_probe=True),
                           telemetry=telemetry)
        run_ping(machine, 0, 3, iterations=4)
        snap = telemetry.registry.snapshot()
        families = {name for name in snap
                    if name.startswith(("net.link.", "net.stall.",
                                        "net.dim."))}
        assert families == scalar
        assert snap["net.link.phits"] > 0
        assert snap["net.router.inject_queue.count"] > 0
        bare = Telemetry()
        _ping_machine(bare)
        assert not any(name.startswith(("net.link.", "net.stall.",
                                        "net.dim.", "net.router."))
                       for name in bare.registry.snapshot())

    def test_events_match_fabric_counters(self):
        telemetry = Telemetry()
        machine = _ping_machine(telemetry)
        kinds = {}
        for event in telemetry.events.iter_dicts():
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        assert kinds["send"] == machine.fabric.stats.submitted
        assert kinds["deliver"] == machine.fabric.stats.completed
        assert kinds["dispatch"] > 0
        assert kinds["run-end"] == 1

    def test_chrome_trace_of_real_run_is_structural(self, tmp_path):
        """Acceptance criterion: the exported trace of a real cycle-level
        run is a Perfetto-loadable traceEvents document."""
        telemetry = Telemetry()
        _ping_machine(telemetry)
        path = tmp_path / "trace.json"
        telemetry.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(event)
        body = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert body == sorted(body, key=lambda e: e["ts"])

    def test_report_totals_and_save(self, tmp_path):
        telemetry = Telemetry()
        machine = _ping_machine(telemetry)
        report = machine.report()
        assert report.meta["kind"] == "machine"
        assert report.meta["cycles"] == machine.now
        assert report.total("proc.instructions") == \
            machine.total_instructions()
        path = tmp_path / "run.json"
        report.save(str(path))
        assert SimReport.load(str(path)).metrics == report.metrics

    def test_metrics_only_mode(self):
        telemetry = Telemetry(events=False)
        machine = _ping_machine(telemetry)
        assert telemetry.events is None
        assert machine.report().total("proc.instructions") > 0
        with pytest.raises(ValueError):
            telemetry.write_jsonl("unused.jsonl")

    def test_report_without_telemetry_attached(self):
        machine = JMachine(MachineConfig(dims=(2, 1, 1)))
        run_ping(machine, 0, 1, iterations=2)
        report = machine.report()
        assert report.total("proc.instructions") == \
            machine.total_instructions()


class TestFaultEvents:
    BLAST = """
    blast:
        MOVE  [A0+0], R2
    loop:
        SEND  #1
        SEND2E #IP:slow, R2
        SUB   R2, #1, R2
        BT    R2, loop
        HALT

    slow:
        MOVE #12, R1
    spin:
        SUB  R1, #1, R1
        BT   R1, spin
        SUSPEND
    """

    def test_queue_overflow_events_match_spill_counter(self):
        from repro.core.registers import Priority
        from repro.core.word import Word

        telemetry = Telemetry()
        machine = JMachine(MachineConfig(dims=(2, 1, 1), queue_words=16,
                                         send_buffer_words=64,
                                         queue_overflow_spills=True),
                           telemetry=telemetry)
        program = assemble(self.BLAST)
        machine.load(program)
        base = program.end + 4
        sender = machine.node(0).proc
        sender.registers[Priority.BACKGROUND].write(
            "A0", Word.segment(base, 4))
        sender.memory.poke(base, Word.from_int(40))
        machine.start_background(0, program.entry("blast"))
        machine.run(max_cycles=200_000)
        receiver = machine.node(1).proc
        assert receiver.counters.spills > 0
        overflows = [e for e in telemetry.events.iter_dicts()
                     if e["kind"] == "queue-overflow"]
        assert len(overflows) == receiver.counters.spills
        assert all(e["node"] == 1 for e in overflows)

    def test_xlate_fault_event_emitted_on_amt_miss(self):
        telemetry = Telemetry()
        machine = JMachine(MachineConfig(dims=(1, 1, 1)),
                           telemetry=telemetry)
        # A one-entry AMT: the second ENTER evicts the first binding, so
        # the XLATE takes a miss fault and reloads from the backing map.
        proc = machine.node(0).proc
        proc.amt = AssociativeMatchTable(sets=1, ways=1)
        program = assemble("""
        handler:
            ENTER #500, A1
            ENTER #501, A1
            XLATE #500, A1
            SUSPEND
        """)
        machine.load(program)
        machine.inject(0, program.entry("handler"))
        machine.run(max_cycles=5_000)
        assert proc.amt.misses == 1
        faults = [e for e in telemetry.events.iter_dicts()
                  if e["kind"] == "xlate-fault"]
        assert len(faults) == 1
        assert faults[0]["node"] == 0
        assert "500" in faults[0]["key"]
        assert telemetry.registry.snapshot()["node.0.amt.misses"] == 1


class TestMacroIntegration:
    PARAMS = LcsParams(a_len=32, b_len=64)

    def test_metrics_and_handler_stats(self):
        telemetry = Telemetry()
        result = run_parallel(4, self.PARAMS, telemetry=telemetry)
        sim = result.sim
        snap = telemetry.registry.snapshot()
        assert snap["macro.cycles"] == result.cycles
        assert snap["macro.nodes"] == 4
        assert snap["handler.NxtChar.invocations"] == \
            result.handler_stats["NxtChar"].invocations
        assert snap["node.0.profile.compute"] == \
            sim.nodes[0].profile.compute

    def test_report_top_ranks_handlers(self):
        telemetry = Telemetry()
        result = run_parallel(4, self.PARAMS, telemetry=telemetry)
        report = result.sim.report()
        top = report.top("handler.", ".cycles", 2)
        assert top[0][0] == "NxtChar"
        assert top[0][1] > top[1][1]

    def test_task_events_become_complete_slices(self):
        telemetry = Telemetry()
        run_parallel(4, self.PARAMS, telemetry=telemetry)
        trace = telemetry.events.to_chrome_trace()
        tasks = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert tasks
        assert all(e["dur"] >= 0 for e in tasks)
        assert {"NxtChar", "StartUp"} <= {e["name"] for e in tasks}

    def test_send_and_deliver_events_paired(self):
        telemetry = Telemetry()
        run_parallel(4, self.PARAMS, telemetry=telemetry)
        kinds = {}
        for event in telemetry.events.iter_dicts():
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        assert kinds["send"] == kinds["deliver"]
