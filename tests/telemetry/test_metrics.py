"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.network.stats import LatencySummary
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.snapshot() == 6

    def test_gauge(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.snapshot() == 1.5

    def test_histogram_wraps_latency_summary(self):
        h = Histogram("x")
        for v in (1, 10, 100):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1 and snap["max"] == 100

    def test_histogram_merge(self):
        a, b = Histogram("x"), Histogram("x")
        a.observe(4)
        b.observe(9)
        a.merge(b)
        assert a.snapshot()["count"] == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_source_name_conflicts_rejected(self):
        reg = MetricsRegistry()
        reg.register_source("s", lambda: 1)
        with pytest.raises(ValueError):
            reg.register_source("s", lambda: 2)
        with pytest.raises(ValueError):
            reg.counter("s")
        reg.counter("c")
        with pytest.raises(ValueError):
            reg.register_source("c", lambda: 3)

    def test_snapshot_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.register_source("a.value", lambda: 7)
        snap = reg.snapshot()
        assert snap == {"a.value": 7, "z.count": 2}
        assert list(snap) == sorted(snap)

    def test_dict_source_expands_with_prefix(self):
        reg = MetricsRegistry()
        reg.register_source("node.0.proc", lambda: {"instructions": 5,
                                                    "suspends": 1})
        snap = reg.snapshot()
        assert snap["node.0.proc.instructions"] == 5
        assert snap["node.0.proc.suspends"] == 1

    def test_latency_summary_source_expands(self):
        summary = LatencySummary()
        summary.record(16)
        reg = MetricsRegistry()
        reg.register_source("net.latency", lambda: summary)
        snap = reg.snapshot()
        assert snap["net.latency.count"] == 1
        assert snap["net.latency.p50"] == 16

    def test_histogram_instrument_expands(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(3)
        assert reg.snapshot()["lat.count"] == 1

    def test_sources_sampled_at_snapshot_time(self):
        box = {"v": 1}
        reg = MetricsRegistry()
        reg.register_source("box", lambda: box["v"])
        assert reg.snapshot()["box"] == 1
        box["v"] = 9
        assert reg.snapshot()["box"] == 9

    def test_names_lists_everything(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.register_source("s", lambda: 0)
        assert reg.names() == ("c", "s")
