"""Unit tests for SimReport and the report CLI."""

import json
import subprocess
import sys

from repro.telemetry.report import SimReport


def test_roundtrip(tmp_path):
    report = SimReport({"a.x": 1, "a.y": 2.5}, meta={"kind": "test"})
    path = tmp_path / "run.json"
    report.save(str(path))
    loaded = SimReport.load(str(path))
    assert loaded.metrics == report.metrics
    assert loaded.meta == report.meta


def test_total_sums_suffix():
    report = SimReport({"node.0.proc.instructions": 3,
                        "node.1.proc.instructions": 4,
                        "node.0.proc.suspends": 9})
    assert report.total("instructions") == 7


def test_top_ranks_and_strips_names():
    report = SimReport({"handler.a.cycles": 10, "handler.b.cycles": 30,
                        "handler.c.cycles": 20, "handler.a.invocations": 99})
    top = report.top("handler.", ".cycles", 2)
    assert top == [("b", 30), ("c", 20)]


def test_diff_reports_changes_and_one_sided_metrics():
    a = SimReport({"x": 1, "y": 2, "gone": 5})
    b = SimReport({"x": 1, "y": 3, "new": 7})
    diff = a.diff(b)
    assert diff == {"y": (2, 3), "gone": (5, None), "new": (None, 7)}
    assert "y" in a.format_diff(b)
    assert a.format_diff(a) == "(no metric differences)"


def test_format_lists_meta_and_metrics():
    report = SimReport({"m": 1}, meta={"nodes": 4})
    text = report.format()
    assert "# nodes: 4" in text
    assert "m" in text
    limited = SimReport({f"k{i}": i for i in range(10)}).format(limit=3)
    assert "7 more metrics" in limited


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.telemetry", *args],
        capture_output=True, text=True,
    )


def test_cli_report_prints(tmp_path):
    path = tmp_path / "run.json"
    SimReport({"node.0.proc.instructions": 12},
              meta={"kind": "machine"}).save(str(path))
    result = _cli("report", str(path))
    assert result.returncode == 0, result.stderr
    assert "node.0.proc.instructions" in result.stdout
    assert "# kind: machine" in result.stdout


def test_cli_report_diffs_two_runs(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    SimReport({"x": 1}).save(str(a))
    SimReport({"x": 5}).save(str(b))
    result = _cli("report", str(a), str(b))
    assert result.returncode == 0, result.stderr
    assert "x" in result.stdout and "diff" in result.stdout


def test_cli_top(tmp_path):
    path = tmp_path / "run.json"
    SimReport({"handler.fast.cycles": 90, "handler.slow.cycles": 10}
              ).save(str(path))
    result = _cli("report", str(path), "--top", "1")
    assert result.returncode == 0, result.stderr
    assert "fast" in result.stdout
    assert "slow" not in result.stdout


def test_cli_report_json(tmp_path):
    path = tmp_path / "run.json"
    SimReport({"node.0.proc.instructions": 12},
              meta={"kind": "machine"}).save(str(path))
    result = _cli("report", "--json", str(path))
    assert result.returncode == 0, result.stderr
    doc = json.loads(result.stdout)
    assert doc["kind"] == "report"
    assert doc["metrics"]["node.0.proc.instructions"] == 12
    assert doc["meta"]["kind"] == "machine"


def test_cli_report_json_diff(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    SimReport({"x": 1, "same": 2}).save(str(a))
    SimReport({"x": 5, "same": 2}).save(str(b))
    result = _cli("report", "--json", str(a), str(b))
    assert result.returncode == 0, result.stderr
    doc = json.loads(result.stdout)
    assert doc["kind"] == "diff"
    assert doc["diff"] == {"x": [1, 5]}
    assert doc["a"]["path"] == str(a)


def _probed_run(tmp_path, name="fabrun.json", iterations=4):
    from repro.machine.config import MachineConfig
    from repro.machine.jmachine import JMachine
    from repro.runtime.rpc import run_ping
    from repro.telemetry import Telemetry

    machine = JMachine(MachineConfig(dims=(2, 2, 1), fabric_probe=True),
                       telemetry=Telemetry())
    run_ping(machine, 0, 3, iterations=iterations)
    report = SimReport.from_machine(machine)
    path = tmp_path / name
    report.save(str(path))
    return report, path


def test_from_machine_embeds_fabric_meta(tmp_path):
    report, _path = _probed_run(tmp_path)
    assert "fabric" in report.meta
    assert report.meta["fabric"]["links"]
    # The text rendering condenses it to one line instead of dumping
    # the whole per-link payload.
    text = report.format()
    assert "# fabric:" in text and "links observed" in text
    assert "queue_occupancy" not in text


def test_from_machine_without_probe_has_no_fabric_meta():
    from repro.machine.config import MachineConfig
    from repro.machine.jmachine import JMachine

    machine = JMachine(MachineConfig(dims=(2, 2, 1)))
    assert "fabric" not in SimReport.from_machine(machine).meta


def test_cli_fabric_prints_hotspots(tmp_path):
    _report, path = _probed_run(tmp_path)
    proc = _cli("fabric", str(path))
    assert proc.returncode == 0, proc.stderr
    assert "fabric observatory:" in proc.stdout
    assert "link load: dim=X" in proc.stdout


def test_cli_report_fabric_flag(tmp_path):
    _report, path = _probed_run(tmp_path)
    proc = _cli("report", str(path), "--fabric")
    assert proc.returncode == 0, proc.stderr
    assert "fabric observatory:" in proc.stdout


def test_cli_report_fabric_diff(tmp_path):
    _a, path_a = _probed_run(tmp_path, "a.json", iterations=4)
    _b, path_b = _probed_run(tmp_path, "b.json", iterations=8)
    proc = _cli("report", str(path_a), str(path_b), "--fabric")
    assert proc.returncode == 0, proc.stderr
    assert "# fabric diff (per-link phits, a vs b)" in proc.stdout
    assert "delta=" in proc.stdout
