"""Causal tracing: context propagation, the causal graph, critical path.

Covers the contract end to end: deterministic context allocation, span
fields on events at both simulation levels, flow events in the Perfetto
export, retransmissions re-using the original span, the offline
critical-path reconstruction, the analysis CLI, and the surfacing of
event-bus drops in snapshots and export warnings.
"""

import json

import pytest

from repro.apps.lcs import LcsParams, run_parallel
from repro.chaos import ChaosEngine, FaultPlan
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.rpc import run_ping
from repro.telemetry import CausalGraph, EventBus, Telemetry, TraceState
from repro.telemetry.__main__ import main as telemetry_cli
from repro.telemetry.trace import PATH_CATEGORIES

PARAMS = LcsParams(a_len=32, b_len=64)


def _traced_lcs(n_nodes=4, params=PARAMS, **kwargs):
    telemetry = Telemetry(trace=True)
    result = run_parallel(n_nodes, params, telemetry=telemetry, **kwargs)
    return telemetry, result


class TestTraceState:
    def test_root_allocates_fresh_trace_and_span(self):
        state = TraceState()
        t1, t2 = state.root(), state.root()
        assert t1 == (1, 1, None)
        assert t2 == (2, 2, None)

    def test_child_stays_in_trace_and_records_parent(self):
        state = TraceState()
        root = state.root()
        child = state.child(root)
        grandchild = state.child(child)
        assert child == (root[0], 2, root[1])
        assert grandchild == (root[0], 3, child[1])

    def test_derive_roots_when_parentless(self):
        state = TraceState()
        assert state.derive(None)[2] is None
        root = state.root()
        assert state.derive(root)[2] == root[1]

    def test_allocation_is_deterministic(self):
        a, b = TraceState(), TraceState()
        for _ in range(5):
            assert a.root() == b.root()
        ra, rb = a.root(), b.root()
        assert a.child(ra) == b.child(rb)

    def test_requires_event_collection(self):
        with pytest.raises(ValueError):
            Telemetry(events=False, trace=True)


class TestSyntheticGraph:
    """A hand-built two-hop chain with known timings."""

    EVENTS = [
        # root span 1: injected, delivered at 5, runs 5..20
        {"ts": 0, "kind": "send", "node": 0, "priority": 0, "dest": 1,
         "trace": 1, "span": 1},
        {"ts": 5, "kind": "deliver", "node": 1, "priority": 0,
         "trace": 1, "span": 1},
        {"ts": 5, "kind": "task", "node": 1, "priority": 0, "name": "h",
         "dur": 15, "trace": 1, "span": 1,
         "cats": {"dispatch": 5, "compute": 10}},
        # child span 2: sent mid-handler at 12, wire 12..18, runs 21..30
        {"ts": 12, "kind": "send", "node": 1, "priority": 0, "dest": 2,
         "trace": 1, "span": 2, "parent": 1},
        {"ts": 18, "kind": "deliver", "node": 2, "priority": 0,
         "trace": 1, "span": 2, "parent": 1},
        {"ts": 21, "kind": "task", "node": 2, "priority": 0, "name": "h",
         "dur": 9, "trace": 1, "span": 2, "parent": 1,
         "cats": {"dispatch": 4, "compute": 5}},
        {"ts": 30, "kind": "run-end", "node": -1, "priority": 0},
    ]

    def test_graph_reconstruction(self):
        graph = CausalGraph.from_events(self.EVENTS)
        assert graph.n_spans == 2
        assert graph.n_traces == 1
        assert graph.run_end_ts == 30
        assert [s.span for s in graph.roots()] == [1]
        assert graph.children()[1] == [2]
        assert graph.total_work() == 15 + 9
        assert not graph.validate()

    def test_critical_path_walks_both_hops(self):
        path = CausalGraph.from_events(self.EVENTS).critical_path()
        assert [s.span.span for s in path.steps] == [1, 2]
        assert path.connected and path.acyclic
        assert [s.link for s in path.steps] == ["inject", "message"]
        assert path.start == 0 and path.end == 30
        assert path.length == 30

    def test_attribution_tiles_the_path(self):
        path = CausalGraph.from_events(self.EVENTS).critical_path()
        cats = path.categories()
        assert sum(cats.values()) == pytest.approx(path.length)
        # span 1 net 0..5, exec 5..12 (scaled 7 of 15); span 2 net
        # 12..18, queue-wait 18..21 (sync), exec 21..30.
        assert cats["net"] == pytest.approx(5 + 6)
        assert cats["sync"] == pytest.approx(3)

    def test_available_parallelism(self):
        path = CausalGraph.from_events(self.EVENTS).critical_path()
        assert path.available_parallelism == pytest.approx(24 / 30)

    def test_dangling_parent_is_reported(self):
        events = [dict(self.EVENTS[3])]  # child send only
        graph = CausalGraph.from_events(events)
        assert any("parent" in p for p in graph.validate())


class TestMacroPropagation:
    def test_spans_cover_every_message(self):
        telemetry, result = _traced_lcs()
        graph = CausalGraph.from_bus(telemetry.events)
        sends = sum(1 for e in telemetry.events.iter_dicts()
                    if e["kind"] == "send")
        assert graph.n_spans == sends
        assert all("span" in e for e in telemetry.events.iter_dicts()
                   if e["kind"] in ("send", "deliver", "task"))
        assert not graph.validate()

    def test_handler_sends_are_children_of_dispatching_message(self):
        telemetry, _ = _traced_lcs()
        graph = CausalGraph.from_bus(telemetry.events)
        children = sum(1 for s in graph.spans.values()
                       if s.parent is not None)
        assert children > 0
        for span in graph.spans.values():
            if span.parent is not None:
                parent = graph.spans[span.parent]
                assert parent.trace == span.trace

    def test_critical_path_contract(self):
        telemetry, result = _traced_lcs()
        path = CausalGraph.from_bus(telemetry.events).critical_path()
        assert path.connected and path.acyclic
        assert path.steps[0].span.parent is None
        cats = path.categories()
        assert sum(cats.values()) == pytest.approx(path.length)
        assert path.length <= result.cycles
        assert 1.0 <= path.available_parallelism <= 4.0

    def test_task_category_breakdown_sums_to_duration(self):
        telemetry, _ = _traced_lcs()
        tasks = [e for e in telemetry.events.iter_dicts()
                 if e["kind"] == "task"]
        assert tasks
        for task in tasks:
            assert sum(task["cats"].values()) == task["dur"]

    def test_untraced_run_has_no_span_fields(self):
        telemetry = Telemetry()
        run_parallel(4, PARAMS, telemetry=telemetry)
        for event in telemetry.events.iter_dicts():
            assert "span" not in event and "trace" not in event


class TestCyclePropagation:
    def test_ping_spans_form_one_trace(self):
        telemetry = Telemetry(trace=True)
        machine = JMachine(MachineConfig(dims=(2, 2, 1)),
                           telemetry=telemetry)
        run_ping(machine, 0, 3, iterations=4)
        graph = CausalGraph.from_bus(telemetry.events)
        assert graph.n_traces == 1
        assert len(graph.roots()) == 1
        assert graph.n_spans == machine.fabric.stats.submitted
        path = graph.critical_path()
        assert path.connected and path.acyclic
        assert sum(path.categories().values()) == pytest.approx(path.length)

    def test_suspend_restart_stay_on_the_spans_thread(self):
        telemetry = Telemetry(trace=True)
        machine = JMachine(MachineConfig(dims=(2, 2, 1)),
                           telemetry=telemetry)
        run_ping(machine, 0, 3, iterations=2)
        spans = {e["span"] for e in telemetry.events.iter_dicts()
                 if "span" in e}
        for event in telemetry.events.iter_dicts():
            if event["kind"] in ("suspend", "restart", "thread-end"):
                assert event.get("span") in spans


class TestRetransmissionIdentity:
    def test_retries_reuse_the_original_span(self):
        plan = FaultPlan.message_loss(0.05, seed=20130501)
        telemetry, result = _traced_lcs(
            chaos=ChaosEngine(plan), reliable=True)
        retries = [e for e in telemetry.events.iter_dicts()
                   if e["kind"] == "retry"]
        assert retries, "plan injected no loss; test is vacuous"
        graph = CausalGraph.from_bus(telemetry.events)
        for event in retries:
            span = graph.spans[event["span"]]
            assert event["trace"] == span.trace
            assert span.retries > 0
            # The retransmitted message still got through as itself.
            assert span.start_ts is not None
        path = graph.critical_path()
        assert path.connected and path.acyclic


class TestExport:
    def test_chrome_trace_draws_flow_arrows(self):
        telemetry, _ = _traced_lcs()
        trace = telemetry.events.to_chrome_trace()
        flows = [e for e in trace["traceEvents"] if e.get("cat") == "flow"]
        phases = {e["ph"] for e in flows}
        assert {"s", "t", "f"} <= phases
        span_ids = {e["id"] for e in flows}
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        assert span_ids == starts  # every flow begins at its send
        for event in flows:
            if event["ph"] == "f":
                assert event["bp"] == "e"

    def test_untraced_export_has_no_flows(self):
        telemetry = Telemetry()
        run_parallel(4, PARAMS, telemetry=telemetry)
        trace = telemetry.events.to_chrome_trace()
        assert not [e for e in trace["traceEvents"]
                    if e.get("cat") == "flow"]

    def test_jsonl_roundtrip_preserves_the_graph(self, tmp_path):
        telemetry, _ = _traced_lcs()
        path = tmp_path / "events.jsonl"
        telemetry.write_jsonl(str(path))
        direct = CausalGraph.from_bus(telemetry.events)
        loaded = CausalGraph.from_jsonl(str(path))
        assert loaded.n_spans == direct.n_spans
        assert loaded.critical_path().length == \
            direct.critical_path().length

    def test_cli_reports_critical_path(self, tmp_path, capsys):
        telemetry, _ = _traced_lcs()
        events = tmp_path / "events.jsonl"
        telemetry.write_jsonl(str(events))
        rc = telemetry_cli(["critical-path", str(events), "--steps", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "critical path:" in out
        assert "available parallelism:" in out
        for category in PATH_CATEGORIES:
            assert category in out

    def test_cli_rejects_untraced_stream(self, tmp_path, capsys):
        telemetry = Telemetry()
        run_parallel(2, PARAMS, telemetry=telemetry)
        events = tmp_path / "events.jsonl"
        telemetry.write_jsonl(str(events))
        assert telemetry_cli(["critical-path", str(events)]) == 1
        assert "Telemetry(trace=True)" in capsys.readouterr().out


class TestDroppedEvents:
    def test_drops_surface_in_snapshots(self):
        telemetry = Telemetry(event_limit=10, trace=True)
        run_parallel(2, PARAMS, telemetry=telemetry)
        snap = telemetry.registry.snapshot()
        assert snap["events.collected"] == 10
        assert snap["events.dropped"] == telemetry.events.dropped > 0

    def test_truncated_export_warns(self, tmp_path):
        bus = EventBus(limit=2)
        for ts in range(4):
            bus.emit("send", ts, 0, dest=1)
        with pytest.warns(RuntimeWarning, match="dropped 2 events"):
            bus.write_jsonl(str(tmp_path / "events.jsonl"))
        with pytest.warns(RuntimeWarning, match="truncated"):
            bus.write_chrome_trace(str(tmp_path / "trace.json"))

    def test_complete_export_does_not_warn(self, tmp_path):
        bus = EventBus(limit=100)
        bus.emit("send", 0, 0, dest=1)
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bus.write_jsonl(str(tmp_path / "events.jsonl"))

    def test_jsonl_line_is_valid_json_with_span_fields(self, tmp_path):
        telemetry, _ = _traced_lcs(n_nodes=2)
        path = tmp_path / "events.jsonl"
        telemetry.write_jsonl(str(path))
        first_send = next(
            line for line in path.read_text().splitlines()
            if json.loads(line)["kind"] == "send")
        record = json.loads(first_send)
        assert {"trace", "span"} <= set(record)
