"""Smoke tests: every example script runs and prints sensible output.

Each example accepts size arguments, so the suite runs them at reduced
scale; what's checked is that they execute end to end and their key
claims appear in the output.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "remote increment returned: 42" in out
    assert "round trip" in out


def test_rpc_latency_survey():
    out = run_example("rpc_latency_survey.py", "4")
    assert "slope" in out
    assert "ping" in out


def test_parallel_sort():
    out = run_example("parallel_sort.py", "2048")
    assert "speedup" in out
    assert "3-word message" in out


def test_branch_and_bound():
    out = run_example("branch_and_bound.py", "9")
    assert "verified optimal tour" in out


def test_network_saturation():
    out = run_example("network_saturation.py", "4", "8")
    assert "bisection capacity" in out
    assert "#" in out  # the latency bars


def test_custom_application():
    out = run_example("custom_application.py")
    assert "verified correct" in out


def test_partitioned_machine():
    out = run_example("partitioned_machine.py")
    assert "token completed=True" in out
    assert "protection" in out


def test_cst_objects():
    out = run_example("cst_objects.py")
    assert "(verified)" in out
    assert "xlates" in out


def test_timeline_trace(tmp_path):
    # Runs in tmp_path (the script writes its trace to the cwd), so the
    # inherited PYTHONPATH=src must be made absolute.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(EXAMPLES.parent / "src")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "timeline_trace.py"), "32", "64"],
        capture_output=True, text=True, timeout=240, cwd=str(tmp_path),
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "hottest handlers" in result.stdout
    assert "NxtChar" in result.stdout
    assert "critical path:" in result.stdout
    assert "available parallelism:" in result.stdout
    trace_file = tmp_path / "lcs_trace.json"
    assert trace_file.exists()
    trace = json.loads(trace_file.read_text())
    assert trace["traceEvents"]
    assert any(e.get("cat") == "flow" for e in trace["traceEvents"])
    assert (tmp_path / "lcs_events.jsonl").exists()


def test_assembly_showcase():
    out = run_example("assembly_showcase.py")
    assert "sorted 64 keys" in out
    assert "instruction trace" in out
