"""Whole-machine integration tests: assembly over the real network."""

import pytest

from repro.asm.assembler import assemble
from repro.core.errors import ConfigurationError
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine


class TestConstruction:
    def test_build_standard_size(self):
        machine = JMachine.build(8)
        assert machine.mesh.n_nodes == 8
        assert len(machine.nodes) == 8

    def test_default_is_512(self):
        assert JMachine().mesh.n_nodes == 512

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(dims=(0, 1, 1))

    def test_quiescent_immediately(self):
        machine = JMachine.build(2)
        assert machine.run(max_cycles=100) == 0


class TestEcho:
    ECHO = """
    ; request: [IP:echo, replyto, value]
    echo:
        SEND  [A3+1]
        SEND  #IP:landing
        SENDE [A3+2]
        SUSPEND
    landing:
        MOVE  [A3+1], [A0+0]
        SUSPEND
    """

    def _machine(self, n=8):
        machine = JMachine.build(n)
        program = assemble(self.ECHO)
        machine.load(program)
        base = program.end + 4
        for node in machine.nodes:
            node.proc.registers[Priority.P0].write(
                "A0", Word.segment(base, 4))
        return machine, program, base

    def test_remote_echo_round_trip(self):
        machine, program, base = self._machine()
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(1234)], source=0)
        machine.run(max_cycles=10_000)
        assert machine.node(0).proc.memory.peek(base).value == 1234

    def test_echo_to_self(self):
        machine, program, base = self._machine()
        machine.inject(3, program.entry("echo"),
                       [Word.from_int(3), Word.from_int(55)])
        machine.run(max_cycles=10_000)
        assert machine.node(3).proc.memory.peek(base).value == 55

    def test_many_echoes_all_land(self):
        machine, program, base = self._machine()
        for node in range(1, 8):
            machine.inject(node, program.entry("echo"),
                           [Word.from_int(0), Word.from_int(100 + node)],
                           source=0)
        machine.run(max_cycles=50_000)
        # The landing handler at node 0 ran once per echo.
        assert machine.node(0).proc.counters.threads_completed == 7

    def test_run_until_predicate(self):
        machine, program, base = self._machine()
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(9)], source=0)
        end = machine.run(
            max_cycles=10_000,
            until=lambda m: m.node(0).proc.memory.peek(base).value == 9,
        )
        assert machine.node(0).proc.memory.peek(base).value == 9
        assert end < 10_000


class TestScheduling:
    def test_idle_nodes_cost_nothing(self):
        """A 512-node machine with 2 active nodes finishes quickly."""
        machine = JMachine.build(512)
        program = assemble(self.PINGPONG)
        machine.load(program, nodes=[0, 511])
        machine.inject(511, program.entry("pong"), [Word.from_int(0)],
                       source=0)
        machine.run(max_cycles=5_000)
        busy = sum(1 for node in machine.nodes
                   if node.proc.counters.instructions > 0)
        assert busy <= 2

    PINGPONG = """
    pong:
        SEND  [A3+1]
        SENDE #IP:done
        SUSPEND
    done:
        SUSPEND
    """

    def test_clock_jumps_over_idle_gaps(self):
        machine = JMachine.build(2)
        program = assemble("bg:\n NOP\n HALT")
        machine.load(program, nodes=[0])
        machine.start_background(0, program.entry("bg"))
        end = machine.run(max_cycles=1_000_000)
        assert end < 100

    def test_counters_aggregate(self):
        machine = JMachine.build(2)
        program = assemble("bg:\n NOP\n NOP\n HALT")
        machine.load(program, nodes=[0, 1])
        machine.start_background(0, program.entry("bg"))
        machine.start_background(1, program.entry("bg"))
        machine.run(max_cycles=1000)
        assert machine.total_instructions() == 6
        assert machine.total_busy_cycles() == 6
