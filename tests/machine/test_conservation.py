"""Machine-level conservation properties under random host traffic."""

from hypothesis import given, settings, strategies as st

from repro.asm.assembler import assemble
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine

COUNTER = """
count:
    ADD [A0+0], #1, R0
    MOVE R0, [A0+0]
    SUSPEND
"""


@settings(deadline=None, max_examples=20)
@given(st.lists(st.integers(0, 7), min_size=1, max_size=40))
def test_every_injected_message_is_handled_exactly_once(destinations):
    """N host messages produce exactly N completed threads, each on the
    node it was addressed to."""
    machine = JMachine(MachineConfig(dims=(2, 2, 2)))
    program = assemble(COUNTER)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 2))
    for dest in destinations:
        machine.inject(dest, program.entry("count"))
    machine.run(max_cycles=500_000)

    per_node = [machine.node(n).proc.memory.peek(base).value
                for n in range(8)]
    expected = [destinations.count(n) for n in range(8)]
    assert per_node == expected
    total_threads = sum(machine.node(n).proc.counters.threads_completed
                        for n in range(8))
    assert total_threads == len(destinations)


@settings(deadline=None, max_examples=10)
@given(st.integers(2, 30))
def test_relay_chain_conserves_across_machine(chain_length):
    """A relay that hops a counter across nodes increments it exactly
    once per hop, regardless of chain length."""
    machine = JMachine(MachineConfig(dims=(2, 2, 2)))
    program = assemble("""
    hop:
        MOVE  [A3+1], R0       ; hops remaining
        BF    R0, stop
        SUB   R0, #1, R0
        MOVEID R1
        ADD   R1, #1, R1
        AND   R1, #7, R1       ; next node mod 8
        SEND  R1
        SEND2E #IP:hop, R0
        SUSPEND
    stop:
        MOVE #1, [A0+0]
        SUSPEND
    """)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 2))
    machine.inject(0, program.entry("hop"), [Word.from_int(chain_length)])
    machine.run(max_cycles=500_000)
    total_threads = sum(machine.node(n).proc.counters.threads_completed
                        for n in range(8))
    assert total_threads == chain_length + 1
    finisher = machine.node(chain_length % 8).proc
    assert finisher.memory.peek(base).value == 1
