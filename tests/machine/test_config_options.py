"""Tests that machine-level options reach the right components."""

import pytest

from repro.core.errors import ConfigurationError
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine


def test_arbitration_reaches_fabric():
    machine = JMachine(MachineConfig(dims=(2, 2, 1),
                                     arbitration="round_robin"))
    assert machine.fabric.arbitration == "round_robin"


def test_flow_control_reaches_fabric():
    machine = JMachine(MachineConfig(dims=(2, 2, 1),
                                     flow_control="return_to_sender"))
    assert machine.fabric.flow_control == "return_to_sender"


def test_bad_arbitration_rejected_at_build():
    with pytest.raises(ConfigurationError):
        JMachine(MachineConfig(dims=(2, 2, 1), arbitration="lottery"))


def test_spill_reaches_every_processor():
    machine = JMachine(MachineConfig(dims=(2, 2, 1),
                                     queue_overflow_spills=True))
    assert all(node.proc.spill_enabled for node in machine.nodes)


def test_node_tlb_present_only_when_enabled():
    plain = JMachine(MachineConfig(dims=(2, 2, 1)))
    assert all(node.interface.node_tlb is None for node in plain.nodes)
    translated = JMachine(MachineConfig(dims=(2, 2, 1),
                                        auto_node_translation=True))
    assert all(node.interface.node_tlb is not None
               for node in translated.nodes)


def test_node_tlb_identity_by_default():
    machine = JMachine(MachineConfig(dims=(2, 2, 1),
                                     auto_node_translation=True))
    tlb = machine.node(0).interface.node_tlb
    assert [tlb.translate(i) for i in range(4)] == [0, 1, 2, 3]


def test_custom_costs_reach_processors():
    from repro.core.costs import CostModel
    costs = CostModel().with_overrides(dispatch=9)
    machine = JMachine(MachineConfig(dims=(2, 1, 1), costs=costs))
    assert machine.node(0).proc.costs.dispatch == 9


def test_queue_words_reach_queues():
    machine = JMachine(MachineConfig(dims=(2, 1, 1), queue_words=64))
    from repro.core.registers import Priority
    assert machine.node(0).proc.queues[Priority.P0].capacity_words == 64


def test_for_nodes_builder():
    machine = JMachine(MachineConfig.for_nodes(32, queue_words=64))
    assert machine.mesh.n_nodes == 32
