"""Tests for the `python -m repro.machine` CLI."""

import pathlib
import subprocess
import sys

import pytest

FIB = """
main:
    MOVE #0, R0
    MOVE #1, R1
    MOVE #9, R2
fib:
    ADD R0, R1, R3
    MOVE R1, R0
    MOVE R3, R1
    SUB R2, #1, R2
    BT R2, fib
    MOVE R1, [A0+0]
    HALT
"""

ECHO = """
echo:
    MOVE [A3+1], R0
    SUSPEND
"""


@pytest.fixture
def program_file(tmp_path):
    def write(source):
        path = tmp_path / "prog.s"
        path.write_text(source)
        return str(path)

    return write


def run_cli(*args):
    result = subprocess.run(
        [sys.executable, "-m", "repro.machine", *args],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_runs_background_main(program_file):
    out = run_cli(program_file(FIB), "--nodes", "2")
    assert "background thread 'main'" in out
    assert "finished at cycle" in out


def test_trace_prints_instructions(program_file):
    out = run_cli(program_file(FIB), "--nodes", "2", "--trace", "0")
    assert "ADD R0, R1, R3" in out
    assert "BACKGROUND" in out


def test_inject_runs_handler(program_file):
    out = run_cli(program_file(ECHO), "--nodes", "4",
                  "--inject", "2:echo:5", "--max-cycles", "10000")
    assert "injected echo([5]) to node 2" in out
    assert "instructions: 2" in out  # MOVE + SUSPEND ran somewhere


def test_dump_shows_memory(program_file):
    source = """
main:
    HALT
table: .word 11, 22
"""
    out = run_cli(program_file(source), "--nodes", "2",
                  "--dump", "200:2")
    assert "[200]" in out
