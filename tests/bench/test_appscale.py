"""Tests for the per-scale application problem sizes."""

from repro.bench import appscale


def test_small_scale_sizes(monkeypatch):
    monkeypatch.delenv("JM_SCALE", raising=False)
    assert appscale.lcs_params().a_len == 256
    assert appscale.radix_params().n_keys == 16384
    assert appscale.nqueens_params().n == 11
    assert appscale.tsp_params().n_cities == 11


def test_paper_scale_sizes(monkeypatch):
    monkeypatch.setenv("JM_SCALE", "paper")
    assert appscale.lcs_params().a_len == 1024
    assert appscale.lcs_params().b_len == 4096
    assert appscale.radix_params().n_keys == 65536
    assert appscale.nqueens_params().n == 13
    assert appscale.tsp_params().n_cities == 14
    assert appscale.tsp_params().task_depth == 3


def test_small_preserves_structure(monkeypatch):
    """Small-scale instances keep the same digit/alphabet structure."""
    monkeypatch.delenv("JM_SCALE", raising=False)
    assert appscale.radix_params().n_digits == 7
    assert appscale.lcs_params().b_len == 4 * appscale.lcs_params().a_len
