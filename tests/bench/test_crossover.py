"""Unit tests for the grain-crossover study."""

import pytest

from repro.bench import crossover


@pytest.fixture(scope="module")
def result():
    return crossover.run(n_nodes=4, n_keys=1024)


def test_every_overhead_point_present(result):
    labels = {label for label, _, _ in crossover.OVERHEAD_SWEEP}
    assert set(result.points) == labels


def test_penalty_definition(result):
    label = crossover.OVERHEAD_SWEEP[0][0]
    point = result.points[label]
    assert result.penalty(label) == point["fine"] / point["coarse"]


def test_fine_degrades_faster_than_coarse(result):
    """Raising overhead hurts the message-per-key style far more."""
    first = crossover.OVERHEAD_SWEEP[0][0]
    last = crossover.OVERHEAD_SWEEP[-1][0]
    fine_growth = (result.points[last]["fine"]
                   / result.points[first]["fine"])
    coarse_growth = (result.points[last]["coarse"]
                     / result.points[first]["coarse"])
    assert fine_growth > 3 * coarse_growth


def test_format_lists_all_rows(result):
    text = crossover.format_result(result)
    for label, _, _ in crossover.OVERHEAD_SWEEP:
        assert label in text
    assert "fine/coarse" in text
