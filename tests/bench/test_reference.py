"""Sanity checks on the published reference data."""

from repro.bench.reference import (PAPER_FIG2, PAPER_TABLE2, PAPER_TABLE4,
                                   PAPER_TABLE5, TABLE1_JMACHINE, TABLE1_ROWS,
                                   TABLE3_BARRIER_US)


def test_table1_jmachine_is_fastest():
    for row in TABLE1_ROWS:
        assert row.cycles_per_msg > TABLE1_JMACHINE.cycles_per_msg
        assert row.cycles_per_byte > TABLE1_JMACHINE.cycles_per_byte


def test_table1_active_messages_beat_vendor():
    rows = {row.machine: row for row in TABLE1_ROWS}
    assert rows["nCUBE/2 (Active)"].us_per_msg < rows["nCUBE/2 (Vendor)"].us_per_msg
    assert rows["CM-5 (Active)"].us_per_msg < rows["CM-5 (Vendor)"].us_per_msg


def test_table3_j_machine_fastest_big_machine():
    """At 64 nodes the J-Machine beats every microprocessor machine."""
    j = TABLE3_BARRIER_US["J-Machine"][64]
    for machine in ("KSR", "IPSC/860"):
        assert TABLE3_BARRIER_US[machine][64] > 10 * j


def test_table3_columns_monotone():
    for machine, column in TABLE3_BARRIER_US.items():
        values = [column[n] for n in sorted(column) if column[n] is not None]
        assert values == sorted(values), machine


def test_fig2_decomposition_adds_up():
    assert (PAPER_FIG2["ping_network_cycles"]
            + PAPER_FIG2["ping_thread_cycles"]
            == PAPER_FIG2["ping_base_cycles"])


def test_table2_tags_strictly_better():
    for event in ("Success", "Failure", "Write"):
        assert PAPER_TABLE2[event]["tags"] < PAPER_TABLE2[event]["no_tags"]


def test_table4_thread_structure():
    for app, data in PAPER_TABLE4.items():
        assert set(data["threads"]) == set(data["instr_per_thread"])
        assert set(data["threads"]) == set(data["msg_length"])


def test_table5_mean_thread_lengths_consistent():
    mean = PAPER_TABLE5["user_instructions"] / PAPER_TABLE5["user_threads"]
    assert abs(mean - PAPER_TABLE5["user_instr_per_thread"]) < 5
