"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import format_table, is_paper_scale, node_counts, scale


class TestScale:
    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("JM_SCALE", raising=False)
        assert scale() == "small"
        assert not is_paper_scale()

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("JM_SCALE", "paper")
        assert scale() == "paper"
        assert is_paper_scale()

    def test_garbage_falls_back_to_small(self, monkeypatch):
        monkeypatch.setenv("JM_SCALE", "enormous")
        assert scale() == "small"


class TestNodeCounts:
    def test_small_scale_stops_at_64(self, monkeypatch):
        monkeypatch.delenv("JM_SCALE", raising=False)
        assert node_counts()[-1] == 64

    def test_paper_scale_reaches_512(self, monkeypatch):
        monkeypatch.setenv("JM_SCALE", "paper")
        assert node_counts()[-1] == 512

    def test_explicit_limit(self):
        assert node_counts(8) == [1, 2, 4, 8]

    def test_powers_of_two(self):
        counts = node_counts(512)
        assert all(n & (n - 1) == 0 for n in counts)


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(["a", "bb"], [[1, 2], [3, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_none_renders_dash(self):
        text = format_table(["x"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text

    def test_large_numbers_get_commas(self):
        text = format_table(["x"], [[1234567]])
        assert "1,234,567" in text

    def test_columns_align(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])
