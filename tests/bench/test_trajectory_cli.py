"""``python -m repro.bench trajectory``: render + gate the perf trend.

The CLI reads the committed BENCH_*.json trajectory artifacts and
applies the documented regression rule (newest vs the median of its
priors, only once enough priors exist) with the telemetry gate's
contract-plus-noise limit as the single source of truth.
"""

import json
import subprocess
import sys

import pytest

from repro.bench.trajectory import (LIMIT, MIN_PRIOR_POINTS, check_series,
                                    load_series, main, render, sparkline)


def _artifact(tmp_path, name, minima, snapshot=None, dirty_last=False):
    """Write a trajectory artifact with one benchmark series."""
    entries = []
    for i, value in enumerate(minima):
        entry = {
            "datetime": f"2026-08-0{i + 1}T00:00:00",
            "dirty": dirty_last and i == len(minima) - 1,
            "benchmarks": {"test_bench": {"min": value,
                                          "mean": value * 1.1}},
        }
        if snapshot is not None:
            entry["snapshot"] = snapshot
        entries.append(entry)
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": [], "trajectory": entries}))
    return str(path)


class TestSparkline:
    def test_one_glyph_per_value(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3
        assert sparkline([]) == ""

    def test_flat_series_is_all_low(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_rising_series_ends_high(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line[0] == "▁" and line[-1] == "█"


class TestCheckSeries:
    def _points(self, values, dirty=False):
        return [(f"t{i}", v, dirty) for i, v in enumerate(values)]

    def test_short_series_is_ungated(self):
        verdict, _ = check_series(self._points([1.0, 1.0, 2.0]))
        assert verdict == "ungated"

    def test_newest_within_limit_is_ok(self):
        priors = [1.0] * MIN_PRIOR_POINTS
        verdict, overhead = check_series(
            self._points(priors + [1.0 + LIMIT / 2]))
        assert verdict == "ok"
        assert overhead == pytest.approx(LIMIT / 2)

    def test_newest_beyond_limit_is_regression(self):
        priors = [1.0] * MIN_PRIOR_POINTS
        verdict, overhead = check_series(
            self._points(priors + [1.0 + 2 * LIMIT]))
        assert verdict == "REGRESSION"
        assert overhead == pytest.approx(2 * LIMIT)

    def test_median_not_best_prior(self):
        # One lucky early measurement must not condemn later runs: the
        # newest point is well above the *minimum* prior but right at
        # the median, so it passes.
        priors = [0.5, 1.0, 1.0, 1.0]
        verdict, overhead = check_series(self._points(priors + [1.0]))
        assert verdict == "ok"
        assert overhead == pytest.approx(0.0)

    def test_missing_values_skipped(self):
        points = self._points([1.0, None, 1.0, 1.0, 1.0])
        verdict, _ = check_series(points)
        assert verdict == "ok"


class TestLoadSeries:
    def test_benchmarks_and_snapshot_partition(self, tmp_path):
        snapshot = {"macro": {"bytes": 1000, "save_s": 0.01,
                              "restore_s": 0.02}}
        path = _artifact(tmp_path, "a.json", [1.0, 2.0],
                         snapshot=snapshot)
        gated, info = load_series(path)
        assert set(gated) == {"test_bench", "snapshot.macro.bytes"}
        assert set(info) == {"snapshot.macro.save_s",
                             "snapshot.macro.restore_s"}
        assert [v for _s, v, _d in gated["test_bench"]] == [1.0, 2.0]

    def test_empty_trajectory_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"trajectory": []}))
        with pytest.raises(ValueError):
            load_series(str(path))


class TestMain:
    def test_clean_artifact_exits_zero(self, tmp_path, capsys):
        path = _artifact(tmp_path, "ok.json",
                         [1.0] * (MIN_PRIOR_POINTS + 1))
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "test_bench" in out and "ok" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        path = _artifact(tmp_path, "bad.json",
                         [1.0] * MIN_PRIOR_POINTS + [2.0])
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_no_gate_flag_reports_but_passes(self, tmp_path, capsys):
        path = _artifact(tmp_path, "bad.json",
                         [1.0] * MIN_PRIOR_POINTS + [2.0])
        assert main(["--no-gate", path]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_unreadable_artifact_exits_two(self, tmp_path):
        assert main([str(tmp_path / "missing.json")]) == 2

    def test_dirty_marker_rendered(self, tmp_path):
        path = _artifact(tmp_path, "dirty.json", [1.0, 1.0],
                         dirty_last=True)
        text, status = render(path)
        assert status == 0
        assert "dirty tree" in text

    def test_committed_artifacts_pass_the_gate(self):
        """The repo's own history must be green (the CLI's defaults)."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "trajectory"],
            capture_output=True, text=True, cwd=".")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "BENCH_simspeed.json" in result.stdout
