"""Smoke tests: every table/figure module runs and formats at tiny size.

The benchmark suite (benchmarks/) checks the quantitative claims; these
tests only establish that each artifact's ``run``/``format`` pipeline is
healthy, quickly enough for the unit-test suite.
"""

import pytest

from repro.bench import (fig2, fig3, fig4, fig5, fig6, table1, table2,
                         table3, table4, table5)


def test_fig2_pipeline():
    result = fig2.run(iterations=3)
    text = fig2.format_result(result)
    assert "Figure 2" in text
    assert "Ping" in text


def test_table1_pipeline():
    result = table1.run(count=50)
    text = table1.format_result(result)
    assert "J-Machine (measured)" in text
    assert result.measured.cycles_per_msg > 0


def test_fig3_pipeline():
    result = fig3.run(warmup_cycles=500, measure_cycles=1000,
                      lengths=(2, 8), idles=(0, 800))
    latency_text = fig3.format_latency_table(result)
    efficiency_text = fig3.format_efficiency_table(result)
    assert "bisection" in latency_text.lower()
    assert "efficiency" in efficiency_text.lower()


def test_fig4_pipeline():
    result = fig4.run(sizes=(2, 8))
    text = fig4.format_result(result)
    assert "Figure 4" in text
    assert result.fraction_of_peak("discard", 8) > 0.5


def test_table2_pipeline():
    result = table2.run()
    assert result.matches_paper()
    assert "exact match" in table2.format_result(result)


def test_table3_pipeline():
    result = table3.run(barriers=3, max_nodes=8)
    text = table3.format_result(result)
    assert set(result.measured_us) == {2, 4, 8}
    assert "IPSC/860" in text


def test_fig5_pipeline():
    result = fig5.run(max_nodes=4, apps=("lcs", "nqueens"))
    text = fig5.format_result(result)
    assert "speedup" in text
    assert result.speedup("lcs", 4) > 1


def test_fig6_pipeline():
    result = fig6.run(n_nodes=8)
    text = fig6.format_result(result)
    assert set(result.breakdowns) == {"lcs", "nqueens", "radix_sort", "tsp"}
    assert "idle %" in text


def test_table4_pipeline():
    result = table4.run(n_nodes=8)
    text = table4.format_result(result)
    assert "NxtChar" in text
    assert "WriteData" in text


def test_table5_pipeline():
    result = table5.run(n_nodes=4)
    text = table5.format_result(result)
    assert "xlates" in text
    assert result.result.extra["user_threads"] > 0
