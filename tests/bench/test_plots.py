"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plots import ascii_chart


def test_empty_series():
    assert "(no data)" in ascii_chart({}, title="t")


def test_title_and_legend_present():
    text = ascii_chart({"alpha": [(0, 0), (1, 1)]}, title="My Chart")
    assert text.startswith("My Chart")
    assert "a=alpha" in text


def test_markers_rendered():
    text = ascii_chart({"one": [(0, 0), (10, 10)],
                        "two": [(5, 5)]})
    assert "a" in text
    assert "b" in text


def test_axis_extremes_labelled():
    text = ascii_chart({"s": [(2, 30), (8, 120)]})
    assert "120" in text
    assert "2" in text and "8" in text


def test_fixed_dimensions():
    text = ascii_chart({"s": [(0, 0), (1, 1)]}, width=40, height=10)
    grid_lines = [line for line in text.splitlines() if "|" in line]
    assert len(grid_lines) == 10
    assert all(len(line.split("|", 1)[1]) == 40 for line in grid_lines)


def test_monotone_series_renders_monotone():
    """A rising series' markers never go down as x increases."""
    points = [(x, x * x) for x in range(10)]
    text = ascii_chart({"s": points}, width=30, height=12)
    grid = [line.split("|", 1)[1] for line in text.splitlines()
            if "|" in line]
    positions = []
    for column in range(30):
        for row, line in enumerate(grid):
            if line[column] == "a":
                positions.append((column, row))
                break
    rows = [row for _, row in positions]
    assert rows == sorted(rows, reverse=True)


def test_log_x_spreads_wide_ranges():
    points = [(10, 1), (100, 2), (1000, 3)]
    linear = ascii_chart({"s": points}, logx=False, width=40, height=8)
    logged = ascii_chart({"s": points}, logx=True, width=40, height=8)

    def first_marker_column(text):
        for line in text.splitlines():
            if "|" in line and "a" in line:
                return line.split("|", 1)[1].index("a")
        return None

    # In log space the middle point sits mid-chart, not squeezed left.
    assert "a" in logged


def test_y_axis_label_shown():
    text = ascii_chart({"s": [(0, 0), (1, 5)]}, y_label="lat")
    assert "lat" in text


def test_chart_functions_integrate():
    from repro.bench import fig4
    result = fig4.run(sizes=(2, 8))
    chart = fig4.format_chart(result)
    assert "Figure 4" in chart
    assert "a=discard" in chart
