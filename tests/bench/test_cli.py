"""Tests for the `python -m repro.bench` entry point."""

import subprocess
import sys


def run_bench(*artifacts):
    result = subprocess.run(
        [sys.executable, "-m", "repro.bench", *artifacts],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_single_artifact_selection():
    out = run_bench("table2")
    assert "Table 2" in out
    assert "exact match" in out
    assert "Table 3" not in out  # others not selected


def test_multiple_artifacts():
    out = run_bench("table2", "fig4")
    assert "Table 2" in out
    assert "Figure 4" in out


def test_reports_scale_and_timing():
    out = run_bench("table2")
    assert "scale: small" in out
    assert "[table2:" in out


def test_out_writes_report(tmp_path):
    out = tmp_path / "report.md"
    run_bench("table2", "--out", str(out))
    text = out.read_text()
    assert "Table 2" in text
    assert "scale: small" in text
