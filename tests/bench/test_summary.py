"""Tests for the accuracy scorecard."""

from repro.bench import summary
from repro.bench.summary import Check


class TestCheck:
    def test_match_within_tolerance(self):
        assert Check("x", 100, 108, 0.10).verdict == "MATCH"

    def test_off_verdict(self):
        assert "off by" in Check("x", 100, 150, 0.10).verdict

    def test_skipped_verdict(self):
        check = Check("x", 100, None, skipped="reason")
        assert "skipped" in check.verdict

    def test_ratio(self):
        assert Check("x", 50, 100).ratio == 2.0
        assert Check("x", 50, None).ratio is None

    def test_exact_tolerance_zero(self):
        assert Check("x", 12, 12, 0.0).verdict == "MATCH"
        assert "off" in Check("x", 12, 13, 0.0).verdict


def test_scorecard_runs_and_matches():
    """The whole scorecard passes at small scale (the anchors)."""
    checks = summary.run()
    failed = [c for c in checks
              if not c.skipped and c.verdict != "MATCH"]
    assert failed == [], failed
    text = summary.format_result(checks)
    assert "Accuracy scorecard" in text
