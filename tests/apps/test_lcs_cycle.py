"""Tests for assembly LCS, including the two-level cross-validation."""

import pytest

from repro.apps.lcs import LcsParams, generate_strings, lcs_reference
from repro.apps.lcs import run_parallel as run_macro_lcs
from repro.apps.lcs_cycle import run_cycle_lcs
from repro.core.errors import ConfigurationError


class TestCorrectness:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
    def test_matches_reference(self, n_nodes):
        params = LcsParams(a_len=16, b_len=24)
        result = run_cycle_lcs(n_nodes, params)
        a, b = generate_strings(params)
        assert result.lcs_length == lcs_reference(a, b)

    @pytest.mark.parametrize("seed", [7, 99, 2024])
    def test_random_instances(self, seed):
        params = LcsParams(a_len=8, b_len=16, seed=seed)
        result = run_cycle_lcs(2, params)
        a, b = generate_strings(params)
        assert result.lcs_length == lcs_reference(a, b)

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cycle_lcs(3, LcsParams(a_len=16, b_len=16))

    def test_thread_count(self):
        """Every node handles every B character, plus node 0's startups."""
        params = LcsParams(a_len=16, b_len=24)
        result = run_cycle_lcs(4, params)
        assert result.threads == 24 * 4 + (24 - 1)


class TestCrossValidation:
    def test_cycle_and_macro_levels_agree(self):
        """The flagship fidelity check: the same application, in MDP
        assembly on the cycle simulator and as cost-charged handlers on
        the macro simulator, finishes in nearly the same simulated time.

        The macro level runs ~1.4x the assembly version because it
        charges the paper's *typical* 2.0 cycles/instruction while this
        hand-tuned inner loop achieves ~1.65 — the same relationship the
        paper notes between its tuned kernels and typical code.
        """
        params = LcsParams(a_len=32, b_len=64)
        cycle = run_cycle_lcs(4, params)
        macro = run_macro_lcs(4, params)
        assert macro.output == cycle.lcs_length
        assert macro.cycles == pytest.approx(cycle.cycles, rel=0.5)
        assert macro.cycles >= cycle.cycles  # macro is the conservative one

    def test_per_thread_instructions_agree(self):
        """The macro model's 13-instr/char handler matches the real
        assembly's dynamic instruction count."""
        params = LcsParams(a_len=32, b_len=64)
        cycle = run_cycle_lcs(4, params)
        # NxtChar threads dominate: (b_len * n_nodes) handlers.
        handlers = params.b_len * 4
        instr_per_thread = cycle.instructions / handlers
        chunk = params.a_len // 4
        macro_estimate = 20 + 13 * chunk  # FIXED + PER_CHAR * chunk
        assert instr_per_thread == pytest.approx(macro_estimate, rel=0.35)
