"""Tests for the systolic LCS application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.base import speedup
from repro.apps.lcs import (LcsParams, generate_strings, lcs_reference,
                            run_parallel, run_sequential)

SMALL = LcsParams(a_len=48, b_len=96)


def brute_force_lcs(a, b):
    """Independent O(n*m) DP for cross-checking lcs_reference."""
    rows = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            if a[i - 1] == b[j - 1]:
                rows[i][j] = rows[i - 1][j - 1] + 1
            else:
                rows[i][j] = max(rows[i - 1][j], rows[i][j - 1])
    return rows[len(a)][len(b)]


class TestReference:
    def test_known_case(self):
        assert lcs_reference(list(b"ABCBDAB"), list(b"BDCABA")) == 4

    def test_empty_string(self):
        assert lcs_reference([], [1, 2, 3]) == 0

    def test_identical_strings(self):
        s = [1, 2, 3, 4]
        assert lcs_reference(s, s) == 4

    def test_disjoint_alphabets(self):
        assert lcs_reference([1, 1, 1], [2, 2, 2]) == 0

    @given(st.lists(st.integers(0, 3), max_size=12),
           st.lists(st.integers(0, 3), max_size=12))
    def test_matches_brute_force(self, a, b):
        assert lcs_reference(a, b) == brute_force_lcs(a, b)


class TestGeneration:
    def test_deterministic(self):
        assert generate_strings(SMALL) == generate_strings(SMALL)

    def test_lengths(self):
        a, b = generate_strings(SMALL)
        assert len(a) == 48 and len(b) == 96

    def test_scaled(self):
        scaled = LcsParams().scaled(0.25)
        assert scaled.a_len == 256
        assert scaled.b_len == 1024


class TestParallelCorrectness:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3, 4, 8, 16])
    def test_matches_reference_at_any_node_count(self, n_nodes):
        result = run_parallel(n_nodes, SMALL)
        a, b = generate_strings(SMALL)
        assert result.output == lcs_reference(a, b)

    def test_more_nodes_than_characters(self):
        params = LcsParams(a_len=3, b_len=8)
        result = run_parallel(8, params)
        a, b = generate_strings(params)
        assert result.output == lcs_reference(a, b)

    def test_result_independent_of_node_count(self):
        results = {run_parallel(n, SMALL).output for n in (1, 4, 8)}
        assert len(results) == 1

    @settings(deadline=None, max_examples=10)
    @given(st.integers(1, 6), st.integers(43, 12345))
    def test_random_instances(self, n_nodes, seed):
        params = LcsParams(a_len=20, b_len=40, seed=seed)
        result = run_parallel(n_nodes, params)
        a, b = generate_strings(params)
        assert result.output == lcs_reference(a, b)


class TestBehaviour:
    def test_thread_counts(self):
        result = run_parallel(4, SMALL)
        stats = result.handler_stats["NxtChar"]
        # Every node with characters handles every streamed character.
        assert stats.invocations == SMALL.b_len * 4
        assert stats.mean_message_words == 3

    def test_speedup_with_more_nodes(self):
        params = LcsParams(a_len=256, b_len=512)
        seq = run_sequential(params)
        s4 = speedup(seq, run_parallel(4, params))
        s16 = speedup(seq, run_parallel(16, params))
        assert s16 > s4 > 1.5

    def test_entry_exit_overhead_grows_with_machine(self):
        """The paper's scaling story: fixed thread cost dominates as
        per-node chunks shrink."""
        params = LcsParams(a_len=256, b_len=512)
        small = run_parallel(4, params)
        big = run_parallel(64, params)
        ipt_small = small.handler_stats["NxtChar"].instructions_per_thread
        ipt_big = big.handler_stats["NxtChar"].instructions_per_thread
        assert ipt_big < ipt_small  # fewer chars per handler
        # Efficiency per node falls accordingly.
        assert speedup(run_sequential(params), big) < 64 * 0.8

    def test_startup_cost_charged_to_node_zero(self):
        result = run_parallel(4, SMALL)
        startup = result.handler_stats["StartUp"]
        assert startup.invocations == SMALL.b_len
        assert result.sim.nodes[0].profile.instructions > \
            result.sim.nodes[1].profile.instructions
