"""Tests for the LCS scaling decomposition (paper Section 4.3.1)."""

import pytest

from repro.apps.lcs import LcsParams, scaling_analysis


@pytest.fixture(scope="module")
def series():
    params = LcsParams(a_len=1024, b_len=1024)
    return {n: scaling_analysis(n, params) for n in (64, 256, 512)}


def test_entry_exit_share_at_64_nodes_near_paper(series):
    """Paper: handler entry and exit account for 9% at 64 nodes."""
    assert series[64].entry_exit_share == pytest.approx(0.09, abs=0.03)


def test_entry_exit_share_grows_with_machine(series):
    """Paper: 9% -> 24% -> 33% as chunks shrink to 2 characters."""
    shares = [series[n].entry_exit_share for n in (64, 256, 512)]
    assert shares == sorted(shares)
    assert shares[-1] > 2.5 * shares[0]


def test_node0_imbalance_grows_with_machine(series):
    """Paper: node 0's generation load costs 4% -> 13% -> 17%."""
    imbalances = [series[n].node0_imbalance_share for n in (64, 256, 512)]
    assert imbalances[0] < imbalances[2]
    assert imbalances[0] > 0.0


def test_idle_grows_with_machine(series):
    """Systolic skew and imbalance leave more of a bigger machine idle."""
    idles = [series[n].idle_share for n in (64, 256, 512)]
    assert idles == sorted(idles)


def test_reuses_existing_result():
    from repro.apps.lcs import run_parallel
    params = LcsParams(a_len=64, b_len=128)
    result = run_parallel(8, params)
    scaling = scaling_analysis(8, params, result=result)
    assert scaling.n_nodes == 8
    assert 0 <= scaling.entry_exit_share <= 1
