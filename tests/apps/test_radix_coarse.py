"""Tests for the coarse-grained radix variant and the grain crossover."""

import pytest

from repro.apps.radix_sort import RadixParams, generate_keys, run_parallel
from repro.core.errors import ConfigurationError
from repro.jsim.sim import MacroConfig

SMALL = RadixParams(n_keys=512, key_bits=16)


class TestCoarseCorrectness:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
    def test_sorts_correctly(self, n_nodes):
        result = run_parallel(n_nodes, SMALL, style="coarse")
        assert result.output == sorted(generate_keys(SMALL))

    def test_same_answer_as_fine(self):
        fine = run_parallel(4, SMALL, style="fine")
        coarse = run_parallel(4, SMALL, style="coarse")
        assert fine.output == coarse.output

    def test_unknown_style_rejected(self):
        with pytest.raises(ConfigurationError):
            run_parallel(2, SMALL, style="medium")


class TestGrainBehaviour:
    def test_coarse_sends_far_fewer_messages(self):
        params = RadixParams(n_keys=2048, key_bits=16)
        fine = run_parallel(8, params, style="fine")
        coarse = run_parallel(8, params, style="coarse")
        assert coarse.sim.messages_sent < fine.sim.messages_sent / 10

    def test_block_messages_are_long(self):
        coarse = run_parallel(8, SMALL, style="coarse")
        blocks = coarse.handler_stats["WriteBlock"]
        assert blocks.invocations > 0
        assert blocks.mean_message_words > 10

    def test_fine_competitive_at_mdp_overheads(self):
        """The paper's point: MDP mechanisms make fine-grain affordable."""
        fine = run_parallel(8, SMALL, style="fine")
        coarse = run_parallel(8, SMALL, style="coarse")
        assert fine.cycles < coarse.cycles * 1.5

    def test_fine_loses_badly_at_vendor_overheads(self):
        config = MacroConfig(send_overhead_cycles=2400, dispatch_cycles=500)
        fine = run_parallel(8, SMALL, config=config, style="fine")
        coarse = run_parallel(8, SMALL, config=config, style="coarse")
        assert fine.cycles > coarse.cycles * 3
