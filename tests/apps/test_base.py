"""Tests for the shared application result structures."""

import pytest

from repro.apps.base import AppResult, SequentialResult, speedup
from repro.jsim.sim import HandlerStats


def make_result(cycles=1000, **stats):
    return AppResult(
        name="demo", n_nodes=4, cycles=cycles, output=None,
        handler_stats=stats, breakdown={"idle": 0.1},
    )


class TestSequentialResult:
    def test_milliseconds_at_12_5_mhz(self):
        result = SequentialResult(cycles=12_500)
        assert result.milliseconds == pytest.approx(1.0)


class TestAppResult:
    def test_milliseconds(self):
        assert make_result(cycles=125_000).milliseconds == pytest.approx(10.0)

    def test_total_threads(self):
        a = HandlerStats(invocations=3)
        b = HandlerStats(invocations=4)
        assert make_result(h1=a, h2=b).total_threads() == 7

    def test_total_instructions(self):
        a = HandlerStats(instructions=100)
        b = HandlerStats(instructions=23)
        assert make_result(h1=a, h2=b).total_instructions() == 123


class TestSpeedup:
    def test_basic(self):
        seq = SequentialResult(cycles=1000)
        par = make_result(cycles=250)
        assert speedup(seq, par) == 4.0

    def test_zero_cycles_guarded(self):
        seq = SequentialResult(cycles=1000)
        assert speedup(seq, make_result(cycles=0)) == 0.0


class TestHandlerStats:
    def test_means(self):
        stats = HandlerStats(invocations=4, instructions=40,
                             message_words=12)
        assert stats.instructions_per_thread == 10
        assert stats.mean_message_words == 3

    def test_empty_means_are_zero(self):
        stats = HandlerStats()
        assert stats.instructions_per_thread == 0
        assert stats.mean_message_words == 0
