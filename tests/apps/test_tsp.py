"""Tests for the TSP branch-and-bound application."""

import pytest

from repro.apps.tsp import (TspParams, build_distances, held_karp,
                            run_parallel, run_sequential)

SMALL = TspParams(n_cities=8, task_depth=2)


class TestDistances:
    def test_symmetric(self):
        dist = build_distances(SMALL)
        for i in range(8):
            for j in range(8):
                assert dist[i][j] == dist[j][i]

    def test_zero_diagonal(self):
        dist = build_distances(SMALL)
        assert all(dist[i][i] == 0 for i in range(8))

    def test_deterministic(self):
        assert build_distances(SMALL) == build_distances(SMALL)


class TestHeldKarp:
    def test_trivial_two_cities(self):
        dist = [[0, 5], [5, 0]]
        assert held_karp(dist) == 10

    def test_square(self):
        # Unit square: optimal tour is the perimeter = 4.
        dist = [[0, 1, 2, 1], [1, 0, 1, 2], [2, 1, 0, 1], [1, 2, 1, 0]]
        assert held_karp(dist) == 4

    def test_matches_brute_force(self):
        from itertools import permutations
        dist = build_distances(TspParams(n_cities=7))
        brute = min(
            sum(dist[a][b] for a, b in zip((0,) + p, p + (0,)))
            for p in permutations(range(1, 7))
        )
        assert held_karp(dist) == brute


class TestSearch:
    def test_sequential_finds_optimum(self):
        result = run_sequential(SMALL)
        assert result.output == held_karp(build_distances(SMALL))

    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
    def test_parallel_finds_optimum(self, n_nodes):
        result = run_parallel(n_nodes, SMALL)
        assert result.output == held_karp(build_distances(SMALL))

    @pytest.mark.parametrize("seed", [1, 99, 777])
    def test_different_instances(self, seed):
        params = TspParams(n_cities=9, task_depth=2, seed=seed)
        result = run_parallel(4, params)
        assert result.output == held_karp(build_distances(params))

    def test_deeper_task_split(self):
        params = TspParams(n_cities=9, task_depth=3)
        result = run_parallel(4, params)
        assert result.output == held_karp(build_distances(params))


class TestCostProfile:
    def test_user_and_os_threads_counted(self):
        result = run_parallel(4, SMALL)
        assert result.extra["user_threads"] > 0
        assert result.extra["os_threads"] > 0

    def test_xlates_accumulate(self):
        result = run_parallel(4, SMALL)
        assert result.extra["xlates"] > result.extra["user_threads"]

    def test_sync_overhead_visible(self):
        """The periodic null-call yield shows up as sync time."""
        result = run_parallel(4, TspParams(n_cities=9, task_depth=2))
        assert result.breakdown["sync"] > 0.03

    def test_low_idle_with_stealing(self):
        """Dynamic balancing keeps idle low (paper: 3.8% vs 15%)."""
        result = run_parallel(4, TspParams(n_cities=9, task_depth=2))
        assert result.breakdown["idle"] < 0.25

    def test_all_tasks_drained(self):
        result = run_parallel(8, SMALL)
        done = result.handler_stats["TSPTaskDone"].invocations
        assert done == result.extra["tasks"]
