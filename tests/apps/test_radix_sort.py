"""Tests for the parallel radix sort application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.base import speedup
from repro.apps.radix_sort import (RadixParams, generate_keys, run_parallel,
                                   run_sequential)
from repro.core.errors import ConfigurationError

SMALL = RadixParams(n_keys=512, key_bits=16)


class TestParams:
    def test_digit_count(self):
        assert RadixParams().n_digits == 7
        assert RadixParams(key_bits=16, digit_bits=4).n_digits == 4

    def test_radix(self):
        assert RadixParams().radix == 16

    def test_generation_deterministic(self):
        assert generate_keys(SMALL) == generate_keys(SMALL)

    def test_keys_within_bits(self):
        assert all(0 <= k < 2**16 for k in generate_keys(SMALL))


class TestCorrectness:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8, 16])
    def test_sorts_at_any_node_count(self, n_nodes):
        result = run_parallel(n_nodes, SMALL)
        assert result.output == sorted(generate_keys(SMALL))

    def test_uneven_division_rejected(self):
        with pytest.raises(ConfigurationError):
            run_parallel(3, SMALL)  # 512 % 3 != 0

    @settings(deadline=None, max_examples=8)
    @given(st.integers(0, 10000))
    def test_random_seeds(self, seed):
        params = RadixParams(n_keys=256, key_bits=12, seed=seed)
        result = run_parallel(4, params)
        assert result.output == sorted(generate_keys(params))

    def test_duplicate_heavy_input(self):
        params = RadixParams(n_keys=256, key_bits=3)  # only 8 values
        result = run_parallel(8, params)
        assert result.output == sorted(generate_keys(params))

    def test_sequential_output_sorted(self):
        assert run_sequential(SMALL).output == sorted(generate_keys(SMALL))


class TestBehaviour:
    def test_remote_write_count(self):
        """Remote writes = total writes minus the locally-kept ones."""
        result = run_parallel(8, SMALL)
        writes = result.handler_stats["WriteData"]
        total_writes = SMALL.n_keys * SMALL.n_digits
        assert 0 < writes.invocations < total_writes
        # With 8 nodes, ~7/8 of writes are remote.
        assert writes.invocations > total_writes * 0.7

    def test_write_handler_is_tiny(self):
        result = run_parallel(4, SMALL)
        writes = result.handler_stats["WriteData"]
        # 4 instructions each, plus the completion-tree send charged to
        # the last write of an iteration.
        assert writes.instructions_per_thread == pytest.approx(4, abs=0.2)
        assert writes.mean_message_words == 3

    def test_one_node_sends_no_write_messages(self):
        result = run_parallel(1, SMALL)
        assert result.handler_stats["WriteData"].invocations == 0

    def test_two_node_speedup_modest(self):
        """Paper: 1.3x from 1 to 2 nodes (remote writes cost ~3x local)."""
        seq = run_sequential(SMALL)
        s2 = speedup(seq, run_parallel(2, SMALL))
        assert 1.0 < s2 < 1.9

    def test_scales_beyond_two(self):
        seq = run_sequential(SMALL)
        s2 = speedup(seq, run_parallel(2, SMALL))
        s8 = speedup(seq, run_parallel(8, SMALL))
        assert s8 > s2 * 2

    def test_sort_threads_one_per_node_per_digit(self):
        result = run_parallel(4, SMALL)
        sorts = result.handler_stats["Sort"]
        assert sorts.invocations == 4 * SMALL.n_digits
