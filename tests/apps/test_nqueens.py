"""Tests for the N-Queens application."""

import pytest

from repro.apps.base import speedup
from repro.apps.nqueens import (KNOWN_COUNTS, NQueensParams, choose_depth,
                                expand_boards, run_parallel, run_sequential,
                                solve_count)


class TestSolver:
    @pytest.mark.parametrize("n,expected", [
        (1, 1), (2, 0), (3, 0), (4, 2), (5, 10), (6, 4), (7, 40),
        (8, 92), (9, 352), (10, 724),
    ])
    def test_known_counts(self, n, expected):
        solutions, _ = solve_count(n, 0, 0, 0, 0)
        assert solutions == expected

    def test_node_count_positive(self):
        _, nodes = solve_count(6, 0, 0, 0, 0)
        assert nodes > 6

    def test_expand_boards_first_level(self):
        assert len(expand_boards(8, 1)) == 8

    def test_expand_boards_prunes_conflicts(self):
        # Depth-2 boards exclude same-column and adjacent-diagonal pairs.
        boards = len(expand_boards(8, 2))
        assert boards == 8 * 7 - 2 * 7  # 42

    def test_expansion_covers_solution_space(self):
        """Solutions summed over depth-2 subtrees equal the total."""
        n = 7
        total = 0
        for cols, ld, rd in expand_boards(n, 2):
            s, _ = solve_count(n, cols, ld, rd, 2)
            total += s
        assert total == KNOWN_COUNTS[n]


class TestDepthChoice:
    def test_more_nodes_more_depth(self):
        shallow = choose_depth(10, 1, 16)
        deep = choose_depth(10, 64, 16)
        assert deep > shallow

    def test_enough_tasks(self):
        depth = choose_depth(12, 16, 16)
        assert len(expand_boards(12, depth)) >= 16 * 16


class TestParallel:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8, 16])
    def test_count_correct_at_any_size(self, n_nodes):
        params = NQueensParams(n=8)
        assert run_parallel(n_nodes, params).output == 92

    def test_larger_problem(self):
        assert run_parallel(8, NQueensParams(n=10)).output == 724

    def test_sequential_matches(self):
        assert run_sequential(NQueensParams(n=9)).output == 352

    def test_task_count_tracks_target(self):
        result = run_parallel(8, NQueensParams(n=10, tasks_per_node=8))
        tasks = result.handler_stats["NQueens"].invocations
        assert tasks >= 8 * 8

    def test_message_lengths(self):
        result = run_parallel(4, NQueensParams(n=8))
        assert result.handler_stats["NQueens"].mean_message_words == 8
        assert result.handler_stats["NQDone"].mean_message_words == 3

    def test_speedup_grows(self):
        params = NQueensParams(n=10)
        seq = run_sequential(params)
        s2 = speedup(seq, run_parallel(2, params))
        s8 = speedup(seq, run_parallel(8, params))
        assert s8 > s2 > 1.2

    def test_idle_from_static_imbalance(self):
        """Coarse unequal tasks leave nodes idle (paper: ~15% at 64)."""
        result = run_parallel(16, NQueensParams(n=10))
        assert result.breakdown["idle"] > 0.02
