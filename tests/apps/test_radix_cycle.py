"""Tests for the assembly radix sort on the cycle machine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.radix_cycle import run_cycle_radix
from repro.core.errors import ConfigurationError


def keys_for(count, limit=256, seed=5):
    rng = random.Random(seed)
    return [rng.randrange(limit) for _ in range(count)]


class TestCorrectness:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
    def test_sorts_at_any_node_count(self, n_nodes):
        keys = keys_for(32)
        result = run_cycle_radix(n_nodes, keys)
        assert result.sorted_keys == sorted(keys)

    def test_duplicates(self):
        keys = [5] * 10 + [1] * 10 + [3] * 12
        result = run_cycle_radix(4, keys)
        assert result.sorted_keys == sorted(keys)

    def test_already_sorted(self):
        keys = list(range(32))
        assert run_cycle_radix(4, keys).sorted_keys == keys

    def test_reverse_sorted(self):
        keys = list(range(31, -1, -1))
        assert run_cycle_radix(4, keys).sorted_keys == sorted(keys)

    def test_two_digit_keys(self):
        keys = keys_for(16, limit=16)
        result = run_cycle_radix(2, keys, n_digits=2)
        assert result.sorted_keys == sorted(keys)

    def test_uneven_split_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cycle_radix(3, keys_for(32))

    def test_out_of_range_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cycle_radix(2, [5, 300], n_digits=2)

    @settings(deadline=None, max_examples=8)
    @given(st.lists(st.integers(0, 255), min_size=4, max_size=24)
           .filter(lambda ks: len(ks) % 2 == 0))
    def test_random_instances(self, keys):
        result = run_cycle_radix(2, keys)
        assert result.sorted_keys == sorted(keys)


class TestBehaviour:
    def test_more_nodes_more_dispatches(self):
        """Remote writes grow with node count (more keys leave home)."""
        keys = keys_for(64)
        small = run_cycle_radix(2, keys)
        large = run_cycle_radix(8, keys)
        assert large.write_messages > small.write_messages

    def test_parallelism_reduces_cycles(self):
        keys = keys_for(64)
        one = run_cycle_radix(1, keys)
        eight = run_cycle_radix(8, keys)
        assert eight.cycles < one.cycles
