"""Macro-level fault injection, timers, the harness, and the CLI."""

import json

import pytest

from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.chaos.__main__ import main as chaos_main
from repro.chaos.harness import APPS, run_app_under_plan
from repro.jsim.sim import MacroSimulator


def _ping_sim(n=4):
    """Two handlers: ping forwards to pong, pong records the value."""
    sim = MacroSimulator(n)

    def ping(ctx, dest, value):
        ctx.charge(10)
        ctx.send(dest, "pong", value)

    def pong(ctx, value):
        ctx.charge(2)
        ctx.state.setdefault("got", []).append(value)

    sim.register("ping", ping)
    sim.register("pong", pong)
    return sim


class TestMacroVerdicts:
    def test_certain_drop_eats_the_message(self):
        sim = _ping_sim()
        engine = ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="drop", rate=1.0),
        ))).attach_macro(sim)
        sim.inject(0, "ping", 3, 99)
        sim.run()
        # The kickoff itself was dropped; nothing ever arrived.
        assert sim.nodes[3].state.get("got") is None
        assert engine.counters["drops"] >= 1

    def test_delay_postpones_arrival(self):
        clean = _ping_sim()
        clean.inject(0, "ping", 3, 1)
        clean_end = clean.run()

        slow = _ping_sim()
        engine = ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="delay", rate=1.0, delay=500),
        ))).attach_macro(slow)
        slow.inject(0, "ping", 3, 1)
        slow_end = slow.run()
        assert slow.nodes[3].state["got"] == [1]
        assert slow_end >= clean_end + 500
        assert engine.counters["delays"] == 2  # kickoff + forwarded ping

    def test_node_scoped_drop(self):
        sim = _ping_sim()
        engine = ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="drop", rate=1.0, node=2),
        ))).attach_macro(sim)
        sim.inject(0, "ping", 3, 7)  # destination 3: unaffected
        sim.run()
        assert sim.nodes[3].state["got"] == [7]
        assert engine.counters["drops"] == 0

    def test_no_engine_means_no_interference(self):
        sim = _ping_sim()
        sim.inject(0, "ping", 3, 8)
        sim.run()
        assert sim.nodes[3].state["got"] == [8]


class TestScheduleCall:
    def test_timer_fires_at_time(self):
        sim = MacroSimulator(2)
        fired = []
        sim.schedule_call(100, fired.append)
        sim.run()
        assert fired == [100]

    def test_timer_never_schedules_into_the_past(self):
        sim = MacroSimulator(2)
        sim.now = 50
        fired = []
        sim.schedule_call(10, fired.append)
        sim.run()
        assert fired == [50]

    def test_timers_do_not_extend_end_time(self):
        sim = MacroSimulator(2)
        sim.schedule_call(10_000, lambda now: None)
        assert sim.run() == 0

    def test_timers_interleave_with_events(self):
        sim = _ping_sim()
        order = []
        sim.schedule_call(1, lambda now: order.append(("timer", now)))
        sim.inject(0, "ping", 1, 5)
        sim.run()
        assert ("timer", 1) in order
        assert sim.nodes[1].state["got"] == [5]


class TestHarness:
    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos app"):
            run_app_under_plan(FaultPlan(), app="doom")

    @pytest.mark.parametrize("app", APPS)
    def test_apps_complete_under_loss(self, app):
        result = run_app_under_plan(
            FaultPlan.message_loss(0.02, seed=3), app=app, n_nodes=4,
            scale=0.01)
        assert result.completed, result.error
        assert result.correct
        assert result.chaos.get("drops", 0) > 0
        assert result.reliable.get("retries", 0) > 0
        assert result.fingerprint

    def test_failure_is_reported_not_raised(self):
        # Max retries 0 and certain loss: the transport gives up.
        result = run_app_under_plan(
            FaultPlan.message_loss(1.0, seed=3), app="lcs", n_nodes=4,
            scale=0.01, reliable={"max_retries": 0, "timeout": 100})
        assert not result.completed
        assert "DeliveryError" in result.error

    def test_to_dict_round_trips_through_json(self):
        result = run_app_under_plan(FaultPlan(), app="nqueens", n_nodes=4)
        assert json.loads(json.dumps(result.to_dict()))["completed"]


class TestCli:
    def _write_plan(self, tmp_path, rate=0.02):
        path = str(tmp_path / "plan.json")
        FaultPlan.message_loss(rate, seed=11, name="cli-test").save(path)
        return path

    def test_replay(self, tmp_path, capsys):
        path = self._write_plan(tmp_path)
        rc = chaos_main(["replay", path, "--nodes", "4", "--scale", "0.01"])
        assert rc == 0
        assert "completed" in capsys.readouterr().out

    def test_replay_twice_checks_determinism(self, tmp_path, capsys):
        path = self._write_plan(tmp_path)
        rc = chaos_main(["replay", path, "--nodes", "4", "--scale", "0.01",
                         "--twice"])
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_replay_json(self, tmp_path, capsys):
        path = self._write_plan(tmp_path)
        rc = chaos_main(["replay", path, "--nodes", "4", "--scale", "0.01",
                         "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"] == "cli-test"
        assert payload["completed"] is True

    def test_show(self, tmp_path, capsys):
        path = self._write_plan(tmp_path)
        assert chaos_main(["show", path]) == 0
        assert json.loads(capsys.readouterr().out)["seed"] == 11

    def test_example_writes_a_loadable_plan(self, tmp_path):
        out = str(tmp_path / "example.json")
        assert chaos_main(["example", "-o", out]) == 0
        plan = FaultPlan.load(out)
        assert {spec.kind for spec in plan.specs} == {"drop", "delay"}
