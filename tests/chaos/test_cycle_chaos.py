"""Cycle-level fault injection: fabric, scheduler, queues, and AMTs."""

import pytest

from repro.asm.assembler import assemble
from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.jmachine import JMachine
from repro.telemetry import Telemetry

ECHO = """
; request: [IP:echo, replyto, value]
echo:
    SEND  [A3+1]
    SEND  #IP:landing
    SENDE [A3+2]
    SUSPEND
landing:
    MOVE  [A3+1], [A0+0]
    SUSPEND
"""


def _machine(n=8, telemetry=None):
    machine = JMachine.build(n, telemetry=telemetry)
    program = assemble(ECHO)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    return machine, program, base


def _echo(machine, program, value=1234, dest=7):
    machine.inject(dest, program.entry("echo"),
                   [Word.from_int(0), Word.from_int(value)], source=0)


def _attach(machine, *specs, seed=1):
    return ChaosEngine(FaultPlan(seed=seed, specs=tuple(specs))) \
        .attach_machine(machine)


class TestFabricFaults:
    def test_certain_drop_destroys_the_message(self):
        machine, program, base = _machine()
        engine = _attach(machine, FaultSpec(kind="drop", rate=1.0))
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        assert machine.node(0).proc.memory.peek(base).value == 0
        assert engine.counters["drops"] == 1
        assert machine.fabric.stats.drops == 1

    def test_corruption_hits_the_receivers_fault_policy(self):
        machine, program, base = _machine()
        engine = _attach(machine, FaultSpec(kind="corrupt", rate=1.0))
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        # The corrupted request never runs its handler...
        assert machine.node(0).proc.memory.peek(base).value == 0
        assert engine.counters["corruptions"] == 1
        # ...but the receiver paid for rejecting it.
        assert engine.counters["checksum_rejects"] == 1
        assert machine.node(7).proc.counters.fault_cycles >= 1

    def test_drops_are_counted_separately_from_completions(self):
        machine, program, base = _machine()
        _attach(machine, FaultSpec(kind="drop", rate=1.0))
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        # A dropped worm still traversed the network but must not count
        # as a delivered completion.
        assert machine.fabric.stats.drops == 1

    def test_node_scoped_drop_spares_other_destinations(self):
        machine, program, base = _machine()
        engine = _attach(machine,
                         FaultSpec(kind="drop", rate=1.0, node=5))
        _echo(machine, program, value=77, dest=7)  # unaffected path
        machine.run(max_cycles=10_000)
        assert machine.node(0).proc.memory.peek(base).value == 77
        assert engine.counters["drops"] == 0

    def test_window_bounds_injection(self):
        machine, program, base = _machine()
        engine = _attach(machine,
                         FaultSpec(kind="drop", rate=1.0,
                                   start=100_000, stop=200_000))
        _echo(machine, program, value=5)
        machine.run(max_cycles=10_000)
        assert machine.node(0).proc.memory.peek(base).value == 5
        assert engine.counters["drops"] == 0


class TestSchedulerFaults:
    def test_stall_delays_completion(self):
        clean, program, base = _machine()
        _echo(clean, program)
        clean_end = clean.run(max_cycles=100_000)

        stalled, program, base = _machine()
        engine = _attach(stalled,
                         FaultSpec(kind="stall", node=7, duration=5_000))
        _echo(stalled, program)
        stalled_end = stalled.run(max_cycles=100_000)
        assert stalled.node(0).proc.memory.peek(base).value == 1234
        assert stalled_end >= clean_end + 4_000
        assert engine.counters["stalls"] == 1

    def test_killed_node_executes_nothing(self):
        machine, program, base = _machine()
        engine = _attach(machine, FaultSpec(kind="kill", node=7))
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        assert machine.node(7).proc.counters.instructions == 0
        assert machine.node(0).proc.memory.peek(base).value == 0
        assert engine.counters["kills"] == 1
        # The delivery to the dead node was blackholed, not queued.
        assert engine.counters["blackholes"] == 1

    def test_kill_records_once(self):
        machine, program, base = _machine()
        engine = _attach(machine, FaultSpec(kind="kill", node=7))
        for value in (1, 2, 3):
            _echo(machine, program, value=value)
        machine.run(max_cycles=20_000)
        assert engine.counters["kills"] == 1
        assert engine.counters["blackholes"] == 3


class TestScheduledFaults:
    def test_queue_pressure_shrinks_free_space(self):
        machine, program, base = _machine()
        engine = _attach(machine,
                         FaultSpec(kind="queue", node=3, words=8, start=0))
        machine.run(max_cycles=10)  # let the schedule fire
        queue = machine.node(3).proc.queues[Priority.P0]
        assert queue.pressure_words == 8
        assert engine.counters["queue_pressure"] >= 1

    def test_queue_pressure_release(self):
        machine, program, base = _machine()
        _attach(machine,
                FaultSpec(kind="queue", node=3, words=8, start=0, stop=5))
        _echo(machine, program)  # keep the machine awake past cycle 5
        machine.run(max_cycles=10_000)
        assert machine.node(3).proc.queues[Priority.P0].pressure_words == 0

    def test_amt_poison_evicts_entries(self):
        machine, program, base = _machine(n=4)
        amt = machine.node(2).proc.amt
        amt.enter(100, 200)
        amt.enter(101, 201)
        engine = _attach(machine,
                         FaultSpec(kind="poison", node=2, start=0))
        machine.run(max_cycles=10)
        assert engine.counters["poisoned_entries"] == 2


class TestObservability:
    def test_chaos_events_reach_telemetry(self):
        telemetry = Telemetry(events=True)
        machine, program, base = _machine(telemetry=telemetry)
        _attach(machine, FaultSpec(kind="drop", rate=1.0))
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        kinds = [event[1] for event in telemetry.events.events]
        assert "chaos" in kinds
        chaos_events = [e for e in telemetry.events.events if e[1] == "chaos"]
        assert any(e[4] == "drop" for e in chaos_events)

    def test_chaos_metrics_source_registered(self):
        telemetry = Telemetry(events=False)
        machine, program, base = _machine(telemetry=telemetry)
        engine = _attach(machine, FaultSpec(kind="drop", rate=1.0))
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        sample = telemetry.registry.snapshot()
        assert sample["chaos.drops"] == 1
        assert engine.summary() == {"drops": 1}

    def test_log_records_injections_in_order(self):
        machine, program, base = _machine()
        engine = _attach(machine, FaultSpec(kind="drop", rate=1.0))
        for value in (1, 2):
            _echo(machine, program, value=value)
        machine.run(max_cycles=20_000)
        drops = [entry for entry in engine.log if entry[1] == "drop"]
        assert len(drops) == 2
        assert drops[0][0] <= drops[1][0]

    def test_deliveries_committed_counts(self):
        machine, program, base = _machine()
        _echo(machine, program)
        machine.run(max_cycles=10_000)
        # echo request + landing reply
        assert machine.deliveries_committed == 2
