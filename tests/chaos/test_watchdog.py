"""DeadlockWatchdog: trips on wedged machines, stays quiet on live ones."""

import pytest

from repro.asm.assembler import assemble
from repro.chaos import (ChaosEngine, DeadlockWatchdog, FaultPlan, FaultSpec,
                         machine_snapshots, snapshot_node)
from repro.core.errors import DeadlockError, SimulationError
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.jmachine import JMachine
from repro.telemetry import Telemetry

ECHO = """
echo:
    SEND  [A3+1]
    SEND  #IP:landing
    SENDE [A3+2]
    SUSPEND
landing:
    MOVE  [A3+1], [A0+0]
    SUSPEND
"""

SPIN = """
loop:
    NOP
    BR loop
"""


def _echo_machine(n=8, telemetry=None):
    machine = JMachine.build(n, telemetry=telemetry)
    program = assemble(ECHO)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    return machine, program


def _wedge(machine, program):
    """Kill node 0's router forever, then send a worm through it."""
    ChaosEngine(FaultPlan(seed=1, specs=(
        FaultSpec(kind="link", node=0),
    ))).attach_machine(machine)
    machine.inject(7, program.entry("echo"),
                   [Word.from_int(0), Word.from_int(1)], source=0)


class TestTrip:
    def test_wedged_machine_trips(self):
        machine, program = _echo_machine()
        machine.watchdog = DeadlockWatchdog(window=2_000)
        _wedge(machine, program)
        with pytest.raises(DeadlockError) as info:
            machine.run(max_cycles=100_000)
        err = info.value
        assert "no progress for 2000 cycles" in str(err)
        assert err.worms_in_flight == 1
        assert err.snapshots  # per-node diagnostics attached
        assert err.now >= 2_000

    def test_trip_is_a_simulation_error(self):
        machine, program = _echo_machine()
        machine.watchdog = DeadlockWatchdog(window=2_000)
        _wedge(machine, program)
        with pytest.raises(SimulationError):
            machine.run(max_cycles=100_000)

    def test_trip_emits_watchdog_event(self):
        telemetry = Telemetry(events=True)
        machine, program = _echo_machine(telemetry=telemetry)
        machine.watchdog = DeadlockWatchdog(window=2_000)
        _wedge(machine, program)
        with pytest.raises(DeadlockError):
            machine.run(max_cycles=100_000)
        tripped = [e for e in telemetry.events.events
                   if e[1] == "watchdog" and e[4] == "deadlock"]
        assert len(tripped) == 1

    def test_trip_latency_is_bounded(self):
        """Detection happens within window + interval, not at max_cycles."""
        machine, program = _echo_machine()
        machine.watchdog = DeadlockWatchdog(window=2_000)
        _wedge(machine, program)
        with pytest.raises(DeadlockError) as info:
            machine.run(max_cycles=1_000_000)
        assert info.value.now < 10_000


class TestNoFalsePositive:
    def test_spinning_machine_is_progress(self):
        """An infinite loop retires instructions — not a deadlock."""
        machine = JMachine.build(2)
        program = assemble(SPIN)
        machine.load(program, nodes=[0])
        machine.start_background(0, program.entry("loop"))
        machine.watchdog = DeadlockWatchdog(window=500)
        end = machine.run(max_cycles=20_000)
        assert end >= 20_000
        assert machine.watchdog.trips == 0

    def test_healthy_echo_completes_under_watchdog(self):
        machine, program = _echo_machine()
        machine.watchdog = DeadlockWatchdog(window=1_000)
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(42)], source=0)
        machine.run(max_cycles=100_000)
        assert machine.watchdog.trips == 0

    def test_quiescent_machine_never_trips(self):
        machine = JMachine.build(2)
        machine.watchdog = DeadlockWatchdog(window=10)
        assert machine.run(max_cycles=10_000) == 0

    def test_reset_forgets_history(self):
        machine, program = _echo_machine()
        watchdog = DeadlockWatchdog(window=1_000)
        machine.watchdog = watchdog
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(1)], source=0)
        machine.run(max_cycles=50_000)
        # A second run on the (now idle) machine must not inherit the
        # first run's signature age.
        machine.run(max_cycles=1_000)
        assert watchdog.trips == 0


class TestSnapshots:
    def test_snapshot_fields(self):
        machine, program = _echo_machine(n=2)
        snap = snapshot_node(machine.node(0))
        assert snap.node_id == 0
        assert snap.instructions == 0
        assert not snap.has_work
        assert "node    0" in str(snap)
        assert "[parked]" in str(snap)

    def test_only_busy_filter_falls_back_to_everything(self):
        machine, program = _echo_machine(n=4)
        # Nothing is busy: the filtered view includes all nodes so the
        # diagnostic is never empty.
        assert len(machine_snapshots(machine)) == 4

    def test_error_formats_snapshot_lines(self):
        machine, program = _echo_machine()
        machine.watchdog = DeadlockWatchdog(window=2_000)
        _wedge(machine, program)
        with pytest.raises(DeadlockError) as info:
            machine.run(max_cycles=100_000)
        text = str(info.value)
        assert "node " in text
        assert "ip=" in text


class TestRunUntilQuiescent:
    def test_raises_typed_error_with_snapshots(self):
        """A worm stuck behind a dead router counts as outstanding work
        even with every processor parked."""
        machine, program = _echo_machine()
        ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="link", node=0),
        ))).attach_machine(machine)
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(1)], source=0)
        with pytest.raises(DeadlockError) as info:
            machine.run_until_quiescent(max_cycles=5_000)
        err = info.value
        assert err.worms_in_flight == 1
        assert "still busy" in str(err)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlockWatchdog(window=0)
