"""The determinism contract: same seed + plan => identical event stream."""

import pytest

from repro.asm.assembler import assemble
from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.chaos.harness import APPS, event_fingerprint, run_app_under_plan
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.jmachine import JMachine
from repro.telemetry import Telemetry

ECHO = """
echo:
    SEND  [A3+1]
    SEND  #IP:landing
    SENDE [A3+2]
    SUSPEND
landing:
    MOVE  [A3+1], [A0+0]
    SUSPEND
"""


def _cycle_run(plan, n=8, echoes=6):
    """Run the ECHO workload under ``plan``; returns (fingerprint, engine)."""
    telemetry = Telemetry(events=True)
    machine = JMachine.build(n, telemetry=telemetry)
    program = assemble(ECHO)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    engine = None
    if plan is not None:
        engine = ChaosEngine(plan).attach_machine(machine)
    for i in range(1, echoes + 1):
        machine.inject(i, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(100 + i)], source=0)
    machine.run(max_cycles=200_000)
    return event_fingerprint(telemetry.events), engine


LOSSY = FaultPlan(seed=77, specs=(
    FaultSpec(kind="drop", rate=0.5),
    FaultSpec(kind="corrupt", rate=0.3),
))


class TestCycleLevel:
    def test_same_plan_same_event_stream(self):
        first, engine1 = _cycle_run(LOSSY)
        second, engine2 = _cycle_run(LOSSY)
        assert first == second
        assert engine1.summary() == engine2.summary()
        # The plan really did something (the test is not vacuous).
        assert engine1.faults_injected > 0

    def test_different_seed_different_faults(self):
        other = FaultPlan(seed=78, specs=LOSSY.specs)
        _, engine1 = _cycle_run(LOSSY)
        _, engine2 = _cycle_run(other)
        assert engine1.log != engine2.log

    def test_empty_plan_matches_no_plan(self):
        """An attached-but-empty plan must not perturb the event stream."""
        bare, _ = _cycle_run(None)
        empty, engine = _cycle_run(FaultPlan(seed=123))
        assert bare == empty
        assert engine.faults_injected == 0


class TestMacroLevel:
    @pytest.mark.parametrize("app", APPS)
    def test_same_plan_same_fingerprint(self, app):
        plan = FaultPlan.message_loss(0.02, seed=5)
        first = run_app_under_plan(plan, app=app, n_nodes=4, scale=0.01)
        second = run_app_under_plan(plan, app=app, n_nodes=4, scale=0.01)
        assert first.completed and second.completed
        assert first.fingerprint == second.fingerprint
        assert first.n_events == second.n_events
        assert first.chaos == second.chaos
        assert first.reliable == second.reliable

    def test_different_seeds_diverge(self):
        a = run_app_under_plan(FaultPlan.message_loss(0.02, seed=5),
                               app="lcs", n_nodes=4, scale=0.01)
        b = run_app_under_plan(FaultPlan.message_loss(0.02, seed=6),
                               app="lcs", n_nodes=4, scale=0.01)
        assert a.fingerprint != b.fingerprint

    def test_empty_plan_matches_no_reliable_baseline(self):
        """Empty plan + transport off == pristine run, event for event."""
        pristine = run_app_under_plan(FaultPlan(), app="lcs", n_nodes=4,
                                      scale=0.01, reliable=False)
        empty = run_app_under_plan(FaultPlan(seed=9), app="lcs", n_nodes=4,
                                   scale=0.01, reliable=False)
        assert pristine.fingerprint == empty.fingerprint
        assert pristine.cycles == empty.cycles
        assert pristine.chaos == {} and empty.chaos == {}
