"""FaultPlan / FaultSpec: validation, windows, streams, serialization."""

import pytest

from repro.chaos import FAULT_KINDS, FaultPlan, FaultSpec
from repro.core.errors import ConfigurationError


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="meteor")

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="drop", rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="drop", rate=-0.1)

    def test_rate_kinds_need_rate(self):
        with pytest.raises(ConfigurationError, match="rate > 0"):
            FaultSpec(kind="drop")

    def test_bad_window(self):
        with pytest.raises(ConfigurationError, match="window"):
            FaultSpec(kind="drop", rate=0.1, start=100, stop=50)

    def test_stall_needs_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultSpec(kind="stall", node=0)

    def test_queue_needs_words(self):
        with pytest.raises(ConfigurationError, match="words"):
            FaultSpec(kind="queue", node=0)

    def test_scheduled_kinds_need_node(self):
        for kind in ("link", "kill", "poison"):
            with pytest.raises(ConfigurationError, match="needs a node"):
                FaultSpec(kind=kind)

    def test_every_kind_constructible(self):
        specs = [
            FaultSpec(kind="drop", rate=0.5),
            FaultSpec(kind="corrupt", rate=0.5),
            FaultSpec(kind="delay", rate=0.5, delay=10),
            FaultSpec(kind="link", node=1),
            FaultSpec(kind="stall", node=1, duration=5),
            FaultSpec(kind="kill", node=1),
            FaultSpec(kind="queue", node=1, words=8),
            FaultSpec(kind="poison", node=1),
        ]
        assert {spec.kind for spec in specs} == set(FAULT_KINDS)


class TestWindow:
    def test_open_ended(self):
        spec = FaultSpec(kind="drop", rate=0.5, start=10)
        assert not spec.active(9)
        assert spec.active(10)
        assert spec.active(10**9)

    def test_half_open(self):
        spec = FaultSpec(kind="drop", rate=0.5, start=10, stop=20)
        assert spec.active(19)
        assert not spec.active(20)


class TestPlan:
    def test_specs_must_be_fault_specs(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(specs=({"kind": "drop"},))

    def test_rng_streams_are_independent_and_deterministic(self):
        plan = FaultPlan(seed=42)
        a1 = [plan.rng("fabric").random() for _ in range(3)]
        a2 = [plan.rng("fabric").random() for _ in range(3)]
        b = [plan.rng("macro").random() for _ in range(3)]
        assert a1 == a2
        assert a1 != b

    def test_different_seeds_differ(self):
        assert FaultPlan(seed=1).rng("fabric").random() != \
            FaultPlan(seed=2).rng("fabric").random()

    def test_by_kind(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="drop", rate=0.1),
            FaultSpec(kind="kill", node=3),
        ))
        assert [s.kind for s in plan.by_kind("drop")] == ["drop"]
        assert [s.kind for s in plan.by_kind("drop", "kill")] == \
            ["drop", "kill"]

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=9, name="rt", specs=(
            FaultSpec(kind="drop", rate=0.25, start=5, stop=500),
            FaultSpec(kind="stall", node=2, start=10, duration=99),
            FaultSpec(kind="queue", node=0, words=16),
        ))
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded == plan

    def test_to_dict_omits_defaults(self):
        plan = FaultPlan(specs=(FaultSpec(kind="drop", rate=0.5),))
        spec_dict = plan.to_dict()["specs"][0]
        assert spec_dict == {"kind": "drop", "rate": 0.5}

    def test_message_loss_convenience(self):
        plan = FaultPlan.message_loss(0.01, seed=5)
        assert plan.seed == 5
        assert len(plan.specs) == 1
        assert plan.specs[0].kind == "drop"
        assert plan.specs[0].rate == 0.01
