"""Contention-model calibration against the flit-level fabric.

docs/OBSERVABILITY.md §8: :func:`repro.jsim.calibrate.calibrate` sweeps
the random-traffic experiment at several offered loads with a fabric
probe attached, then fits the macro model's ``contention_scale`` in
closed form from the observed midplane utilization.  These tests pin
the fit algebra and the result plumbing on a small, fast sweep.
"""

import pytest

from repro.jsim.calibrate import (CalibrationPoint, CalibrationResult,
                                  calibrate)
from repro.jsim.netmodel import LatencyModel
from repro.network.topology import Mesh3D


def _point(idle, utilization, measured, base=20.0, hops=3.0, words=8):
    return CalibrationPoint(idle_cycles=idle, message_words=words,
                            utilization=utilization, mean_hops=hops,
                            measured_latency=measured, base_latency=base)


class TestFitAlgebra:
    def test_exact_linear_data_recovers_scale(self):
        # residual = 5 * u/(1-u) exactly at every point -> scale = 5.
        points = [_point(0, 0.5, 20.0 + 5.0 * 1.0),
                  _point(200, 0.25, 20.0 + 5.0 * (0.25 / 0.75)),
                  _point(1000, 0.1, 20.0 + 5.0 * (0.1 / 0.9))]
        num = sum(p.residual * p.x for p in points)
        den = sum(p.x * p.x for p in points)
        result = CalibrationResult(points=points, scale=num / den,
                                   default_scale=8.0, cap=2000.0)
        assert result.scale == pytest.approx(5.0)
        assert result.residuals(result.scale) == pytest.approx([0, 0, 0])

    def test_regressor_clamps_near_saturation(self):
        # u -> 1 would make u/(1-u) explode; the point clamps at 0.95.
        assert _point(0, 0.999, 50.0).x == pytest.approx(0.95 / 0.05)

    def test_predict_respects_cap(self):
        point = _point(0, 0.95, 500.0)
        result = CalibrationResult(points=[point], scale=1000.0,
                                   default_scale=8.0, cap=30.0)
        assert result.predict(point) == point.base_latency + 30.0

    def test_apply_installs_fitted_scale(self):
        model = LatencyModel(Mesh3D(4, 4, 1))
        result = CalibrationResult(points=[], scale=13.5,
                                   default_scale=model.contention_scale,
                                   cap=model.contention_cap)
        assert result.apply(model) is model
        assert model.contention_scale == 13.5

    def test_format_prints_every_point_and_rms(self):
        points = [_point(0, 0.5, 40.0), _point(200, 0.2, 28.0),
                  _point(1000, 0.1, 22.0)]
        result = CalibrationResult(points=points, scale=6.0,
                                   default_scale=8.0, cap=2000.0)
        text = result.format()
        assert "3 flit-measured load points" in text
        assert "8.00 (default) -> 6.00 (fitted)" in text
        assert "rms residual:" in text
        for point in points:
            assert f"{point.idle_cycles:>6}" in text


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        # Small mesh / short windows: seconds, not the CLI's full sweep.
        return calibrate(mesh=Mesh3D(4, 2, 1), idle_points=(0, 400),
                         warmup_cycles=400, measure_cycles=1200)

    def test_measures_every_load_point(self, result):
        assert [p.idle_cycles for p in result.points] == [0, 400]
        for point in result.points:
            assert 0.0 < point.utilization < 1.0
            assert point.mean_hops > 0
            assert point.measured_latency > point.base_latency > 0

    def test_load_ordering(self, result):
        # Less idle time = more offered load = higher utilization.
        assert result.points[0].utilization > result.points[1].utilization

    def test_fit_is_nonnegative_and_no_worse(self, result):
        assert result.scale >= 0.0
        rms = lambda r: (sum(v * v for v in r) / len(r)) ** 0.5  # noqa: E731
        assert (rms(result.residuals(result.scale))
                <= rms(result.residuals(result.default_scale)) + 1e-9)

    def test_model_defaults_unchanged_by_calibration(self, result):
        # Calibration measures; it only mutates a model via apply().
        assert LatencyModel(Mesh3D(4, 4, 2)).contention_scale == 8.0
