"""Tests for the event-driven macro simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError, SimulationError
from repro.jsim.sim import MacroConfig, MacroSimulator


def test_register_and_run_single_handler():
    sim = MacroSimulator(4)
    seen = []
    sim.register("h", lambda ctx: seen.append(ctx.node_id))
    sim.inject(2, "h")
    sim.run()
    assert seen == [2]


def test_duplicate_registration_rejected():
    sim = MacroSimulator(2)
    sim.register("h", lambda ctx: None)
    with pytest.raises(ConfigurationError):
        sim.register("h", lambda ctx: None)


def test_unknown_handler_rejected():
    sim = MacroSimulator(2)
    with pytest.raises(SimulationError):
        sim.inject(0, "nope")


def test_bad_destination_rejected():
    sim = MacroSimulator(2)
    sim.register("h", lambda ctx: None)
    with pytest.raises(SimulationError):
        sim.inject(5, "h")


def test_decorator_registration():
    sim = MacroSimulator(2)

    @sim.handler("h")
    def h(ctx):
        ctx.charge(instructions=1)

    sim.inject(0, "h")
    assert sim.run() > 0


class TestTiming:
    def test_charge_advances_task_time(self):
        sim = MacroSimulator(2)
        times = []

        def h(ctx):
            times.append(ctx.now)
            ctx.charge(cycles=100)
            times.append(ctx.now)

        sim.register("h", h)
        sim.inject(0, "h")
        sim.run()
        assert times[1] - times[0] == 100

    def test_dispatch_cost_applied(self):
        sim = MacroSimulator(2)
        start_times = []
        sim.register("h", lambda ctx: start_times.append(ctx.now))
        sim.inject(0, "h", at=0)
        sim.run()
        # arrival latency + 4-cycle dispatch before the handler starts
        assert start_times[0] >= sim.config.dispatch_cycles

    def test_node_serializes_tasks(self):
        sim = MacroSimulator(2)
        spans = []

        def h(ctx):
            start = ctx.now
            ctx.charge(cycles=50)
            spans.append((start, ctx.now))

        sim.register("h", h)
        sim.inject(0, "h")
        sim.inject(0, "h")
        sim.run()
        (s1, e1), (s2, e2) = sorted(spans)
        assert s2 >= e1  # no overlap on one node

    def test_parallel_nodes_overlap(self):
        sim = MacroSimulator(2)
        spans = []

        def h(ctx):
            start = ctx.now
            ctx.charge(cycles=1000)
            spans.append((ctx.node_id, start, ctx.now))

        sim.register("h", h)
        sim.inject(0, "h")
        sim.inject(1, "h")
        end = sim.run()
        assert end < 2000 + 100  # ran concurrently, not serialized

    def test_latency_grows_with_distance(self):
        sim = MacroSimulator(64)
        arrivals = {}

        def h(ctx, tag):
            arrivals[tag] = ctx.now

        sim.register("h", h)
        sim.register("kick", lambda ctx: (ctx.send(1, "h", "near"),
                                          ctx.send(63, "h", "far")))
        sim.inject(0, "kick")
        sim.run()
        assert arrivals["far"] > arrivals["near"]


class TestPriorities:
    def test_priority_one_served_first(self):
        sim = MacroSimulator(2)
        order = []

        def busy(ctx):
            ctx.charge(cycles=500)

        sim.register("busy", busy)
        sim.register("p0", lambda ctx: order.append("p0"))
        sim.register("p1", lambda ctx: order.append("p1"))
        sim.inject(0, "busy", at=0)
        # Both queued while the node is busy; P1 must be served first
        # even though P0 arrived earlier.
        sim.inject(0, "p0", at=10)
        sim.inject(0, "p1", at=20, priority=1)
        sim.run()
        assert order == ["p1", "p0"]


class TestAccounting:
    def test_profile_categories(self):
        sim = MacroSimulator(2)

        def h(ctx):
            ctx.charge(instructions=10)
            ctx.xlate(5)
            ctx.nnr(2)
            ctx.sync(30)

        sim.register("h", h)
        sim.inject(0, "h")
        sim.run()
        profile = sim.nodes[0].profile
        assert profile.compute == 20     # 10 instr at 2 cycles each
        assert profile.xlate == 15       # 5 xlates at 3 cycles
        assert profile.nnr == 12
        assert profile.sync == 30
        assert profile.instructions == 10
        assert profile.xlate_count == 5

    def test_xlate_fault_costs_more(self):
        sim = MacroSimulator(2)

        def h(ctx):
            ctx.xlate(1, fault=True)

        sim.register("h", h)
        sim.inject(0, "h")
        sim.run()
        profile = sim.nodes[0].profile
        assert profile.xlate == sim.config.xlate_fault_cycles
        assert profile.xlate_faults == 1

    def test_handler_stats(self):
        sim = MacroSimulator(2)

        def h(ctx, value):
            ctx.charge(instructions=7)

        sim.register("h", h)
        sim.register("kick",
                     lambda ctx: [ctx.send(1, "h", i, length=3)
                                  for i in range(4)])
        sim.inject(0, "kick")
        sim.run()
        stats = sim.handler_stats["h"]
        assert stats.invocations == 4
        assert stats.instructions_per_thread == 7
        assert stats.mean_message_words == 3  # declared length wins

    def test_breakdown_fractions_sum_at_most_one(self):
        sim = MacroSimulator(4)

        def h(ctx, depth):
            ctx.charge(instructions=100)
            if depth:
                ctx.send((ctx.node_id + 1) % 4, "h", depth - 1)

        sim.register("h", h)
        sim.inject(0, "h", 20)
        sim.run()
        breakdown = sim.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0, abs=1e-6)

    def test_send_charges_comm(self):
        sim = MacroSimulator(2)
        sim.register("noop", lambda ctx: None)

        def h(ctx):
            ctx.send(1, "noop", length=8)

        sim.register("h", h)
        sim.inject(0, "h")
        sim.run()
        # send overhead = 4 + 0.5 * 8 = 8, plus the dispatch charge of 4.
        assert sim.nodes[0].profile.comm == 12


class TestConfig:
    def test_custom_cpi(self):
        sim = MacroSimulator(2, config=MacroConfig(cycles_per_instruction=3.0))
        sim.register("h", lambda ctx: ctx.charge(instructions=10))
        sim.inject(0, "h")
        sim.run()
        assert sim.nodes[0].profile.compute == 30

    def test_mesh_mismatch_rejected(self):
        from repro.network.topology import Mesh3D
        with pytest.raises(ConfigurationError):
            MacroSimulator(8, mesh=Mesh3D(2, 1, 1))


@settings(deadline=None, max_examples=25)
@given(st.integers(1, 40), st.integers(2, 16))
def test_relay_conserves_messages(hops, n_nodes):
    """A relay chain of k hops invokes the handler exactly k+1 times."""
    sim = MacroSimulator(n_nodes)

    def relay(ctx, remaining):
        ctx.charge(instructions=5)
        if remaining:
            ctx.send((ctx.node_id + 1) % n_nodes, "relay", remaining - 1)

    sim.register("relay", relay)
    sim.inject(0, "relay", hops)
    sim.run()
    assert sim.handler_stats["relay"].invocations == hops + 1
    assert sim.messages_sent == hops + 1
