"""Tests for the Figure 6 profiling structure."""

import pytest

from repro.jsim.profile import CATEGORIES, Profile


def test_charge_accumulates():
    profile = Profile()
    profile.charge("compute", 10)
    profile.charge("compute", 5)
    assert profile.compute == 15


def test_unknown_category_rejected():
    with pytest.raises(ValueError):
        Profile().charge("naps", 10)


def test_busy_sums_all_categories():
    profile = Profile()
    for i, category in enumerate(CATEGORIES, start=1):
        profile.charge(category, i)
    assert profile.busy == sum(range(1, len(CATEGORIES) + 1))


def test_breakdown_includes_idle():
    profile = Profile()
    profile.charge("compute", 30)
    profile.charge("comm", 20)
    breakdown = profile.breakdown(wall_cycles=100)
    assert breakdown["compute"] == pytest.approx(0.3)
    assert breakdown["comm"] == pytest.approx(0.2)
    assert breakdown["idle"] == pytest.approx(0.5)


def test_breakdown_zero_wall():
    breakdown = Profile().breakdown(0)
    assert breakdown["idle"] == 0.0


def test_idle_never_negative():
    profile = Profile()
    profile.charge("compute", 200)
    assert profile.breakdown(100)["idle"] == 0.0


def test_categories_match_fig6_plotting_order():
    """bench/fig6.py stacks idle on top, then the categories bottom-up;
    its column tuple must stay the reverse of CATEGORIES plus idle."""
    from repro.bench.fig6 import BREAKDOWN_COLUMNS

    assert BREAKDOWN_COLUMNS[0] == "idle"
    assert tuple(reversed(BREAKDOWN_COLUMNS[1:])) == CATEGORIES


def test_breakdown_covers_every_fig6_column():
    from repro.bench.fig6 import BREAKDOWN_COLUMNS

    profile = Profile()
    for category in CATEGORIES:
        profile.charge(category, 10)
    breakdown = profile.breakdown(wall_cycles=100)
    assert set(BREAKDOWN_COLUMNS) <= set(breakdown)


def test_idle_is_wall_minus_busy():
    profile = Profile()
    profile.charge("compute", 40)
    profile.charge("nnr", 25)
    breakdown = profile.breakdown(wall_cycles=130)
    assert breakdown["idle"] == pytest.approx((130 - profile.busy) / 130)


def test_merge_combines_everything():
    a = Profile()
    a.charge("compute", 10)
    a.instructions = 5
    a.xlate_count = 2
    b = Profile()
    b.charge("compute", 7)
    b.charge("sync", 3)
    b.instructions = 1
    b.xlate_faults = 4
    a.merge(b)
    assert a.compute == 17
    assert a.sync == 3
    assert a.instructions == 6
    assert a.xlate_count == 2
    assert a.xlate_faults == 4
