"""Tests for the handler Context API surface."""

import pytest

from repro.jsim.sim import MacroConfig, MacroSimulator


def test_node_identity_properties():
    sim = MacroSimulator(8)
    seen = {}

    def h(ctx):
        seen["node"] = ctx.node_id
        seen["n"] = ctx.n_nodes

    sim.register("h", h)
    sim.inject(5, "h")
    sim.run()
    assert seen == {"node": 5, "n": 8}


def test_state_is_per_node_and_persistent():
    sim = MacroSimulator(2)

    def first(ctx):
        ctx.state["x"] = ctx.node_id * 10

    def second(ctx, out):
        out[ctx.node_id] = ctx.state.get("x")

    results = {}
    sim.register("first", first)
    sim.register("second", lambda ctx: second(ctx, results))
    for node in (0, 1):
        sim.inject(node, "first", at=0)
        sim.inject(node, "second", at=1000)
    sim.run()
    assert results == {0: 0, 1: 10}


def test_call_local_goes_through_the_network():
    sim = MacroSimulator(4)
    times = {}

    def a(ctx):
        times["sent"] = ctx.now
        ctx.call_local("b")

    def b(ctx):
        times["ran"] = ctx.now

    sim.register("a", a)
    sim.register("b", b)
    sim.inject(0, "a")
    sim.run()
    # Even a self-call pays interface + dispatch time.
    assert times["ran"] > times["sent"] + 5


def test_default_message_length_counts_args():
    sim = MacroSimulator(2)
    sim.register("sink", lambda ctx, a, b, c: None)
    sim.register("kick", lambda ctx: ctx.send(1, "sink", 1, 2, 3))
    sim.inject(0, "kick")
    sim.run()
    assert sim.handler_stats["sink"].mean_message_words == 4


def test_explicit_length_overrides():
    sim = MacroSimulator(2)
    sim.register("sink", lambda ctx: None)
    sim.register("kick", lambda ctx: ctx.send(1, "sink", length=9))
    sim.inject(0, "kick")
    sim.run()
    assert sim.handler_stats["sink"].mean_message_words == 9


def test_longer_messages_cost_more_to_send():
    costs = {}
    for length in (2, 16):
        sim = MacroSimulator(2)
        sim.register("sink", lambda ctx: None)

        def kick(ctx, _length=length):
            ctx.send(1, "sink", length=_length)

        sim.register("kick", kick)
        sim.inject(0, "kick")
        sim.run()
        costs[length] = sim.nodes[0].profile.comm
    assert costs[16] > costs[2]


def test_inject_at_time():
    sim = MacroSimulator(2)
    arrivals = []
    sim.register("h", lambda ctx: arrivals.append(ctx.now))
    sim.inject(0, "h", at=0)
    sim.inject(0, "h", at=5000)
    sim.run()
    assert arrivals[1] - arrivals[0] >= 4000


def test_charge_requires_known_category():
    sim = MacroSimulator(2)

    def h(ctx):
        ctx.charge(cycles=5, category="mystery")

    sim.register("h", h)
    sim.inject(0, "h")
    with pytest.raises(ValueError):
        sim.run()


def test_now_reflects_charges_not_wall():
    sim = MacroSimulator(2)
    observed = {}

    def h(ctx):
        start = ctx.now
        ctx.charge(cycles=123)
        observed["delta"] = ctx.now - start

    sim.register("h", h)
    sim.inject(0, "h")
    sim.run()
    assert observed["delta"] == 123
