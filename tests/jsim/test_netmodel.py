"""Tests for the analytic contention network model."""

from repro.jsim.netmodel import LatencyModel
from repro.network.topology import Mesh3D


def model(dims=(4, 4, 4)):
    return LatencyModel(Mesh3D(*dims))


def test_latency_grows_with_distance():
    m = model()
    near = m.latency(0, 1, 4, now=0)
    far = m.latency(0, 63, 4, now=0)
    assert far > near


def test_latency_grows_with_length():
    m = model()
    short = m.latency(0, 1, 2, now=0)
    long_ = m.latency(0, 1, 16, now=0)
    assert long_ == short + 28  # 14 extra words at 2 cycles each


def test_self_message_cheapest():
    m = model()
    assert m.latency(0, 0, 2, now=0) <= m.latency(0, 1, 2, now=0)


def test_contention_raises_crossing_latency():
    quiet = model()
    baseline = quiet.latency(0, 3, 8, now=0)
    busy = model()
    # Saturate the meter with crossing traffic.
    for i in range(3000):
        busy.latency(0, 3, 8, now=i // 4)
    loaded = busy.latency(0, 3, 8, now=750)
    assert loaded > baseline


def test_noncrossing_traffic_mostly_unaffected():
    busy = model()
    for i in range(3000):
        busy.latency(0, 3, 8, now=i // 4)
    local = busy.latency(0, 1, 8, now=750)
    crossing = busy.latency(0, 3, 8, now=750)
    assert local < crossing


def test_saturation_queues_messages():
    """Offered load beyond capacity produces growing queueing delay."""
    m = model((2, 2, 1))  # tiny bisection
    delays = [m.latency(0, 1, 16, now=0) for _ in range(50)]
    assert delays[-1] > delays[0]


def test_counts_crossing_messages():
    m = model()
    m.latency(0, 1, 4, now=0)   # same side
    m.latency(0, 3, 4, now=0)   # crosses
    assert m.messages == 2
    assert m.crossing_messages == 1
