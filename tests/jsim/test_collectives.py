"""Tests for the collective-operation library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.jsim.collectives import (BroadcastTree, Reduction,
                                    binomial_children, binomial_parent)
from repro.jsim.sim import MacroSimulator


class TestTreeShape:
    def test_root_has_no_parent(self):
        assert binomial_parent(0) is None

    def test_parent_examples(self):
        assert binomial_parent(1) == 0
        assert binomial_parent(2) == 0
        assert binomial_parent(3) == 2
        assert binomial_parent(6) == 4
        assert binomial_parent(12) == 8

    def test_children_examples(self):
        assert binomial_children(0, 8) == [1, 2, 4]
        assert binomial_children(4, 8) == [5, 6]
        assert binomial_children(3, 8) == []

    @given(st.integers(1, 1023))
    def test_parent_child_consistency(self, node):
        parent = binomial_parent(node)
        assert node in binomial_children(parent, 1024)

    @given(st.integers(2, 200))
    def test_tree_spans_every_node(self, n_nodes):
        reached = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for child in binomial_children(node, n_nodes):
                assert child not in reached
                reached.add(child)
                frontier.append(child)
        assert reached == set(range(n_nodes))


def _sum_reduction(n_nodes, values, broadcast=False):
    sim = MacroSimulator(n_nodes)
    results = {}

    def got_result(ctx, value):
        results[ctx.node_id] = value

    sim.register("result", got_result)
    reduction = Reduction(sim, "sum", lambda a, b: a + b, "result",
                          broadcast=broadcast)

    def start(ctx):
        reduction.contribute(ctx, values[ctx.node_id])

    sim.register("start", start)
    for node in range(n_nodes):
        sim.inject(node, "start")
    sim.run()
    return results, sim


class TestReduction:
    def test_sum_reaches_root(self):
        results, _ = _sum_reduction(8, list(range(8)))
        assert results == {0: sum(range(8))}

    def test_broadcast_reaches_everyone(self):
        results, _ = _sum_reduction(8, [2] * 8, broadcast=True)
        assert results == {node: 16 for node in range(8)}

    def test_single_node(self):
        results, _ = _sum_reduction(1, [7])
        assert results == {0: 7}

    def test_non_power_of_two(self):
        results, _ = _sum_reduction(6, [1, 2, 3, 4, 5, 6])
        assert results == {0: 21}

    def test_double_contribution_rejected(self):
        sim = MacroSimulator(2)
        sim.register("result", lambda ctx, v: None)
        reduction = Reduction(sim, "r", lambda a, b: a + b, "result")

        def start(ctx):
            reduction.contribute(ctx, 1)
            reduction.contribute(ctx, 1)

        sim.register("start", start)
        sim.inject(0, "start")
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_multiple_rounds(self):
        sim = MacroSimulator(4)
        results = []
        sim.register("result", lambda ctx, v: results.append(v))
        reduction = Reduction(sim, "sum", lambda a, b: a + b, "result")
        round_no = {"n": 0}

        def start(ctx, value):
            reduction.contribute(ctx, value)

        sim.register("start", start)
        for value in (1, 10):
            for node in range(4):
                sim.inject(node, "start", value,
                           at=value * 10_000)
        sim.run()
        assert results == [4, 40]

    @settings(deadline=None, max_examples=15)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=24))
    def test_sum_matches_python(self, values):
        results, _ = _sum_reduction(len(values), values)
        assert results[0] == sum(values)

    def test_max_combiner(self):
        sim = MacroSimulator(8)
        results = {}
        sim.register("result", lambda ctx, v: results.update({0: v}))
        reduction = Reduction(sim, "max", max, "result")
        sim.register("start",
                     lambda ctx: reduction.contribute(ctx, ctx.node_id * 3))
        for node in range(8):
            sim.inject(node, "start")
        sim.run()
        assert results[0] == 21


class TestBroadcast:
    def test_value_reaches_all_nodes(self):
        sim = MacroSimulator(11)
        seen = {}
        sim.register("deliver", lambda ctx, v: seen.update({ctx.node_id: v}))
        tree = BroadcastTree(sim, "b", "deliver")

        def kick(ctx):
            tree.start(ctx, "hello")

        sim.register("kick", kick)
        sim.inject(0, "kick")
        sim.run()
        assert seen == {node: "hello" for node in range(11)}

    def test_log_depth_latency(self):
        """Broadcast completes in O(log N) message hops, not O(N)."""
        times = {}
        for n in (4, 64):
            sim = MacroSimulator(n)
            sim.register("deliver", lambda ctx, v: None)
            tree = BroadcastTree(sim, "b", "deliver")
            sim.register("kick", lambda ctx: tree.start(ctx, 1))
            sim.inject(0, "kick")
            times[n] = sim.run()
        assert times[64] < times[4] * 4  # 3 levels vs 6 levels, plus hops

    def test_must_start_at_root(self):
        sim = MacroSimulator(4)
        sim.register("deliver", lambda ctx, v: None)
        tree = BroadcastTree(sim, "b", "deliver")
        sim.register("kick", lambda ctx: tree.start(ctx, 1))
        sim.inject(2, "kick")
        with pytest.raises(ConfigurationError):
            sim.run()
