"""End-to-end recovery: the reliable transport and the future pool."""

import pytest

from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.core.errors import ConfigurationError, DeliveryError
from repro.jsim.sim import MacroSimulator
from repro.runtime.futures import FuturePool
from repro.runtime.rpc import ReliableLayer
from repro.telemetry import Telemetry


def _sim(n=4, telemetry=None):
    sim = MacroSimulator(n, telemetry=telemetry)

    def record(ctx, value):
        ctx.charge(2)
        ctx.state.setdefault("got", []).append(value)

    sim.register("record", record)
    return sim


def _lossy(sim, rate, seed=1):
    return ChaosEngine(FaultPlan(seed=seed, specs=(
        FaultSpec(kind="drop", rate=rate),
    ))).attach_macro(sim)


class TestDelivery:
    def test_clean_network_delivers_once(self):
        sim = _sim()
        layer = ReliableLayer(sim)
        sim.inject(0, "record", 7)
        sim.run()
        assert sim.nodes[0].state["got"] == [7]
        assert layer.stats()["retries"] == 0
        assert layer.stats()["acked"] == 1
        assert layer.in_flight == 0

    def test_lost_messages_are_retransmitted(self):
        sim = _sim()
        engine = _lossy(sim, 0.3, seed=7)
        layer = ReliableLayer(sim, timeout=1_000, max_retries=30)
        for value in range(20):
            sim.inject(value % 4, "record", value)
        sim.run()
        got = [v for node in sim.nodes for v in node.state.get("got", [])]
        assert sorted(got) == list(range(20))
        assert layer.retries > 0
        assert engine.counters["retries"] == layer.retries
        assert layer.in_flight == 0

    def test_exactly_once_under_heavy_loss(self):
        sim = _sim()
        _lossy(sim, 0.4, seed=3)
        ReliableLayer(sim, timeout=500, max_retries=40)
        for value in range(30):
            sim.inject(1, "record", value)
        sim.run()
        got = sim.nodes[1].state["got"]
        assert len(got) == len(set(got)) == 30

    def test_in_order_per_stream_despite_retransmission(self):
        """Retransmits arrive late; dispatch order must not reorder."""
        sim = _sim()
        _lossy(sim, 0.3, seed=9)
        ReliableLayer(sim, timeout=500, max_retries=40)
        # All from node 2 (sim.inject sources at the destination, so use
        # a forwarding handler to get a real single-source stream).

        def burst(ctx):
            for value in range(15):
                ctx.charge(1)
                ctx.send(3, "record", value)

        sim.register("burst", burst)
        sim.inject(2, "burst")
        sim.run()
        assert sim.nodes[3].state["got"] == list(range(15))

    def test_give_up_raises_delivery_error(self):
        sim = _sim()
        engine = _lossy(sim, 1.0)
        ReliableLayer(sim, timeout=100, max_retries=2)
        sim.inject(0, "record", 1)
        with pytest.raises(DeliveryError) as info:
            sim.run()
        assert info.value.attempts == 3
        assert engine.counters["give_ups"] == 1

    def test_control_traffic_is_not_wrapped(self):
        """Envelopes and acks must go out raw (no recursion, no growth)."""
        sim = _sim()
        layer = ReliableLayer(sim)
        sim.inject(0, "record", 1)
        sim.run()
        # One envelope + one ack on the wire; no nested envelopes.
        assert sim.messages_sent == 2
        assert layer.stats()["duplicates"] == 0

    def test_unknown_handler_still_rejected(self):
        sim = _sim()
        ReliableLayer(sim)
        with pytest.raises(Exception, match="no handler"):
            sim.inject(0, "nope")


class TestObservability:
    def test_retry_events_reach_telemetry(self):
        telemetry = Telemetry(events=True)
        sim = _sim(telemetry=telemetry)
        _lossy(sim, 0.4, seed=2)
        ReliableLayer(sim, timeout=500, max_retries=40)
        for value in range(10):
            sim.inject(0, "record", value)
        sim.run()
        retry_events = [e for e in telemetry.events.events if e[1] == "retry"]
        assert retry_events
        # Each retry event names the handler it is retrying.
        assert all(e[4] == "record" for e in retry_events)

    def test_validation(self):
        sim = _sim()
        with pytest.raises(ConfigurationError):
            ReliableLayer(sim, timeout=0)
        with pytest.raises(ConfigurationError):
            ReliableLayer(sim, backoff=0.5)


class TestFuturePool:
    def _request_sim(self, drop_first_n=0):
        """A request/response pair; optionally eats the first N requests."""
        sim = MacroSimulator(4)
        eaten = {"n": 0}

        def serve(ctx, fid, reply_to):
            ctx.charge(5)
            if eaten["n"] < drop_first_n:
                eaten["n"] += 1
                return  # simulated lost request (no response)
            ctx.send(reply_to, "settle", fid)

        sim.register("serve", serve)
        return sim

    def test_resolved_future_needs_no_reissue(self):
        sim = self._request_sim()
        pool = FuturePool(sim, timeout=50_000)
        sim.register("settle",
                     lambda ctx, fid: pool.resolve(fid, True, ctx.now))
        future = pool.spawn("job", lambda attempt: sim.inject(
            1, "serve", "job", 0))
        sim.run()
        assert future.done
        assert pool.reissues == 0
        assert pool.unresolved == 0

    def test_lost_request_is_reissued(self):
        sim = self._request_sim(drop_first_n=1)
        pool = FuturePool(sim, timeout=1_000)
        sim.register("settle",
                     lambda ctx, fid: pool.resolve(fid, True, ctx.now))
        future = pool.spawn("job", lambda attempt: sim.inject(
            1, "serve", "job", 0))
        sim.run()
        assert future.done
        assert future.attempts == 1
        assert pool.reissues == 1

    def test_exhausted_reissues_raise(self):
        sim = self._request_sim(drop_first_n=99)
        pool = FuturePool(sim, timeout=500, max_retries=2)
        sim.register("settle",
                     lambda ctx, fid: pool.resolve(fid, True, ctx.now))
        pool.spawn("job", lambda attempt: sim.inject(1, "serve", "job", 0))
        with pytest.raises(DeliveryError, match="after 2 reissues"):
            sim.run()

    def test_resolve_is_idempotent(self):
        sim = MacroSimulator(2)
        pool = FuturePool(sim)
        future = pool.create("x")
        pool.resolve("x", 1, now=10)
        pool.resolve("x", 2, now=20)
        assert future.value == 1
        assert future.resolved_at == 10
