"""Tests for the RPC micro-benchmarks against the paper's anchors."""

import pytest

from repro.core.errors import ConfigurationError
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.rpc import run_ping, run_remote_read


def machine(dims=(8, 8, 8)):
    return JMachine(MachineConfig(dims=dims))


class TestPing:
    def test_self_ping_near_43_cycles(self):
        result = run_ping(machine(), 0, 0, iterations=30)
        assert result.round_trip_cycles == pytest.approx(43, abs=4)

    def test_slope_is_two_cycles_per_hop(self):
        near = run_ping(machine(), 0, 1, iterations=30).round_trip_cycles
        far = run_ping(machine(), 0, 7, iterations=30).round_trip_cycles
        slope = (far - near) / 6
        assert slope == pytest.approx(2.0, abs=0.3)

    def test_hops_recorded(self):
        result = run_ping(machine(), 0, 511, iterations=5)
        assert result.hops == 21

    def test_iterations_counted(self):
        result = run_ping(machine(), 0, 3, iterations=7)
        assert result.iterations == 7


class TestRemoteRead:
    def test_neighbour_read_near_60(self):
        result = run_remote_read(machine(), 1, True, 0, 1, iterations=30)
        assert result.round_trip_cycles == pytest.approx(60, abs=5)

    def test_corner_read_near_98(self):
        result = run_remote_read(machine(), 1, True, 0, 511, iterations=30)
        assert result.round_trip_cycles == pytest.approx(98, abs=5)

    def test_emem_slower_than_imem(self):
        imem = run_remote_read(machine(), 1, True, 0, 5, 20).round_trip_cycles
        emem = run_remote_read(machine(), 1, False, 0, 5, 20).round_trip_cycles
        assert emem > imem

    def test_read6_slower_than_read1(self):
        one = run_remote_read(machine(), 1, True, 0, 5, 20).round_trip_cycles
        six = run_remote_read(machine(), 6, True, 0, 5, 20).round_trip_cycles
        assert six > one + 10  # 5 extra reply words at 2 phits each, plus work

    def test_emem_per_word_penalty(self):
        imem6 = run_remote_read(machine(), 6, True, 0, 5, 20).round_trip_cycles
        emem6 = run_remote_read(machine(), 6, False, 0, 5, 20).round_trip_cycles
        per_word = (emem6 - imem6) / 6
        assert 3 <= per_word <= 8  # paper: 8 vs 2 cycles/word

    def test_only_1_or_6_words(self):
        with pytest.raises(ConfigurationError):
            run_remote_read(machine(), 3, True)


class TestOrdering:
    def test_series_are_ordered_at_every_distance(self):
        """Ping < Read1 Imem <= Read1 Emem < Read6 Imem < Read6 Emem."""
        for responder in (1, 63):
            ping = run_ping(machine(), 0, responder, 10).round_trip_cycles
            r1i = run_remote_read(machine(), 1, True, 0, responder, 10).round_trip_cycles
            r1e = run_remote_read(machine(), 1, False, 0, responder, 10).round_trip_cycles
            r6i = run_remote_read(machine(), 6, True, 0, responder, 10).round_trip_cycles
            r6e = run_remote_read(machine(), 6, False, 0, responder, 10).round_trip_cycles
            assert ping < r1i <= r1e < r6i < r6e
