"""Seeded-jitter exponential backoff: deterministic, bounded, pinned.

The jitter exists to de-synchronize retry storms (every lost message
retrying on the same cycle re-collides forever at high loss rates),
but it must never trade away reproducibility: the factor is drawn from
an RNG seeded by ``(seed, key, attempt)`` alone, so the same
configuration replays the same delays — process boundaries, dict
order, and wall clock included.  The digest-equality tests reduce that
to a string comparison, exactly like the chaos determinism suite.
"""

import pytest

from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.chaos.harness import event_fingerprint
from repro.core.errors import ConfigurationError
from repro.jsim.sim import MacroSimulator
from repro.runtime.futures import FuturePool
from repro.runtime.rpc import ReliableLayer, backoff_delay
from repro.telemetry import Telemetry


class TestBackoffDelay:
    def test_no_jitter_is_pure_exponential(self):
        assert [backoff_delay(100, 2.0, a) for a in range(4)] \
            == [100, 200, 400, 800]

    def test_jitter_zero_skips_the_rng_entirely(self):
        """jitter=0 must be bit-identical to the pre-jitter behavior,
        not merely 'jitter factor happens to be 1'."""
        for attempt in range(5):
            assert backoff_delay(100, 2.0, attempt, jitter=0.0, seed=9) \
                == backoff_delay(100, 2.0, attempt)

    def test_jitter_bounded_and_never_shrinks(self):
        for attempt in range(8):
            base = backoff_delay(100, 2.0, attempt)
            jittered = backoff_delay(100, 2.0, attempt, jitter=0.5,
                                     seed=1, key=17)
            assert base <= jittered < base * 1.5 + 1

    def test_deterministic_across_calls(self):
        args = dict(jitter=0.4, seed=123, key="job-digest")
        first = [backoff_delay(250, 2.0, a, **args) for a in range(6)]
        again = [backoff_delay(250, 2.0, a, **args) for a in range(6)]
        assert first == again

    def test_seed_and_key_decorrelate(self):
        delays = {backoff_delay(1000, 2.0, 3, jitter=0.9, seed=s, key=k)
                  for s in range(5) for k in range(5)}
        assert len(delays) > 10  # different streams, different draws


def _lossy_run(jitter, seed=5):
    """One lossy reliable-transport run; returns its event digest."""
    telemetry = Telemetry()
    sim = MacroSimulator(4, telemetry=telemetry)

    def record(ctx, value):
        ctx.charge(2)
        ctx.state.setdefault("got", []).append(value)

    sim.register("record", record)
    ChaosEngine(FaultPlan(seed=11, specs=(
        FaultSpec(kind="drop", rate=0.3),
    ))).attach_macro(sim)
    layer = ReliableLayer(sim, timeout=1_000, max_retries=30,
                          jitter=jitter, jitter_seed=seed)
    for value in range(16):
        sim.inject(value % 4, "record", value)
    sim.run()
    got = sorted(v for node in sim.nodes for v in node.state.get("got", []))
    assert got == list(range(16))  # exactly-once survived the jitter
    return event_fingerprint(telemetry.events), layer.retries


class TestReliableJitterDeterminism:
    def test_same_seed_same_event_stream(self):
        digest_a, retries_a = _lossy_run(jitter=0.5)
        digest_b, retries_b = _lossy_run(jitter=0.5)
        assert digest_a == digest_b
        assert retries_a == retries_b

    def test_jitter_actually_changes_the_schedule(self):
        digest_plain, _ = _lossy_run(jitter=0.0)
        digest_jittered, _ = _lossy_run(jitter=0.5)
        assert digest_plain != digest_jittered

    def test_different_seeds_diverge(self):
        digest_a, _ = _lossy_run(jitter=0.5, seed=1)
        digest_b, _ = _lossy_run(jitter=0.5, seed=2)
        assert digest_a != digest_b

    def test_negative_jitter_rejected(self):
        sim = MacroSimulator(2)
        with pytest.raises(ConfigurationError):
            ReliableLayer(sim, jitter=-0.1)

    def test_jitter_survives_state_roundtrip(self):
        sim = MacroSimulator(2)
        layer = ReliableLayer(sim, jitter=0.25, jitter_seed=7)
        state = layer.state_dict()
        assert state["jitter"] == 0.25
        assert state["jitter_seed"] == 7
        sim2 = MacroSimulator(2)
        layer2 = ReliableLayer(sim2)
        layer2.load_state(state)
        assert layer2.jitter == 0.25
        assert layer2.jitter_seed == 7

    def test_pre_jitter_snapshot_state_loads(self):
        """Snapshots written before the jitter fields existed load with
        jitter off — old checkpoints stay restorable."""
        sim = MacroSimulator(2)
        layer = ReliableLayer(sim)
        state = layer.state_dict()
        del state["jitter"], state["jitter_seed"]
        sim2 = MacroSimulator(2)
        layer2 = ReliableLayer(sim2)
        layer2.load_state(state)
        assert layer2.jitter == 0.0
        assert layer2.jitter_seed == 0


class TestFuturePoolJitter:
    @staticmethod
    def _reissue_times(jitter, seed):
        """Simulated times of every kickoff for a never-resolving
        request (the pool reissues at each jittered deadline until the
        retry budget ends the run)."""
        sim = MacroSimulator(2)
        pool = FuturePool(sim, timeout=500, max_retries=4,
                          jitter=jitter, jitter_seed=seed)
        times = []
        pool.spawn("job", lambda attempt: times.append(sim.now))
        from repro.core.errors import DeliveryError

        with pytest.raises(DeliveryError):
            sim.run()
        return times

    def test_jittered_reissues_are_deterministic(self):
        first = self._reissue_times(jitter=0.5, seed=3)
        again = self._reissue_times(jitter=0.5, seed=3)
        assert first == again
        assert len(first) == 5  # initial kickoff + 4 reissues

    def test_jitter_moves_the_deadlines(self):
        plain = self._reissue_times(jitter=0.0, seed=3)
        jittered = self._reissue_times(jitter=0.5, seed=3)
        assert plain != jittered
        # jitter only ever lengthens a delay, never shortens it
        assert all(a <= b for a, b in zip(plain, jittered))

    def test_negative_jitter_rejected(self):
        sim = MacroSimulator(2)
        with pytest.raises(ConfigurationError):
            FuturePool(sim, jitter=-0.5)
