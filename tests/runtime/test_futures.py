"""Tests for first-class fut behaviour on the cycle machine."""

import pytest

from repro.runtime.futures import run_future_experiment


@pytest.fixture(scope="module")
def result():
    return run_future_experiment(value=42)


def test_future_copies_without_faulting(result):
    """'The fut type may be copied without faulting' — stored in an
    array, still tagged as a future."""
    assert result.moved_before_production


def test_use_of_future_suspends(result):
    """Arithmetic on the unresolved copy traps and suspends the thread."""
    assert result.consumer_suspended
    assert result.suspends >= 1


def test_resolution_restarts_and_computes(result):
    """Once the producer writes the value through, the consumer resumes
    and computes with the real value."""
    assert result.restarts >= 1
    assert result.final_value == 42 + 100


def test_different_values_flow_through():
    other = run_future_experiment(value=-7)
    assert other.final_value == -7 + 100
