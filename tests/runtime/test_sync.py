"""Tests for the Table 2 synchronization-cost measurement."""

from repro.runtime.sync import measure_sync_costs


def test_tags_column_matches_paper_exactly():
    costs = measure_sync_costs()
    assert costs.tags_success == 2
    assert costs.tags_failure == 6
    assert costs.tags_write == 4


def test_no_tags_column_matches_paper_exactly():
    costs = measure_sync_costs()
    assert costs.flag_success == 5
    assert costs.flag_failure == 7
    assert costs.flag_write == 6


def test_tags_beat_flags_on_every_event():
    costs = measure_sync_costs()
    assert costs.tags_success < costs.flag_success
    assert costs.tags_failure < costs.flag_failure
    assert costs.tags_write < costs.flag_write


def test_policy_ranges_passed_through():
    costs = measure_sync_costs(save_min=10, save_max=20,
                               restart_min=5, restart_max=15)
    assert costs.save_min == 10
    assert costs.save_max == 20
    assert costs.restart_min == 5
    assert costs.restart_max == 15


def test_as_table_shape():
    table = measure_sync_costs().as_table()
    assert set(table) == {"Success", "Failure", "Write", "Restart"}
    assert table["Success"]["Tags"] == 2
    assert table["Restart"]["Tags"] == 0
    assert "30 - 50" in table["Failure"]["Save/Restore"]
