"""Cycle-level check of Table 4's WriteData claim: 4 instructions, 16 cycles.

The paper: "the WriteData messages are only 4 instructions (16 cycles)
each."  Four instructions at 16 cycles means 4 cycles/instruction — the
cost of touching external memory, since the destination array of a
65,536-key sort lives in DRAM.  We write the actual handler in assembly
and measure it.
"""

import pytest

from repro.asm.assembler import assemble
from repro.core.message import Message
from repro.core.processor import Mdp
from repro.core.registers import Priority
from repro.core.word import Word

WRITE_DATA = """
; WriteData: [IP:write, slot, value]
write:
    MOVE  [A3+1], R0         ; slot index
    MOVE  [A3+2], R1         ; value
    MOVE  R1, [A2+R0]        ; store into the (external) dest array
    SUSPEND
"""


def measure(array_in_dram: bool):
    proc = Mdp(node_id=0)
    program = assemble(WRITE_DATA)
    program.load(proc)
    array_base = (proc.memory.imem_words + 64 if array_in_dram
                  else program.end + 16)
    proc.registers[Priority.P0].write("A2", Word.segment(array_base, 64))
    message = Message.build(program.entry("write"),
                            [Word.from_int(3), Word.from_int(77)], 0, 0)
    proc.deliver(message, 0)
    now = 0
    while proc.has_work():
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    assert proc.memory.peek(array_base + 3).value == 77
    return proc


def test_four_instructions():
    proc = measure(array_in_dram=True)
    assert proc.counters.instructions == 4


def test_sixteen_cycles_with_dram_destination():
    """4 instructions, 16 cycles — dispatch (4) + two window reads (4)
    + the DRAM store (7) + SUSPEND (1).  Exactly the paper's number."""
    proc = measure(array_in_dram=True)
    assert proc.counters.busy_cycles == 16


def test_faster_when_destination_is_sram():
    dram = measure(array_in_dram=True)
    sram = measure(array_in_dram=False)
    assert sram.counters.busy_cycles < dram.counters.busy_cycles
