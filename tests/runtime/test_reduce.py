"""Tests for the assembly combining-tree reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConfigurationError
from repro.machine.jmachine import JMachine
from repro.runtime.reduce import run_reduction


@pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64])
def test_sums_correctly(n):
    machine = JMachine.build(n)
    result = run_reduction(machine, list(range(n)))
    assert result.total == sum(range(n))
    assert result.broadcast_complete


def test_negative_values():
    machine = JMachine.build(8)
    values = [-5, 3, -1, 0, 7, -2, 9, -11]
    assert run_reduction(machine, values).total == sum(values)


def test_wrong_value_count_rejected():
    machine = JMachine.build(4)
    with pytest.raises(ConfigurationError):
        run_reduction(machine, [1, 2, 3])


def test_logarithmic_scaling():
    """Cost grows with tree depth, not node count."""
    cycles = {}
    for n in (8, 64):
        machine = JMachine.build(n)
        cycles[n] = run_reduction(machine, [1] * n).cycles
    # 8x the nodes, but only 2x the levels: far from 8x the time.
    assert cycles[64] < cycles[8] * 3


@settings(deadline=None, max_examples=10)
@given(st.lists(st.integers(-1000, 1000), min_size=2, max_size=16))
def test_arbitrary_values(values):
    machine = JMachine.build(len(values))
    assert run_reduction(machine, values).total == sum(values)
