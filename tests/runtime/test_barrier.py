"""Tests for the butterfly barrier."""

import pytest

from repro.core.errors import ConfigurationError
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.network.topology import Mesh3D
from repro.runtime.barrier import run_barrier_experiment


def machine(n, **overrides):
    return JMachine(MachineConfig(dims=Mesh3D.for_nodes(n).dims, **overrides))


class TestCorrectness:
    def test_two_node_barrier_completes(self):
        result = run_barrier_experiment(machine(2), barriers=3)
        assert result.barriers == 3
        assert result.waves == 1

    def test_eight_node_barrier_completes(self):
        result = run_barrier_experiment(machine(8), barriers=5)
        assert result.waves == 3
        assert result.total_cycles > 0

    def test_back_to_back_barriers_do_not_race(self):
        """Parity double-buffering: many consecutive barriers all finish."""
        result = run_barrier_experiment(machine(16), barriers=12)
        assert result.barriers == 12

    def test_non_power_of_two_rejected(self):
        machine_3 = JMachine(MachineConfig(dims=(3, 1, 1)))
        with pytest.raises(ConfigurationError):
            run_barrier_experiment(machine_3)

    def test_single_node_rejected(self):
        with pytest.raises(ConfigurationError):
            run_barrier_experiment(machine(1))


class TestScaling:
    def test_cost_grows_with_waves(self):
        per_barrier = {}
        for n in (2, 8, 32):
            result = run_barrier_experiment(machine(n), barriers=5)
            per_barrier[n] = result.cycles_per_barrier
        assert per_barrier[2] < per_barrier[8] < per_barrier[32]

    def test_cost_roughly_linear_in_waves(self):
        """The scan barrier is O(log N): cost per wave roughly constant."""
        result_8 = run_barrier_experiment(machine(8), barriers=5)
        result_64 = run_barrier_experiment(machine(64), barriers=5)
        per_wave_8 = result_8.cycles_per_barrier / result_8.waves
        per_wave_64 = result_64.cycles_per_barrier / result_64.waves
        assert per_wave_64 / per_wave_8 < 1.6

    def test_suspend_policy_affects_barrier(self):
        slow = run_barrier_experiment(
            machine(16, suspend_save_cycles=50, restart_cycles=50), barriers=5
        )
        fast = run_barrier_experiment(
            machine(16, suspend_save_cycles=8, restart_cycles=8), barriers=5
        )
        assert fast.cycles_per_barrier < slow.cycles_per_barrier

    def test_microseconds_conversion(self):
        result = run_barrier_experiment(machine(2), barriers=2)
        assert result.microseconds_per_barrier() == pytest.approx(
            result.cycles_per_barrier * 0.08, rel=1e-6
        )
