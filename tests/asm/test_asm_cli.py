"""Tests for the `python -m repro.asm` CLI."""

import subprocess
import sys


def run_asm(*args, expect_ok=True):
    result = subprocess.run(
        [sys.executable, "-m", "repro.asm", *args],
        capture_output=True, text=True, timeout=60,
    )
    if expect_ok:
        assert result.returncode == 0, result.stderr
    return result


def test_help_text():
    result = run_asm("--help")
    assert "assemble" in result.stdout.lower()


def test_isa_reference_generation():
    result = run_asm("--isa-reference")
    assert "# MDP Instruction Set Reference" in result.stdout
    assert "`SEND2E`" in result.stdout


def test_assemble_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("main:\n MOVE #1, R0\n HALT\n")
    result = run_asm(str(path))
    assert "assembled 2 instructions" in result.stdout
    assert "MOVE #1, R0" in result.stdout


def test_docs_isa_is_current():
    """docs/ISA.md matches what the code generates (no drift)."""
    import pathlib
    from repro.asm.disassembler import isa_reference

    docs = pathlib.Path(__file__).parents[2] / "docs" / "ISA.md"
    assert docs.read_text().strip() == isa_reference().strip()
