"""Tests for the two-pass MDP assembler."""

import pytest
from hypothesis import given, strategies as st

from repro.asm.assembler import assemble
from repro.core.errors import AssemblyError
from repro.core.isa import Imm, MemIdx, MemOff, Reg
from repro.core.processor import USER_BASE
from repro.core.tags import Tag
from repro.core.word import Word


class TestBasics:
    def test_empty_program(self):
        program = assemble("")
        assert program.instrs == []
        assert program.size == 0

    def test_comment_only(self):
        assert assemble("; nothing here\n  ; more").instrs == []

    def test_single_instruction(self):
        program = assemble("MOVE #1, R0")
        assert len(program.instrs) == 1
        addr, instr = program.instrs[0]
        assert addr == USER_BASE
        assert instr.op == "MOVE"

    def test_sequential_addresses(self):
        program = assemble("NOP\nNOP\nNOP")
        addresses = [addr for addr, _ in program.instrs]
        assert addresses == [USER_BASE, USER_BASE + 1, USER_BASE + 2]

    def test_custom_base(self):
        program = assemble("NOP", base=500)
        assert program.instrs[0][0] == 500

    def test_case_insensitive_opcode(self):
        assert assemble("move #1, r0").instrs[0][1].op == "MOVE"

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError):
            assemble("FROB R0")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError):
            assemble("MOVE R0")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as info:
            assemble("NOP\nNOP\nBADOP R0")
        assert info.value.line == 3


class TestLabels:
    def test_label_resolves_to_address(self):
        program = assemble("""
        start:
            NOP
        target:
            NOP
        """)
        assert program.entry("target") == program.entry("start") + 1

    def test_forward_reference(self):
        program = assemble("""
            BR later
        later:
            HALT
        """)
        _, branch = program.instrs[0]
        assert branch.operands[0].word.value == program.entry("later")

    def test_backward_reference(self):
        program = assemble("""
        loop:
            NOP
            BR loop
        """)
        _, branch = program.instrs[1]
        assert branch.operands[0].word.value == program.entry("loop")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x: NOP\nx: NOP")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("BR nowhere")

    def test_missing_entry(self):
        with pytest.raises(AssemblyError):
            assemble("NOP").entry("nope")

    def test_label_on_same_line_as_instruction(self):
        program = assemble("go: HALT")
        assert program.entry("go") == USER_BASE

    def test_multiple_labels_same_address(self):
        program = assemble("a: b: NOP")
        assert program.entry("a") == program.entry("b")


class TestOperands:
    def _operand(self, text, op="MOVE", position=0):
        program = assemble(f"{op} {text}, R0")
        return program.instrs[0][1].operands[position]

    def test_data_register(self):
        assert self._operand("R2") == Reg("R2")

    def test_address_register(self):
        assert self._operand("A1") == Reg("A1")

    def test_int_immediate(self):
        assert self._operand("#42") == Imm(Word.from_int(42))

    def test_negative_immediate(self):
        assert self._operand("#-7") == Imm(Word.from_int(-7))

    def test_hex_immediate(self):
        assert self._operand("#0x10") == Imm(Word.from_int(16))

    def test_char_immediate(self):
        assert self._operand("#'z'") == Imm(Word.from_sym(ord("z")))

    def test_ip_immediate_numeric(self):
        operand = self._operand("#IP:300")
        assert operand.word == Word.ip(300)

    def test_ip_immediate_label(self):
        program = assemble("""
        handler:
            NOP
            MOVE #IP:handler, R0
        """)
        _, instr = program.instrs[1]
        assert instr.operands[0].word == Word.ip(program.entry("handler"))

    def test_tag_immediate(self):
        program = assemble("CHECK R0, %CFUT, R1")
        tag_imm = program.instrs[0][1].operands[1]
        assert tag_imm.word.value == int(Tag.CFUT)

    def test_unknown_tag(self):
        with pytest.raises(AssemblyError):
            assemble("CHECK R0, %BOGUS, R1")

    def test_memory_plain(self):
        operand = self._operand("[A2]")
        assert isinstance(operand, MemOff)
        assert operand.offset == 0

    def test_memory_offset(self):
        operand = self._operand("[A2+5]")
        assert operand.offset == 5

    def test_memory_negative_offset(self):
        operand = self._operand("[A2-3]")
        assert operand.offset == -3

    def test_memory_register_index(self):
        operand = self._operand("[A2+R1]")
        assert isinstance(operand, MemIdx)
        assert operand.idxreg == Reg("R1")

    def test_equ_as_immediate(self):
        program = assemble("""
        .equ LIMIT, 99
            MOVE #LIMIT, R0
        """)
        assert program.instrs[0][1].operands[0].word.value == 99


class TestDirectives:
    def test_word_emits_data(self):
        program = assemble("table: .word 1, 2, 3")
        values = [word.value for _, word in program.data]
        assert values == [1, 2, 3]

    def test_word_cfut(self):
        program = assemble("slot: .word CFUT")
        assert program.data[0][1].tag is Tag.CFUT

    def test_word_char(self):
        program = assemble(".word 'q'")
        assert program.data[0][1] == Word.from_sym(ord("q"))

    def test_word_label_reference(self):
        program = assemble("""
        ptr: .word target
        target: NOP
        """)
        assert program.data[0][1].value == program.entry("target")

    def test_word_ip_label(self):
        program = assemble("""
        vec: .word IP:handler
        handler: NOP
        """)
        assert program.data[0][1] == Word.ip(program.entry("handler"))

    def test_space_reserves(self):
        program = assemble(".space 5\nafter: NOP")
        assert program.entry("after") == USER_BASE + 5
        assert len(program.data) == 5

    def test_org_moves_counter(self):
        program = assemble(".org 1000\nhere: NOP")
        assert program.entry("here") == 1000

    def test_equ_bad_name(self):
        with pytest.raises(AssemblyError):
            assemble(".equ 2bad, 1")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError):
            assemble(".frobnicate 1")

    def test_negative_space(self):
        with pytest.raises(AssemblyError):
            assemble(".space -1")


class TestLoad:
    def test_load_installs_code_and_data(self):
        from repro.core.processor import Mdp

        program = assemble("""
        start: MOVE #1, R0
               HALT
        datum: .word 77
        """)
        proc = Mdp(node_id=0)
        program.load(proc)
        assert proc.code[program.entry("start")].op == "MOVE"
        assert proc.memory.peek(program.entry("datum")).value == 77


@given(st.integers(-2**31, 2**31 - 1))
def test_any_int32_immediate_assembles(value):
    program = assemble(f"MOVE #{value}, R0")
    assert program.instrs[0][1].operands[0].word.value == value


@given(st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True))
def test_any_identifier_labels_work(name):
    if name.upper() in ("R0", "R1", "R2", "R3", "A0", "A1", "A2", "A3"):
        return  # register names shadow labels in operand position
    program = assemble(f"{name}: NOP\nBR {name}")
    assert program.entry(name) == USER_BASE
