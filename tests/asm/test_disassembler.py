"""Tests for the disassembler, including the round-trip property."""

import pytest

from repro.asm.assembler import assemble
from repro.asm.disassembler import (disassemble, format_instr, format_operand,
                                    isa_reference)
from repro.core.isa import Imm, MemIdx, MemOff, Reg
from repro.core.word import Word
from repro.apps.radix_cycle import radix_cycle_source
from repro.runtime.barrier import BARRIER_SOURCE
from repro.runtime.rpc import RPC_SOURCE


class TestOperandFormatting:
    def test_register(self):
        assert format_operand(Reg("R2"), {}, "s") == "R2"

    def test_memory_zero_offset(self):
        assert format_operand(MemOff("A3", 0), {}, "s") == "[A3]"

    def test_memory_positive_offset(self):
        assert format_operand(MemOff("A1", 5), {}, "s") == "[A1+5]"

    def test_memory_negative_offset(self):
        assert format_operand(MemOff("A1", -2), {}, "s") == "[A1-2]"

    def test_memory_register_index(self):
        assert format_operand(MemIdx("A2", "R1"), {}, "s") == "[A2+R1]"

    def test_int_immediate(self):
        assert format_operand(Imm(Word.from_int(-3)), {}, "s") == "#-3"

    def test_char_immediate(self):
        assert format_operand(Imm(Word.from_sym(ord("x"))), {}, "s") == "#'x'"

    def test_ip_immediate_with_label(self):
        operand = Imm(Word.ip(200))
        assert format_operand(operand, {200: "handler"}, "s") == "#IP:handler"

    def test_branch_target_uses_label(self):
        operand = Imm(Word.from_int(300))
        assert format_operand(operand, {300: "loop"}, "t") == "loop"

    def test_tag_immediate(self):
        from repro.core.tags import Tag
        operand = Imm(Word.from_sym(int(Tag.CFUT)))
        assert format_operand(operand, {}, "g") == "%CFUT"


class TestInstrFormatting:
    def test_no_operands(self):
        program = assemble("SUSPEND")
        assert format_instr(program.instrs[0][1], {}) == "SUSPEND"

    def test_three_operands(self):
        program = assemble("ADD R0, #1, R1")
        assert format_instr(program.instrs[0][1], {}) == "ADD R0, #1, R1"


def _normalize(program):
    """Comparable form of a program: ops, operand reprs, data words."""
    return (
        [(addr, instr.op, [repr(o) for o in instr.operands])
         for addr, instr in program.instrs],
        sorted(program.data, key=lambda pair: pair[0]),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        "start:\n MOVE #1, R0\n HALT",
        "a: .word 1, 2, CFUT, 'q'\ngo: BR go",
        RPC_SOURCE,
        BARRIER_SOURCE,
        radix_cycle_source(kpn=8, n_nodes=4, n_digits=3),
    ])
    def test_reassembles_identically(self, source):
        original = assemble(source)
        text = disassemble(original)
        rebuilt = assemble(text, base=original.base)
        assert _normalize(rebuilt) == _normalize(original)

    def test_disassembly_shows_labels(self):
        program = assemble("entry:\n BR entry")
        text = disassemble(program)
        assert "entry:" in text
        assert "BR entry" in text


class TestIsaReference:
    def test_reference_covers_every_opcode(self):
        from repro.core.isa import OPCODES
        text = isa_reference()
        for name in OPCODES:
            assert f"`{name}`" in text

    def test_reference_is_markdown(self):
        text = isa_reference()
        assert text.startswith("# MDP Instruction Set Reference")
        assert "| opcode |" in text
