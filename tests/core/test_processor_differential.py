"""Differential testing: random programs vs an independent evaluator.

Hypothesis generates random straight-line programs over the data
registers; each runs both on the cycle-accurate MDP and on a
30-line reference evaluator written directly from the ISA's documented
semantics.  Any divergence in final register state is a bug in one of
them — this is the test that guards the ALU against regressions no
hand-written case covers.
"""

from hypothesis import given, settings, strategies as st

from repro.core.processor import Mdp
from repro.core.registers import Priority
from repro.core.word import Word
from repro.asm.assembler import assemble

REGS = ("R0", "R1", "R2", "R3")

# Operations with total semantics (DIV/MOD excluded: zero divisors are
# exercised by dedicated tests).
OPS = ("ADD", "SUB", "MUL", "AND", "OR", "XOR",
       "EQ", "NE", "LT", "LE", "GT", "GE")


def _signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value > 0x7FFFFFFF else value


def _reference(op: str, a: int, b: int) -> int:
    if op == "ADD":
        return _signed32(a + b)
    if op == "SUB":
        return _signed32(a - b)
    if op == "MUL":
        return _signed32(a * b)
    if op == "AND":
        return _signed32(a & b)
    if op == "OR":
        return _signed32(a | b)
    if op == "XOR":
        return _signed32(a ^ b)
    if op == "EQ":
        return int(a == b)
    if op == "NE":
        return int(a != b)
    if op == "LT":
        return int(a < b)
    if op == "LE":
        return int(a <= b)
    if op == "GT":
        return int(a > b)
    if op == "GE":
        return int(a >= b)
    raise AssertionError(op)


instruction = st.tuples(
    st.sampled_from(OPS),
    st.sampled_from(REGS),
    st.one_of(st.sampled_from(REGS),
              st.integers(-2**31, 2**31 - 1)),
    st.sampled_from(REGS),
)

program_strategy = st.tuples(
    st.lists(instruction, min_size=1, max_size=25),
    st.lists(st.integers(-2**31, 2**31 - 1), min_size=4, max_size=4),
)


@settings(deadline=None, max_examples=120)
@given(program_strategy)
def test_random_programs_match_reference(case):
    instructions, initial = case

    # Independent evaluation.
    expected = {reg: value for reg, value in zip(REGS, initial)}
    for op, src1, src2, dst in instructions:
        a = expected[src1]
        b = expected[src2] if isinstance(src2, str) else _signed32(src2)
        expected[dst] = _reference(op, a, b)

    # The same program through the assembler and the MDP.
    lines = ["start:"]
    for op, src1, src2, dst in instructions:
        operand2 = src2 if isinstance(src2, str) else f"#{src2}"
        lines.append(f"    {op} {src1}, {operand2}, {dst}")
    lines.append("    HALT")
    program = assemble("\n".join(lines))

    proc = Mdp(node_id=0)
    program.load(proc)
    regs = proc.registers[Priority.BACKGROUND]
    for reg, value in zip(REGS, initial):
        regs.write(reg, Word.from_int(value))
    proc.set_background(program.entry("start"))
    now = 0
    while not proc.halted and now < 100_000:
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt

    for reg in REGS:
        assert regs.read(reg).value == expected[reg], (
            f"{reg} diverged after {instructions}"
        )


@settings(deadline=None, max_examples=60)
@given(st.lists(st.sampled_from(["ASH", "LSH"]), min_size=1, max_size=8),
       st.integers(-2**31, 2**31 - 1),
       st.lists(st.integers(-31, 31), min_size=8, max_size=8))
def test_shift_chains_match_reference(ops, start, amounts):
    """Shift semantics: ASH is arithmetic, LSH logical, sign = direction."""
    expected = _signed32(start)
    lines = ["start:"]
    for op, amount in zip(ops, amounts):
        lines.append(f"    {op} R0, #{amount}, R0")
        if op == "ASH":
            expected = _signed32(expected << amount if amount >= 0
                                 else expected >> -amount)
        else:
            unsigned = expected & 0xFFFFFFFF
            expected = _signed32(unsigned << amount if amount >= 0
                                 else unsigned >> -amount)
    lines.append("    HALT")
    program = assemble("\n".join(lines))
    proc = Mdp(node_id=0)
    program.load(proc)
    regs = proc.registers[Priority.BACKGROUND]
    regs.write("R0", Word.from_int(start))
    proc.set_background(program.entry("start"))
    now = 0
    while not proc.halted and now < 100_000:
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    assert regs.read("R0").value == expected
