"""Tests for the node memory system and segment allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import MemoryError_, SegmentationFault
from repro.core.memory import IMEM_WORDS, NodeMemory, SegmentAllocator
from repro.core.word import Word


@pytest.fixture
def memory():
    return NodeMemory(imem_words=256, emem_words=1024)


class TestGeometry:
    def test_default_sizes(self):
        memory = NodeMemory()
        assert memory.imem_words == 4096
        assert memory.emem_words == 256 * 1024
        assert memory.total_words == 4096 + 256 * 1024

    def test_is_internal(self, memory):
        assert memory.is_internal(0)
        assert memory.is_internal(255)
        assert not memory.is_internal(256)

    def test_rejects_bad_sizes(self):
        with pytest.raises(MemoryError_):
            NodeMemory(imem_words=0)


class TestAccess:
    def test_read_write_roundtrip(self, memory):
        memory.write(10, Word.from_int(99))
        assert memory.read(10) == Word.from_int(99)

    def test_initial_contents_are_nil(self, memory):
        assert memory.read(5).value == 0

    def test_out_of_range_read(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read(memory.total_words)

    def test_negative_address(self, memory):
        with pytest.raises(SegmentationFault):
            memory.read(-1)

    def test_write_requires_word(self, memory):
        with pytest.raises(MemoryError_):
            memory.write(0, 42)

    def test_peek_poke_do_not_meter(self, memory):
        memory.poke(3, Word.from_int(1))
        assert memory.peek(3).value == 1
        assert memory.meter.cycles == 0


class TestAccessCosts:
    def test_imem_read_costs_one(self, memory):
        memory.read(0)
        assert memory.meter.take_cycles() == 1

    def test_emem_read_costs_six(self, memory):
        memory.read(300)
        assert memory.meter.take_cycles() == 6

    def test_costs_accumulate(self, memory):
        memory.read(0)
        memory.read(300)
        assert memory.meter.take_cycles() == 7

    def test_take_cycles_clears(self, memory):
        memory.read(0)
        memory.meter.take_cycles()
        assert memory.meter.take_cycles() == 0

    def test_traffic_counters(self, memory):
        memory.read(0)
        memory.write(0, Word.from_int(1))
        memory.read(300)
        memory.write(300, Word.from_int(1))
        assert memory.meter.imem_reads == 1
        assert memory.meter.imem_writes == 1
        assert memory.meter.emem_reads == 1
        assert memory.meter.emem_writes == 1

    def test_access_cycles_helper(self, memory):
        assert memory.access_cycles(0) == 1
        assert memory.access_cycles(500) == 6


class TestBlocks:
    def test_load_dump_roundtrip(self, memory):
        words = [Word.from_int(i) for i in range(8)]
        memory.load_block(16, words)
        assert memory.dump_block(16, 8) == words

    def test_load_block_bounds(self, memory):
        with pytest.raises(MemoryError_):
            memory.load_block(memory.total_words - 2, [Word.from_int(0)] * 4)

    def test_dump_block_bounds(self, memory):
        with pytest.raises(MemoryError_):
            memory.dump_block(-1, 4)


class TestIndexedAccess:
    def test_read_indexed(self, memory):
        memory.poke(100, Word.from_int(55))
        descriptor = Word.segment(100, 4)
        assert memory.read_indexed(descriptor, 0).value == 55

    def test_write_indexed(self, memory):
        descriptor = Word.segment(100, 4)
        memory.write_indexed(descriptor, 3, Word.from_int(7))
        assert memory.peek(103).value == 7

    def test_index_bounds_checked(self, memory):
        descriptor = Word.segment(100, 4)
        with pytest.raises(SegmentationFault):
            memory.read_indexed(descriptor, 4)

    def test_negative_index_rejected(self, memory):
        descriptor = Word.segment(100, 4)
        with pytest.raises(SegmentationFault):
            memory.read_indexed(descriptor, -1)

    @given(st.integers(0, 15))
    def test_all_indices_in_segment_accessible(self, index):
        memory = NodeMemory(imem_words=256, emem_words=64)
        descriptor = Word.segment(32, 16)
        memory.write_indexed(descriptor, index, Word.from_int(index))
        assert memory.read_indexed(descriptor, index).value == index


class TestAllocator:
    def test_alloc_internal(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        descriptor = allocator.alloc(16, internal=True)
        base, length = descriptor.as_segment()
        assert base == 64 and length == 16

    def test_alloc_external(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        descriptor = allocator.alloc(16)
        base, _ = descriptor.as_segment()
        assert base >= memory.imem_words

    def test_sequential_allocations_disjoint(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        a = allocator.alloc(8, internal=True).as_segment()
        b = allocator.alloc(8, internal=True).as_segment()
        assert a[0] + a[1] <= b[0]

    def test_exhaustion(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        with pytest.raises(MemoryError_):
            allocator.alloc(memory.imem_words, internal=True)

    def test_zero_length_rejected(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        with pytest.raises(MemoryError_):
            allocator.alloc(0)

    def test_mark_release(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        mark = allocator.mark()
        allocator.alloc(32, internal=True)
        free_before = allocator.imem_free
        allocator.release(mark)
        assert allocator.imem_free == free_before + 32

    def test_reset(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        initial = allocator.imem_free
        allocator.alloc(32, internal=True)
        allocator.reset()
        assert allocator.imem_free == initial

    def test_bad_release_mark(self, memory):
        allocator = SegmentAllocator(memory, imem_start=64)
        with pytest.raises(MemoryError_):
            allocator.release((0, memory.imem_words))
