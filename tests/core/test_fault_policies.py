"""Tests for the fault-policy layer in isolation."""

import pytest

from repro.core.errors import CfutFault, FutUseFault, SendFault, XlateMissFault
from repro.core.faults import AbortFaultPolicy, RuntimeFaultPolicy
from repro.core.processor import Mdp
from repro.core.word import Word


@pytest.fixture
def proc():
    return Mdp(node_id=0)


class TestRuntimePolicy:
    def test_send_fault_costs_one_cycle(self, proc):
        policy = RuntimeFaultPolicy()
        cost = policy.on_send_fault(proc, SendFault("full"))
        assert cost == 1
        assert proc.counters.send_faults == 1

    def test_xlate_miss_refills_from_backing(self, proc):
        policy = RuntimeFaultPolicy()
        key = Word.from_int(9)
        proc.amt._backing[key] = Word.from_int(90)
        cost = policy.on_xlate_miss(proc, key, XlateMissFault("miss"))
        assert cost == proc.costs.xlate_miss
        assert proc.amt.xlate(key).value == 90

    def test_xlate_miss_unbound_reraises(self, proc):
        policy = RuntimeFaultPolicy()
        with pytest.raises(XlateMissFault):
            policy.on_xlate_miss(proc, Word.from_int(404),
                                 XlateMissFault("miss"))

    def test_cfut_without_address_is_fatal(self, proc):
        """A cfut in a register has no home to watch: programming error."""
        policy = RuntimeFaultPolicy()
        fault = CfutFault("register cfut")
        with pytest.raises(CfutFault):
            policy.on_cfut(proc, None, fault)

    def test_fut_without_address_is_fatal(self, proc):
        policy = RuntimeFaultPolicy()
        with pytest.raises(FutUseFault):
            policy.on_fut_use(proc, None, FutUseFault("register fut"))

    def test_configurable_costs(self):
        policy = RuntimeFaultPolicy(save_cycles=40, restart_cycles=35)
        assert policy.save_cycles == 40
        assert policy.restart_cycles == 35


class TestAbortPolicy:
    def test_everything_reraises(self, proc):
        policy = AbortFaultPolicy()
        with pytest.raises(CfutFault):
            policy.on_cfut(proc, 100, CfutFault("x"))
        with pytest.raises(FutUseFault):
            policy.on_fut_use(proc, 100, FutUseFault("x"))
        with pytest.raises(XlateMissFault):
            policy.on_xlate_miss(proc, Word.from_int(1), XlateMissFault("x"))
        with pytest.raises(SendFault):
            policy.on_send_fault(proc, SendFault("x"))
