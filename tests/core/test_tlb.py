"""Tests for the proposed TLB pair (the paper's naming upgrade)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError, XlateMissFault
from repro.core.tlb import NodeTlb, TranslationBuffer


class TestTranslationBuffer:
    def test_map_translate(self):
        tlb = TranslationBuffer()
        tlb.map(5, 500)
        assert tlb.translate(5) == 500

    def test_unmapped_faults(self):
        with pytest.raises(XlateMissFault):
            TranslationBuffer().translate(1)

    def test_first_translate_is_walk_then_hit(self):
        tlb = TranslationBuffer()
        tlb.map(5, 500)
        tlb.translate(5)
        assert tlb.walks == 1
        tlb.translate(5)
        assert tlb.hits == 1
        assert tlb.walks == 1

    def test_lookup_does_not_walk(self):
        tlb = TranslationBuffer()
        tlb.map(5, 500)
        assert tlb.lookup(5) is None  # not yet cached
        assert tlb.walks == 0

    def test_unmap_invalidates(self):
        tlb = TranslationBuffer()
        tlb.map(5, 500)
        tlb.translate(5)
        tlb.unmap(5)
        with pytest.raises(XlateMissFault):
            tlb.translate(5)

    def test_eviction_refills_from_backing(self):
        tlb = TranslationBuffer(sets=1, ways=1)
        tlb.map(0, 100)
        tlb.map(1, 101)
        tlb.translate(0)
        tlb.translate(1)  # evicts 0
        assert tlb.translate(0) == 100  # walked again
        assert tlb.walks == 3

    def test_hit_ratio(self):
        tlb = TranslationBuffer()
        tlb.map(1, 10)
        tlb.translate(1)
        tlb.translate(1)
        tlb.translate(1)
        assert tlb.hit_ratio == pytest.approx(2 / 3)

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            TranslationBuffer(sets=0)

    @given(st.dictionaries(st.integers(0, 100), st.integers(0, 10**6),
                           max_size=40))
    def test_agrees_with_dict(self, mapping):
        tlb = TranslationBuffer(sets=4, ways=2)
        for virtual, physical in mapping.items():
            tlb.map(virtual, physical)
        for virtual, physical in mapping.items():
            assert tlb.translate(virtual) == physical


class TestNodeTlb:
    def test_identity_preload(self):
        tlb = NodeTlb(8)
        assert all(tlb.translate(i) == i for i in range(8))

    def test_partition_remap(self):
        tlb = NodeTlb(8)
        tlb.restrict_partition([4, 5, 6, 7])
        assert tlb.translate(0) == 4
        assert tlb.translate(3) == 7

    def test_partition_protection(self):
        """Names outside the partition fault — the isolation property."""
        tlb = NodeTlb(8)
        tlb.restrict_partition([4, 5])
        with pytest.raises(XlateMissFault):
            tlb.translate(2)

    def test_partition_member_validation(self):
        tlb = NodeTlb(4)
        with pytest.raises(ConfigurationError):
            tlb.restrict_partition([9])


class TestMachineIntegration:
    def test_vnode_destination_translated(self):
        from repro.asm import assemble
        from repro.core import Priority, Tag, Word
        from repro.machine import JMachine, MachineConfig

        machine = JMachine(MachineConfig(dims=(2, 2, 1),
                                         auto_node_translation=True))
        program = assemble("""
        sender:
            MOVE  [A0+1], R1          ; a VNODE-tagged destination
            SEND  R1
            SENDE #IP:landing
            SUSPEND
        landing:
            MOVE #1, [A0+0]
            SUSPEND
        """)
        machine.load(program)
        base = program.end + 4
        for node in machine.nodes:
            node.proc.registers[Priority.P0].write(
                "A0", Word.segment(base, 4))
        # Remap node 0's view: virtual node 1 -> physical node 3.
        machine.node(0).interface.node_tlb.map(1, 3)
        machine.node(0).proc.memory.poke(base + 1, Word(Tag.VNODE, 1))
        machine.inject(0, program.entry("sender"))
        machine.run(max_cycles=5_000)
        assert machine.node(3).proc.memory.peek(base).value == 1
