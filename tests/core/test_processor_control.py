"""Instruction-level tests: control flow and the background thread."""

import pytest

from repro.core.errors import IllegalInstructionFault
from repro.core.registers import Priority
from repro.core.word import Word

from tests.util import globals_segment, load_processor, run_background


class TestBranches:
    def test_unconditional_branch(self):
        proc, program = load_processor("""
        start:
            BR skip
            MOVE #1, R0
        skip:
            MOVE #2, R1
            HALT
        """)
        run_background(proc, program.entry("start"))
        regs = proc.registers[Priority.BACKGROUND]
        assert regs.read("R0").value == 0
        assert regs.read("R1").value == 2

    def test_bt_taken_on_nonzero(self):
        proc, program = load_processor("""
        start:
            MOVE #1, R0
            BT R0, yes
            MOVE #9, R1
            HALT
        yes:
            MOVE #5, R1
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1").value == 5

    def test_bf_taken_on_zero(self):
        proc, program = load_processor("""
        start:
            MOVE #0, R0
            BF R0, yes
            MOVE #9, R1
            HALT
        yes:
            MOVE #5, R1
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1").value == 5

    def test_loop_counts_correctly(self):
        proc, program = load_processor("""
        start:
            MOVE #0, R0
            MOVE #5, R1
        loop:
            ADD R0, #2, R0
            SUB R1, #1, R1
            BT R1, loop
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R0").value == 10


class TestCallJmp:
    def test_call_saves_return_address(self):
        proc, program = load_processor("""
        start:
            CALL sub, R3
            MOVE #2, R1
            HALT
        sub:
            MOVE #1, R0
            JMP R3
        """)
        run_background(proc, program.entry("start"))
        regs = proc.registers[Priority.BACKGROUND]
        assert regs.read("R0").value == 1
        assert regs.read("R1").value == 2

    def test_nested_calls_with_distinct_link_regs(self):
        proc, program = load_processor("""
        start:
            CALL outer, R3
            MOVE #100, R0
            HALT
        outer:
            CALL inner, R2
            ADD R1, #10, R1
            JMP R3
        inner:
            MOVE #1, R1
            JMP R2
        """)
        run_background(proc, program.entry("start"))
        regs = proc.registers[Priority.BACKGROUND]
        assert regs.read("R1").value == 11
        assert regs.read("R0").value == 100


class TestHaltAndBackground:
    def test_halt_stops_node(self):
        proc, program = load_processor("start:\n HALT")
        run_background(proc, program.entry("start"))
        assert proc.halted
        assert proc.tick(999) is None

    def test_background_suspend_finishes_thread(self):
        proc, program = load_processor("""
        start:
            MOVE #1, R0
            SUSPEND
        """)
        run_background(proc, program.entry("start"))
        assert not proc.halted
        assert not proc.has_work()

    def test_missing_instruction_faults(self):
        proc, _ = load_processor("start:\n NOP\n HALT")
        proc.set_background(9999)
        with pytest.raises(IllegalInstructionFault):
            proc.tick(0)

    def test_nop_executes(self):
        proc, program = load_processor("start:\n NOP\n NOP\n HALT")
        cycles = run_background(proc, program.entry("start"))
        assert proc.counters.instructions == 3
        assert cycles == 3

    def test_has_work_reflects_background(self):
        proc, program = load_processor("start:\n HALT")
        assert not proc.has_work()
        proc.set_background(program.entry("start"))
        assert proc.has_work()


class TestCounters:
    def test_instruction_count(self):
        proc, program = load_processor("""
        start:
            MOVE #1, R0
            ADD R0, R0, R1
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.counters.instructions == 3

    def test_compute_category(self):
        proc, program = load_processor("""
        start:
            ADD R0, R0, R1
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.counters.compute_cycles == 2
        assert proc.counters.comm_cycles == 0

    def test_xlate_category(self):
        proc, program = load_processor("""
        start:
            ENTER R0, R1
            XLATE R0, R2
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.counters.xlate_cycles == 4 + 3  # enter + xlate hit
