"""Tests for the ISA metadata and operand classes."""

import pytest

from repro.core.errors import AssemblyError, IllegalInstructionFault
from repro.core.isa import (ALU_OPS, COMPARE_OPS, Imm, Instr, MemIdx, MemOff,
                            OPCODES, Reg)
from repro.core.word import Word


class TestOpcodeTable:
    def test_all_alu_ops_present(self):
        for name in ALU_OPS + COMPARE_OPS:
            assert name in OPCODES
            assert OPCODES[name].roles == "ssd"

    def test_send_family(self):
        assert OPCODES["SEND"].roles == "s"
        assert OPCODES["SEND2"].roles == "ss"
        assert OPCODES["SENDE"].roles == "s"
        assert OPCODES["SEND2E"].roles == "ss"
        for name in ("SEND", "SEND2", "SENDE", "SEND2E"):
            assert OPCODES[name].kind == "send"

    def test_kind_partition(self):
        kinds = {spec.kind for spec in OPCODES.values()}
        assert kinds == {"move", "alu", "branch", "control", "send",
                         "name", "sync"}

    def test_every_opcode_documented(self):
        assert all(spec.doc for spec in OPCODES.values())

    def test_arity_matches_roles(self):
        assert all(spec.arity == len(spec.roles)
                   for spec in OPCODES.values())


class TestOperands:
    def test_reg_validates_name(self):
        with pytest.raises(IllegalInstructionFault):
            Reg("R7")

    def test_reg_is_address_flag(self):
        assert Reg("A0").is_address
        assert not Reg("R0").is_address

    def test_reg_equality(self):
        assert Reg("r1") == Reg("R1")
        assert Reg("R1") != Reg("R2")

    def test_memoff_requires_address_register(self):
        with pytest.raises(IllegalInstructionFault):
            MemOff("R1", 0)

    def test_memidx_requires_data_index(self):
        with pytest.raises(IllegalInstructionFault):
            MemIdx("A1", "A2")

    def test_imm_holds_word(self):
        assert Imm(Word.from_int(3)).word.value == 3


class TestInstr:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError):
            Instr("FLY", [])

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError):
            Instr("MOVE", [Reg("R0")])

    def test_memory_operands_helper(self):
        instr = Instr("ADD", [MemOff("A0", 1), Reg("R0"), Reg("R1")])
        assert len(instr.memory_operands()) == 1

    def test_repr_is_readable(self):
        instr = Instr("MOVE", [Imm(Word.from_int(1)), Reg("R0")])
        assert "MOVE" in repr(instr)
