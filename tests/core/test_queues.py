"""Tests for the hardware message queues."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import (ConfigurationError, QueueOverflowFault,
                               QueueUnderflowError, SimulationError)
from repro.core.message import Message
from repro.core.queues import DEFAULT_QUEUE_WORDS, MIN_MESSAGE_WORDS, MessageQueue
from repro.core.word import Word


def make_message(length=2, dest=0):
    words = [Word.ip(100)] + [Word.from_int(i) for i in range(length - 1)]
    return Message(words, source=0, dest=dest)


class TestFootprint:
    def test_minimum_row(self):
        assert MessageQueue.footprint(make_message(1)) == MIN_MESSAGE_WORDS

    def test_exact_row(self):
        assert MessageQueue.footprint(make_message(4)) == 4

    def test_rounds_up(self):
        assert MessageQueue.footprint(make_message(5)) == 8

    def test_two_rows(self):
        assert MessageQueue.footprint(make_message(8)) == 8


class TestCapacity:
    def test_default_capacity_matches_tuned_j(self):
        queue = MessageQueue()
        assert queue.capacity_words == DEFAULT_QUEUE_WORDS == 128 * 4

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ConfigurationError):
            MessageQueue(capacity_words=2)

    def test_overflow_raises(self):
        queue = MessageQueue(capacity_words=8)
        queue.enqueue(make_message(4))
        queue.enqueue(make_message(4))
        with pytest.raises(QueueOverflowFault):
            queue.enqueue(make_message(1))

    def test_overflow_counted(self):
        queue = MessageQueue(capacity_words=4)
        queue.enqueue(make_message(4))
        with pytest.raises(QueueOverflowFault):
            queue.enqueue(make_message(4))
        assert queue.overflows == 1

    def test_would_fit(self):
        queue = MessageQueue(capacity_words=8)
        assert queue.would_fit(make_message(8))
        queue.enqueue(make_message(4))
        assert queue.would_fit(make_message(4))
        assert not queue.would_fit(make_message(5))


class TestFifo:
    def test_order_preserved(self):
        queue = MessageQueue()
        first = make_message(2)
        second = make_message(3)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_head_does_not_remove(self):
        queue = MessageQueue()
        message = make_message()
        queue.enqueue(message)
        assert queue.head() is message
        assert len(queue) == 1

    def test_head_empty_is_none(self):
        assert MessageQueue().head() is None

    def test_dequeue_empty_raises(self):
        # Host-side misuse is an underflow, not the architectural
        # overflow fault (which means "message arrived, no room").
        with pytest.raises(QueueUnderflowError):
            MessageQueue().dequeue()
        with pytest.raises(SimulationError):
            MessageQueue().dequeue()

    def test_queue_pressure_shrinks_free_words(self):
        queue = MessageQueue(capacity_words=8)
        baseline = queue.free_words
        queue.pressure_words = 4
        assert queue.free_words == baseline - 4
        queue.clear()
        assert queue.pressure_words == 0
        assert queue.free_words == baseline

    def test_dequeue_frees_space(self):
        queue = MessageQueue(capacity_words=4)
        queue.enqueue(make_message(4))
        queue.dequeue()
        queue.enqueue(make_message(4))  # fits again

    def test_bool_and_len(self):
        queue = MessageQueue()
        assert not queue
        queue.enqueue(make_message())
        assert queue
        assert len(queue) == 1

    def test_clear(self):
        queue = MessageQueue()
        queue.enqueue(make_message())
        queue.clear()
        assert not queue
        assert queue.used_words == 0


class TestStats:
    def test_high_water(self):
        queue = MessageQueue()
        queue.enqueue(make_message(4))
        queue.enqueue(make_message(4))
        queue.dequeue()
        assert queue.high_water == 8

    def test_enqueued_count(self):
        queue = MessageQueue()
        for _ in range(3):
            queue.enqueue(make_message())
        assert queue.enqueued == 3


@given(st.lists(st.integers(min_value=1, max_value=12), max_size=30))
def test_space_accounting_invariant(lengths):
    """Used words always equals the sum of enqueued footprints."""
    queue = MessageQueue(capacity_words=4096)
    live = []
    for length in lengths:
        message = make_message(length)
        queue.enqueue(message)
        live.append(message)
        if len(live) > 3:
            queue.dequeue()
            live.pop(0)
        expected = sum(MessageQueue.footprint(m) for m in live)
        assert queue.used_words == expected
        assert queue.free_words == queue.capacity_words - expected
