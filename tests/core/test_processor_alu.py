"""Instruction-level tests: arithmetic, logic, moves, and tag handling."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import TypeFault
from repro.core.faults import AbortFaultPolicy
from repro.core.registers import Priority
from repro.core.tags import Tag
from repro.core.word import Word

from tests.util import globals_segment, load_processor, run_background


def run_binop(op: str, a: int, b: int) -> Word:
    proc, program = load_processor(f"""
    start:
        {op} R0, R1, R2
        HALT
    """)
    regs = proc.registers[Priority.BACKGROUND]
    regs.write("R0", Word.from_int(a))
    regs.write("R1", Word.from_int(b))
    run_background(proc, program.entry("start"))
    return proc.registers[Priority.BACKGROUND].read("R2")


class TestArithmetic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("ADD", 2, 3, 5),
        ("ADD", -2, 3, 1),
        ("SUB", 10, 4, 6),
        ("SUB", 4, 10, -6),
        ("MUL", 6, 7, 42),
        ("MUL", -3, 3, -9),
        ("DIV", 7, 2, 3),
        ("DIV", -7, 2, -3),      # C-style truncation
        ("MOD", 7, 3, 1),
        ("MOD", -7, 3, -1),      # sign follows dividend
        ("AND", 0b1100, 0b1010, 0b1000),
        ("OR", 0b1100, 0b1010, 0b1110),
        ("XOR", 0b1100, 0b1010, 0b0110),
        ("ASH", 1, 4, 16),
        ("ASH", 16, -2, 4),
        ("ASH", -16, -2, -4),    # arithmetic shift preserves sign
        ("LSH", 1, 3, 8),
    ])
    def test_binop(self, op, a, b, expected):
        assert run_binop(op, a, b).value == expected

    def test_lsh_right_is_logical(self):
        result = run_binop("LSH", -16, -28)
        assert result.value == (-16 & 0xFFFFFFFF) >> 28

    def test_add_wraps_32_bits(self):
        assert run_binop("ADD", 2**31 - 1, 1).value == -(2**31)

    def test_div_by_zero_faults(self):
        with pytest.raises(TypeFault):
            run_binop("DIV", 1, 0)

    def test_mod_by_zero_faults(self):
        with pytest.raises(TypeFault):
            run_binop("MOD", 1, 0)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_add_matches_python(self, a, b):
        assert run_binop("ADD", a, b).value == a + b

    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_divmod_identity(self, a, b):
        q = run_binop("DIV", a, b).value
        r = run_binop("MOD", a, b).value
        assert q * b + r == a
        assert abs(r) < b


class TestCompare:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("EQ", 3, 3, 1), ("EQ", 3, 4, 0),
        ("NE", 3, 4, 1), ("NE", 3, 3, 0),
        ("LT", 2, 3, 1), ("LT", 3, 3, 0),
        ("LE", 3, 3, 1), ("LE", 4, 3, 0),
        ("GT", 4, 3, 1), ("GT", 3, 3, 0),
        ("GE", 3, 3, 1), ("GE", 2, 3, 0),
    ])
    def test_compare(self, op, a, b, expected):
        result = run_binop(op, a, b)
        assert result.tag is Tag.BOOL
        assert result.value == expected


class TestUnary:
    def test_not(self):
        proc, program = load_processor("""
        start:
            NOT R0, R1
            HALT
        """)
        proc.registers[Priority.BACKGROUND].write("R0", Word.from_int(0))
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1").value == -1

    def test_neg(self):
        proc, program = load_processor("""
        start:
            NEG R0, R1
            HALT
        """)
        proc.registers[Priority.BACKGROUND].write("R0", Word.from_int(5))
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1").value == -5


class TestMovesAndTags:
    def test_move_immediate(self):
        proc, program = load_processor("""
        start:
            MOVE #42, R0
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R0").value == 42

    def test_move_memory_roundtrip(self):
        proc, program = load_processor("""
        start:
            MOVE #7, [A0+2]
            MOVE [A0+2], R1
            HALT
        """)
        globals_segment(proc, program)
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1").value == 7

    def test_wtag_creates_cfut(self):
        proc, program = load_processor("""
        start:
            WTAG #0, %CFUT, [A0+0]
            HALT
        """)
        base = globals_segment(proc, program)
        run_background(proc, program.entry("start"))
        assert proc.memory.peek(base).tag is Tag.CFUT

    def test_rtag_reads_tag_code(self):
        proc, program = load_processor("""
        start:
            RTAG R0, R1
            HALT
        """)
        proc.registers[Priority.BACKGROUND].write("R0", Word.fut())
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1").value == int(Tag.FUT)

    def test_check_true_and_false(self):
        proc, program = load_processor("""
        start:
            CHECK R0, %CFUT, R1
            CHECK R0, %INT, R2
            HALT
        """)
        proc.registers[Priority.BACKGROUND].write("R0", Word.cfut())
        run_background(proc, program.entry("start"))
        regs = proc.registers[Priority.BACKGROUND]
        assert regs.read("R1").value == 1
        assert regs.read("R2").value == 0

    def test_moveid(self):
        proc, program = load_processor("""
        start:
            MOVEID R3
            HALT
        """)
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R3").value == 0

    def test_alu_on_future_faults(self):
        proc, program = load_processor("""
        start:
            ADD R0, #1, R1
            HALT
        """, fault_policy=AbortFaultPolicy())
        proc.registers[Priority.BACKGROUND].write("R0", Word.fut())
        from repro.core.errors import FutUseFault
        with pytest.raises(FutUseFault):
            run_background(proc, program.entry("start"))

    def test_move_of_fut_is_allowed(self):
        proc, program = load_processor("""
        start:
            MOVE R0, R1
            HALT
        """, fault_policy=AbortFaultPolicy())
        proc.registers[Priority.BACKGROUND].write("R0", Word.fut(3))
        run_background(proc, program.entry("start"))
        assert proc.registers[Priority.BACKGROUND].read("R1") == Word.fut(3)

    def test_alu_on_pointer_tag_faults(self):
        proc, program = load_processor("""
        start:
            ADD R0, #1, R1
            HALT
        """)
        proc.registers[Priority.BACKGROUND].write("R0", Word.segment(0, 4))
        with pytest.raises(TypeFault):
            run_background(proc, program.entry("start"))


class TestCycleCosts:
    def _cycles(self, source, setup=None):
        proc, program = load_processor(source)
        globals_segment(proc, program)
        if setup:
            setup(proc)
        total = run_background(proc, program.entry("start"))
        return total - 1  # exclude the HALT

    def test_reg_reg_op_is_one_cycle(self):
        assert self._cycles("start:\n ADD R0, R1, R2\n HALT") == 1

    def test_imem_operand_is_two_cycles(self):
        assert self._cycles("start:\n ADD [A0+0], R1, R2\n HALT") == 2

    def test_taken_branch_costs_three(self):
        assert self._cycles("start:\n BR next\nnext: HALT") == 3

    def test_untaken_branch_costs_one(self):
        assert self._cycles("start:\n BT R0, away\n HALT\naway: HALT") == 1

    def test_mul_costs_two(self):
        assert self._cycles("start:\n MUL R0, R1, R2\n HALT") == 2

    def test_div_costs_thirteen(self):
        def setup(proc):
            proc.registers[Priority.BACKGROUND].write("R1", Word.from_int(1))
        assert self._cycles("start:\n DIV R0, R1, R2\n HALT", setup) == 13
