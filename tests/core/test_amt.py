"""Tests for the associative match table (enter/xlate hardware)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.amt import AssociativeMatchTable
from repro.core.errors import ConfigurationError, XlateMissFault
from repro.core.word import Word


@pytest.fixture
def amt():
    return AssociativeMatchTable(sets=8, ways=2)


class TestEnterXlate:
    def test_roundtrip(self, amt):
        amt.enter(Word.from_int(1), Word.segment(100, 8))
        assert amt.xlate(Word.from_int(1)) == Word.segment(100, 8)

    def test_miss_faults(self, amt):
        with pytest.raises(XlateMissFault):
            amt.xlate(Word.from_int(99))

    def test_replace_existing(self, amt):
        key = Word.from_int(1)
        amt.enter(key, Word.from_int(10))
        amt.enter(key, Word.from_int(20))
        assert amt.xlate(key).value == 20

    def test_tag_participates_in_matching(self, amt):
        amt.enter(Word.from_int(7), Word.from_int(1))
        amt.enter(Word.from_sym(7), Word.from_int(2))
        assert amt.xlate(Word.from_int(7)).value == 1
        assert amt.xlate(Word.from_sym(7)).value == 2

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            AssociativeMatchTable(sets=0)


class TestEvictionAndBacking:
    def test_eviction_falls_back_to_backing(self):
        amt = AssociativeMatchTable(sets=1, ways=2)
        keys = [Word.from_int(i) for i in range(3)]
        for i, key in enumerate(keys):
            amt.enter(key, Word.from_int(100 + i))
        # One of the three must have been evicted from the single set.
        assert amt.evictions >= 1
        # The evicted binding is still resolvable via the miss path.
        for i, key in enumerate(keys):
            try:
                value = amt.xlate(key)
            except XlateMissFault:
                value = amt.miss_fill(key)
            assert value.value == 100 + i

    def test_miss_fill_unbound_raises(self, amt):
        with pytest.raises(XlateMissFault):
            amt.miss_fill(Word.from_int(404))

    def test_miss_fill_installs(self):
        amt = AssociativeMatchTable(sets=1, ways=1)
        amt.enter(Word.from_int(1), Word.from_int(10))
        amt.enter(Word.from_int(2), Word.from_int(20))  # evicts key 1
        with pytest.raises(XlateMissFault):
            amt.xlate(Word.from_int(1))
        amt.miss_fill(Word.from_int(1))
        assert amt.xlate(Word.from_int(1)).value == 10

    def test_lru_within_set(self):
        amt = AssociativeMatchTable(sets=1, ways=2)
        a, b, c = (Word.from_int(i) for i in range(3))
        amt.enter(a, Word.from_int(0))
        amt.enter(b, Word.from_int(1))
        amt.xlate(a)  # refresh a: b becomes LRU
        amt.enter(c, Word.from_int(2))  # should evict b
        amt.xlate(a)
        amt.xlate(c)
        with pytest.raises(XlateMissFault):
            amt.xlate(b)


class TestProbePurge:
    def test_probe_hit(self, amt):
        amt.enter(Word.from_int(1), Word.from_int(10))
        assert amt.probe(Word.from_int(1)).value == 10

    def test_probe_miss_returns_none(self, amt):
        assert amt.probe(Word.from_int(1)) is None

    def test_purge_removes_everywhere(self, amt):
        key = Word.from_int(1)
        amt.enter(key, Word.from_int(10))
        amt.purge(key)
        assert amt.probe(key) is None
        with pytest.raises(XlateMissFault):
            amt.xlate(key)


class TestStats:
    def test_hit_miss_counters(self, amt):
        amt.enter(Word.from_int(1), Word.from_int(10))
        amt.xlate(Word.from_int(1))
        with pytest.raises(XlateMissFault):
            amt.xlate(Word.from_int(2))
        assert amt.hits == 1
        assert amt.misses == 1
        assert amt.miss_ratio == 0.5

    def test_miss_ratio_no_traffic(self, amt):
        assert amt.miss_ratio == 0.0

    def test_clear(self, amt):
        amt.enter(Word.from_int(1), Word.from_int(10))
        amt.clear()
        assert amt.probe(Word.from_int(1)) is None
        assert amt.enters == 0


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)),
                max_size=60))
def test_behaves_like_a_dict(pairs):
    """enter/xlate must agree with a plain dict regardless of evictions."""
    amt = AssociativeMatchTable(sets=4, ways=2)
    model = {}
    for key_value, data in pairs:
        key = Word.from_int(key_value)
        amt.enter(key, Word.from_int(data))
        model[key] = Word.from_int(data)
    for key, expected in model.items():
        try:
            assert amt.xlate(key) == expected
        except XlateMissFault:
            assert amt.miss_fill(key) == expected
