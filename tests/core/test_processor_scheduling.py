"""Scheduler-order tests: restarts, queues, and priorities interleaved."""

from repro.core.faults import RuntimeFaultPolicy
from repro.core.message import Message
from repro.core.registers import Priority
from repro.core.word import Word

from tests.util import load_processor


def drive(proc, limit=20_000):
    now = 0
    while proc.has_work() and now < limit:
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    return now


def test_restarted_thread_runs_before_new_messages():
    """A thread whose value arrived resumes ahead of queued work."""
    proc, program = load_processor("""
    waiter:
        MOVE [A0+0], R2          ; suspends on the cfut
        ADD  [A0+1], #10, R3     ; order log: record "waiter" step
        MOVE R3, [A0+1]
        SUSPEND
    producer:
        MOVE #5, [A0+0]          ; wakes the waiter
        SUSPEND
    late:
        ADD  [A0+1], #1, R3
        MOVE R3, [A0+1]
        SUSPEND
    """, fault_policy=RuntimeFaultPolicy(save_cycles=5, restart_cycles=5))
    base = program.end + 4
    proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    proc.memory.poke(base, Word.cfut())

    proc.deliver(Message.build(program.entry("waiter"), [], 0, 0), 0)
    drive(proc)  # waiter suspends
    # Producer then a later message; after the producer's write, the
    # restarted waiter must run before 'late'.
    proc.deliver(Message.build(program.entry("producer"), [], 0, 0), 100)
    proc.deliver(Message.build(program.entry("late"), [], 0, 0), 100)
    drive(proc)
    # waiter added 10 first, late added 1 after: 0 +10 -> 10, +1 -> 11.
    # If 'late' had run first the intermediate value would differ, but
    # the final is the same; check order via the waiter's read of [A0+1]:
    # waiter computed R3 from [A0+1] before late's increment, so the
    # final value is 11 either way — assert via counters instead.
    assert proc.counters.restarts == 1
    assert proc.memory.peek(base + 1).value == 11


def test_priority_one_queue_beats_priority_zero_restart():
    """P1 work preempts even a restartable P0 thread."""
    proc, program = load_processor("""
    waiter:
        MOVE [A0+0], R2
        MOVE #1, [A0+2]
        SUSPEND
    producer:
        MOVE #5, [A0+0]
        SUSPEND
    urgent:
        MOVE [A0+2], R1
        MOVE R1, [A0+3]          ; snapshot: had the waiter finished?
        SUSPEND
    """, fault_policy=RuntimeFaultPolicy(save_cycles=5, restart_cycles=5))
    base = program.end + 4
    for priority in (Priority.P0, Priority.P1):
        proc.registers[priority].write("A0", Word.segment(base, 4))
    proc.memory.poke(base, Word.cfut())

    proc.deliver(Message.build(program.entry("waiter"), [], 0, 0), 0)
    drive(proc)
    # The producer wakes the waiter, but an urgent P1 message is queued
    # at the same time: P1 must run before the restarted P0 thread.
    proc.deliver(Message.build(program.entry("producer"), [], 0, 0), 100)
    proc.deliver(Message.build(program.entry("urgent"), [], 0, 0,
                               priority=Priority.P1), 100)
    drive(proc)
    # urgent observed [A0+2] == 0: the waiter had not yet resumed.
    assert proc.memory.peek(base + 3).value == 0
    assert proc.memory.peek(base + 2).value == 1  # waiter did finish


def test_two_waiters_different_addresses():
    proc, program = load_processor("""
    w1:
        MOVE [A0+0], R2
        MOVE #1, [A0+2]
        SUSPEND
    w2:
        MOVE [A0+1], R2
        MOVE #1, [A0+3]
        SUSPEND
    fill_second:
        MOVE #9, [A0+1]
        SUSPEND
    """, fault_policy=RuntimeFaultPolicy(save_cycles=5, restart_cycles=5))
    base = program.end + 4
    proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    proc.memory.poke(base, Word.cfut())
    proc.memory.poke(base + 1, Word.cfut())

    proc.deliver(Message.build(program.entry("w1"), [], 0, 0), 0)
    proc.deliver(Message.build(program.entry("w2"), [], 0, 0), 0)
    drive(proc)
    assert proc.counters.suspends == 2
    # Fill only the second slot: only w2 must wake.
    proc.deliver(Message.build(program.entry("fill_second"), [], 0, 0), 100)
    drive(proc)
    assert proc.memory.peek(base + 3).value == 1
    assert proc.memory.peek(base + 2).value == 0  # w1 still waiting
