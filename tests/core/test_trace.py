"""Tests for the instruction tracer."""

import pytest

from repro.core.message import Message
from repro.core.trace import Tracer
from repro.core.word import Word

from tests.util import load_processor, run_background


def test_records_instructions_in_order():
    proc, program = load_processor("""
    start:
        MOVE #1, R0
        ADD R0, R0, R1
        HALT
    """)
    tracer = Tracer.attach(proc)
    run_background(proc, program.entry("start"))
    ops = [e.detail.split()[0] for e in tracer.instructions()]
    assert ops == ["MOVE", "ADD", "HALT"]


def test_event_timestamps_monotone():
    proc, program = load_processor("""
    start:
        MOVE #3, R1
    loop:
        SUB R1, #1, R1
        BT R1, loop
        HALT
    """)
    tracer = Tracer.attach(proc)
    run_background(proc, program.entry("start"))
    cycles = [e.cycle for e in tracer.events]
    assert cycles == sorted(cycles)


def test_records_dispatch_events():
    proc, program = load_processor("""
    handler:
        SUSPEND
    """)
    tracer = Tracer.attach(proc)
    proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
    now = 0
    while proc.has_work():
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    kinds = [e.kind for e in tracer.events]
    assert "dispatch" in kinds


def test_limit_drops_and_reports():
    proc, program = load_processor("""
    start:
        MOVE #50, R1
    loop:
        SUB R1, #1, R1
        BT R1, loop
        HALT
    """)
    tracer = Tracer.attach(proc, limit=10)
    run_background(proc, program.entry("start"))
    assert len(tracer.events) == 10
    assert tracer.dropped > 0
    assert "dropped" in tracer.format()


def test_predicate_filters_instructions():
    proc, program = load_processor("""
    start:
        MOVE #1, R0
        ADD R0, R0, R1
        MOVE R1, R2
        HALT
    """)
    tracer = Tracer.attach(proc, predicate=lambda i: i.op == "MOVE")
    run_background(proc, program.entry("start"))
    ops = {e.detail.split()[0] for e in tracer.instructions()}
    assert ops == {"MOVE"}


def test_detach_stops_recording():
    proc, program = load_processor("""
    start:
        MOVE #1, R0
        HALT
    """)
    tracer = Tracer.attach(proc)
    tracer.detach()
    run_background(proc, program.entry("start"))
    assert tracer.events == []


def test_detach_restores_fast_path():
    proc, program = load_processor("start:\n NOP\n HALT")
    proc.fast_path = True
    tracer = Tracer.attach(proc)
    assert proc.fast_path is False  # forced off while attached
    tracer.detach()
    assert proc.fast_path is True


def test_double_detach_keeps_fast_path():
    """Regression: a second detach must not clobber the restored value."""
    proc, program = load_processor("start:\n NOP\n HALT")
    proc.fast_path = True
    tracer = Tracer.attach(proc)
    tracer.detach()
    tracer.detach()
    assert proc.fast_path is True
    assert tracer._original_tick is None


def test_reentrant_attach_is_noop():
    """Regression: re-splicing must not save fast_path=False as the
    original, nor wrap the already-wrapped tick."""
    proc, program = load_processor("start:\n NOP\n HALT")
    proc.fast_path = True
    tracer = Tracer.attach(proc)
    spliced_tick = proc.tick
    tracer._splice()  # re-entrant attach
    assert proc.tick is spliced_tick
    tracer.detach()
    assert proc.fast_path is True


def test_detach_after_run_raises_restores_fast_path():
    """A run that raises mid-trace must still leave the processor in its
    configured fast-path mode after detach (try/finally discipline)."""
    from repro.core.errors import IllegalInstructionFault

    proc, program = load_processor("start:\n NOP\n HALT")
    proc.fast_path = True
    tracer = Tracer.attach(proc)
    proc.set_background(9999)  # no instruction there -> faults on tick
    with pytest.raises(IllegalInstructionFault):
        proc.tick(0)
    tracer.detach()
    assert proc.fast_path is True


def test_tracer_as_context_manager():
    proc, program = load_processor("start:\n NOP\n HALT")
    proc.fast_path = True
    with Tracer.attach(proc) as tracer:
        run_background(proc, program.entry("start"))
    assert proc.fast_path is True
    assert tracer.instructions()


def test_context_manager_restores_on_raise():
    proc, program = load_processor("start:\n NOP\n HALT")
    proc.fast_path = True
    with pytest.raises(RuntimeError):
        with Tracer.attach(proc):
            raise RuntimeError("boom")
    assert proc.fast_path is True


def test_machine_run_raise_leaves_trace_recoverable():
    """End-to-end: JMachine.run raising does not lose the tracer's
    ability to restore the processor (the run's finally + detach)."""
    from repro.asm.assembler import assemble
    from repro.core.errors import IllegalInstructionFault
    from repro.machine.config import MachineConfig
    from repro.machine.jmachine import JMachine

    machine = JMachine(MachineConfig(dims=(2, 1, 1), fast_path=True))
    program = assemble("handler:\n  BR #9999\n")
    machine.load(program)
    proc = machine.node(0).proc
    tracer = Tracer.attach(proc)
    machine.inject(0, program.entry("handler"))
    with pytest.raises(IllegalInstructionFault):
        machine.run(max_cycles=1000)
    tracer.detach()
    assert proc.fast_path is True
    assert any(e.kind == "dispatch" for e in tracer.events)


def test_format_renders_lines():
    proc, program = load_processor("start:\n NOP\n HALT")
    tracer = Tracer.attach(proc)
    run_background(proc, program.entry("start"))
    text = tracer.format()
    assert "NOP" in text
    assert "n0" in text


def test_tracing_does_not_change_timing():
    source = """
    start:
        MOVE #20, R1
    loop:
        SUB R1, #1, R1
        BT R1, loop
        HALT
    """
    plain, program = load_processor(source)
    baseline = run_background(plain, program.entry("start"))
    traced, program2 = load_processor(source)
    Tracer.attach(traced)
    timed = run_background(traced, program2.entry("start"))
    assert timed == baseline
