"""Tests for the instruction tracer."""

import pytest

from repro.core.message import Message
from repro.core.trace import Tracer
from repro.core.word import Word

from tests.util import load_processor, run_background


def test_records_instructions_in_order():
    proc, program = load_processor("""
    start:
        MOVE #1, R0
        ADD R0, R0, R1
        HALT
    """)
    tracer = Tracer.attach(proc)
    run_background(proc, program.entry("start"))
    ops = [e.detail.split()[0] for e in tracer.instructions()]
    assert ops == ["MOVE", "ADD", "HALT"]


def test_event_timestamps_monotone():
    proc, program = load_processor("""
    start:
        MOVE #3, R1
    loop:
        SUB R1, #1, R1
        BT R1, loop
        HALT
    """)
    tracer = Tracer.attach(proc)
    run_background(proc, program.entry("start"))
    cycles = [e.cycle for e in tracer.events]
    assert cycles == sorted(cycles)


def test_records_dispatch_events():
    proc, program = load_processor("""
    handler:
        SUSPEND
    """)
    tracer = Tracer.attach(proc)
    proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
    now = 0
    while proc.has_work():
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    kinds = [e.kind for e in tracer.events]
    assert "dispatch" in kinds


def test_limit_drops_and_reports():
    proc, program = load_processor("""
    start:
        MOVE #50, R1
    loop:
        SUB R1, #1, R1
        BT R1, loop
        HALT
    """)
    tracer = Tracer.attach(proc, limit=10)
    run_background(proc, program.entry("start"))
    assert len(tracer.events) == 10
    assert tracer.dropped > 0
    assert "dropped" in tracer.format()


def test_predicate_filters_instructions():
    proc, program = load_processor("""
    start:
        MOVE #1, R0
        ADD R0, R0, R1
        MOVE R1, R2
        HALT
    """)
    tracer = Tracer.attach(proc, predicate=lambda i: i.op == "MOVE")
    run_background(proc, program.entry("start"))
    ops = {e.detail.split()[0] for e in tracer.instructions()}
    assert ops == {"MOVE"}


def test_detach_stops_recording():
    proc, program = load_processor("""
    start:
        MOVE #1, R0
        HALT
    """)
    tracer = Tracer.attach(proc)
    tracer.detach()
    run_background(proc, program.entry("start"))
    assert tracer.events == []


def test_format_renders_lines():
    proc, program = load_processor("start:\n NOP\n HALT")
    tracer = Tracer.attach(proc)
    run_background(proc, program.entry("start"))
    text = tracer.format()
    assert "NOP" in text
    assert "n0" in text


def test_tracing_does_not_change_timing():
    source = """
    start:
        MOVE #20, R1
    loop:
        SUB R1, #1, R1
        BT R1, loop
        HALT
    """
    plain, program = load_processor(source)
    baseline = run_background(plain, program.entry("start"))
    traced, program2 = load_processor(source)
    Tracer.attach(traced)
    timed = run_background(traced, program2.entry("start"))
    assert timed == baseline
