"""Tests for the three-set register architecture."""

import pytest

from repro.core.errors import IllegalInstructionFault
from repro.core.registers import (DATA_REG_NAMES, ADDR_REG_NAMES, Priority,
                                  RegisterFile, RegisterSet)
from repro.core.word import NIL, Word


class TestRegisterSet:
    def test_initially_nil(self):
        regs = RegisterSet()
        for name in DATA_REG_NAMES + ADDR_REG_NAMES:
            assert regs.read(name) == NIL

    def test_write_read(self):
        regs = RegisterSet()
        regs.write("R2", Word.from_int(5))
        assert regs.read("R2").value == 5

    def test_unknown_register_read(self):
        with pytest.raises(IllegalInstructionFault):
            RegisterSet().read("R9")

    def test_unknown_register_write(self):
        with pytest.raises(IllegalInstructionFault):
            RegisterSet().write("B0", NIL)

    def test_snapshot_restore(self):
        regs = RegisterSet()
        regs.write("R0", Word.from_int(1))
        regs.write("A3", Word.segment(10, 4))
        snapshot = regs.snapshot()
        regs.clear()
        assert regs.read("R0") == NIL
        regs.restore(snapshot)
        assert regs.read("R0").value == 1
        assert regs.read("A3") == Word.segment(10, 4)

    def test_restore_wrong_arity(self):
        with pytest.raises(IllegalInstructionFault):
            RegisterSet().restore([NIL])

    def test_clear_resets_ip(self):
        regs = RegisterSet()
        regs.ip = 100
        regs.clear()
        assert regs.ip == 0


class TestRegisterFile:
    def test_three_priority_sets(self):
        file = RegisterFile()
        assert len(file.sets) == 3

    def test_sets_are_independent(self):
        file = RegisterFile()
        file[Priority.P0].write("R0", Word.from_int(1))
        file[Priority.P1].write("R0", Word.from_int(2))
        file[Priority.BACKGROUND].write("R0", Word.from_int(3))
        assert file[Priority.P0].read("R0").value == 1
        assert file[Priority.P1].read("R0").value == 2
        assert file[Priority.BACKGROUND].read("R0").value == 3

    def test_reset_clears_all(self):
        file = RegisterFile()
        file[Priority.P0].write("R0", Word.from_int(1))
        file.reset()
        assert file[Priority.P0].read("R0") == NIL


class TestPriority:
    def test_priority_values(self):
        assert int(Priority.P0) == 0
        assert int(Priority.P1) == 1

    def test_priority_from_int(self):
        assert Priority(0) is Priority.P0
        assert Priority(1) is Priority.P1
