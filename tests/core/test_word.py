"""Tests for the 36-bit tagged word."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import TypeFault
from repro.core.tags import Tag
from repro.core.word import FALSE, NIL, TRUE, Word


class TestConstruction:
    def test_default_value_is_zero(self):
        assert Word(Tag.INT).value == 0

    def test_from_int(self):
        word = Word.from_int(42)
        assert word.tag is Tag.INT
        assert word.value == 42

    def test_from_bool(self):
        assert Word.from_bool(True) == TRUE
        assert Word.from_bool(False) == FALSE

    def test_from_sym(self):
        word = Word.from_sym(ord("x"))
        assert word.tag is Tag.SYM
        assert word.value == ord("x")

    def test_ip(self):
        assert Word.ip(128).tag is Tag.IP

    def test_cfut_and_fut(self):
        assert Word.cfut().tag is Tag.CFUT
        assert Word.fut(7).tag is Tag.FUT
        assert Word.fut(7).value == 7

    def test_nil_is_int_zero(self):
        assert NIL.tag is Tag.INT
        assert NIL.value == 0


class TestSigned32:
    def test_wraps_positive_overflow(self):
        assert Word.from_int(2**31).value == -(2**31)

    def test_wraps_negative_overflow(self):
        assert Word.from_int(-(2**31) - 1).value == 2**31 - 1

    def test_max_int_preserved(self):
        assert Word.from_int(2**31 - 1).value == 2**31 - 1

    @given(st.integers())
    def test_value_always_in_range(self, value):
        word = Word.from_int(value)
        assert -(2**31) <= word.value <= 2**31 - 1

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_in_range_values_unchanged(self, value):
        assert Word.from_int(value).value == value


class TestImmutability:
    def test_cannot_set_value(self):
        word = Word.from_int(1)
        with pytest.raises(AttributeError):
            word.value = 2

    def test_cannot_set_tag(self):
        word = Word.from_int(1)
        with pytest.raises(AttributeError):
            word.tag = Tag.SYM

    def test_cannot_delete(self):
        word = Word.from_int(1)
        with pytest.raises(AttributeError):
            del word.value


class TestSegments:
    def test_pack_unpack(self):
        word = Word.segment(1000, 64)
        assert word.tag is Tag.ADDR
        assert word.as_segment() == (1000, 64)

    @given(st.integers(0, 2**20 - 1), st.integers(0, 2**12 - 1))
    def test_roundtrip(self, base, length):
        assert Word.segment(base, length).as_segment() == (base, length)

    def test_base_out_of_range(self):
        with pytest.raises(TypeFault):
            Word.segment(2**20, 4)

    def test_length_out_of_range(self):
        with pytest.raises(TypeFault):
            Word.segment(0, 2**12)

    def test_negative_base_rejected(self):
        with pytest.raises(TypeFault):
            Word.segment(-1, 4)

    def test_as_segment_requires_addr_tag(self):
        with pytest.raises(TypeFault):
            Word.from_int(5).as_segment()


class TestMsgAndPhys:
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_msg_roundtrip(self, node, hint):
        assert Word.msg(node, hint).as_msg() == (node, hint)

    def test_as_msg_requires_msg_tag(self):
        with pytest.raises(TypeFault):
            Word.from_int(5).as_msg()

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    def test_phys_roundtrip(self, x, y, z):
        assert Word.phys(x, y, z).as_phys() == (x, y, z)

    def test_phys_range_check(self):
        with pytest.raises(TypeFault):
            Word.phys(64, 0, 0)


class TestPredicates:
    def test_numeric_tags(self):
        assert Word.from_int(1).is_numeric()
        assert Word.from_bool(True).is_numeric()
        assert Word.from_sym(3).is_numeric()
        assert not Word.ip(0).is_numeric()
        assert not Word.cfut().is_numeric()

    def test_is_future(self):
        assert Word.cfut().is_future()
        assert Word.fut().is_future()
        assert not Word.from_int(0).is_future()

    def test_truthy(self):
        assert Word.from_int(5).truthy()
        assert not Word.from_int(0).truthy()
        assert Word.from_int(-1).truthy()


class TestEqualityHash:
    def test_equal_same_tag_value(self):
        assert Word.from_int(7) == Word.from_int(7)

    def test_unequal_different_tag(self):
        assert Word.from_int(7) != Word.from_sym(7)

    def test_hashable_as_dict_key(self):
        table = {Word.from_int(7): "a", Word.from_sym(7): "b"}
        assert table[Word.from_int(7)] == "a"
        assert table[Word.from_sym(7)] == "b"

    def test_not_equal_to_plain_int(self):
        assert Word.from_int(7) != 7

    @given(st.integers(), st.sampled_from(list(Tag)))
    def test_hash_consistent_with_eq(self, value, tag):
        a = Word(tag, value)
        b = Word(tag, value)
        assert a == b
        assert hash(a) == hash(b)


class TestRepr:
    def test_plain_repr(self):
        assert "INT" in repr(Word.from_int(3))

    def test_segment_repr(self):
        assert repr(Word.segment(10, 2)) == "Word.segment(10, 2)"

    def test_msg_repr(self):
        assert repr(Word.msg(3, 1)) == "Word.msg(3, 1)"
