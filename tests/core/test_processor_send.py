"""Unit tests of the SEND instruction family against a recording stub."""

import pytest

from repro.core.errors import SendFault
from repro.core.processor import Mdp, NetworkInterface
from repro.core.registers import Priority
from repro.core.tags import Tag
from repro.core.word import Word
from repro.asm.assembler import assemble


class RecordingInterface(NetworkInterface):
    """Captures every word the processor streams, with end marks."""

    def __init__(self, capacity=64):
        self.events = []
        self.capacity = capacity
        self.refuse = False

    def send_word(self, priority, word, end, now):
        if self.refuse or len(self.events) >= self.capacity:
            raise SendFault("stub refused")
        self.events.append((priority, word, end, now))

    def can_accept(self, priority, nwords):
        return not self.refuse and len(self.events) + nwords <= self.capacity


def run_program(source, interface, setup=None, max_cycles=1000):
    proc = Mdp(node_id=0, network=interface)
    program = assemble(source)
    program.load(proc)
    if setup:
        setup(proc, program)
    proc.set_background(program.entry("start"))
    now = 0
    while not proc.halted and now < max_cycles:
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    return proc, now


class TestSendSemantics:
    def test_send_streams_words_in_order(self):
        net = RecordingInterface()
        run_program("""
        start:
            SEND #5
            SEND #IP:start
            SENDE #7
            HALT
        """, net)
        values = [w.value for _, w, _, _ in net.events]
        assert values[0] == 5 and values[2] == 7
        assert net.events[1][1].tag is Tag.IP

    def test_only_last_word_marked_end(self):
        net = RecordingInterface()
        run_program("""
        start:
            SEND #1
            SEND #2
            SENDE #3
            HALT
        """, net)
        ends = [end for _, _, end, _ in net.events]
        assert ends == [False, False, True]

    def test_send2_carries_two_words(self):
        net = RecordingInterface()
        run_program("""
        start:
            SEND #9
            SEND2E #1, #2
            HALT
        """, net)
        assert len(net.events) == 3
        assert net.events[1][3] == net.events[2][3]  # same retire time

    def test_send2_is_one_cycle_for_two_words(self):
        net = RecordingInterface()
        proc, cycles = run_program("""
        start:
            SEND2E #1, #2
            HALT
        """, net)
        assert cycles == 2  # SEND2E (1) + HALT (1)

    def test_counters_track_messages_and_words(self):
        net = RecordingInterface()
        proc, _ = run_program("""
        start:
            SEND #1
            SENDE #2
            SEND #3
            SENDE #4
            HALT
        """, net)
        assert proc.counters.messages_sent == 2
        assert proc.counters.words_sent == 4

    def test_send_cycles_counted_as_comm(self):
        net = RecordingInterface()
        proc, _ = run_program("""
        start:
            SEND #1
            SENDE #2
            HALT
        """, net)
        assert proc.counters.comm_cycles == 2

    def test_memory_sourced_send_retires_late(self):
        """A SEND reading external memory launches its word later."""
        net = RecordingInterface()

        def setup(proc, program):
            base = proc.memory.imem_words + 8
            proc.memory.poke(base, Word.from_int(42))
            proc.registers[Priority.BACKGROUND].write(
                "A1", Word.segment(base, 2))

        run_program("""
        start:
            SENDE [A1+0]
            HALT
        """, net, setup)
        _, word, _, retire = net.events[0]
        assert word.value == 42
        assert retire >= 6  # the EMEM access delays the launch


class TestSendFaults:
    def test_refused_send_stalls_and_retries(self):
        net = RecordingInterface()
        net.refuse = True
        proc = Mdp(node_id=0, network=net)
        program = assemble("""
        start:
            SENDE #1
            HALT
        """)
        program.load(proc)
        proc.set_background(program.entry("start"))
        now = 0
        for _ in range(10):
            now = proc.tick(now)
        assert proc.counters.send_faults == 10
        assert proc.counters.stall_cycles == 10
        # Lift the backpressure: the instruction finally completes.
        net.refuse = False
        while not proc.halted:
            now = proc.tick(now)
        assert len(net.events) == 1

    def test_send2_checks_space_before_sending_either_word(self):
        net = RecordingInterface(capacity=1)
        proc = Mdp(node_id=0, network=net)
        program = assemble("""
        start:
            SEND2E #1, #2
            HALT
        """)
        program.load(proc)
        proc.set_background(program.entry("start"))
        for now in range(5):
            proc.tick(now)
        # Neither word was accepted: all-or-nothing for the pair.
        assert net.events == []
        assert proc.counters.send_faults > 0
