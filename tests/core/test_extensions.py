"""Tests for the critique-driven extensions: CYCLE, spill, RTS, fairness."""

import pytest

from repro.core.message import Message
from repro.core.processor import Mdp
from repro.core.registers import Priority
from repro.core.word import Word

from tests.util import load_processor, run_background


class TestCycleCounter:
    def test_cycle_reads_current_time(self):
        proc, program = load_processor("""
        start:
            NOP
            NOP
            CYCLE R0
            HALT
        """)
        run_background(proc, program.entry("start"))
        # Two NOPs have retired (2 cycles) when CYCLE executes.
        assert proc.registers[Priority.BACKGROUND].read("R0").value == 2

    def test_cycle_pair_measures_interval(self):
        proc, program = load_processor("""
        start:
            CYCLE R0
            ADD R1, R2, R3
            MUL R1, R2, R3
            CYCLE R1
            SUB R1, R0, R2
            HALT
        """)
        run_background(proc, program.entry("start"))
        # ADD (1) + MUL (2) + the first CYCLE itself (1) = 4.
        assert proc.registers[Priority.BACKGROUND].read("R2").value == 4


class TestSpillMode:
    def _proc_with_tiny_queue(self, spill):
        proc, program = load_processor("""
        handler:
            SUSPEND
        """)
        proc.queues[Priority.P0].capacity_words = 4
        proc.spill_enabled = spill
        return proc, program

    def test_backpressure_mode_refuses(self):
        proc, program = self._proc_with_tiny_queue(spill=False)
        first = Message.build(program.entry("handler"), [], 0, 0)
        proc.deliver(first, 0)
        second = Message.build(program.entry("handler"), [], 0, 0)
        assert not proc.can_accept(second)

    def test_spill_mode_always_accepts(self):
        proc, program = self._proc_with_tiny_queue(spill=True)
        for _ in range(5):
            message = Message.build(program.entry("handler"), [], 0, 0)
            assert proc.can_accept(message)
            proc.deliver(message, 0)
        assert proc.counters.spills == 4

    def test_spilled_messages_eventually_run(self):
        proc, program = self._proc_with_tiny_queue(spill=True)
        for _ in range(5):
            proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
        now = 0
        while proc.has_work() and now < 10_000:
            nxt = proc.tick(now)
            if nxt is None:
                break
            now = nxt
        assert proc.counters.threads_completed == 5

    def test_spill_charges_fault_cycles(self):
        proc, program = self._proc_with_tiny_queue(spill=True)
        for _ in range(3):
            proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
        now = 0
        while proc.has_work() and now < 10_000:
            nxt = proc.tick(now)
            if nxt is None:
                break
            now = nxt
        assert proc.counters.fault_cycles >= \
            2 * proc.costs.queue_overflow_per_msg


class TestReturnToSender:
    def _fabric(self, flow_control):
        from repro.network.fabric import Fabric
        from repro.network.topology import Mesh3D

        state = {"accepting": False, "delivered": []}

        def accept(node, message):
            return state["accepting"]

        def deliver(node, message, now):
            state["delivered"].append((node, now))

        fabric = Fabric(Mesh3D(4, 1, 1), accept, deliver,
                        flow_control=flow_control)
        return fabric, state

    def _message(self, src=0, dst=3):
        return Message([Word.ip(1), Word.from_int(0)], source=src, dest=dst)

    def test_bounced_message_retries_until_accepted(self):
        fabric, state = self._fabric("return_to_sender")
        fabric.send(self._message(), 0)
        for now in range(120):
            fabric.step(now)
        assert fabric.stats.bounces >= 1
        assert not state["delivered"]
        state["accepting"] = True
        for now in range(120, 400):
            fabric.step(now)
            if state["delivered"]:
                break
        assert state["delivered"]

    def test_rts_frees_channels_while_refused(self):
        """Unlike blocking, RTS lets other traffic through a busy path."""
        fabric, state = self._fabric("return_to_sender")

        delivered_to_2 = []
        original_deliver = fabric.deliver_fn

        def deliver(node, message, now):
            if node == 2:
                delivered_to_2.append(now)
            original_deliver(node, message, now)

        def accept(node, message):
            return node == 2  # node 3 keeps refusing

        fabric.accept_fn = accept
        fabric.deliver_fn = deliver
        fabric.send(self._message(0, 3), 0)   # will bounce forever
        fabric.send(self._message(0, 2), 0)   # must still get through
        for now in range(400):
            fabric.step(now)
            if delivered_to_2:
                break
        assert delivered_to_2

    def test_blocking_mode_never_bounces(self):
        fabric, state = self._fabric("block")
        fabric.send(self._message(), 0)
        for now in range(100):
            fabric.step(now)
        assert fabric.stats.bounces == 0
        assert fabric.active  # stalled in place

    def test_unknown_flow_control_rejected(self):
        from repro.core.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            self._fabric("carrier_pigeon")


class TestArbitration:
    def _hotspot(self, arbitration, sources=6, per_source=15):
        """Many sources streaming to one sink; count completions."""
        from repro.network.fabric import Fabric
        from repro.network.topology import Mesh3D

        done = {s: 0 for s in range(1, sources + 1)}

        def deliver(node, message, now):
            done[message.source] += 1

        fabric = Fabric(Mesh3D(8, 1, 1), lambda n, m: True, deliver,
                        arbitration=arbitration)
        for source in range(1, sources + 1):
            for _ in range(per_source):
                fabric.send(Message([Word.ip(1)] + [Word.from_int(0)] * 3,
                                    source=source, dest=0), 0)
        now = 0
        while fabric.active and now < 50_000:
            fabric.step(now)
            now += 1
        return done

    def test_both_modes_deliver_everything(self):
        for mode in ("fixed", "round_robin"):
            done = self._hotspot(mode)
            assert all(count == 15 for count in done.values()), mode

    def test_unknown_arbitration_rejected(self):
        from repro.core.errors import ConfigurationError
        from repro.network.fabric import Fabric
        from repro.network.topology import Mesh3D
        with pytest.raises(ConfigurationError):
            Fabric(Mesh3D(2, 1, 1), lambda n, m: True,
                   lambda n, m, t: None, arbitration="coin_flip")


class TestRtsBufferAccounting:
    def test_on_injected_fires_once_despite_bounces(self):
        """A bounced-and-retried message must report injection complete
        exactly once, or the sender's buffer accounting double-frees."""
        from repro.network.fabric import Fabric
        from repro.network.topology import Mesh3D

        reports = []
        state = {"accepting": False}
        fabric = Fabric(Mesh3D(4, 1, 1), lambda n, m: state["accepting"],
                        lambda n, m, t: None,
                        flow_control="return_to_sender")
        fabric.on_injected = reports.append
        message = Message.build(1, [Word.from_int(0)], source=0, dest=3)
        fabric.send(message, 0)
        for now in range(150):
            fabric.step(now)
        assert fabric.stats.bounces >= 1
        state["accepting"] = True
        now = 150
        while fabric.active and now < 1000:
            fabric.step(now)
            now += 1
        assert reports.count(message) == 1

    def test_bounce_worms_do_not_report_injection(self):
        """The carrier worm going back to the sender is the fabric's own
        traffic; the refusing node's interface must not be credited."""
        from repro.network.fabric import Fabric
        from repro.network.topology import Mesh3D

        reports = []
        state = {"accepting": False}
        fabric = Fabric(Mesh3D(4, 1, 1), lambda n, m: state["accepting"],
                        lambda n, m, t: None,
                        flow_control="return_to_sender")
        fabric.on_injected = reports.append
        message = Message.build(1, [Word.from_int(0)], source=0, dest=3)
        fabric.send(message, 0)
        for now in range(500):
            fabric.step(now)
        assert fabric.stats.bounces >= 2
        state["accepting"] = True
        now = 500
        while fabric.active and now < 2000:
            fabric.step(now)
            now += 1
        # Only the original message ever reports — never the bounce
        # carriers — and only once despite the retries.
        assert reports == [message]
