"""Tests for the tag enumeration and trap classifications."""

from repro.core.tags import POINTER_TAGS, TRAP_ON_READ_TAGS, TRAP_ON_USE_TAGS, Tag


def test_sixteen_tags():
    assert len(list(Tag)) == 16


def test_tags_fit_in_four_bits():
    assert all(0 <= int(tag) <= 15 for tag in Tag)


def test_tag_codes_unique():
    assert len({int(tag) for tag in Tag}) == 16


def test_cfut_traps_on_read():
    assert Tag.CFUT in TRAP_ON_READ_TAGS


def test_fut_does_not_trap_on_read():
    assert Tag.FUT not in TRAP_ON_READ_TAGS


def test_both_futures_trap_on_use():
    assert Tag.CFUT in TRAP_ON_USE_TAGS
    assert Tag.FUT in TRAP_ON_USE_TAGS


def test_int_never_traps():
    assert Tag.INT not in TRAP_ON_USE_TAGS
    assert Tag.INT not in TRAP_ON_READ_TAGS


def test_is_future_helper():
    assert Tag.CFUT.is_future()
    assert Tag.FUT.is_future()
    assert not Tag.ADDR.is_future()


def test_pointer_tags_include_addr_and_ip():
    assert Tag.ADDR in POINTER_TAGS
    assert Tag.IP in POINTER_TAGS
    assert Tag.INT not in POINTER_TAGS


def test_user_tags_exist():
    assert {Tag.USER0, Tag.USER1, Tag.USER2, Tag.USER3} <= set(Tag)
