"""Tests for the cycle cost model."""

import pytest

from repro.core.costs import (CLOCK_HZ, CYCLE_NS, DEFAULT_COSTS, CostModel,
                              PHITS_PER_WORD)


class TestConstants:
    def test_clock_is_12_5_mhz(self):
        assert CLOCK_HZ == 12_500_000
        assert CYCLE_NS == pytest.approx(80.0)

    def test_paper_headline_constants(self):
        costs = DEFAULT_COSTS
        assert costs.reg_op == 1
        assert costs.dispatch == 4
        assert costs.xlate_hit == 3
        assert costs.hop == 1
        assert costs.phits_per_word == PHITS_PER_WORD == 2
        assert costs.inject_words_per_cycle == 2

    def test_table2_constants(self):
        costs = DEFAULT_COSTS
        assert costs.sync_tag_success == 2
        assert costs.sync_tag_failure == 6
        assert costs.sync_tag_write == 4
        assert costs.sync_flag_success == 5
        assert costs.sync_flag_failure == 7
        assert costs.sync_flag_write == 6
        assert (costs.suspend_save_min, costs.suspend_save_max) == (30, 50)
        assert (costs.restart_min, costs.restart_max) == (20, 50)


class TestOverrides:
    def test_known_field(self):
        retimed = DEFAULT_COSTS.with_overrides(dispatch=10)
        assert retimed.dispatch == 10
        assert DEFAULT_COSTS.dispatch == 4  # original untouched

    def test_unknown_key_lands_in_extras(self):
        retimed = DEFAULT_COSTS.with_overrides(warp_factor=9)
        assert retimed.extras["warp_factor"] == 9

    def test_mixed_overrides(self):
        retimed = DEFAULT_COSTS.with_overrides(hop=2, custom=1)
        assert retimed.hop == 2
        assert retimed.extras == {"custom": 1}

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.dispatch = 99


class TestDerived:
    def test_message_wire_cycles(self):
        # 4-word message over 5 hops: 5 + 8 + 2 interface cycles.
        assert DEFAULT_COSTS.message_wire_cycles(4, 5) == 15

    def test_zero_hop_message(self):
        assert DEFAULT_COSTS.message_wire_cycles(1, 0) == 4

    def test_cycles_us_roundtrip(self):
        us = DEFAULT_COSTS.cycles_to_us(1250)
        assert us == pytest.approx(100.0)
        assert DEFAULT_COSTS.us_to_cycles(us) == pytest.approx(1250)
