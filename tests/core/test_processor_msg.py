"""Message-driven execution: dispatch, priorities, presence-tag suspend."""

import pytest

from repro.core.errors import CfutFault
from repro.core.faults import AbortFaultPolicy, RuntimeFaultPolicy
from repro.core.message import Message
from repro.core.processor import MSG_WINDOW_P0, Mdp
from repro.core.registers import Priority
from repro.core.tags import Tag
from repro.core.word import Word

from tests.util import load_processor


def drive(proc, max_cycles=10_000):
    """Tick the processor until it parks or halts; return elapsed."""
    now = 0
    while not proc.halted and now < max_cycles:
        nxt = proc.tick(now)
        if nxt is None:
            return now
        now = nxt
    return now


class TestDispatch:
    def test_message_creates_task(self):
        proc, program = load_processor("""
        handler:
            MOVE [A3+1], R0
            SUSPEND
        """)
        message = Message.build(program.entry("handler"), [Word.from_int(42)],
                                source=0, dest=0)
        proc.deliver(message, now=0)
        drive(proc)
        assert proc.registers[Priority.P0].read("R0").value == 42
        assert proc.counters.dispatches == 1
        assert proc.counters.threads_completed == 1

    def test_dispatch_costs_four_cycles(self):
        proc, program = load_processor("""
        handler:
            SUSPEND
        """)
        proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
        drive(proc)
        assert proc.counters.dispatch_cycles == 4

    def test_a3_window_covers_message(self):
        proc, program = load_processor("""
        handler:
            SUSPEND
        """)
        args = [Word.from_int(i) for i in range(3)]
        proc.deliver(Message.build(program.entry("handler"), args, 0, 0), 0)
        drive(proc)
        a3 = proc.registers[Priority.P0].read("A3")
        base, length = a3.as_segment()
        assert base == MSG_WINDOW_P0
        assert length == 4
        assert proc.memory.peek(base + 1).value == 0
        assert proc.memory.peek(base + 3).value == 2

    def test_fifo_order_within_priority(self):
        proc, program = load_processor("""
        handler:
            MOVE [A3+1], [A0+0]
            SUSPEND
        """)
        base = program.end + 4
        proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
        for value in (1, 2, 3):
            proc.deliver(
                Message.build(program.entry("handler"),
                              [Word.from_int(value)], 0, 0), 0)
        drive(proc)
        # The last handler to run saw the last message.
        assert proc.memory.peek(base).value == 3
        assert proc.counters.threads_completed == 3

    def test_queue_capacity_released_after_suspend(self):
        proc, program = load_processor("""
        handler:
            SUSPEND
        """)
        queue = proc.queues[Priority.P0]
        proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
        assert queue.used_words == 4
        drive(proc)
        assert queue.used_words == 0


class TestPriorities:
    def test_p1_preempts_p0(self):
        proc, program = load_processor("""
        p0_handler:
            MOVE #1, [A0+0]
            MOVE #1, [A0+0]
            MOVE #1, [A0+0]
            MOVE #1, [A0+0]
            MOVE #99, [A0+1]
            SUSPEND
        p1_handler:
            MOVE [A0+1], [A0+2]
            SUSPEND
        """)
        base = program.end + 4
        for priority in (Priority.P0, Priority.P1):
            proc.registers[priority].write("A0", Word.segment(base, 4))
        proc.deliver(Message.build(program.entry("p0_handler"), [], 0, 0), 0)
        # Run two steps (dispatch + first instruction), then a P1 arrives.
        now = proc.tick(0)
        now = proc.tick(now)
        proc.deliver(
            Message.build(program.entry("p1_handler"), [], 0, 0,
                          priority=Priority.P1), now)
        drive_from = now
        while not proc.halted:
            nxt = proc.tick(drive_from)
            if nxt is None:
                break
            drive_from = nxt
        # The P1 handler ran before the P0 thread wrote 99.
        assert proc.memory.peek(base + 2).value == 0
        # And the P0 thread still completed afterwards.
        assert proc.memory.peek(base + 1).value == 99
        assert proc.counters.threads_completed == 2

    def test_background_runs_only_when_idle(self):
        proc, program = load_processor("""
        bg:
            MOVE #1, [A0+0]
            HALT
        handler:
            MOVE #2, [A0+1]
            SUSPEND
        """)
        base = program.end + 4
        proc.registers[Priority.BACKGROUND].write("A0", Word.segment(base, 4))
        proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
        proc.set_background(program.entry("bg"))
        proc.deliver(Message.build(program.entry("handler"), [], 0, 0), 0)
        drive(proc)
        assert proc.memory.peek(base + 1).value == 2
        assert proc.memory.peek(base).value == 1


class TestPresenceTags:
    def make_consumer_producer(self):
        proc, program = load_processor("""
        consumer:
            MOVE [A0+0], R2      ; faults while slot is cfut
            MOVE R2, [A0+1]
            SUSPEND
        producer:
            MOVE [A3+1], [A0+0]  ; write wakes the consumer
            SUSPEND
        """, fault_policy=RuntimeFaultPolicy(save_cycles=10, restart_cycles=10))
        base = program.end + 4
        proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
        proc.memory.poke(base, Word.cfut())
        return proc, program, base

    def test_consumer_suspends_then_restarts(self):
        proc, program, base = self.make_consumer_producer()
        proc.deliver(Message.build(program.entry("consumer"), [], 0, 0), 0)
        now = drive(proc)
        assert proc.counters.suspends == 1
        assert proc.memory.peek(base + 1).value == 0  # still waiting
        proc.deliver(
            Message.build(program.entry("producer"), [Word.from_int(77)],
                          0, 0), now)
        drive(proc, max_cycles=now + 10_000)
        assert proc.counters.restarts == 1
        assert proc.memory.peek(base + 1).value == 77

    def test_value_before_consumer_means_no_suspend(self):
        proc, program, base = self.make_consumer_producer()
        proc.deliver(
            Message.build(program.entry("producer"), [Word.from_int(5)],
                          0, 0), 0)
        proc.deliver(Message.build(program.entry("consumer"), [], 0, 0), 0)
        drive(proc)
        assert proc.counters.suspends == 0
        assert proc.memory.peek(base + 1).value == 5

    def test_abort_policy_raises_cfut(self):
        proc, program = load_processor("""
        consumer:
            MOVE [A0+0], R2
            SUSPEND
        """, fault_policy=AbortFaultPolicy())
        base = program.end + 4
        proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
        proc.memory.poke(base, Word.cfut())
        proc.deliver(Message.build(program.entry("consumer"), [], 0, 0), 0)
        with pytest.raises(CfutFault):
            drive(proc)

    def test_multiple_waiters_on_one_slot(self):
        proc, program = load_processor("""
        consumer:
            MOVE [A0+0], R2
            ADD [A0+1], #1, R3
            MOVE R3, [A0+1]
            SUSPEND
        producer:
            MOVE #9, [A0+0]
            SUSPEND
        """, fault_policy=RuntimeFaultPolicy(save_cycles=5, restart_cycles=5))
        base = program.end + 4
        proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
        proc.memory.poke(base, Word.cfut())
        proc.deliver(Message.build(program.entry("consumer"), [], 0, 0), 0)
        proc.deliver(Message.build(program.entry("consumer"), [], 0, 0), 0)
        now = drive(proc)
        assert proc.counters.suspends == 2
        proc.deliver(Message.build(program.entry("producer"), [], 0, 0), now)
        drive(proc)
        assert proc.memory.peek(base + 1).value == 2
        assert proc.counters.restarts == 2
