"""Tests for memory-placement effects: Imem vs Emem code and data."""

import pytest

from repro.asm.assembler import assemble
from repro.core.processor import Mdp
from repro.core.registers import Priority
from repro.core.word import Word

LOOP = """
start:
    MOVE #200, R1
loop:
    ADD R0, R1, R0
    SUB R1, #1, R1
    BT R1, loop
    HALT
"""


def run_at(base):
    proc = Mdp(node_id=0)
    program = assemble(LOOP, base=base)
    program.load(proc)
    proc.set_background(program.entry("start"))
    now = 0
    while not proc.halted and now < 100_000:
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    return proc, now


class TestCodePlacement:
    def test_internal_code_is_fast(self):
        proc, cycles = run_at(base=200)
        # ~600 instructions in well under 2 cycles each.
        assert cycles / proc.counters.instructions < 2.0

    def test_external_code_is_slow(self):
        """Paper: 'fewer than 2 million instructions per second if all
        code and data are in external memory' — i.e. >6 cycles/instr."""
        proc, cycles = run_at(base=5000)  # DRAM region starts at 4096
        assert cycles / proc.counters.instructions >= 4.0

    def test_external_slowdown_matches_mips_ratio(self):
        """Paper: 5.5 MIPS internal vs <2 MIPS external, a ~2.8x gap."""
        _, fast = run_at(base=200)
        _, slow = run_at(base=5000)
        assert slow / fast == pytest.approx(2.8, abs=0.5)


class TestDataPlacement:
    def _sum_array(self, internal):
        proc = Mdp(node_id=0)
        program = assemble("""
        start:
            MOVE #0, R0
            MOVE #16, R1
        loop:
            SUB R1, #1, R1
            ADD R0, [A1+R1], R0
            BT R1, loop
            MOVE R0, [A0+0]
            HALT
        """)
        program.load(proc)
        scratch = program.end + 4
        array_base = scratch + 8 if internal else proc.memory.imem_words + 8
        for i in range(16):
            proc.memory.poke(array_base + i, Word.from_int(i))
        regs = proc.registers[Priority.BACKGROUND]
        regs.write("A0", Word.segment(scratch, 4))
        regs.write("A1", Word.segment(array_base, 16))
        proc.set_background(program.entry("start"))
        now = 0
        while not proc.halted and now < 100_000:
            nxt = proc.tick(now)
            if nxt is None:
                break
            now = nxt
        assert proc.memory.peek(scratch).value == sum(range(16))
        return now

    def test_external_data_slower_by_access_gap(self):
        internal = self._sum_array(internal=True)
        external = self._sum_array(internal=False)
        # 16 accesses at +5 cycles each.
        assert external - internal == 16 * 5
