"""Tests for the message representation."""

import pytest

from repro.core.errors import TypeFault
from repro.core.message import Message
from repro.core.registers import Priority
from repro.core.word import Word


def test_header_must_be_ip_tagged():
    with pytest.raises(TypeFault):
        Message([Word.from_int(5)], source=0, dest=1)


def test_empty_message_rejected():
    with pytest.raises(TypeFault):
        Message([], source=0, dest=1)


def test_handler_ip():
    message = Message([Word.ip(128), Word.from_int(1)], source=0, dest=1)
    assert message.handler_ip == 128


def test_length_includes_header():
    message = Message.build(128, [Word.from_int(1), Word.from_int(2)], 0, 1)
    assert message.length == 3
    assert len(message) == 3


def test_body_excludes_header():
    message = Message.build(128, [Word.from_int(7)], 0, 1)
    assert message.body() == (Word.from_int(7),)


def test_indexing():
    message = Message.build(128, [Word.from_int(7)], 0, 1)
    assert message[0] == Word.ip(128)
    assert message[1].value == 7


def test_default_priority_zero():
    message = Message.build(128, [], 0, 1)
    assert message.priority is Priority.P0


def test_priority_one():
    message = Message.build(128, [], 0, 1, priority=Priority.P1)
    assert message.priority is Priority.P1


def test_timestamps_start_unset():
    message = Message.build(128, [], 0, 1)
    assert message.inject_time is None
    assert message.arrive_time is None
    assert message.dispatch_time is None


def test_repr_mentions_endpoints():
    message = Message.build(128, [], 3, 9)
    assert "3->9" in repr(message)
