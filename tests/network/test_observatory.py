"""The fabric observatory: probe accounting, merging, and reports.

docs/OBSERVABILITY.md §8: a :class:`FabricProbe` attached to a fabric
accumulates per-link phits, blocked-at-head cycles split by cause, and
per-dimension hop attribution, all at message-rate sites behind
``is None`` guards; a :class:`FabricReport` analyzes the counters.
The load-bearing promises pinned here: probes merge *exactly*, the
batched ``advance`` path produces the same counters as per-cycle
``step``, and reports round-trip through JSON unchanged.
"""

import pytest

from repro.core.message import Message
from repro.core.registers import Priority
from repro.core.word import Word
from repro.network.fabric import Fabric
from repro.network.observatory import (FABRIC_METRICS, FabricProbe,
                                       FabricReport, QUEUE_OCCUPANCY_BOUNDS,
                                       link_name, parse_link_name)
from repro.network.routing import EJECT, INJECT
from repro.network.topology import Mesh3D


def _message(src, dst, words=2, priority=Priority.P0):
    payload = [Word.ip(0)] + [Word.from_int(i) for i in range(words - 1)]
    return Message(payload, source=src, dest=dst, priority=priority)


def _drain(fabric, now=0, limit=50_000):
    while fabric.stats.completed < fabric.stats.submitted and now < limit:
        fabric.step(now)
        now += 1
    assert fabric.stats.completed == fabric.stats.submitted, "did not drain"
    return now


def _probed_fabric(mesh=None, accept=None):
    mesh = mesh or Mesh3D(4, 4, 1)
    delivered = []
    fabric = Fabric(mesh,
                    accept if accept is not None
                    else (lambda node, message: True),
                    lambda node, message, now: delivered.append(node))
    fabric.attach_probe()
    return fabric, delivered


class TestLinkNames:
    @pytest.mark.parametrize("link,name", [
        ((12, 0, 1), "12.x+"),
        ((12, 0, -1), "12.x-"),
        ((0, 1, 1), "0.y+"),
        ((63, 2, -1), "63.z-"),
        ((7, INJECT, 0), "7.inj"),
        ((7, EJECT, 0), "7.ej"),
    ])
    def test_roundtrip(self, link, name):
        assert link_name(link) == name
        assert parse_link_name(name) == link

    def test_schema_is_well_formed(self):
        # (name, type, unit, site) rows with the three metric types the
        # docs table (and its sync test) rely on.
        for row in FABRIC_METRICS:
            assert len(row) == 4
            assert row[1] in ("counter", "gauge", "histogram")


class TestProbeAccounting:
    def test_unprobed_fabric_has_no_probe(self):
        fabric = Fabric(Mesh3D(2, 2, 1), lambda n, m: True,
                        lambda n, m, now: None)
        assert fabric.probe is None

    def test_completion_attributes_every_mesh_hop(self):
        fabric, delivered = _probed_fabric()
        fabric.send(_message(0, 5, words=3), 0)  # one x hop + one y hop
        _drain(fabric)
        probe = fabric.probe
        assert delivered == [5]
        assert probe.messages == 1
        assert probe.dim_hops == [1, 1, 0]
        # Every phit crossed every mesh channel of the path once.
        phits = sum(probe.link_phits.values())
        assert phits == sum(probe.dim_phits)
        assert set(probe.link_phits) == set(probe.link_messages)
        assert all(n == 1 for n in probe.link_messages.values())

    def test_contention_counts_blocked_cycles(self):
        fabric, _ = _probed_fabric()
        # Two worms from the same row through the same x+ channels: the
        # second blocks at head while the first streams.
        fabric.send(_message(0, 3, words=8), 0)
        fabric.send(_message(1, 3, words=8), 0)
        _drain(fabric)
        probe = fabric.probe
        assert probe.stall_channel_busy > 0
        assert probe.stall_link_outage == 0
        assert sum(probe.link_blocked.values()) == probe.stall_channel_busy

    def test_backpressure_split_from_contention(self):
        refusals = {"left": 30}

        def accept(node, message):
            if refusals["left"] > 0:
                refusals["left"] -= 1
                return False
            return True

        fabric, delivered = _probed_fabric(accept=accept)
        fabric.send(_message(0, 1), 0)
        _drain(fabric)
        probe = fabric.probe
        assert delivered == [1]
        assert probe.stall_backpressure > 0
        assert probe.node_backpressure == {1: probe.stall_backpressure}
        # Refusal cycles are backpressure, not channel contention.
        assert probe.stall_channel_busy == 0

    def test_queue_depth_histogram(self):
        probe = FabricProbe()
        for depth in (1, 2, 3):
            probe.record_queue_depth(0, depth)
        probe.record_queue_depth(1, 200)
        merged = probe.inject_queue_summary()
        assert merged.count == 4
        assert merged.max == 200
        assert merged.bounds == QUEUE_OCCUPANCY_BOUNDS

    def test_elapsed_never_zero(self):
        probe = FabricProbe(opened_at=100)
        assert probe.elapsed(100) == 1
        assert probe.elapsed(350) == 250


class TestProbeMerge:
    def _loaded_probe(self, seed):
        probe = FabricProbe()
        for i in range(seed, seed + 4):
            probe.link_phits[(i, 0, 1)] = 10 * i
            probe.link_messages[(i, 0, 1)] = i
            probe.link_blocked[(i % 2, 1, -1)] = (
                probe.link_blocked.get((i % 2, 1, -1), 0) + i)
            probe.dim_hops[i % 3] += 1
            probe.dim_phits[i % 3] += 10 * i
            probe.messages += 1
            probe.stall_channel_busy += i
            probe.record_backpressure(i % 3, i)
            probe.record_queue_depth(i % 2, i)
        return probe

    def test_merge_equals_combined_recording(self):
        merged = self._loaded_probe(1)
        merged.merge(self._loaded_probe(3))
        combined = FabricProbe()
        combined.merge(self._loaded_probe(1))
        combined.merge(self._loaded_probe(3))
        assert merged.to_dict() == combined.to_dict()

    def test_merge_of_empty_is_identity(self):
        probe = self._loaded_probe(2)
        before = probe.to_dict()
        probe.merge(FabricProbe())
        assert probe.to_dict() == before
        empty = FabricProbe()
        empty.merge(FabricProbe())
        assert empty.messages == 0 and not empty.link_phits

    def test_split_run_merges_to_whole_run(self):
        """Counters from two fabrics carrying half the traffic each fold
        into exactly the counters of one fabric carrying all of it."""
        pairs = [(0, 3), (4, 7), (12, 15), (0, 15), (5, 10)]
        whole, _ = _probed_fabric()
        for src, dst in pairs:
            whole.send(_message(src, dst), 0)
        _drain(whole)
        half_a, _ = _probed_fabric()
        half_b, _ = _probed_fabric()
        for index, (src, dst) in enumerate(pairs):
            half = half_a if index % 2 == 0 else half_b
            half.send(_message(src, dst), 0)
        _drain(half_a)
        _drain(half_b)
        half_a.probe.merge(half_b.probe)
        # Independent halves see no cross-half contention, so only the
        # contention-free counters are comparable — and those must be
        # *exactly* equal, not approximately.
        assert half_a.probe.link_phits == whole.probe.link_phits
        assert half_a.probe.link_messages == whole.probe.link_messages
        assert half_a.probe.dim_hops == whole.probe.dim_hops
        assert half_a.probe.dim_phits == whole.probe.dim_phits
        assert half_a.probe.messages == whole.probe.messages


class TestStepAdvanceEquality:
    def test_advance_matches_step_counters(self):
        pairs = [(0, 15), (3, 12), (5, 6), (9, 2), (14, 1), (7, 8)]
        stepped, _ = _probed_fabric()
        for src, dst in pairs:
            stepped.send(_message(src, dst, words=4), 0)
        _drain(stepped)

        batched, _ = _probed_fabric()
        for src, dst in pairs:
            batched.send(_message(src, dst, words=4), 0)
        assert batched.can_batch()
        now = 0
        while (batched.stats.completed < batched.stats.submitted
               and now < 50_000):
            now = batched.advance(now, now + 64)
        assert batched.stats.completed == batched.stats.submitted
        assert batched.probe.to_dict() == stepped.probe.to_dict()


class TestSnapshotCarriesProbe:
    def test_state_dict_roundtrip(self):
        fabric, _ = _probed_fabric()
        fabric.send(_message(0, 5), 0)
        _drain(fabric)
        state = fabric.state_dict()
        fresh, _ = _probed_fabric()
        fresh.probe = None
        fresh.load_state(state)
        assert fresh.probe is not None
        assert fresh.probe.to_dict() == fabric.probe.to_dict()

    def test_pre_observatory_state_restores_unprobed(self):
        fabric, _ = _probed_fabric()
        state = fabric.state_dict()
        del state["probe"]
        fabric.load_state(state)
        assert fabric.probe is None


class TestFabricReport:
    def _report(self):
        fabric, _ = _probed_fabric()
        for src in range(4):           # all of column x=0..3, y=0
            fabric.send(_message(src, src + 12), 0)   # straight up y
        fabric.send(_message(0, 3, words=6), 0)       # along the x row
        fabric.send(_message(4, 7, words=6), 0)
        now = _drain(fabric)
        return FabricReport.from_fabric(fabric, now)

    def test_from_fabric_requires_probe(self):
        fabric = Fabric(Mesh3D(2, 2, 1), lambda n, m: True,
                        lambda n, m, now: None)
        with pytest.raises(ValueError):
            FabricReport.from_fabric(fabric, 100)

    def test_midplane_convention_matches_topology(self):
        mesh = Mesh3D(4, 4, 1)
        report = self._report()
        for link in report.links:
            node, dim, direction = link
            if dim != 0:
                assert not report.is_midplane(link)
                continue
            crossing = mesh.crosses_x_midplane(node, node + direction)
            assert report.is_midplane(link) == crossing

    def test_top_links_ranked_and_deterministic(self):
        report = self._report()
        top = report.top_links(4)
        phits = [info["phits"] for _, info in top]
        assert phits == sorted(phits, reverse=True)
        assert top == report.top_links(4)  # stable tie-break

    def test_midplane_split_partitions_all_links(self):
        report = self._report()
        split = report.midplane_split()
        assert (split["midplane"]["links"] + split["off_midplane"]["links"]
                == len(report.links))
        assert (split["midplane"]["phits"] + split["off_midplane"]["phits"]
                == sum(info["phits"] for info in report.links.values()))

    def test_utilization_is_phits_over_elapsed(self):
        report = self._report()
        for info in report.links.values():
            assert info["utilization"] == pytest.approx(
                info["phits"] / report.elapsed)

    def test_heatmap_shape_and_bounds(self):
        report = self._report()
        grid = report.heatmap(dim=1, z=0, direction=1)
        lines = grid.splitlines()
        assert "dim=Y" in lines[0]
        assert len(lines) == 1 + 4            # header + one row per y
        assert all(len(line.split()) == 4 for line in lines[1:])
        with pytest.raises(ValueError):
            report.heatmap(z=5)

    def test_format_mentions_the_essentials(self):
        text = self._report().format(top=3)
        assert "fabric observatory: 4x4x1 mesh" in text
        assert "channel_busy=" in text
        assert "top 3 links by phits:" in text
        assert "link load: dim=X" in text

    def test_json_roundtrip_and_equality(self, tmp_path):
        report = self._report()
        path = tmp_path / "fabric.json"
        report.save(str(path))
        loaded = FabricReport.load(str(path))
        assert loaded == report
        assert loaded.to_dict() == report.to_dict()

    def test_diff_finds_changed_links(self):
        report_a = self._report()
        report_b = FabricReport.from_dict(report_a.to_dict())
        assert report_a.diff(report_b) == {}
        assert report_a.format_diff(report_b) == \
            "fabric: no per-link differences"
        link = next(iter(report_b.links))
        report_b.links[link]["phits"] += 10
        report_b.stalls["channel_busy"] += 1
        pairs = report_a.diff(report_b)
        assert link_name(link) in pairs
        assert "stall.channel_busy" in pairs
        assert str(link_name(link)) in report_a.format_diff(report_b)
