"""Tests for deterministic e-cube routing."""

from hypothesis import given, strategies as st

from repro.network.routing import EJECT, INJECT, ecube_route, route_hops
from repro.network.topology import Mesh3D


def test_self_route_is_inject_eject():
    mesh = Mesh3D.cube(4)
    path = ecube_route(mesh, 5, 5)
    assert path == [(5, INJECT, 0), (5, EJECT, 0)]


def test_route_starts_and_ends_with_ports():
    mesh = Mesh3D.cube(4)
    path = ecube_route(mesh, 0, 63)
    assert path[0] == (0, INJECT, 0)
    assert path[-1] == (63, EJECT, 0)


def test_route_length_matches_distance():
    mesh = Mesh3D.cube(8)
    path = ecube_route(mesh, 0, 511)
    assert route_hops(path) == 21
    assert len(path) == 23


def test_dimension_order_strictly_nondecreasing():
    """e-cube: all X hops, then all Y, then all Z (deadlock freedom)."""
    mesh = Mesh3D.cube(8)
    path = ecube_route(mesh, 7, 448)
    dims = [dim for (_, dim, _) in path if dim < INJECT]
    assert dims == sorted(dims)


def test_direction_constant_within_dimension():
    mesh = Mesh3D.cube(8)
    path = ecube_route(mesh, 511, 0)
    for dim in range(3):
        dirs = {d for (_, dimension, d) in path if dimension == dim}
        assert len(dirs) <= 1


@given(st.integers(0, 511), st.integers(0, 511))
def test_route_properties_random_pairs(src, dst):
    mesh = Mesh3D.cube(8)
    path = ecube_route(mesh, src, dst)
    # Endpoints correct.
    assert path[0][0] == src and path[0][1] == INJECT
    assert path[-1][0] == dst and path[-1][1] == EJECT
    # Hop count is the Manhattan distance.
    assert route_hops(path) == mesh.hops(src, dst)
    # Dimension order is monotone.
    dims = [dim for (_, dim, _) in path if dim < INJECT]
    assert dims == sorted(dims)
    # Simulate the walk: each channel moves one step; we must land on dst.
    x, y, z = mesh.coord(src)
    position = [x, y, z]
    for node, dim, step in path[1:-1]:
        assert mesh.node_id(tuple(position)) == node
        position[dim] += step
    assert mesh.node_id(tuple(position)) == dst


@given(st.integers(0, 511), st.integers(0, 511))
def test_channel_sequence_acyclic_order(src, dst):
    """Channels are visited in strictly increasing e-cube rank, which is
    the standard argument for deadlock freedom of dimension-order
    routing on a mesh."""
    mesh = Mesh3D.cube(8)

    def rank(channel):
        node, dim, step = channel
        x, y, z = mesh.coord(node)
        coord = (x, y, z)[dim] if dim < 3 else 0
        # Order: dimension major; within a dimension, position in the
        # direction of travel.
        position = coord if step >= 0 else (7 - coord)
        direction_bit = 0 if step >= 0 else 1
        return (dim, direction_bit, position)

    path = ecube_route(mesh, src, dst)
    mesh_channels = [c for c in path if c[1] < 3]
    ranks = [rank(c) for c in mesh_channels]
    assert ranks == sorted(ranks)
