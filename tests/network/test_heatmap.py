"""Tests for the channel-load heat map."""

import random

import pytest

from repro.core.message import Message
from repro.core.word import Word
from repro.network.fabric import Fabric
from repro.network.stats import format_channel_heatmap
from repro.network.topology import Mesh3D


def loaded_fabric(dims=(4, 4, 1), messages=200, seed=3):
    fabric = Fabric(Mesh3D(*dims), lambda n, m: True, lambda n, m, t: None)
    fabric.track_channel_load = True
    rng = random.Random(seed)
    n = fabric.mesh.n_nodes
    for _ in range(messages):
        src, dst = rng.randrange(n), rng.randrange(n)
        if src != dst:
            fabric.send(
                Message([Word.ip(1), Word.from_int(0)], source=src, dest=dst),
                0,
            )
    now = 0
    while fabric.active and now < 200_000:
        fabric.step(now)
        now += 1
    return fabric


def test_heatmap_shape():
    fabric = loaded_fabric()
    text = format_channel_heatmap(fabric, dim=0, z=0)
    rows = text.splitlines()[1:]
    assert len(rows) == 4
    assert all(len(row.split()) == 4 for row in rows)


def test_rightmost_x_column_unused():
    """No +X channel leaves the maximum-x column in a mesh."""
    fabric = loaded_fabric()
    text = format_channel_heatmap(fabric, dim=0, z=0, direction=1)
    for row in text.splitlines()[1:]:
        assert row.split()[-1] == "."


def test_peak_cell_is_nine():
    fabric = loaded_fabric()
    text = format_channel_heatmap(fabric, dim=0, z=0)
    digits = [c for row in text.splitlines()[1:] for c in row.split()
              if c != "."]
    assert "9" in digits


def test_bad_plane_rejected():
    fabric = loaded_fabric()
    with pytest.raises(ValueError):
        format_channel_heatmap(fabric, z=5)


def test_requires_tracking_gracefully():
    fabric = Fabric(Mesh3D(2, 2, 1), lambda n, m: True, lambda n, m, t: None)
    text = format_channel_heatmap(fabric)
    assert "peak 0" in text
