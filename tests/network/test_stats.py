"""Unit tests for network statistics helpers."""

import pytest

from repro.network.stats import LatencySummary, NetworkStats
from repro.network.topology import Mesh3D


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary()
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.min is None and summary.max is None

    def test_single_value(self):
        summary = LatencySummary()
        summary.record(42)
        assert summary.mean == 42
        assert summary.min == summary.max == 42

    def test_running_stats(self):
        summary = LatencySummary()
        for value in (10, 20, 60):
            summary.record(value)
        assert summary.count == 3
        assert summary.mean == pytest.approx(30)
        assert summary.min == 10
        assert summary.max == 60


class TestPercentiles:
    def test_empty_percentiles_are_zero(self):
        summary = LatencySummary()
        assert summary.p50 == 0.0
        assert summary.p99 == 0.0

    def test_single_value_all_percentiles(self):
        summary = LatencySummary()
        summary.record(37)
        assert summary.p50 == 37
        assert summary.p99 == 37
        assert summary.percentile(0.0) == 37
        assert summary.percentile(1.0) == 37

    def test_bucket_resolution_estimate(self):
        # Values 1..1000: p50's rank falls in the (256, 512] bucket, so
        # the estimate is the bucket's upper bound.
        summary = LatencySummary()
        for value in range(1, 1001):
            summary.record(value)
        assert summary.p50 == 512
        assert summary.p99 == 1000  # upper bound 1024 clamps to max

    def test_percentile_clamps_to_observed_range(self):
        summary = LatencySummary()
        summary.record(3)
        summary.record(3)
        # bucket upper bound is 4, but 4 was never observed
        assert summary.p99 == 3

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary().percentile(1.5)

    def test_custom_bounds_must_increase(self):
        with pytest.raises(ValueError):
            LatencySummary(bounds=(4, 2, 8))
        with pytest.raises(ValueError):
            LatencySummary(bounds=(4, 4))

    def test_overflow_bucket_uses_max(self):
        summary = LatencySummary(bounds=(10,))
        summary.record(5)
        summary.record(500)
        assert summary.p99 == 500


class TestMerge:
    def test_merge_is_exact(self):
        """Merging per-node summaries equals one global summary."""
        values_a = [3, 17, 90, 90, 1200]
        values_b = [1, 64, 64, 700]
        a, b, combined = LatencySummary(), LatencySummary(), LatencySummary()
        for v in values_a:
            a.record(v)
            combined.record(v)
        for v in values_b:
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.snapshot() == combined.snapshot()
        assert a.buckets == combined.buckets

    def test_merge_empty_sides(self):
        a, b = LatencySummary(), LatencySummary()
        b.record(9)
        a.merge(b)
        assert a.count == 1 and a.min == 9 and a.max == 9
        a.merge(LatencySummary())  # merging an empty one changes nothing
        assert a.count == 1

    def test_merge_two_empties_stays_empty(self):
        a, b = LatencySummary(), LatencySummary()
        a.merge(b)
        assert a.count == 0
        assert a.min is None and a.max is None
        assert a.snapshot() == LatencySummary().snapshot()

    def test_merge_rejects_different_buckets(self):
        a = LatencySummary(bounds=(1, 2, 4))
        b = LatencySummary()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_preserves_overflow_bucket(self):
        """Values past the last bound land in the overflow bucket, and
        merging keeps both the bucket count and the true max."""
        a = LatencySummary(bounds=(10,))
        b = LatencySummary(bounds=(10,))
        a.record(5)
        b.record(700)
        b.record(9000)
        a.merge(b)
        assert a.count == 3
        assert a.max == 9000
        assert a.buckets[-1] == 2  # both overflow values survived
        assert a.p99 == 9000       # overflow estimate clamps to max

    def test_snapshot_keys(self):
        summary = LatencySummary()
        summary.record(8)
        assert set(summary.snapshot()) == {
            "count", "total", "mean", "min", "max", "p50", "p99",
        }


class TestWindow:
    def test_window_reset(self):
        stats = NetworkStats(Mesh3D(4, 4, 4))
        stats.window_completed = 9
        stats.window_bisection_words = 100
        stats.open_window(500)
        assert stats.window_completed == 0
        assert stats.window_bisection_words == 0
        assert stats.window_cycles(600) == 100

    def test_window_cycles_floor(self):
        stats = NetworkStats(Mesh3D(2, 2, 2))
        stats.open_window(100)
        assert stats.window_cycles(100) == 1  # never zero

    def test_bisection_convention_halves_crossings(self):
        """Both-direction crossings are halved to match the one-direction
        capacity convention."""
        mesh = Mesh3D(8, 8, 8)
        stats = NetworkStats(mesh)
        stats.open_window(0)
        stats.window_bisection_words = 64  # words crossing, both dirs
        # 32 words/cycle one-direction is exactly peak (64ch * 0.5).
        traffic = stats.bisection_traffic_bits_per_s(now=1)
        assert traffic == pytest.approx(
            mesh.bisection_capacity_bits_per_s())

    def test_message_rate(self):
        stats = NetworkStats(Mesh3D(2, 2, 2))
        stats.open_window(0)
        stats.window_completed = 50
        assert stats.message_rate_per_cycle(now=100) == 0.5
