"""Unit tests for network statistics helpers."""

import pytest

from repro.network.stats import LatencySummary, NetworkStats
from repro.network.topology import Mesh3D


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary()
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.min is None and summary.max is None

    def test_single_value(self):
        summary = LatencySummary()
        summary.record(42)
        assert summary.mean == 42
        assert summary.min == summary.max == 42

    def test_running_stats(self):
        summary = LatencySummary()
        for value in (10, 20, 60):
            summary.record(value)
        assert summary.count == 3
        assert summary.mean == pytest.approx(30)
        assert summary.min == 10
        assert summary.max == 60


class TestWindow:
    def test_window_reset(self):
        stats = NetworkStats(Mesh3D(4, 4, 4))
        stats.window_completed = 9
        stats.window_bisection_words = 100
        stats.open_window(500)
        assert stats.window_completed == 0
        assert stats.window_bisection_words == 0
        assert stats.window_cycles(600) == 100

    def test_window_cycles_floor(self):
        stats = NetworkStats(Mesh3D(2, 2, 2))
        stats.open_window(100)
        assert stats.window_cycles(100) == 1  # never zero

    def test_bisection_convention_halves_crossings(self):
        """Both-direction crossings are halved to match the one-direction
        capacity convention."""
        mesh = Mesh3D(8, 8, 8)
        stats = NetworkStats(mesh)
        stats.open_window(0)
        stats.window_bisection_words = 64  # words crossing, both dirs
        # 32 words/cycle one-direction is exactly peak (64ch * 0.5).
        traffic = stats.bisection_traffic_bits_per_s(now=1)
        assert traffic == pytest.approx(
            mesh.bisection_capacity_bits_per_s())

    def test_message_rate(self):
        stats = NetworkStats(Mesh3D(2, 2, 2))
        stats.open_window(0)
        stats.window_completed = 50
        assert stats.message_rate_per_cycle(now=100) == 0.5
