"""Property-based tests of the wormhole fabric's global invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.message import Message
from repro.core.registers import Priority
from repro.core.word import Word
from repro.network.fabric import Fabric
from repro.network.topology import Mesh3D


def _message(src, dst, length, priority=Priority.P0):
    words = [Word.ip(1)] + [Word.from_int(i) for i in range(length - 1)]
    return Message(words, source=src, dest=dst, priority=priority)


message_specs = st.lists(
    st.tuples(
        st.integers(0, 26),          # source (3x3x3 mesh)
        st.integers(0, 26),          # dest
        st.integers(1, 6),           # length in words
        st.sampled_from([Priority.P0, Priority.P1]),
    ),
    min_size=1,
    max_size=40,
)


@settings(deadline=None, max_examples=60)
@given(message_specs)
def test_conservation_and_progress(specs):
    """Every submitted message is delivered exactly once, to the right
    node, and the network fully drains (deadlock freedom under e-cube
    routing with accepting destinations)."""
    delivered = []
    fabric = Fabric(Mesh3D(3, 3, 3), lambda n, m: True,
                    lambda n, m, t: delivered.append((n, m)))
    sent = []
    for src, dst, length, priority in specs:
        message = _message(src, dst, length, priority)
        sent.append(message)
        fabric.send(message, 0)

    now = 0
    while fabric.active and now < 100_000:
        fabric.step(now)
        now += 1

    assert not fabric.active, "network failed to drain"
    assert len(delivered) == len(sent)
    # Exactly once, and to the right destination.
    assert {id(m) for _, m in delivered} == {id(m) for m in sent}
    for node, message in delivered:
        assert node == message.dest


@settings(deadline=None, max_examples=40)
@given(message_specs)
def test_latency_lower_bound(specs):
    """No message arrives faster than its wire minimum."""
    fabric = Fabric(Mesh3D(3, 3, 3), lambda n, m: True,
                    lambda n, m, t: None)
    mesh = fabric.mesh
    for src, dst, length, priority in specs:
        fabric.send(_message(src, dst, length, priority), 0)
    now = 0
    while fabric.active and now < 100_000:
        fabric.step(now)
        now += 1
    # All messages were submitted at 0; check each arrival time.
    assert fabric.stats.latency.count == len(specs)
    minimum = fabric.inject_latency + fabric.eject_latency
    assert fabric.stats.latency.min >= minimum


@settings(deadline=None, max_examples=30)
@given(message_specs, st.sampled_from(["fixed", "round_robin"]))
def test_arbitration_modes_both_conserve(specs, arbitration):
    delivered = []
    fabric = Fabric(Mesh3D(3, 3, 3), lambda n, m: True,
                    lambda n, m, t: delivered.append(n),
                    arbitration=arbitration)
    for src, dst, length, priority in specs:
        fabric.send(_message(src, dst, length, priority), 0)
    now = 0
    while fabric.active and now < 100_000:
        fabric.step(now)
        now += 1
    assert len(delivered) == len(specs)


@settings(deadline=None, max_examples=25)
@given(st.lists(st.tuples(st.integers(0, 7), st.integers(2, 5)),
                min_size=1, max_size=15))
def test_per_pair_fifo_order(specs):
    """Messages between the same (source, dest) pair stay in order."""
    order = []
    fabric = Fabric(Mesh3D(8, 1, 1), lambda n, m: True,
                    lambda n, m, t: order.append(m))
    tagged = []
    for i, (dst, length) in enumerate(specs):
        message = _message(0, dst, length)
        tagged.append((dst, i, message))
        fabric.send(message, 0)
    now = 0
    while fabric.active and now < 100_000:
        fabric.step(now)
        now += 1
    sequence = {id(m): i for dst, i, m in tagged}
    per_dest = {}
    for message in order:
        per_dest.setdefault(message.dest, []).append(sequence[id(message)])
    for dest, indices in per_dest.items():
        assert indices == sorted(indices)
