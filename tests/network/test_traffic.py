"""Tests for the synthetic traffic harnesses (Figures 3 and 4)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.network.topology import Mesh3D
from repro.network.traffic import (RandomTrafficExperiment,
                                   TerminalBandwidthExperiment)


class TestTerminalBandwidth:
    def test_discard_monotone_in_message_size(self):
        rates = [TerminalBandwidthExperiment(w, "discard").run().bits_per_s
                 for w in (1, 2, 4, 8)]
        assert rates == sorted(rates)

    def test_sink_ordering_discard_imem_emem(self):
        results = {mode: TerminalBandwidthExperiment(8, mode).run().bits_per_s
                   for mode in ("discard", "imem", "emem")}
        assert results["discard"] > results["imem"] > results["emem"]

    def test_discard_cannot_exceed_channel_peak(self):
        result = TerminalBandwidthExperiment(16, "discard").run()
        assert result.words_per_cycle <= 0.5 + 1e-9

    def test_eight_words_near_ninety_percent(self):
        result = TerminalBandwidthExperiment(8, "discard").run()
        assert 0.85 <= result.words_per_cycle / 0.5 <= 0.95

    def test_two_words_above_half(self):
        result = TerminalBandwidthExperiment(2, "discard").run()
        assert result.words_per_cycle / 0.5 > 0.5

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            TerminalBandwidthExperiment(4, "teleport")

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigurationError):
            TerminalBandwidthExperiment(0, "discard")


class TestRandomTraffic:
    def _run(self, idle, words=4, dims=3):
        experiment = RandomTrafficExperiment(
            Mesh3D.cube(dims), message_words=words, idle_cycles=idle
        )
        return experiment.run(warmup_cycles=1000, measure_cycles=3000)

    def test_produces_iterations(self):
        result = self._run(idle=100)
        assert result.iterations > 0
        assert result.one_way_latency_cycles > 0

    def test_load_decreases_with_idle(self):
        loaded = self._run(idle=0)
        light = self._run(idle=1000)
        assert loaded.bisection_traffic_bits_per_s > \
            light.bisection_traffic_bits_per_s

    def test_efficiency_increases_with_grain(self):
        small_grain = self._run(idle=0)
        large_grain = self._run(idle=2000)
        assert large_grain.efficiency > small_grain.efficiency
        assert large_grain.efficiency > 0.9

    def test_latency_rises_under_load(self):
        loaded = self._run(idle=0, words=16)
        light = self._run(idle=2000, words=16)
        assert loaded.one_way_latency_cycles > light.one_way_latency_cycles

    def test_utilization_bounded(self):
        result = self._run(idle=0, words=16)
        assert 0.0 < result.bisection_utilization < 1.0

    def test_message_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomTrafficExperiment(Mesh3D.cube(2), 1, 0)

    def test_deterministic_given_seed(self):
        a = self._run(idle=50)
        b = self._run(idle=50)
        assert a.one_way_latency_cycles == b.one_way_latency_cycles
        assert a.iterations == b.iterations
