"""Tests for the fabric's diagnostics: channel load and the watchdog."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.message import Message
from repro.core.word import Word
from repro.network.fabric import Fabric
from repro.network.routing import INJECT
from repro.network.topology import Mesh3D


def _message(src, dst, length=2):
    words = [Word.ip(1)] + [Word.from_int(0)] * (length - 1)
    return Message(words, source=src, dest=dst)


def _run(fabric, limit=20_000):
    now = 0
    while fabric.active and now < limit:
        fabric.step(now)
        now += 1
    return now


class TestChannelLoad:
    def test_off_by_default(self):
        fabric = Fabric(Mesh3D(4, 1, 1), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.send(_message(0, 3), 0)
        _run(fabric)
        assert fabric.channel_phits == {}

    def test_counts_every_path_channel(self):
        fabric = Fabric(Mesh3D(4, 1, 1), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.track_channel_load = True
        fabric.send(_message(0, 3, length=2), 0)
        _run(fabric)
        # 3 hops, each crossed by 2*2+2 = 6 phits.
        assert len(fabric.channel_phits) == 3
        assert all(v == 6 for v in fabric.channel_phits.values())

    def test_mesh_channels_only(self):
        fabric = Fabric(Mesh3D(2, 2, 2), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.track_channel_load = True
        fabric.send(_message(0, 7), 0)
        _run(fabric)
        assert all(dim < INJECT for (_, dim, _) in fabric.channel_phits)

    def test_ecube_concentrates_load_in_x(self):
        """Uniform random traffic loads X channels hardest (e-cube
        corrects X first, so X carries every misrouted dimension)."""
        import random
        fabric = Fabric(Mesh3D(4, 4, 4), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.track_channel_load = True
        rng = random.Random(11)
        for _ in range(300):
            src = rng.randrange(64)
            dst = rng.randrange(64)
            if src != dst:
                fabric.send(_message(src, dst, 4), 0)
        _run(fabric, limit=100_000)
        by_dim = {0: 0, 1: 0, 2: 0}
        for (_, dim, _), phits in fabric.channel_phits.items():
            by_dim[dim] += phits
        # Symmetric traffic: roughly equal by dimension (each corrected
        # once); but midplane X channels individually carry the most.
        x_channels = {k: v for k, v in fabric.channel_phits.items()
                      if k[1] == 0}
        mid_x = [v for (node, _, _), v in x_channels.items()
                 if fabric.mesh.coord(node)[0] in (1, 2)]
        edge_x = [v for (node, _, _), v in x_channels.items()
                  if fabric.mesh.coord(node)[0] in (0, 3)]
        assert sum(mid_x) / len(mid_x) > sum(edge_x) / len(edge_x)


class TestWatchdog:
    def test_disabled_by_default(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.send(_message(0, 1), 0)
        for now in range(500):
            fabric.step(now)  # stalled forever, but no watchdog

    def test_trips_on_refused_delivery(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 100
        fabric.send(_message(0, 1), 0)
        with pytest.raises(ConfigurationError, match="no progress"):
            for now in range(1_000):
                fabric.step(now)

    def test_diagnostic_names_the_stuck_message(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 50
        fabric.send(_message(0, 1), 0)
        with pytest.raises(ConfigurationError, match="0->1"):
            for now in range(1_000):
                fabric.step(now)

    def test_does_not_trip_on_healthy_traffic(self):
        fabric = Fabric(Mesh3D(4, 4, 4), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 100
        for dst in range(1, 40):
            fabric.send(_message(0, dst % 64, 4), 0)
        _run(fabric)
        assert not fabric.active
