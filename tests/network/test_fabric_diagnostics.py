"""Tests for the fabric's diagnostics: channel load and the watchdog."""

import pytest

from repro.core.errors import DeadlockError, SimulationError
from repro.core.message import Message
from repro.core.word import Word
from repro.network.fabric import Fabric
from repro.network.routing import INJECT
from repro.network.topology import Mesh3D


def _message(src, dst, length=2):
    words = [Word.ip(1)] + [Word.from_int(0)] * (length - 1)
    return Message(words, source=src, dest=dst)


def _run(fabric, limit=20_000):
    now = 0
    while fabric.active and now < limit:
        fabric.step(now)
        now += 1
    return now


class TestChannelLoad:
    def test_off_by_default(self):
        fabric = Fabric(Mesh3D(4, 1, 1), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.send(_message(0, 3), 0)
        _run(fabric)
        assert fabric.channel_phits == {}

    def test_counts_every_path_channel(self):
        fabric = Fabric(Mesh3D(4, 1, 1), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.track_channel_load = True
        fabric.send(_message(0, 3, length=2), 0)
        _run(fabric)
        # 3 hops, each crossed by 2*2+2 = 6 phits.
        assert len(fabric.channel_phits) == 3
        assert all(v == 6 for v in fabric.channel_phits.values())

    def test_mesh_channels_only(self):
        fabric = Fabric(Mesh3D(2, 2, 2), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.track_channel_load = True
        fabric.send(_message(0, 7), 0)
        _run(fabric)
        assert all(dim < INJECT for (_, dim, _) in fabric.channel_phits)

    def test_ecube_concentrates_load_in_x(self):
        """Uniform random traffic loads X channels hardest (e-cube
        corrects X first, so X carries every misrouted dimension)."""
        import random
        fabric = Fabric(Mesh3D(4, 4, 4), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.track_channel_load = True
        rng = random.Random(11)
        for _ in range(300):
            src = rng.randrange(64)
            dst = rng.randrange(64)
            if src != dst:
                fabric.send(_message(src, dst, 4), 0)
        _run(fabric, limit=100_000)
        by_dim = {0: 0, 1: 0, 2: 0}
        for (_, dim, _), phits in fabric.channel_phits.items():
            by_dim[dim] += phits
        # Symmetric traffic: roughly equal by dimension (each corrected
        # once); but midplane X channels individually carry the most.
        x_channels = {k: v for k, v in fabric.channel_phits.items()
                      if k[1] == 0}
        mid_x = [v for (node, _, _), v in x_channels.items()
                 if fabric.mesh.coord(node)[0] in (1, 2)]
        edge_x = [v for (node, _, _), v in x_channels.items()
                  if fabric.mesh.coord(node)[0] in (0, 3)]
        assert sum(mid_x) / len(mid_x) > sum(edge_x) / len(edge_x)


class TestWatchdog:
    def test_disabled_by_default(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.send(_message(0, 1), 0)
        for now in range(500):
            fabric.step(now)  # stalled forever, but no watchdog

    def test_trips_on_refused_delivery(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 100
        fabric.send(_message(0, 1), 0)
        with pytest.raises(DeadlockError, match="no progress"):
            for now in range(1_000):
                fabric.step(now)

    def test_diagnostic_names_the_stuck_message(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 50
        fabric.send(_message(0, 1), 0)
        with pytest.raises(DeadlockError, match="0->1"):
            for now in range(1_000):
                fabric.step(now)

    def test_error_is_typed_and_carries_diagnostics(self):
        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 100
        fabric.send(_message(0, 1), 0)
        with pytest.raises(DeadlockError) as excinfo:
            for now in range(1_000):
                fabric.step(now)
        err = excinfo.value
        assert isinstance(err, SimulationError)
        assert err.worms_in_flight == 1
        assert err.now >= fabric.watchdog_cycles

    def test_stagnation_emits_watchdog_event(self):
        from repro.telemetry.events import EventBus

        fabric = Fabric(Mesh3D(2, 1, 1), lambda n, m: False,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 50
        fabric._events = bus = EventBus()
        fabric.send(_message(0, 1), 0)
        with pytest.raises(DeadlockError):
            for now in range(1_000):
                fabric.step(now)
        kinds = [e[1] for e in bus.events]
        assert "watchdog" in kinds
        watchdog_events = [e for e in bus.events if e[1] == "watchdog"]
        assert watchdog_events[0][4] == "net-stagnation"

    def test_diagnostic_names_the_blocking_worm(self):
        """A worm stuck behind another worm reports its blocker."""
        accepted = []

        def accept(node, message):
            # Refuse everything: both worms wedge, the second behind
            # the first on the shared X channel.
            return False

        fabric = Fabric(Mesh3D(4, 1, 1), accept, lambda n, m, t: None)
        fabric.watchdog_cycles = 60
        fabric.send(_message(0, 3, length=8), 0)
        fabric.send(_message(1, 3, length=8), 0)
        with pytest.raises(DeadlockError, match="blocked_by"):
            for now in range(1_000):
                fabric.step(now)
        assert not accepted


class TestBounce:
    """Return-to-sender flow control (the critique's proposed protocol)."""

    def _refuse_n_times(self, n):
        refusals = {"left": n}

        def accept(node, message):
            if refusals["left"] > 0:
                refusals["left"] -= 1
                return False
            return True

        return accept

    def test_refused_message_bounces_and_retries(self):
        delivered = []
        fabric = Fabric(Mesh3D(4, 1, 1), self._refuse_n_times(1),
                        lambda n, m, t: delivered.append((n, m, t)),
                        flow_control="return_to_sender")
        fabric.send(_message(0, 3), 0)
        _run(fabric, limit=10_000)
        assert fabric.stats.bounces == 1
        # The original message is eventually delivered, once.
        assert len(delivered) == 1
        assert delivered[0][0] == 3
        assert delivered[0][1].dest == 3

    def test_bounce_frees_the_path(self):
        """After a bounce no channel stays owned by the dead worm."""
        fabric = Fabric(Mesh3D(4, 1, 1), self._refuse_n_times(1),
                        lambda n, m, t: None,
                        flow_control="return_to_sender")
        fabric.send(_message(0, 3), 0)
        _run(fabric, limit=10_000)
        assert not fabric.active
        assert fabric._owner == {} or all(
            w.done is False for w in fabric._owner.values())

    def test_repeated_refusal_bounces_repeatedly(self):
        delivered = []
        fabric = Fabric(Mesh3D(4, 1, 1), self._refuse_n_times(3),
                        lambda n, m, t: delivered.append(n),
                        flow_control="return_to_sender")
        fabric.send(_message(0, 3), 0)
        _run(fabric, limit=50_000)
        assert fabric.stats.bounces == 3
        assert delivered == [3]

    def test_block_mode_never_bounces(self):
        fabric = Fabric(Mesh3D(4, 1, 1), self._refuse_n_times(5),
                        lambda n, m, t: None)  # default: block
        fabric.send(_message(0, 3), 0)
        _run(fabric, limit=200)
        assert fabric.stats.bounces == 0
        assert fabric.stats.delivery_stall_cycles > 0

    def test_does_not_trip_on_healthy_traffic(self):
        fabric = Fabric(Mesh3D(4, 4, 4), lambda n, m: True,
                        lambda n, m, t: None)
        fabric.watchdog_cycles = 100
        for dst in range(1, 40):
            fabric.send(_message(0, dst % 64, 4), 0)
        _run(fabric)
        assert not fabric.active
