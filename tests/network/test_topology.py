"""Tests for the 3-D mesh topology."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.network.topology import Mesh3D


class TestNumbering:
    def test_node_count(self):
        assert Mesh3D(8, 8, 8).n_nodes == 512
        assert Mesh3D(16, 8, 8).n_nodes == 1024

    def test_origin(self):
        assert Mesh3D.cube(8).coord(0) == (0, 0, 0)

    def test_x_major_order(self):
        mesh = Mesh3D(4, 4, 4)
        assert mesh.coord(1) == (1, 0, 0)
        assert mesh.coord(4) == (0, 1, 0)
        assert mesh.coord(16) == (0, 0, 1)

    @given(st.integers(0, 511))
    def test_coord_roundtrip(self, node):
        mesh = Mesh3D.cube(8)
        assert mesh.node_id(mesh.coord(node)) == node

    def test_out_of_range_node(self):
        with pytest.raises(ConfigurationError):
            Mesh3D.cube(2).coord(8)

    def test_out_of_range_coord(self):
        with pytest.raises(ConfigurationError):
            Mesh3D.cube(2).node_id((2, 0, 0))

    def test_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            Mesh3D(0, 1, 1)


class TestForNodes:
    @pytest.mark.parametrize("n,dims", [
        (1, (1, 1, 1)), (8, (2, 2, 2)), (64, (4, 4, 4)),
        (512, (8, 8, 8)), (1024, (16, 8, 8)),
    ])
    def test_standard_shapes(self, n, dims):
        assert Mesh3D.for_nodes(n).dims == dims

    def test_nonstandard_size_factorized(self):
        mesh = Mesh3D.for_nodes(100)
        assert mesh.n_nodes == 100
        assert max(mesh.dims) <= 10

    def test_prime_size_degenerates_to_line(self):
        assert Mesh3D.for_nodes(7).dims == (7, 1, 1)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Mesh3D.for_nodes(0)


class TestDistance:
    def test_self_distance_zero(self):
        assert Mesh3D.cube(8).hops(5, 5) == 0

    def test_corner_to_corner(self):
        assert Mesh3D.cube(8).hops(0, 511) == 21

    def test_max_hops(self):
        assert Mesh3D.cube(8).max_hops() == 21
        assert Mesh3D(16, 8, 8).max_hops() == 29

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_symmetric(self, a, b):
        mesh = Mesh3D.cube(4)
        assert mesh.hops(a, b) == mesh.hops(b, a)

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    def test_triangle_inequality(self, a, b, c):
        mesh = Mesh3D.cube(4)
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)

    def test_nodes_at_distance(self):
        mesh = Mesh3D.cube(4)
        assert mesh.nodes_at_distance(0, 0) == [0]
        neighbours = mesh.nodes_at_distance(0, 1)
        assert sorted(neighbours) == sorted(mesh.neighbors(0))


class TestNeighbors:
    def test_corner_has_three(self):
        assert len(list(Mesh3D.cube(4).neighbors(0))) == 3

    def test_interior_has_six(self):
        mesh = Mesh3D.cube(4)
        interior = mesh.node_id((1, 1, 1))
        assert len(list(mesh.neighbors(interior))) == 6

    def test_neighbors_at_distance_one(self):
        mesh = Mesh3D.cube(4)
        for neighbor in mesh.neighbors(21):
            assert mesh.hops(21, neighbor) == 1


class TestBisection:
    def test_channel_count(self):
        assert Mesh3D.cube(8).bisection_channels() == 64

    def test_capacity_matches_paper(self):
        capacity = Mesh3D.cube(8).bisection_capacity_bits_per_s()
        assert capacity == pytest.approx(14.4e9)

    def test_crossing_detection(self):
        mesh = Mesh3D.cube(8)
        left = mesh.node_id((0, 0, 0))
        right = mesh.node_id((7, 0, 0))
        same_side = mesh.node_id((1, 5, 5))
        assert mesh.crosses_x_midplane(left, right)
        assert not mesh.crosses_x_midplane(left, same_side)

    @given(st.integers(0, 511), st.integers(0, 511))
    def test_crossing_symmetric(self, a, b):
        mesh = Mesh3D.cube(8)
        assert mesh.crosses_x_midplane(a, b) == mesh.crosses_x_midplane(b, a)
