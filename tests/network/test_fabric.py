"""Tests for the flit-level wormhole fabric."""

import pytest

from repro.core.message import Message
from repro.core.registers import Priority
from repro.core.word import Word
from repro.network.fabric import Fabric
from repro.network.topology import Mesh3D


class Sink:
    """Test harness: collects deliveries, optionally refusing some."""

    def __init__(self):
        self.delivered = []
        self.refuse = set()

    def accept(self, node, message):
        return node not in self.refuse

    def deliver(self, node, message, now):
        self.delivered.append((node, message, now))


def make_fabric(dims=(4, 4, 4)):
    sink = Sink()
    fabric = Fabric(Mesh3D(*dims), sink.accept, sink.deliver)
    return fabric, sink


def message(src, dst, length=2, priority=Priority.P0):
    words = [Word.ip(1)] + [Word.from_int(i) for i in range(length - 1)]
    return Message(words, source=src, dest=dst, priority=priority)


def run(fabric, start=0, limit=10_000):
    now = start
    while fabric.active and now < limit:
        fabric.step(now)
        now += 1
    return now


class TestDelivery:
    def test_single_message_arrives(self):
        fabric, sink = make_fabric()
        fabric.send(message(0, 63), 0)
        run(fabric)
        assert len(sink.delivered) == 1
        node, msg, at = sink.delivered[0]
        assert node == 63
        assert msg.arrive_time == at

    def test_self_message_arrives(self):
        fabric, sink = make_fabric()
        fabric.send(message(5, 5), 0)
        run(fabric)
        assert sink.delivered[0][0] == 5

    def test_latency_grows_with_distance(self):
        latencies = {}
        for dst in (1, 3, 63):
            fabric, sink = make_fabric()
            fabric.send(message(0, dst), 0)
            run(fabric)
            latencies[dst] = sink.delivered[0][2]
        assert latencies[1] < latencies[3] < latencies[63]

    def test_latency_grows_with_length(self):
        latencies = {}
        for length in (2, 8):
            fabric, sink = make_fabric()
            fabric.send(message(0, 63, length), 0)
            run(fabric)
            latencies[length] = sink.delivered[0][2]
        # Each extra word is 2 phits at 1 phit/cycle.
        assert latencies[8] == latencies[2] + 12

    def test_one_cycle_per_hop(self):
        fabric, sink = make_fabric((8, 1, 1))
        fabric.send(message(0, 1), 0)
        run(fabric)
        near = sink.delivered[0][2]
        fabric, sink = make_fabric((8, 1, 1))
        fabric.send(message(0, 7), 0)
        run(fabric)
        far = sink.delivered[0][2]
        assert far - near == 6

    def test_fifo_between_same_pair(self):
        fabric, sink = make_fabric()
        first = message(0, 10, 4)
        second = message(0, 10, 2)
        fabric.send(first, 0)
        fabric.send(second, 0)
        run(fabric)
        assert [m for _, m, _ in sink.delivered] == [first, second]

    def test_stats_count_completions(self):
        fabric, sink = make_fabric()
        for dst in (1, 2, 3):
            fabric.send(message(0, dst), 0)
        run(fabric)
        assert fabric.stats.completed == 3
        assert fabric.stats.submitted == 3


class TestBackpressure:
    def test_refused_delivery_stalls_worm(self):
        fabric, sink = make_fabric()
        sink.refuse.add(9)
        fabric.send(message(0, 9), 0)
        for now in range(200):
            fabric.step(now)
        assert not sink.delivered
        assert fabric.active
        assert fabric.stats.delivery_stall_cycles > 0

    def test_release_after_acceptance(self):
        fabric, sink = make_fabric()
        sink.refuse.add(9)
        fabric.send(message(0, 9), 0)
        for now in range(100):
            fabric.step(now)
        sink.refuse.clear()
        run(fabric, start=100)
        assert len(sink.delivered) == 1

    def test_blocked_worm_blocks_channel_sharers(self):
        """A stalled worm holds its channels; a second worm needing them
        waits (wormhole blocking)."""
        fabric, sink = make_fabric((8, 1, 1))
        sink.refuse.add(7)
        fabric.send(message(0, 7, 2), 0)       # will stall at node 7
        fabric.send(message(0, 6, 2), 0)       # same channels, must wait
        for now in range(300):
            fabric.step(now)
        assert not sink.delivered  # both stuck
        sink.refuse.clear()
        run(fabric, start=300)
        assert [d[0] for d in sink.delivered] == [7, 6]


class TestPriorities:
    def test_p1_has_own_virtual_channels(self):
        """A blocked P0 worm does not block a P1 worm on the same links."""
        fabric, sink = make_fabric((8, 1, 1))
        sink.refuse.add(7)
        fabric.send(message(0, 7, 2, Priority.P0), 0)
        fabric.send(message(0, 6, 2, Priority.P1), 0)
        for now in range(300):
            fabric.step(now)
            if sink.delivered:
                break
        assert sink.delivered and sink.delivered[0][0] == 6

    def test_injection_serializes_per_priority(self):
        fabric, sink = make_fabric()
        fabric.send(message(0, 1, 16), 0)
        fabric.send(message(0, 2, 2), 0)
        run(fabric)
        # The short second message cannot overtake the long first one.
        assert sink.delivered[0][0] == 1


class TestCallbacks:
    def test_on_injected_fires_once_per_message(self):
        fabric, sink = make_fabric()
        injected = []
        fabric.on_injected = injected.append
        fabric.send(message(0, 5, 4), 0)
        fabric.send(message(0, 6, 2), 0)
        run(fabric)
        assert len(injected) == 2

    def test_drain_returns_finish_time(self):
        fabric, sink = make_fabric()
        fabric.send(message(0, 1), 0)
        end = fabric.drain(0)
        assert not fabric.active
        assert end >= sink.delivered[0][2] - fabric.eject_latency


class TestWindowStats:
    def test_bisection_counting(self):
        fabric, sink = make_fabric((4, 4, 4))
        fabric.stats.open_window(0)
        crossing = message(0, 3, 4)        # x: 0 -> 3 crosses midplane
        local = message(0, 1, 4)           # x: 0 -> 1 stays left
        fabric.send(crossing, 0)
        fabric.send(local, 0)
        run(fabric)
        assert fabric.stats.window_bisection_words == 4
        assert fabric.stats.window_message_words == 8
