"""The content-addressed result cache: atomic, corruption-tolerant."""

import json
import os

from repro.service import ResultCache

RESULT = {"cycles": 123, "fingerprint": "ab" * 32, "output": 9}


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put("d" * 64, RESULT)
        assert cache.get("d" * 64) == RESULT
        assert cache.stats() == {"hits": 1, "misses": 0, "entries": 1}

    def test_miss_is_counted_not_raised(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("absent" * 8) is None
        assert cache.stats()["misses"] == 1

    def test_overwrite_in_place(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("a" * 64, {"cycles": 1})
        cache.put("a" * 64, {"cycles": 2})
        assert cache.get("a" * 64) == {"cycles": 2}
        assert len(cache) == 1

    def test_spec_recorded_alongside(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.put("b" * 64, RESULT, spec={"app": "lcs"})
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        assert entry["spec"] == {"app": "lcs"}
        assert entry["digest"] == "b" * 64


class TestCorruption:
    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.put("c" * 64, RESULT)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"digest": "c", "resu')  # truncated mid-write
        assert cache.get("c" * 64) is None
        assert cache.stats()["misses"] == 1

    def test_wrong_shape_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.path("e" * 64)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(["not", "an", "entry"], fh)
        assert cache.get("e" * 64) is None

    def test_writes_are_atomic_no_tmp_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("f" * 64, RESULT)
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if ".tmp." in name]
        assert leftovers == []
