"""JobSpec canonicalization: the rules the cache's soundness rests on.

Two specs that *mean* the same run must hash identically (else the
cache silently loses hits), and two specs that mean different runs
must never collide on defaults (else the cache serves wrong results).
"""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.service import APPS, SPEC_VERSION, JobSpec


class TestCanonicalization:
    def test_defaults_are_filled_in(self):
        bare = JobSpec("lcs")
        explicit = JobSpec("lcs", n_nodes=8,
                           params={"scale": 0.02, "seed": 20130501},
                           plan=None, reliable=False)
        assert bare.digest == explicit.digest

    def test_canonical_json_is_sorted_and_minimal(self):
        text = JobSpec("lcs").canonical_json()
        parsed = json.loads(text)
        assert text == json.dumps(parsed, sort_keys=True,
                                  separators=(",", ":"))
        assert parsed["version"] == SPEC_VERSION

    def test_numeric_coercion_unifies_int_and_float(self):
        assert JobSpec("lcs", params={"scale": 1}).digest \
            == JobSpec("lcs", params={"scale": 1.0}).digest

    def test_param_order_is_irrelevant(self):
        a = JobSpec("nqueens", params={"n": 9, "tasks_per_node": 2})
        b = JobSpec("nqueens", params={"tasks_per_node": 2, "n": 9})
        assert a.digest == b.digest

    def test_reliable_true_and_empty_dict_hash_equal(self):
        assert JobSpec("lcs", reliable=True).digest \
            == JobSpec("lcs", reliable={}).digest

    def test_reliable_kwargs_order_is_irrelevant(self):
        a = JobSpec("lcs", reliable={"timeout": 500, "max_retries": 9})
        b = JobSpec("lcs", reliable={"max_retries": 9, "timeout": 500})
        assert a.digest == b.digest

    def test_fault_plan_normalizes_defaulted_fields(self):
        sparse = {"seed": 3, "specs": [{"kind": "drop", "rate": 0.1}]}
        padded = {"seed": 3, "specs": [{"kind": "drop", "rate": 0.1,
                                        "node": None}]}
        assert JobSpec("lcs", plan=sparse).digest \
            == JobSpec("lcs", plan=padded).digest

    def test_distinct_meanings_never_collide(self):
        digests = {
            JobSpec("lcs").digest,
            JobSpec("lcs", n_nodes=16).digest,
            JobSpec("lcs", params={"scale": 0.04}).digest,
            JobSpec("lcs", reliable=True).digest,
            JobSpec("lcs", plan={"seed": 1, "specs": [
                {"kind": "drop", "rate": 0.1}]}).digest,
            JobSpec("nqueens").digest,
            JobSpec("ping").digest,
        }
        assert len(digests) == 7


class TestHintsExcluded:
    def test_hints_do_not_change_the_digest(self):
        """Checkpoint/sampling cadence shapes supervision, never the
        result (both are bit-identical-when-enabled), so resubmitting
        with different hints must still hit the cache."""
        a = JobSpec("lcs", checkpoint_every=1_000, sample_every=100)
        b = JobSpec("lcs", checkpoint_every=9_999_999)
        assert a.digest == b.digest
        assert a.checkpoint_every != b.checkpoint_every

    def test_hints_travel_in_to_dict(self):
        spec = JobSpec("lcs", checkpoint_every=777, sample_every=55)
        data = spec.to_dict()
        assert data["checkpoint_every"] == 777
        assert data["sample_every"] == 55
        assert "checkpoint_every" not in spec.identity()


class TestValidation:
    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("mandelbrot")

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError) as info:
            JobSpec("lcs", params={"scale": 0.1, "warp": 9})
        assert "warp" in str(info.value)

    def test_bad_n_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("lcs", n_nodes=0)

    def test_bad_plan_rejected_at_submit_time(self):
        with pytest.raises(Exception):
            JobSpec("lcs", plan={"seed": 1, "specs": [
                {"kind": "not-a-fault"}]})

    def test_ping_with_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("ping", plan={"seed": 1, "specs": [
                {"kind": "drop", "rate": 0.1}]})

    def test_nonpositive_hints_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("lcs", checkpoint_every=0)

    def test_apps_vocabulary_is_closed(self):
        assert APPS == ("lcs", "nqueens", "ping")


class TestTransport:
    def test_round_trip_preserves_digest_and_hints(self):
        spec = JobSpec("nqueens", n_nodes=4, params={"n": 7},
                       reliable={"timeout": 800}, checkpoint_every=123)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.digest == spec.digest
        assert clone.checkpoint_every == 123
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError) as info:
            JobSpec.from_dict({"app": "lcs", "priority": 7})
        assert "priority" in str(info.value)

    def test_version_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_dict({"app": "lcs",
                               "version": SPEC_VERSION + 1})

    def test_missing_app_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_dict({"n_nodes": 4})
