"""Fault recovery: kill -9 a worker mid-job, get the *same answer*.

The PR's headline guarantee, as a test: a job whose worker is killed
outright completes on retry with a telemetry digest equal to an
undisturbed run's, and the retry resumes from the dead worker's last
checkpoint rather than replaying the whole run.
"""

import os
import signal
import time

import pytest

from repro.service import JobSpec, ServiceConfig, Supervisor
from repro.service.runner import checkpoint_path, execute_job
from repro.telemetry.live import LiveSampler

pytestmark = pytest.mark.skipif(os.name != "posix",
                                reason="SIGKILL semantics required")

#: Big enough to checkpoint mid-run, small enough for CI (~1 s).
SPEC_KW = dict(app="lcs", n_nodes=4, params={"scale": 0.05},
               checkpoint_every=5_000, sample_every=1_000)


def _wait_for(predicate, timeout=90.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


def test_sigkill_mid_job_recovers_with_equal_digest(tmp_path):
    # Reference: the undisturbed run, executed in-process.
    reference = execute_job(JobSpec(**SPEC_KW))
    assert reference["resumed_from"] == 0

    workdir = str(tmp_path / "work")
    config = ServiceConfig(workdir=workdir, workers=1, heartbeat_s=0.05,
                           lease_timeout_s=1.5, tick_s=0.02,
                           backoff_s=0.05)
    supervisor = Supervisor(config, sampler=LiveSampler()).start()
    try:
        spec = JobSpec(**SPEC_KW)
        supervisor.submit(spec)
        ckpt = checkpoint_path(workdir, spec.digest)

        # Wait for a lease *and* a first checkpoint, then kill -9.
        def armed():
            with supervisor.lock:
                job = supervisor.queue.jobs[spec.digest]
                if job.state == "leased" and os.path.exists(ckpt):
                    return supervisor.workers[job.worker].pid
            return None

        victim = _wait_for(armed)
        os.kill(victim, signal.SIGKILL)

        def settled():
            with supervisor.lock:
                job = supervisor.queue.jobs[spec.digest]
                return job if job.state in ("done", "failed") else None

        job = _wait_for(settled)
        assert job.state == "done", job.error

        # One kill, one requeue, two attempts.
        assert job.requeues == 1
        assert job.attempts == 2

        # The recovered run is indistinguishable from the undisturbed
        # one: same telemetry digest, same cycle count, same output.
        assert job.result["fingerprint"] == reference["fingerprint"]
        assert job.result["cycles"] == reference["cycles"]
        assert job.result["output"] == reference["output"]

        # ...and it *resumed*: the retry replayed strictly fewer cycles
        # than a cold restart would have.
        resumed_from = job.result["resumed_from"]
        assert resumed_from > 0
        assert reference["cycles"] - resumed_from < reference["cycles"]

        # The lease expiry was accounted, a replacement worker spawned,
        # and heartbeat frames were relayed into the fleet sampler.
        status = supervisor.status()
        assert status["respawns"] >= 1
        assert supervisor.sampler.samples >= 1

        # Success cleaned the checkpoint up.
        assert not os.path.exists(ckpt)
    finally:
        supervisor.stop()

    # No worker processes survive stop().
    for handle_pids in [w["pid"] for w in supervisor.status()["workers"]]:
        with pytest.raises(ProcessLookupError):
            os.kill(handle_pids, 0)


def test_hung_worker_is_detected_and_revoked(tmp_path):
    """A worker that heartbeats but makes no progress is 'stalled':
    the lease expires on the progress window, not the silence timeout.

    Simulated by a worker whose job loops forever at the simulated
    level: a chaos-free lcs run with an artificially pinned clock is
    hard to fake from outside, so this exercises the LeaseTable path
    through the supervisor tick with a synthetic lease instead.
    """
    config = ServiceConfig(workdir=str(tmp_path / "work"), workers=0,
                           progress_window_s=0.2, lease_timeout_s=30.0,
                           tick_s=0.02)
    supervisor = Supervisor(config).start()
    try:
        spec = JobSpec(**SPEC_KW)
        with supervisor.lock:
            job = supervisor.queue.submit(spec)
            supervisor.queue.lease(job, worker=99)
            supervisor.leases.grant(spec.digest, worker=99)
        # Heartbeats flow, sim_now never moves.
        for _ in range(8):
            with supervisor.lock:
                supervisor.leases.heartbeat(99, sim_now=12345)
            time.sleep(0.05)

        def revoked():
            with supervisor.lock:
                return supervisor.leases.expiries.get("stalled", 0) > 0 \
                    and supervisor.queue.jobs[spec.digest].state \
                    == "queued"

        _wait_for(revoked, timeout=30.0)
        with supervisor.lock:
            assert supervisor.queue.jobs[spec.digest].requeues == 1
    finally:
        supervisor.stop()
