"""Supervisor + HTTP API integration: the happy paths, in-process.

Timing note: these tests run real worker subprocesses with tight
heartbeat/tick intervals; assertions poll with generous deadlines so a
loaded CI box cannot flake them.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import JobSpec, ServiceConfig, Supervisor
from repro.service.http import ServiceServer
from repro.telemetry.live import LiveSampler


def _config(tmp_path, **overrides):
    kwargs = dict(workdir=str(tmp_path / "work"), workers=1,
                  heartbeat_s=0.05, lease_timeout_s=1.5, tick_s=0.02,
                  backoff_s=0.05)
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def _wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


def _await_job(supervisor, digest, timeout=60.0):
    def settled():
        with supervisor.lock:
            job = supervisor.queue.jobs.get(digest)
            return job if job is not None \
                and job.state in ("done", "failed") else None

    return _wait_for(settled, timeout=timeout)


PING = dict(app="ping", n_nodes=4, params={"iterations": 10})


class TestSupervisor:
    def test_submit_executes_and_caches(self, tmp_path):
        supervisor = Supervisor(_config(tmp_path)).start()
        try:
            spec = JobSpec(**PING)
            record = supervisor.submit(spec)
            assert record["state"] == "queued"
            job = _await_job(supervisor, spec.digest)
            assert job.state == "done"
            assert job.result["cycles"] > 0
            assert len(job.result["fingerprint"]) == 64
            assert supervisor.cache.get(spec.digest) is not None
        finally:
            supervisor.stop()

    def test_cache_hit_skips_execution(self, tmp_path):
        config = _config(tmp_path)
        first = Supervisor(config).start()
        try:
            spec = JobSpec(**PING)
            first.submit(spec)
            reference = _await_job(first, spec.digest).result
        finally:
            first.stop()
        # A fresh supervisor over the same workdir: the resubmission
        # must be served from the content-addressed cache, not re-run.
        second = Supervisor(config)  # not even started: no workers
        record = second.submit(JobSpec(**PING))
        assert record["state"] == "done"
        assert record["cached"] is True
        assert record["result"]["fingerprint"] \
            == reference["fingerprint"]
        assert second.cache.hits == 1

    def test_deterministic_failure_is_not_retried(self, tmp_path):
        supervisor = Supervisor(_config(tmp_path)).start()
        try:
            # nqueens with a fault plan but no reliable transport: the
            # run dies deterministically on an unrecoverable drop.
            spec = JobSpec("nqueens", n_nodes=4,
                           params={"n": 6, "tasks_per_node": 2},
                           plan={"seed": 2, "specs": [
                               {"kind": "drop", "rate": 0.6}]})
            supervisor.submit(spec)
            job = _await_job(supervisor, spec.digest)
            assert job.state == "failed"
            assert job.requeues == 0  # no budget spent on determinism
            assert job.error
        finally:
            supervisor.stop()

    def test_chaos_job_with_reliable_transport_completes(self, tmp_path):
        supervisor = Supervisor(_config(tmp_path)).start()
        try:
            spec = JobSpec("lcs", n_nodes=4, params={"scale": 0.01},
                           plan={"seed": 2, "specs": [
                               {"kind": "drop", "rate": 0.05}]},
                           reliable=True)
            supervisor.submit(spec)
            job = _await_job(supervisor, spec.digest)
            assert job.state == "done", job.error
            assert job.result["reliable"]["acked"] > 0
            assert job.result["chaos"]["drops"] >= 0
        finally:
            supervisor.stop()

    def test_drain_finishes_leased_work(self, tmp_path):
        supervisor = Supervisor(_config(tmp_path)).start()
        try:
            spec = JobSpec("lcs", n_nodes=4, params={"scale": 0.02})
            supervisor.submit(spec)
            _wait_for(lambda: supervisor.queue.jobs[spec.digest]
                      .state != "queued")
            report = supervisor.drain(timeout_s=60.0)
            assert report["drained"] is True
            assert supervisor.queue.jobs[spec.digest].state == "done"
            assert len(supervisor.workers) == 0 or all(
                handle.proc.poll() is not None
                for handle in supervisor.workers.values())
        finally:
            supervisor.stop()

    def test_status_shape(self, tmp_path):
        supervisor = Supervisor(_config(tmp_path)).start()
        try:
            status = supervisor.status()
            assert set(status) >= {"uptime_s", "draining", "queue",
                                   "leases", "cache", "workers",
                                   "respawns"}
            assert len(status["workers"]) == 1
        finally:
            supervisor.stop()


class TestHttpApi:
    @pytest.fixture()
    def service(self, tmp_path):
        supervisor = Supervisor(_config(tmp_path),
                                sampler=LiveSampler()).start()
        server = ServiceServer(supervisor, port=0)
        server.start_background()
        yield server
        supervisor.stop()
        server.stop()

    @staticmethod
    def _get(server, path):
        try:
            with urllib.request.urlopen(server.url + path,
                                        timeout=10) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    @staticmethod
    def _post(server, path, body):
        request = urllib.request.Request(
            server.url + path, data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=60) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_submit_status_jobs_round_trip(self, service):
        code, record = self._post(service, "/submit", dict(PING))
        assert code == 200
        digest = record["digest"]
        _wait_for(lambda: self._get(service, f"/jobs/{digest}")[1]
                  ["state"] == "done")
        code, listing = self._get(service, "/jobs")
        assert code == 200
        assert [job["digest"] for job in listing["jobs"]] == [digest]
        code, status = self._get(service, "/status")
        assert status["queue"]["done"] == 1

    def test_malformed_spec_is_400(self, service):
        code, body = self._post(service, "/submit", {"app": "nope"})
        assert code == 400
        assert "nope" in body["error"]

    def test_shed_is_503_with_retry_after(self, tmp_path):
        supervisor = Supervisor(
            _config(tmp_path, queue_limit=1, workers=1)).start()
        server = ServiceServer(supervisor, port=0)
        server.start_background()
        try:
            self._post(server, "/submit",
                       dict(app="lcs", n_nodes=4,
                            params={"scale": 0.02}))
            code, record = self._post(server, "/submit", dict(PING))
            assert code == 503
            assert record["state"] == "shed"
        finally:
            supervisor.stop()
            server.stop()

    def test_unknown_job_is_404(self, service):
        code, body = self._get(service, "/jobs/" + "0" * 64)
        assert code == 404

    def test_live_endpoints_still_served(self, service):
        with urllib.request.urlopen(service.url + "/metrics",
                                    timeout=10) as response:
            assert response.status == 200
        code, snap = self._get(service, "/snapshot.json")
        assert code == 200
