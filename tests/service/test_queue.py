"""Queue admission, leases, retry budgets — all on a fake clock."""

import pytest

from repro.service import JobQueue, JobSpec, LeaseTable
from repro.service.queue import STATES


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _spec(scale=0.01, **kw):
    return JobSpec("lcs", n_nodes=4, params={"scale": scale}, **kw)


class TestAdmission:
    def test_submit_and_dedup(self):
        queue = JobQueue(clock=FakeClock())
        first = queue.submit(_spec())
        second = queue.submit(_spec())
        assert first is second
        assert queue.pending() == 1

    def test_bounded_queue_sheds_explicitly(self):
        queue = JobQueue(limit=2, clock=FakeClock())
        queue.submit(_spec(0.01))
        queue.submit(_spec(0.02))
        shed = queue.submit(_spec(0.03))
        assert shed.state == "shed"
        assert "full" in shed.error
        assert queue.shed_count == 1
        # the shed record is a throwaway: the digest is not retained,
        # so resubmission after the queue drains is admitted normally
        assert shed.digest not in queue.jobs

    def test_shed_then_drain_then_readmit(self):
        clock = FakeClock()
        queue = JobQueue(limit=1, clock=clock)
        job = queue.submit(_spec(0.01))
        assert queue.submit(_spec(0.02)).state == "shed"
        queue.lease(job, worker=0)
        queue.complete(job, {"cycles": 1})
        admitted = queue.submit(_spec(0.02))
        assert admitted.state == "queued"

    def test_failed_job_can_be_resubmitted(self):
        queue = JobQueue(clock=FakeClock())
        job = queue.submit(_spec())
        queue.lease(job, worker=0)
        queue.fail(job, "boom")
        fresh = queue.submit(_spec())
        assert fresh is not job
        assert fresh.state == "queued"

    def test_adopt_records_cache_hits(self):
        queue = JobQueue(clock=FakeClock())
        job = queue.adopt(_spec(), {"cycles": 42})
        assert job.state == "done"
        assert job.cached is True
        assert queue.counts()["done"] == 1


class TestDispatch:
    def test_fifo_order(self):
        queue = JobQueue(clock=FakeClock())
        first = queue.submit(_spec(0.01))
        queue.submit(_spec(0.02))
        assert queue.next_ready() is first

    def test_lease_removes_from_order(self):
        queue = JobQueue(clock=FakeClock())
        first = queue.submit(_spec(0.01))
        second = queue.submit(_spec(0.02))
        queue.lease(first, worker=0)
        assert first.attempts == 1
        assert first.worker == 0
        assert queue.next_ready() is second

    def test_backoff_deadline_gates_redispatch(self):
        clock = FakeClock()
        queue = JobQueue(backoff_s=1.0, jitter=0.0, clock=clock)
        job = queue.submit(_spec())
        queue.lease(job, worker=0)
        assert queue.requeue(job, "worker died") is True
        assert job.state == "queued"
        assert queue.next_ready() is None  # still backing off
        clock.advance(1.1)
        assert queue.next_ready() is job

    def test_retries_only_filter_for_drain(self):
        clock = FakeClock()
        queue = JobQueue(backoff_s=0.0, jitter=0.0, clock=clock)
        fresh = queue.submit(_spec(0.01))
        retried = queue.submit(_spec(0.02))
        queue.lease(retried, worker=0)
        queue.requeue(retried, "worker died")
        clock.advance(1.0)
        assert queue.next_ready(retries_only=True) is retried
        assert queue.next_ready() is fresh


class TestRetryBudget:
    def test_budget_exhaustion_fails_the_job(self):
        clock = FakeClock()
        queue = JobQueue(max_retries=2, backoff_s=0.0, jitter=0.0,
                         clock=clock)
        job = queue.submit(_spec())
        for attempt in range(2):
            queue.lease(job, worker=0)
            assert queue.requeue(job, f"death {attempt}") is True
        queue.lease(job, worker=0)
        assert queue.requeue(job, "death 2") is False
        assert job.state == "failed"
        assert "budget" in job.error

    def test_backoff_grows_exponentially(self):
        clock = FakeClock()
        queue = JobQueue(max_retries=5, backoff_s=1.0, backoff_factor=2.0,
                         jitter=0.0, clock=clock)
        job = queue.submit(_spec())
        delays = []
        for _ in range(3):
            queue.lease(job, worker=0)
            queue.requeue(job, "death")
            delays.append(job.not_before - clock.now)
        assert delays == [1.0, 2.0, 4.0]

    def test_jittered_backoff_is_seed_deterministic(self):
        def delays(seed):
            clock = FakeClock()
            queue = JobQueue(max_retries=5, backoff_s=1.0, jitter=0.5,
                             seed=seed, clock=clock)
            job = queue.submit(_spec())
            out = []
            for _ in range(3):
                queue.lease(job, worker=0)
                queue.requeue(job, "death")
                out.append(job.not_before - clock.now)
            return out

        assert delays(7) == delays(7)
        assert delays(7) != delays(8)

    def test_counts_cover_the_state_vocabulary(self):
        queue = JobQueue(clock=FakeClock())
        assert set(queue.counts()) == set(STATES)


class TestLeases:
    def test_heartbeat_tracks_progress(self):
        clock = FakeClock()
        table = LeaseTable(timeout_s=2.0, progress_window_s=5.0,
                           clock=clock)
        lease = table.grant("d" * 64, worker=0)
        clock.advance(1.0)
        table.heartbeat(0, sim_now=500)
        assert lease.sim_now == 500
        assert lease.heartbeats == 1
        assert table.expired() == []

    def test_silence_expires_as_lost(self):
        clock = FakeClock()
        table = LeaseTable(timeout_s=2.0, progress_window_s=50.0,
                           clock=clock)
        lease = table.grant("d" * 64, worker=0)
        clock.advance(2.5)
        assert table.expired() == [(lease, "lost")]

    def test_heartbeats_without_progress_expire_as_stalled(self):
        clock = FakeClock()
        table = LeaseTable(timeout_s=2.0, progress_window_s=5.0,
                           clock=clock)
        lease = table.grant("d" * 64, worker=0)
        table.heartbeat(0, sim_now=100)
        for _ in range(6):  # heartbeats keep flowing, sim_now pinned
            clock.advance(1.0)
            table.heartbeat(0, sim_now=100)
        assert table.expired() == [(lease, "stalled")]

    def test_progress_resets_the_stall_window(self):
        clock = FakeClock()
        table = LeaseTable(timeout_s=2.0, progress_window_s=5.0,
                           clock=clock)
        table.grant("d" * 64, worker=0)
        sim_now = 100
        for _ in range(12):  # always advancing: never stalled
            clock.advance(1.0)
            sim_now += 50
            table.heartbeat(0, sim_now=sim_now)
        assert table.expired() == []

    def test_stale_heartbeat_after_release_is_ignored(self):
        table = LeaseTable(clock=FakeClock())
        table.grant("d" * 64, worker=0)
        table.release(0)
        assert table.heartbeat(0, sim_now=1) is None

    def test_one_lease_per_worker(self):
        table = LeaseTable(clock=FakeClock())
        table.grant("a" * 64, worker=0)
        with pytest.raises(AssertionError):
            table.grant("b" * 64, worker=0)

    def test_expiry_accounting(self):
        table = LeaseTable(clock=FakeClock())
        table.note_expiry("lost")
        table.note_expiry("stalled")
        table.note_expiry("stalled")
        assert table.to_dict()["expiries"] == {"lost": 1, "stalled": 2}
        assert table.revoked == 3
