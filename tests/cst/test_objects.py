"""Tests for the CST object layer."""

import pytest

from repro.core.errors import SimulationError
from repro.cst import CstObject, CstRuntime, method
from repro.jsim.sim import MacroSimulator


class Counter(CstObject):
    def setup(self, ctx, start=0):
        self.count = start
        ctx.charge(instructions=3)

    @method
    def increment(self, ctx, amount=1):
        ctx.charge(instructions=4)
        self.count += amount
        return self.count

    @method
    def read(self, ctx):
        ctx.charge(instructions=2)
        return self.count

    def helper(self, ctx):  # not decorated: not invocable
        return None


class Recorder(CstObject):
    def setup(self, ctx):
        self.seen = []

    @method
    def note(self, ctx, value):
        ctx.charge(instructions=2)
        self.seen.append(value)
        return len(self.seen)


def build():
    sim = MacroSimulator(8)
    runtime = CstRuntime(sim)
    return sim, runtime


class TestLifecycle:
    def test_create_places_object_on_home_node(self):
        sim, runtime = build()
        counter_id = runtime.create(Counter, home=5)
        assert runtime.directory[counter_id][0] == 5
        assert counter_id in sim.nodes[5].state["_cst_objects"]

    def test_setup_runs_on_home_node(self):
        sim, runtime = build()
        counter_id = runtime.create(Counter, home=3)
        runtime.setup_object(counter_id, 10)
        sim.run()
        instance = sim.nodes[3].state["_cst_objects"][counter_id]
        assert instance.count == 10

    def test_non_cst_class_rejected(self):
        _, runtime = build()
        with pytest.raises(Exception):
            runtime.register_class(int)


class TestInvocation:
    def _invoke_chain(self, home):
        sim, runtime = build()
        counter_id = runtime.create(Counter, home=home)
        runtime.setup_object(counter_id, 0)
        driver_id = runtime.create(Recorder, home=0)
        runtime.setup_object(driver_id)

        # A kick handler on node 0 invokes the counter three times and
        # records the final value via a continuation.
        def kick(ctx):
            runtime.call(ctx, counter_id, "increment", 5)
            runtime.call(ctx, counter_id, "increment", 7)
            future = runtime.call(ctx, counter_id, "read")
            runtime.when(future, ctx, driver_id, "note")

        sim.register("kick", kick)
        sim.inject(0, "kick", at=10)
        sim.run()
        return sim, runtime, counter_id, driver_id

    def test_remote_invocation_mutates_object(self):
        sim, runtime, counter_id, _ = self._invoke_chain(home=7)
        instance = sim.nodes[7].state["_cst_objects"][counter_id]
        assert instance.count == 12

    def test_local_invocation_still_a_message(self):
        sim, runtime, counter_id, _ = self._invoke_chain(home=0)
        assert sim.handler_stats["CstCall"].invocations >= 3

    def test_continuation_receives_value(self):
        sim, runtime, _, driver_id = self._invoke_chain(home=7)
        recorder = sim.nodes[0].state["_cst_objects"][driver_id]
        # FIFO per pair: read follows both increments.
        assert recorder.seen == [12]

    def test_calls_charge_xlates(self):
        sim, runtime, _, _ = self._invoke_chain(home=7)
        total_xlates = sum(node.profile.xlate_count for node in sim.nodes)
        assert total_xlates >= 6  # caller + callee per invocation

    def test_unknown_method_raises(self):
        sim, runtime = build()
        counter_id = runtime.create(Counter, home=1)

        def kick(ctx):
            runtime.call(ctx, counter_id, "helper")

        sim.register("kick", kick)
        sim.inject(0, "kick")
        with pytest.raises(SimulationError):
            sim.run()

    def test_unknown_object_raises(self):
        sim, runtime = build()

        def kick(ctx):
            runtime.call(ctx, 999, "read")

        sim.register("kick", kick)
        sim.inject(0, "kick")
        with pytest.raises(SimulationError):
            sim.run()


class TestDistributedState:
    def test_objects_on_different_nodes_are_independent(self):
        sim, runtime = build()
        ids = [runtime.create(Counter, home=n) for n in range(4)]
        for object_id in ids:
            runtime.setup_object(object_id, 0)

        def kick(ctx):
            for i, object_id in enumerate(ids):
                runtime.call(ctx, object_id, "increment", i + 1)

        sim.register("kick", kick)
        sim.inject(0, "kick", at=5)
        sim.run()
        counts = [
            sim.nodes[n].state["_cst_objects"][object_id].count
            for n, object_id in enumerate(ids)
        ]
        assert counts == [1, 2, 3, 4]

    def test_resolved_future_fires_immediate_continuation(self):
        sim, runtime = build()
        counter_id = runtime.create(Counter, home=2)
        runtime.setup_object(counter_id, 41)
        recorder_id = runtime.create(Recorder, home=0)
        runtime.setup_object(recorder_id)
        holder = {}

        def kick(ctx):
            holder["future"] = runtime.call(ctx, counter_id, "increment")

        def late(ctx):
            runtime.when(holder["future"], ctx, recorder_id, "note")

        sim.register("kick", kick)
        sim.register("late", late)
        sim.inject(0, "kick", at=0)
        sim.inject(0, "late", at=5000)  # well after the reply lands
        sim.run()
        recorder = sim.nodes[0].state["_cst_objects"][recorder_id]
        assert recorder.seen == [42]


class TestMigration:
    def _setup(self):
        sim = MacroSimulator(8)
        runtime = CstRuntime(sim)
        counter_id = runtime.create(Counter, home=1)
        runtime.setup_object(counter_id, 100)
        return sim, runtime, counter_id

    def test_migrated_object_serves_calls_at_new_home(self):
        sim, runtime, counter_id = self._setup()

        def mover(ctx):
            runtime.migrate(ctx, counter_id, 6)

        def caller(ctx):
            runtime.call(ctx, counter_id, "increment", 5)

        sim.register("mover", mover)
        sim.register("caller", caller)
        sim.inject(1, "mover", at=100)
        sim.inject(0, "caller", at=5000)
        sim.run()
        instance = sim.nodes[6].state["_cst_objects"][counter_id]
        assert instance.count == 105
        assert counter_id not in sim.nodes[1].state["_cst_objects"]

    def test_directory_updated(self):
        sim, runtime, counter_id = self._setup()
        sim.register("mover",
                     lambda ctx: runtime.migrate(ctx, counter_id, 3))
        sim.inject(1, "mover", at=100)  # after setup lands
        sim.run()
        assert runtime.directory[counter_id][0] == 3

    def test_migrate_requires_home_node(self):
        sim, runtime, counter_id = self._setup()
        sim.register("mover",
                     lambda ctx: runtime.migrate(ctx, counter_id, 3))
        sim.inject(5, "mover", at=100)  # not the home node
        with pytest.raises(SimulationError):
            sim.run()

    def test_migrate_to_invalid_node(self):
        sim, runtime, counter_id = self._setup()
        sim.register("mover",
                     lambda ctx: runtime.migrate(ctx, counter_id, 99))
        sim.inject(1, "mover", at=100)
        with pytest.raises(SimulationError):
            sim.run()

    def test_state_survives_migration(self):
        sim, runtime, counter_id = self._setup()

        def script(ctx):
            runtime.call(ctx, counter_id, "increment", 1)

        sim.register("bump", script)
        sim.register("mover",
                     lambda ctx: runtime.migrate(ctx, counter_id, 7))
        sim.inject(0, "bump", at=0)
        sim.inject(1, "mover", at=4000)
        sim.inject(0, "bump", at=8000)
        sim.run()
        instance = sim.nodes[7].state["_cst_objects"][counter_id]
        assert instance.count == 102
