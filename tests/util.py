"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.asm.assembler import Program, assemble
from repro.core.faults import FaultPolicy
from repro.core.processor import Mdp
from repro.core.registers import Priority
from repro.core.word import Word

__all__ = ["run_background", "load_processor"]


def load_processor(
    source: str,
    fault_policy: Optional[FaultPolicy] = None,
) -> Tuple[Mdp, Program]:
    """Assemble ``source`` and load it into a fresh bare processor."""
    kwargs = {} if fault_policy is None else {"fault_policy": fault_policy}
    proc = Mdp(node_id=0, **kwargs)
    program = assemble(source)
    program.load(proc)
    return proc, program


def run_background(
    proc: Mdp,
    entry: int,
    max_cycles: int = 100_000,
) -> int:
    """Run the background thread until HALT/idle; return elapsed cycles.

    Also drives any message threads that become runnable (e.g. after a
    host-injected delivery), since `tick` schedules by priority.
    """
    proc.set_background(entry)
    now = 0
    while not proc.halted and now < max_cycles:
        nxt = proc.tick(now)
        if nxt is None:
            break
        now = nxt
    return now


def globals_segment(proc: Mdp, program: Program, words: int = 16,
                    priority: Priority = Priority.BACKGROUND) -> int:
    """Reserve a globals segment after the program; point A0 at it."""
    base = program.end + 4
    proc.registers[priority].write("A0", Word.segment(base, words))
    return base
