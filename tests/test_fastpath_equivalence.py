"""Fast-path vs reference-interpreter equivalence.

The fast path (``MachineConfig(fast_path=True)``, the default) batches
straight-line instruction runs into single Python calls; the reference
path interprets one instruction per ``tick``.  The contract is *cycle
exactness*: finish times, instruction counts, every counter, registers,
and memory must be bit-identical between the two.  These tests enforce
that contract on the full runtime suite (RPC ping, combining-tree
reduction, butterfly barrier), a cycle-level application, and — via
Hypothesis — on randomly generated straight-line programs.
"""

from hypothesis import given, settings, strategies as st

from repro.asm.assembler import assemble
from repro.core.processor import Mdp
from repro.core.registers import Priority, DATA_REG_NAMES, ADDR_REG_NAMES
from repro.core.word import Word
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.runtime.barrier import run_barrier_experiment
from repro.runtime.reduce import run_reduction
from repro.runtime.rpc import run_ping


def _machine_counters(machine):
    return [dict(node.proc.counters.__dict__) for node in machine.nodes]


def _both(run):
    """Run ``run(machine)`` on a fast and a slow machine; return both."""
    out = []
    for fast in (True, False):
        result = run(fast)
        out.append(result)
    return out


# ---------------------------------------------------------------- runtime


def test_ping_identical():
    def run(fast):
        machine = JMachine(MachineConfig(dims=(4, 4, 4), fast_path=fast))
        result = run_ping(machine, 0, 63, iterations=10)
        return (machine.now, result.total_cycles, result.iterations,
                _machine_counters(machine))

    fast, slow = _both(run)
    assert fast == slow


def test_barrier_identical():
    def run(fast):
        machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast))
        result = run_barrier_experiment(machine, barriers=3)
        return (machine.now, result.total_cycles, result.barriers,
                _machine_counters(machine))

    fast, slow = _both(run)
    assert fast == slow


def test_reduction_identical():
    def run(fast):
        machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast))
        result = run_reduction(machine, values=list(range(1, 9)))
        return (machine.now, result.total, result.cycles,
                result.broadcast_complete, _machine_counters(machine))

    fast, slow = _both(run)
    assert fast == slow
    assert fast[1] == sum(range(1, 9))


def test_cycle_radix_identical():
    from repro.apps.radix_cycle import run_cycle_radix

    keys = [(7 * i + 3) % 16 for i in range(16)]
    fast = run_cycle_radix(4, list(keys), n_digits=2, fast_path=True)
    slow = run_cycle_radix(4, list(keys), n_digits=2, fast_path=False)
    assert fast == slow
    assert fast.sorted_keys == sorted(keys)


# ----------------------------------------------------------- telemetry


def _telemetry_run(experiment, fast):
    """Run ``experiment(machine)`` with telemetry; return (metrics, events)."""
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast),
                       telemetry=telemetry)
    experiment(machine)
    return (telemetry.registry.snapshot(),
            list(telemetry.events.iter_dicts()))


def test_telemetry_identical_ping():
    """The ISSUE's equivalence clause: batched fast-path blocks report
    the same counter totals — and the same event stream — as the
    reference interpreter."""
    fast, slow = _both(
        lambda f: _telemetry_run(
            lambda m: run_ping(m, 0, 7, iterations=6), f))
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]


def test_telemetry_identical_barrier():
    fast, slow = _both(
        lambda f: _telemetry_run(
            lambda m: run_barrier_experiment(m, barriers=3), f))
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]


def test_telemetry_identical_reduction():
    fast, slow = _both(
        lambda f: _telemetry_run(
            lambda m: run_reduction(m, values=list(range(1, 9))), f))
    assert fast[0] == slow[0]
    assert fast[1] == slow[1]


def _traced_run(experiment, fast):
    """Run ``experiment(machine)`` with causal tracing on."""
    from repro.telemetry import Telemetry

    telemetry = Telemetry(trace=True)
    machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast),
                       telemetry=telemetry)
    experiment(machine)
    return (machine.now, _machine_counters(machine),
            list(telemetry.events.iter_dicts()))


def test_traced_identical_ping():
    """Causal tracing on: span allocation rides the (identical) send
    order, so fast and reference paths emit the same traced stream."""
    fast, slow = _both(
        lambda f: _traced_run(
            lambda m: run_ping(m, 0, 7, iterations=6), f))
    assert fast == slow
    assert any("span" in e for e in fast[2])


def test_tracing_adds_only_span_fields():
    """Zero-cost clause: a traced run's stream, with the span fields
    stripped, is bit-identical to an untraced run — tracing perturbs no
    timestamp, counter, or event ordering."""
    from repro.telemetry import Telemetry

    def run(trace):
        telemetry = Telemetry(trace=trace)
        machine = JMachine(MachineConfig(dims=(2, 2, 2)),
                           telemetry=telemetry)
        run_ping(machine, 0, 7, iterations=6)
        return (machine.now, telemetry.registry.snapshot(),
                list(telemetry.events.iter_dicts()))

    off = run(False)
    on = run(True)
    assert all("span" not in e for e in off[2])
    stripped = [{k: v for k, v in e.items()
                 if k not in ("trace", "span", "parent", "cats")}
                for e in on[2]]
    assert (on[0], on[1], stripped) == off


def test_report_identical_ping():
    from repro.telemetry import Telemetry

    def run(fast):
        machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast),
                           telemetry=Telemetry(events=False))
        run_ping(machine, 0, 7, iterations=6)
        return machine.report().to_dict()

    fast, slow = _both(run)
    assert fast == slow


# ------------------------------------------------------- chaos is free


def _chaos_run(fast, attach_empty_plan):
    """Ping with telemetry, optionally with an armed-but-empty FaultPlan."""
    from repro.chaos import ChaosEngine, FaultPlan
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast),
                       telemetry=telemetry)
    engine = None
    if attach_empty_plan:
        engine = ChaosEngine(FaultPlan(seed=31)).attach_machine(machine)
    run_ping(machine, 0, 7, iterations=6)
    sample = telemetry.registry.snapshot()
    if attach_empty_plan:
        # Strip the chaos source's own (all-zero) metrics before
        # comparing against the engine-less run, and prove they are zero.
        chaos_keys = [k for k in sample if k.startswith("chaos.")]
        assert chaos_keys and all(sample[k] == 0 for k in chaos_keys)
        for key in chaos_keys:
            del sample[key]
        assert engine.faults_injected == 0
    return (machine.now, _machine_counters(machine), sample,
            list(telemetry.events.iter_dicts()))


def test_empty_fault_plan_is_bit_identical_fast():
    """The zero-cost clause: an attached ChaosEngine with no faults must
    not perturb a single cycle, counter, or telemetry event."""
    assert _chaos_run(True, False) == _chaos_run(True, True)


def test_empty_fault_plan_is_bit_identical_slow():
    assert _chaos_run(False, False) == _chaos_run(False, True)


def test_empty_fault_plan_fast_slow_identical():
    """Both dimensions at once: chaos attached, fast vs reference path."""
    assert _chaos_run(True, True) == _chaos_run(False, True)


# ------------------------------------------------------------ checkpointing


def _checkpoint_run(fast, checkpoint_path):
    from repro.snapshot import CheckpointPolicy
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    machine = JMachine(MachineConfig(dims=(2, 2, 2), fast_path=fast),
                       telemetry=telemetry)
    if checkpoint_path is not None:
        machine.checkpoint = CheckpointPolicy(checkpoint_path, every=60)
    run_ping(machine, 0, 7, iterations=6)
    if checkpoint_path is not None:
        assert machine.checkpoint.saves >= 1
    return (machine.now, _machine_counters(machine),
            telemetry.registry.snapshot(),
            list(telemetry.events.iter_dicts()))


def test_checkpointing_is_bit_identical(tmp_path):
    """The snapshot zero-cost clause: periodic checkpointing is a pure
    read — with it enabled the run produces cycle counts, counters,
    metrics, and telemetry events bit-identical to a run without it."""
    path = str(tmp_path / "ping.ckpt")
    assert _checkpoint_run(True, None) == _checkpoint_run(True, path)


def test_checkpointing_is_bit_identical_slow(tmp_path):
    path = str(tmp_path / "ping.ckpt")
    assert _checkpoint_run(False, None) == _checkpoint_run(False, path)


# ------------------------------------------------- random straight-line


_REGS = st.sampled_from(DATA_REG_NAMES)
_MEM = st.integers(0, 7).map(lambda k: f"[A0+{k}]")
_IMM = st.integers(-16, 16).map(lambda v: f"#{v}")
_NONZERO_IMM = st.integers(1, 16).map(lambda v: f"#{v}")
_SRC = st.one_of(_REGS, _IMM, _MEM)
_DST = st.one_of(_REGS, _MEM)

_SAFE_ALU = st.sampled_from(
    ("ADD", "SUB", "MUL", "AND", "OR", "XOR", "EQ", "NE", "LT", "LE",
     "GT", "GE")
)
_DIVIDE = st.sampled_from(("DIV", "MOD"))
_SHIFT = st.sampled_from(("ASH", "LSH"))
_UNARY = st.sampled_from(("NOT", "NEG", "RTAG"))
_NILADIC_DST = st.sampled_from(("MOVEID", "CYCLE"))

_INSTR = st.one_of(
    st.tuples(_SAFE_ALU, _SRC, _SRC, _DST).map(
        lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
    # Divisors and shift counts come from small nonzero immediates so
    # the generated program cannot fault or explode value widths.
    st.tuples(_DIVIDE, _SRC, _NONZERO_IMM, _DST).map(
        lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
    st.tuples(_SHIFT, _SRC, st.integers(-8, 8), _DST).map(
        lambda t: f"{t[0]} {t[1]}, #{t[2]}, {t[3]}"),
    st.tuples(_UNARY, _SRC, _DST).map(lambda t: f"{t[0]} {t[1]}, {t[2]}"),
    st.tuples(_NILADIC_DST, _DST).map(lambda t: f"{t[0]} {t[1]}"),
    st.tuples(st.just("MOVE"), _SRC, _DST).map(
        lambda t: f"{t[0]} {t[1]}, {t[2]}"),
    st.just("NOP"),
)


def _run_straight_line(body_lines, fast):
    source = "start:\n" + "".join(f"    {line}\n" for line in body_lines)
    source += "    HALT\n"
    proc = Mdp(node_id=0, fast_path=fast)
    program = assemble(source)
    program.load(proc)
    base = program.end + 4
    for i in range(8):
        proc.memory.poke(base + i, Word.from_int(3 * i - 5))
    regs = proc.registers[Priority.BACKGROUND]
    for i, name in enumerate(DATA_REG_NAMES):
        regs.write(name, Word.from_int(i + 1))
    regs.write("A0", Word.segment(base, 8))
    proc.set_background(program.entry("start"))
    now = 0
    ticks = 0
    while not proc.halted:
        now = proc.tick(now)
        ticks += 1
        assert ticks < 10_000
    return (
        now,
        dict(proc.counters.__dict__),
        {name: repr(regs.regs[name])
         for name in DATA_REG_NAMES + ADDR_REG_NAMES},
        [repr(proc.memory.peek(base + i)) for i in range(8)],
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(_INSTR, min_size=1, max_size=24))
def test_random_straight_line_programs_identical(body):
    fast = _run_straight_line(body, fast=True)
    slow = _run_straight_line(body, fast=False)
    assert fast == slow
