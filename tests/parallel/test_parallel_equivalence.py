"""The parallel backend's determinism contract: bit-identical or serial.

``MachineConfig.parallel_shards >= 2`` runs eligible workloads on the
sharded conservative-epoch backend (:mod:`repro.parallel`).  The
contract these tests enforce: every observable — architectural state,
counters, fabric statistics, metric snapshots, chaos bookkeeping, and
the telemetry event stream up to reordering of same-cycle emissions
across nodes — matches the serial run loop exactly.  Runs the protocol
cannot reproduce must fall back to the serial loop (and still produce
the serial answer), never "close enough".
"""

import multiprocessing

import pytest

from repro.asm.assembler import assemble
from repro.chaos import ChaosEngine, DeadlockWatchdog, FaultPlan, FaultSpec
from repro.core.errors import DeadlockError
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.parallel.machine import _event_sort_key

ECHO = """
; request: [IP:echo, replyto, value]
echo:
    SEND  [A3+1]
    SEND  #IP:landing
    SENDE [A3+2]
    SUSPEND
landing:
    MOVE  [A3+1], [A0+0]
    SUSPEND
"""

# fan-out storm: each handler re-sends to two peers while ttl > 0, so
# traffic volume grows geometrically and queues see real pressure.
STORM = """
; request: [IP:storm, ttl, peer_a, peer_b]
storm:
    MOVE  [A3+1], R0
    EQ    R0, #0, R1
    BT    R1, fin
    ADD   R0, #-1, R0
    SEND  [A3+2]
    SEND  #IP:storm
    SEND  R0
    SEND  [A3+3]
    SENDE [A3+2]
    SEND  [A3+3]
    SEND  #IP:storm
    SEND  R0
    SEND  [A3+2]
    SENDE [A3+3]
fin:
    MOVE  [A0+0], R2
    ADD   R2, #1, R2
    MOVE  R2, [A0+0]
    SUSPEND
"""

# delayed single send: spin `delay` cycles, then message the peer.
DELAYED = """
; A0+0 = delay, A0+1 = peer, A0+2 = landing pad
delayed:
    MOVE  [A0+0], R0
spin:
    ADD   R0, #-1, R0
    GT    R0, #0, R1
    BT    R1, spin
    SEND  [A0+1]
    SEND  #IP:land
    SENDE [A0+1]
    SUSPEND
land:
    MOVE  #1, [A0+2]
    SUSPEND
"""


def _latency(summary):
    return (summary.count, summary.total, summary.min, summary.max,
            tuple(summary.buckets))


def _fabric_digest(fabric):
    digest = {key: value for key, value in fabric.stats.__dict__.items()
              if key not in ("latency", "window_latency", "mesh")}
    digest["latency"] = _latency(fabric.stats.latency)
    digest["window_latency"] = _latency(fabric.stats.window_latency)
    digest["route_cache"] = (fabric.route_cache_hits,
                             fabric.route_cache_misses)
    digest["in_flight"] = fabric.worms_in_flight
    return digest


def _machine_digest(machine, mem_base=None, mem_words=8):
    regs = [
        [str(node.proc.registers[p].read(r))
         for p in (Priority.P0, Priority.P1)
         for r in ("R0", "R1", "R2", "A0", "A3")]
        for node in machine.nodes
    ]
    mem = None
    if mem_base is not None:
        mem = [[node.proc.memory.peek(mem_base + i).value
                for i in range(mem_words)] for node in machine.nodes]
    return {
        "now": machine.now,
        "counters": [dict(node.proc.counters.__dict__)
                     for node in machine.nodes],
        "registers": regs,
        "memory": mem,
        "fabric": _fabric_digest(machine.fabric),
        "deliveries": machine.deliveries_committed,
    }


def _telemetry_digest(telemetry):
    return {
        "metrics": telemetry.registry.snapshot(),
        # Same-cycle emissions from different nodes may interleave
        # differently across shards; the contract is equality of the
        # canonically sorted stream.
        "events": sorted(telemetry.events.events, key=_event_sort_key),
    }


def _chaos_digest(engine):
    return {
        "counters": dict(engine.counters),
        "log": [tuple(sorted(entry.items())) if isinstance(entry, dict)
                else entry for entry in engine.log],
        "summary": engine.summary(),
    }


def _load(machine, source, a0_words=4):
    program = assemble(source)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write(
            "A0", Word.segment(base, a0_words))
    return program, base


def _echo_all(machine, program, n):
    for i in range(n):
        machine.inject(i, program.entry("echo"),
                       [Word.from_int((i + 3) % n), Word.from_int(100 + i)],
                       source=(i + 1) % n)
    machine.run(max_cycles=20_000)


# ----------------------------------------------------------- runtime apps


class TestRuntimeApps:
    def test_ping_quiescent_identical(self):
        """A real runtime app, serial vs 4 shards, cycle for cycle."""
        from repro.runtime.rpc import run_ping

        runs = []
        for shards in (0, 4):
            machine = JMachine(
                MachineConfig(dims=(4, 4, 1), parallel_shards=shards))
            result = run_ping(machine, 0, 15, iterations=5, stop="quiescent")
            runs.append((result.total_cycles, _machine_digest(machine)))
            if shards:
                assert machine._parallel_skip_reason is None
        assert runs[0] == runs[1]

    def test_ping_probed_reports_identical(self):
        """Fabric-observatory counters fold back exactly: a probed run
        under 4 shards produces a FabricReport *equal* to the serial
        one — same per-link phits, stalls, and queue histograms."""
        from repro.runtime.rpc import run_ping

        runs = []
        for shards in (0, 4):
            machine = JMachine(
                MachineConfig(dims=(4, 4, 1), parallel_shards=shards,
                              fabric_probe=True))
            run_ping(machine, 0, 15, iterations=5, stop="quiescent")
            runs.append(machine.fabric_report())
            if shards:
                assert machine._parallel_skip_reason is None
        assert runs[0] == runs[1]
        assert runs[0].messages > 0 and runs[0].links

    def test_reduction_quiescent_identical(self):
        from repro.runtime.reduce import run_reduction

        runs = []
        for shards in (0, 2):
            machine = JMachine(
                MachineConfig(dims=(2, 2, 2), parallel_shards=shards))
            result = run_reduction(machine, values=list(range(1, 9)),
                                   stop="quiescent")
            runs.append((result.total, result.cycles,
                         _machine_digest(machine)))
        assert runs[0] == runs[1]
        assert runs[0][0] == sum(range(1, 9))


# ----------------------------------------------------- cycle-level echoes


class TestEchoEquivalence:
    def _run(self, shards, telemetry=False, specs=(), seed=3):
        from repro.telemetry import Telemetry

        rig = Telemetry() if telemetry else None
        machine = JMachine(
            MachineConfig(dims=(4, 2, 1), parallel_shards=shards),
            telemetry=rig)
        program, base = _load(machine, ECHO)
        engine = None
        if specs:
            engine = ChaosEngine(FaultPlan(seed=seed, specs=tuple(specs)))
            engine.attach_machine(machine)
        _echo_all(machine, program, 8)
        digest = _machine_digest(machine, mem_base=base)
        if rig is not None:
            digest["telemetry"] = _telemetry_digest(rig)
        if engine is not None:
            digest["chaos"] = _chaos_digest(engine)
        return digest, machine

    def test_plain_identical(self):
        serial, _ = self._run(0)
        parallel, machine = self._run(2)
        assert machine._parallel_skip_reason is None
        assert serial == parallel

    def test_telemetry_identical(self):
        serial, _ = self._run(0, telemetry=True)
        parallel, machine = self._run(2, telemetry=True)
        assert machine._parallel_skip_reason is None
        assert serial == parallel

    @pytest.mark.parametrize("specs", [
        (FaultSpec(kind="kill", node=3, start=53),),
        (FaultSpec(kind="stall", node=2, start=30, duration=40),),
        (FaultSpec(kind="drop", rate=0.3),),
        (FaultSpec(kind="corrupt", rate=0.5),),
    ], ids=["kill-mid-epoch", "stall", "drop", "corrupt"])
    def test_chaos_identical(self, specs):
        """Fault injection stays deterministic across the backends,
        including a node killed mid-epoch (start=53 falls inside, not
        on, every epoch boundary: busy epochs are 5 cycles, idle 11)."""
        serial, _ = self._run(0, telemetry=True, specs=specs)
        parallel, machine = self._run(2, telemetry=True, specs=specs)
        assert machine._parallel_skip_reason is None
        assert serial == parallel


# ------------------------------------------------------- queue pressure


class TestStormEquivalence:
    def _run(self, shards, n=8, ttl=4, queue_words=None, spill=False):
        machine = JMachine(MachineConfig.for_nodes(
            n, parallel_shards=shards, queue_words=queue_words,
            queue_overflow_spills=spill))
        program, base = _load(machine, STORM)
        for i in range(n):
            machine.inject(i, program.entry("storm"),
                           [Word.from_int(ttl), Word.from_int((i * 7 + 1) % n),
                            Word.from_int((i * 3 + 5) % n)], source=i)
        machine.run(max_cycles=500_000)
        return _machine_digest(machine, mem_base=base, mem_words=1), machine

    def test_storm_identical(self):
        serial, _ = self._run(0)
        parallel, machine = self._run(4)
        assert machine._parallel_skip_reason is None
        assert serial == parallel

    def test_storm_spill_identical(self):
        serial, _ = self._run(0, spill=True, ttl=5)
        parallel, _ = self._run(4, spill=True, ttl=5)
        assert serial == parallel

    def test_ambiguous_backpressure_falls_back_serial_exact(self):
        """Tight queues make the parent's occupancy lower bound
        inconclusive mid-run; the attempt must be abandoned and the
        serial rerun must still produce the serial answer."""
        serial, _ = self._run(0, ttl=5, queue_words=24)
        parallel, machine = self._run(2, ttl=5, queue_words=24)
        assert machine._parallel_skip_reason is not None
        assert "ambiguous" in machine._parallel_skip_reason
        assert serial == parallel


# ------------------------------------------------------ epoch boundaries


class TestEpochBoundaries:
    """Sends landing on every phase of the epoch window.

    The conservative windows are 5 cycles (fabric busy) and 11 cycles
    (fabric idle); sweeping the send cycle across a 13-cycle range
    covers first/middle/last cycle of both window shapes, including a
    flit injected on the very last cycle of an epoch.
    """

    def _run(self, shards, delay):
        machine = JMachine(
            MachineConfig(dims=(4, 2, 1), parallel_shards=shards))
        program, base = _load(machine, DELAYED)
        n = machine.mesh.n_nodes
        for i, node in enumerate(machine.nodes):
            node.proc.memory.poke(base + 0, Word.from_int(delay + i % 3))
            node.proc.memory.poke(base + 1, Word.from_int((i + 1) % n))
        for i in range(n):
            machine.inject(i, program.entry("delayed"), source=i)
        machine.run(max_cycles=50_000)
        return _machine_digest(machine, mem_base=base, mem_words=3)

    @pytest.mark.parametrize("delay", list(range(1, 14)))
    def test_send_at_every_epoch_phase(self, delay):
        assert self._run(0, delay) == self._run(2, delay)


# ------------------------------------------------------------- watchdog


class TestWatchdogUnderParallel:
    def _wedged(self, shards):
        machine = JMachine(
            MachineConfig(dims=(4, 2, 1), parallel_shards=shards))
        program, _base = _load(machine, ECHO)
        ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="link", node=0),
        ))).attach_machine(machine)
        machine.watchdog = DeadlockWatchdog(window=2_000)
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(1)], source=0)
        return machine

    def test_deadlock_surfaces_not_hangs(self):
        """The watchdog trips while workers sit blocked at the barrier;
        DeadlockError must reach the caller and the workers must be
        torn down, not leak or hang."""
        machine = self._wedged(2)
        with pytest.raises(DeadlockError) as info:
            machine.run(max_cycles=100_000)
        err = info.value
        assert err.worms_in_flight == 1
        assert err.snapshots
        # Detection latency: serial trips the first poll past the
        # window; the parallel backend polls at epoch barriers, so it
        # may lag by up to one epoch plus the poll interval.
        assert 2_000 <= err.now < 2_000 + machine.watchdog.interval + 11
        assert not multiprocessing.active_children()

    def test_healthy_run_under_watchdog_identical(self):
        digests = []
        for shards in (0, 2):
            machine = JMachine(
                MachineConfig(dims=(4, 2, 1), parallel_shards=shards))
            program, base = _load(machine, ECHO)
            machine.watchdog = DeadlockWatchdog(window=1_000)
            machine.inject(7, program.entry("echo"),
                           [Word.from_int(0), Word.from_int(42)], source=0)
            machine.run(max_cycles=100_000)
            assert machine.watchdog.trips == 0
            digests.append(_machine_digest(machine, mem_base=base))
        assert digests[0] == digests[1]


# -------------------------------------------------------- fallback paths


class TestFallback:
    def _echo_machine(self, **overrides):
        telemetry = overrides.pop("telemetry", None)
        machine = JMachine(
            MachineConfig(dims=(4, 2, 1), parallel_shards=2, **overrides),
            telemetry=telemetry)
        program, base = _load(machine, ECHO)
        return machine, program, base

    def _check_serial_answer(self, machine, program, base):
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(9)], source=0)
        machine.run(max_cycles=20_000)
        assert machine.node(0).proc.memory.peek(base).value == 9

    def test_return_to_sender_stays_serial(self):
        machine, program, base = self._echo_machine(
            flow_control="return_to_sender")
        self._check_serial_answer(machine, program, base)
        assert machine._parallel_skip_reason is not None

    def test_queue_chaos_stays_serial(self):
        machine, program, base = self._echo_machine()
        ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="queue", node=0, words=8),
        ))).attach_machine(machine)
        self._check_serial_answer(machine, program, base)
        assert machine._parallel_skip_reason is not None

    def test_tracing_stays_serial(self):
        from repro.telemetry import Telemetry

        machine, program, base = self._echo_machine(
            telemetry=Telemetry(trace=True))
        self._check_serial_answer(machine, program, base)
        assert machine._parallel_skip_reason is not None

    def test_until_predicate_stays_serial(self):
        machine, program, base = self._echo_machine()
        machine.inject(7, program.entry("echo"),
                       [Word.from_int(0), Word.from_int(9)], source=0)
        machine.run(max_cycles=20_000,
                    until=lambda m: m.node(0).proc.memory.peek(base).value == 9)
        assert machine.node(0).proc.memory.peek(base).value == 9

    def test_machine_reusable_after_parallel_run(self):
        """Back-to-back runs on one machine: the folded-back state must
        be a valid starting point for the next (parallel) run."""
        digests = []
        for shards in (0, 2):
            machine = JMachine(
                MachineConfig(dims=(4, 2, 1), parallel_shards=shards))
            program, base = _load(machine, ECHO)
            for round_ in range(3):
                _echo_all(machine, program, 8)
            digests.append(_machine_digest(machine, mem_base=base))
        assert digests[0] == digests[1]
