"""Documentation consistency: the docs describe the code that exists."""

import pathlib
import re

DOCS = pathlib.Path(__file__).parent.parent / "docs"
ROOT = pathlib.Path(__file__).parent.parent


def test_costmodel_doc_matches_calibrated_constants():
    from repro.network.fabric import (DEFAULT_EJECT_LATENCY,
                                      DEFAULT_INJECT_LATENCY)

    text = (DOCS / "COSTMODEL.md").read_text()
    assert f"`inject_latency = {DEFAULT_INJECT_LATENCY}`" in text
    assert f"`eject_latency = {DEFAULT_EJECT_LATENCY}`" in text


def test_costmodel_doc_matches_published_constants():
    from repro.core.costs import DEFAULT_COSTS

    text = (DOCS / "COSTMODEL.md").read_text()
    assert "12.5 MHz" in text
    assert DEFAULT_COSTS.dispatch == 4 and "| 4 cycles |" in text
    assert DEFAULT_COSTS.xlate_hit == 3


def test_design_lists_every_package():
    import repro

    design = (ROOT / "DESIGN.md").read_text()
    for package in ("repro.core", "repro.asm", "repro.network",
                    "repro.machine", "repro.runtime", "repro.jsim",
                    "repro.apps", "repro.bench", "repro.cst"):
        assert package in design, package


def test_design_indexes_every_artifact():
    design = (ROOT / "DESIGN.md").read_text()
    for artifact in ("Figure 2", "Table 1", "Figure 3", "Figure 4",
                     "Table 2", "Table 3", "Figure 5", "Figure 6",
                     "Table 4", "Table 5"):
        assert artifact in design, artifact


def test_experiments_covers_every_artifact():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for heading in ("Figure 2", "Table 1", "Figure 3", "Figure 4",
                    "Table 2", "Table 3", "Figure 5", "Figure 6",
                    "Table 4", "Table 5"):
        assert heading in experiments, heading


def test_readme_examples_exist():
    readme = (ROOT / "README.md").read_text()
    for match in re.finditer(r"`examples/([a-z_]+\.py)`", readme):
        assert (ROOT / "examples" / match.group(1)).exists(), match.group(1)


def test_every_example_mentioned_in_readme_or_tested():
    readme = (ROOT / "README.md").read_text()
    smoke = (ROOT / "tests" / "test_examples.py").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in readme or example.name in smoke, example.name


def test_observability_event_table_matches_event_kinds():
    """The docs' event table and the EventBus vocabulary stay in sync."""
    from repro.telemetry.events import EVENT_KINDS

    text = (DOCS / "OBSERVABILITY.md").read_text()
    rows = re.findall(r"^\| `([a-z-]+)` \| (cycle|macro|both) \|", text,
                      flags=re.MULTILINE)
    documented = {kind for kind, _ in rows}
    assert documented == EVENT_KINDS, (
        f"undocumented kinds: {sorted(EVENT_KINDS - documented)}; "
        f"stale docs rows: {sorted(documented - EVENT_KINDS)}")
    assert len(rows) == len(documented), "duplicate event-table rows"


def test_observability_fabric_table_matches_fabric_metrics():
    """The docs' fabric-metric table mirrors FABRIC_METRICS row for row."""
    from repro.network.observatory import FABRIC_METRICS

    text = (DOCS / "OBSERVABILITY.md").read_text()
    rows = re.findall(
        r"^\| `(net\.[a-z_.]+)` \| (counter|gauge|histogram) \|", text,
        flags=re.MULTILINE)
    documented = {name for name, _ in rows}
    expected = {name for name, *_ in FABRIC_METRICS}
    assert documented == expected, (
        f"undocumented metrics: {sorted(expected - documented)}; "
        f"stale docs rows: {sorted(documented - expected)}")
    assert len(rows) == len(documented), "duplicate fabric-table rows"
    kinds = dict(rows)
    expected_kinds = {name: kind for name, kind, *_ in FABRIC_METRICS}
    assert kinds == expected_kinds


def test_observability_documents_path_categories():
    """The critical-path category vocabulary is spelled out in the docs."""
    from repro.telemetry.trace import PATH_CATEGORIES

    text = (DOCS / "OBSERVABILITY.md").read_text()
    for category in PATH_CATEGORIES:
        assert f"`{category}`" in text, category


def test_bench_targets_in_design_exist():
    design = (ROOT / "DESIGN.md").read_text()
    for match in re.finditer(r"`benchmarks/(bench_[a-z0-9_]+\.py)`", design):
        assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(1)
