"""Cycle-level checkpoint/resume: bit-identical on both backends.

The determinism contract (docs/SNAPSHOT.md): checkpoint at any safe
point, restore in a fresh machine, run to the end — final architectural
state AND the sha256 telemetry event-stream digest match the
uninterrupted run exactly.  Enforced serially, under an active chaos
plan, and across the parallel backend's epoch-barrier pause points.
"""

import pytest

from repro.asm.assembler import assemble
from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.chaos.harness import event_fingerprint
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine
from repro.snapshot import CheckpointPolicy, load_machine, read_header
from repro.telemetry import Telemetry

ECHO = """
echo:
    SEND  [A3+1]
    SEND  #IP:landing
    SENDE [A3+2]
    SUSPEND
landing:
    MOVE  [A3+1], [A0+0]
    SUSPEND
"""

STALL_SPECS = (FaultSpec(kind="stall", node=2, start=30, duration=40),)


def _build(shards=0, specs=()):
    machine = JMachine(
        MachineConfig(dims=(4, 2, 1), parallel_shards=shards),
        telemetry=Telemetry())
    program = assemble(ECHO)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    if specs:
        ChaosEngine(FaultPlan(seed=3, specs=tuple(specs))) \
            .attach_machine(machine)
    for i in range(8):
        machine.inject(i, program.entry("echo"),
                       [Word.from_int((i + 3) % 8), Word.from_int(100 + i)],
                       source=(i + 1) % 8)
    return machine


def _digest(machine):
    regs = [[str(node.proc.registers[p].read(r))
             for p in (Priority.P0, Priority.P1)
             for r in ("R0", "R1", "R2", "A0", "A3")]
            for node in machine.nodes]
    return {
        "now": machine.now,
        "registers": regs,
        "counters": [dict(node.proc.counters.__dict__)
                     for node in machine.nodes],
        "deliveries": machine.deliveries_committed,
        "fingerprint": event_fingerprint(machine.telemetry.events),
        "chaos": ((dict(machine.chaos.counters), list(machine.chaos.log))
                  if machine.chaos is not None else None),
    }


def _interrupted(tmp_path, specs=(), shards=0, every=40):
    """Run with checkpointing, 'crash', restore, finish; both digests."""
    path = str(tmp_path / "cycle.ckpt")
    first = _build(shards=shards, specs=specs)
    first.checkpoint = CheckpointPolicy(path, every=every)
    first.run(max_cycles=20_000)
    assert first.checkpoint.saves >= 1, "checkpoint policy never fired"
    resumed = load_machine(path)
    assert resumed.now == read_header(path)["meta"]["now"]
    resumed.run(max_cycles=20_000)
    return _digest(first), _digest(resumed)


class TestSerialResume:
    def test_plain(self, tmp_path):
        reference = _build()
        reference.run(max_cycles=20_000)
        finished, resumed = _interrupted(tmp_path)
        assert finished == _digest(reference)  # checkpointing is free
        assert resumed == _digest(reference)

    @pytest.mark.parametrize("specs", [
        (FaultSpec(kind="drop", rate=0.3), FaultSpec(kind="corrupt",
                                                     rate=0.2)),
        STALL_SPECS,
        (FaultSpec(kind="kill", node=3, start=53),),
    ], ids=["drop-corrupt", "stall", "kill"])
    def test_under_chaos(self, tmp_path, specs):
        """Named-stream RNG positions resume exactly: the replayed tail
        makes the same drop/corrupt decisions, so the event-stream
        digests match an uninterrupted chaos run's."""
        reference = _build(specs=specs)
        reference.run(max_cycles=20_000)
        _, resumed = _interrupted(tmp_path, specs=specs)
        assert resumed == _digest(reference)

    def test_restore_is_state_identical_at_capture(self, tmp_path):
        path = str(tmp_path / "mid.ckpt")
        machine = _build()
        machine.checkpoint = CheckpointPolicy(path, every=25)
        machine.run(max_cycles=20_000)
        restored = load_machine(path)
        from repro.snapshot import capture_machine

        recapture = capture_machine(restored)
        header_now = read_header(path)["meta"]["now"]
        assert recapture["now"] == header_now == restored.now

    def test_resumed_machine_restores_again(self, tmp_path):
        """Checkpoints taken from a resumed run are as good as firsts."""
        path_a = str(tmp_path / "a.ckpt")
        path_b = str(tmp_path / "b.ckpt")
        reference = _build()
        reference.run(max_cycles=20_000)

        first = _build()
        first.checkpoint = CheckpointPolicy(path_a, every=20)
        first.run(max_cycles=20_000)
        second = load_machine(path_a)
        second.checkpoint = CheckpointPolicy(path_b, every=4)
        second.run(max_cycles=20_000)
        assert second.checkpoint.saves >= 1
        third = load_machine(path_b)
        third.run(max_cycles=20_000)
        assert _digest(third) == _digest(reference)


class TestParallelResume:
    def test_pause_and_resume_bit_identical(self, tmp_path):
        """The coordinator pauses at an epoch-barrier idle point, the
        segments partition the event stream, and a fresh process resumes
        to the exact digest of an unpaused parallel run."""
        reference = _build(shards=2, specs=STALL_SPECS)
        reference.run(max_cycles=20_000)
        assert reference._parallel_skip_reason is None
        finished, resumed = _interrupted(
            tmp_path, specs=STALL_SPECS, shards=2, every=15)
        assert finished == _digest(reference)
        assert resumed == _digest(reference)

    def test_resumed_machine_keeps_parallel_backend(self, tmp_path):
        path = str(tmp_path / "par.ckpt")
        machine = _build(shards=2, specs=STALL_SPECS)
        machine.checkpoint = CheckpointPolicy(path, every=15)
        machine.run(max_cycles=20_000)
        assert machine.checkpoint.saves >= 1
        resumed = load_machine(path)
        assert resumed.parallel_shards == 2
