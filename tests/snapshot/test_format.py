"""The snapshot file format: self-describing, versioned, verified."""

import pickle

import pytest

from repro.core.errors import SnapshotError
from repro.snapshot import (FORMAT_VERSION, MAGIC, read_header, read_snapshot,
                            write_snapshot)

PAYLOAD = {"now": 42, "nodes": [1, 2, 3], "nested": {"a": (1, 2)}}


def _write(tmp_path, payload=None, **kwargs):
    path = str(tmp_path / "snap.ckpt")
    header = write_snapshot(path, "cycle", payload or PAYLOAD, **kwargs)
    return path, header


class TestRoundTrip:
    def test_payload_survives(self, tmp_path):
        path, _ = _write(tmp_path)
        header, payload = read_snapshot(path)
        assert payload == PAYLOAD
        assert header["kind"] == "cycle"
        assert header["version"] == FORMAT_VERSION

    def test_header_is_self_describing(self, tmp_path):
        path, written = _write(tmp_path, meta={"now": 42, "scenario": "x"})
        header = read_header(path)
        assert header == written
        assert header["format"] == "repro-snapshot"
        assert header["meta"]["scenario"] == "x"
        assert header["payload_bytes"] > 0
        assert len(header["sha256"]) == 64

    def test_object_sharing_preserved(self, tmp_path):
        """One pickle for the whole payload: aliased objects stay aliased."""
        shared = [1, 2]
        path, _ = _write(tmp_path, payload={"a": shared, "b": shared})
        _, payload = read_snapshot(path)
        assert payload["a"] is payload["b"]

    def test_overwrite_in_place(self, tmp_path):
        path, _ = _write(tmp_path)
        write_snapshot(path, "cycle", {"now": 99})
        _, payload = read_snapshot(path)
        assert payload == {"now": 99}


class TestValidation:
    def test_unknown_kind_rejected_at_write(self, tmp_path):
        with pytest.raises(SnapshotError):
            write_snapshot(str(tmp_path / "x.ckpt"), "nano", PAYLOAD)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "x.ckpt")
        with open(path, "wb") as fh:
            fh.write(b"#something-else 1\n" + b"{}\n")
        with pytest.raises(SnapshotError):
            read_header(path)

    def test_future_version_rejected(self, tmp_path):
        path, _ = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        needle = b'"version": %d' % FORMAT_VERSION
        assert needle in data
        data = data.replace(needle, b'"version": %d' % (FORMAT_VERSION + 1))
        with open(path, "wb") as fh:
            fh.write(data)
        with pytest.raises(SnapshotError) as info:
            read_snapshot(path)
        assert "version" in str(info.value)

    def test_corrupt_payload_detected_before_unpickling(self, tmp_path):
        path, header = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        flip = len(data) - 5
        data = data[:flip] + bytes([data[flip] ^ 0xFF]) + data[flip + 1:]
        with open(path, "wb") as fh:
            fh.write(data)
        with pytest.raises(SnapshotError) as info:
            read_snapshot(path)
        assert "sha256" in str(info.value) or "corrupt" in str(info.value)

    def test_truncated_payload_detected(self, tmp_path):
        path, _ = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-10])
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            read_header(str(tmp_path / "absent.ckpt"))
