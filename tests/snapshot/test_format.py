"""The snapshot file format: self-describing, versioned, verified."""

import pickle

import pytest

from repro.core.errors import SnapshotError
from repro.snapshot import (FORMAT_VERSION, MAGIC, read_header, read_snapshot,
                            write_snapshot)

PAYLOAD = {"now": 42, "nodes": [1, 2, 3], "nested": {"a": (1, 2)}}


def _write(tmp_path, payload=None, **kwargs):
    path = str(tmp_path / "snap.ckpt")
    header = write_snapshot(path, "cycle", payload or PAYLOAD, **kwargs)
    return path, header


class TestRoundTrip:
    def test_payload_survives(self, tmp_path):
        path, _ = _write(tmp_path)
        header, payload = read_snapshot(path)
        assert payload == PAYLOAD
        assert header["kind"] == "cycle"
        assert header["version"] == FORMAT_VERSION

    def test_header_is_self_describing(self, tmp_path):
        path, written = _write(tmp_path, meta={"now": 42, "scenario": "x"})
        header = read_header(path)
        assert header == written
        assert header["format"] == "repro-snapshot"
        assert header["meta"]["scenario"] == "x"
        assert header["payload_bytes"] > 0
        assert len(header["sha256"]) == 64

    def test_object_sharing_preserved(self, tmp_path):
        """One pickle for the whole payload: aliased objects stay aliased."""
        shared = [1, 2]
        path, _ = _write(tmp_path, payload={"a": shared, "b": shared})
        _, payload = read_snapshot(path)
        assert payload["a"] is payload["b"]

    def test_overwrite_in_place(self, tmp_path):
        path, _ = _write(tmp_path)
        write_snapshot(path, "cycle", {"now": 99})
        _, payload = read_snapshot(path)
        assert payload == {"now": 99}


class TestValidation:
    def test_unknown_kind_rejected_at_write(self, tmp_path):
        with pytest.raises(SnapshotError):
            write_snapshot(str(tmp_path / "x.ckpt"), "nano", PAYLOAD)

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "x.ckpt")
        with open(path, "wb") as fh:
            fh.write(b"#something-else 1\n" + b"{}\n")
        with pytest.raises(SnapshotError):
            read_header(path)

    def test_future_version_rejected(self, tmp_path):
        path, _ = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        needle = b'"version": %d' % FORMAT_VERSION
        assert needle in data
        data = data.replace(needle, b'"version": %d' % (FORMAT_VERSION + 1))
        with open(path, "wb") as fh:
            fh.write(data)
        with pytest.raises(SnapshotError) as info:
            read_snapshot(path)
        assert "version" in str(info.value)

    def test_corrupt_payload_detected_before_unpickling(self, tmp_path):
        path, header = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        flip = len(data) - 5
        data = data[:flip] + bytes([data[flip] ^ 0xFF]) + data[flip + 1:]
        with open(path, "wb") as fh:
            fh.write(data)
        with pytest.raises(SnapshotError) as info:
            read_snapshot(path)
        assert "sha256" in str(info.value) or "corrupt" in str(info.value)

    def test_truncated_payload_detected(self, tmp_path):
        path, _ = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-10])
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            read_header(str(tmp_path / "absent.ckpt"))

    def test_corruption_is_typed_not_pickle(self, tmp_path):
        """Every torn-file mode raises SnapshotError, never a bare
        pickle/EOF exception a caller would have to guess at."""
        path, _ = _write(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        for mutilated in (data[:-10],                      # truncated
                          data[:-5] + b"\x00" * 5,         # bit rot
                          data + b"trailing-garbage"):      # grown
            with open(path, "wb") as fh:
                fh.write(mutilated)
            with pytest.raises(SnapshotError):
                read_snapshot(path)


class TestTmpHygiene:
    """Orphaned ``*.tmp.<pid>`` siblings: never left by a failed write,
    swept when a new writer takes ownership of the path."""

    def test_failed_write_leaves_no_tmp(self, tmp_path):
        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("nope")

        path = str(tmp_path / "snap.ckpt")
        with pytest.raises(Exception):
            write_snapshot(path, "cycle", {"bad": Unpicklable()})
        # pickling fails before the tmp file opens; also exercise an
        # open-time failure (unwritable directory path component)
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_sweep_removes_orphans_for_plain_path(self, tmp_path):
        from repro.snapshot import sweep_stale_tmp

        path = str(tmp_path / "snap.ckpt")
        orphan = tmp_path / "snap.ckpt.tmp.12345"
        orphan.write_bytes(b"half-written")
        other = tmp_path / "other.ckpt.tmp.12345"
        other.write_bytes(b"someone else's")
        removed = sweep_stale_tmp(path)
        assert [str(orphan)] == removed
        assert not orphan.exists()
        assert other.exists()  # only the given path family is swept

    def test_sweep_matches_cycle_template(self, tmp_path):
        from repro.snapshot import sweep_stale_tmp

        path = str(tmp_path / "snap-{cycle}.ckpt")
        for cycle in (100, 200):
            orphan = tmp_path / f"snap-{cycle}.ckpt.tmp.999"
            orphan.write_bytes(b"x")
        removed = sweep_stale_tmp(path)
        assert len(removed) == 2
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_policy_arming_sweeps(self, tmp_path):
        from repro.snapshot import CheckpointPolicy

        path = str(tmp_path / "snap.ckpt")
        orphan = tmp_path / "snap.ckpt.tmp.42"
        orphan.write_bytes(b"left by a killed writer")
        policy = CheckpointPolicy(path, every=10)
        assert policy.due(0) is False  # first call arms...
        assert policy.swept == [str(orphan)]  # ...and sweeps
        assert not orphan.exists()

    def test_sweep_missing_directory_is_quiet(self, tmp_path):
        from repro.snapshot import sweep_stale_tmp

        assert sweep_stale_tmp(str(tmp_path / "absent" / "x.ckpt")) == []
