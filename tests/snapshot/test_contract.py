"""Serialization-contract drift tests.

Every stateful object has an explicit capture contract: an attribute is
either captured (moved by ``state_dict``/``load_state`` or the
machine/macro payload builders) or declared external (rebuilt from
config/wiring on restore).  These tests pin the partition to the live
``__dict__`` of each class, so adding an attribute without deciding its
snapshot fate fails here — the failure message is the decision prompt.
"""

from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.jsim.netmodel import LatencyModel
from repro.jsim.sim import MacroSimulator
from repro.machine.jmachine import JMachine
from repro.network.fabric import Fabric
from repro.runtime.rpc import ReliableLayer
from repro.snapshot import CheckpointPolicy
from repro.snapshot.state import (MACHINE_CAPTURED_ATTRS,
                                  MACHINE_EXTERNAL_ATTRS,
                                  MACRO_CAPTURED_ATTRS, MACRO_EXTERNAL_ATTRS,
                                  PROC_EXTERNAL_ATTRS)

import pytest


def _partition_message(extra, unclaimed):
    return (f"attributes without a snapshot decision: {sorted(extra)}; "
            f"declared but gone: {sorted(unclaimed)} — update the "
            "capture contract (src/repro/snapshot/state.py or the "
            "class's state_dict) and docs/SNAPSHOT.md")


class TestPartitions:
    def test_jmachine(self):
        attrs = set(JMachine.build(4).__dict__)
        declared = MACHINE_CAPTURED_ATTRS | MACHINE_EXTERNAL_ATTRS
        assert attrs == declared, _partition_message(
            attrs - declared, declared - attrs)

    def test_macro_simulator(self):
        attrs = set(MacroSimulator(4).__dict__)
        declared = MACRO_CAPTURED_ATTRS | MACRO_EXTERNAL_ATTRS
        # ``post`` only appears once a ReliableLayer shadows it.
        assert attrs - declared == set(), _partition_message(
            attrs - declared, set())
        assert declared - attrs <= {"post"}

    def test_processor_externals_exist(self):
        proc = JMachine.build(4).nodes[0].proc
        assert PROC_EXTERNAL_ATTRS <= set(proc.__dict__), (
            "PROC_EXTERNAL_ATTRS names attributes Mdp no longer has")

    def test_fabric(self):
        fabric = JMachine.build(4).fabric
        stateful = {name.lstrip("_") for name in
                    set(fabric.__dict__) - Fabric.EXTERNAL_ATTRS}
        captured = set(fabric.state_dict())
        assert stateful == captured, _partition_message(
            stateful - captured, captured - stateful)

    def test_latency_model(self):
        model = MacroSimulator(4).network
        stateful = {name.lstrip("_") for name in
                    set(model.__dict__) - LatencyModel.EXTERNAL_ATTRS}
        captured = set(model.state_dict())
        assert stateful == captured, _partition_message(
            stateful - captured, captured - stateful)

    def test_chaos_engine(self):
        engine = ChaosEngine(FaultPlan(seed=1, specs=(
            FaultSpec(kind="drop", rate=0.1),)))
        stateful = {name.lstrip("_") for name in
                    set(engine.__dict__) - ChaosEngine.DERIVED_ATTRS}
        captured = set(engine.state_dict())
        # "plan" appears in the state for validation, not as an attr move.
        assert stateful == captured - {"plan"}, _partition_message(
            stateful - captured, captured - {"plan"} - stateful)

    def test_reliable_layer(self):
        sim = MacroSimulator(4)
        layer = ReliableLayer(sim)
        stateful = {name.lstrip("_") for name in
                    set(layer.__dict__) - ReliableLayer.EXTERNAL_ATTRS}
        captured = set(layer.state_dict())
        assert stateful == captured, _partition_message(
            stateful - captured, captured - stateful)


class TestCheckpointPolicy:
    def test_first_due_only_arms(self):
        policy = CheckpointPolicy("x.ckpt", every=100)
        assert policy.due(0) is False
        assert policy.due(99) is False
        assert policy.due(100) is True

    def test_save_rearms_from_reached_cycle(self, tmp_path):
        class Target:
            now = 250

            def save(self, path, run_limit=None, meta=None):
                return {"meta": {"now": self.now}}

        policy = CheckpointPolicy(str(tmp_path / "t_{cycle}.ckpt"),
                                  every=100)
        policy.due(0)
        policy.save(Target())
        assert policy.saves == 1
        assert policy.last_path.endswith("t_250.ckpt")
        assert policy.next_due == 350
        # The macro loop judges at the *next event's* horizon.
        policy.save(Target(), at=700)
        assert policy.next_due == 800

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointPolicy("x.ckpt", every=0)
