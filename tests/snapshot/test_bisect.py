"""Time-travel bisection: from a checkpoint to the first stalled cycle.

Uses the watchdog suite's wedge scenario: a chaos plan kills node 0's
router forever, a worm routed through it wedges the fabric, and the
DeadlockWatchdog eventually trips — a full no-progress window after the
machine actually stopped.  ``bisect_deadlock`` replays from the
checkpoint and binary-searches for the true stall cycle.
"""

import pytest

from repro.asm.assembler import assemble
from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.core.errors import SnapshotError
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.jmachine import JMachine
from repro.snapshot import bisect_deadlock
from repro.telemetry import Telemetry

ECHO = """
echo:
    SEND  [A3+1]
    SEND  #IP:landing
    SENDE [A3+2]
    SUSPEND
landing:
    MOVE  [A3+1], [A0+0]
    SUSPEND
"""

WINDOW = 2_000


def _wedged_checkpoint(tmp_path, telemetry=True):
    """A checkpoint of a machine doomed to deadlock (but not yet run)."""
    machine = JMachine.build(8, telemetry=Telemetry() if telemetry else None)
    program = assemble(ECHO)
    machine.load(program)
    base = program.end + 4
    for node in machine.nodes:
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    ChaosEngine(FaultPlan(seed=1, specs=(
        FaultSpec(kind="link", node=0),))).attach_machine(machine)
    # Healthy echo traffic among nodes 1-7, then the doomed worm
    # through node 0's dead router.
    for i in range(1, 8):
        machine.inject(i, program.entry("echo"),
                       [Word.from_int((i % 7) + 1), Word.from_int(100 + i)],
                       source=(i % 7) + 1)
    machine.inject(7, program.entry("echo"),
                   [Word.from_int(0), Word.from_int(1)], source=0)
    path = str(tmp_path / "wedge.ckpt")
    machine.save(path)
    return path


class TestBisect:
    def test_finds_first_stalled_cycle(self, tmp_path):
        path = _wedged_checkpoint(tmp_path)
        result = bisect_deadlock(path, window=WINDOW)
        # The watchdog saw the deadlock a full window after the stall;
        # the bisection pinpoints the actual cycle, far earlier.
        assert result.deadlock_cycle >= result.start_cycle + WINDOW
        assert result.first_stalled_cycle < result.deadlock_cycle - WINDOW // 2
        assert result.probes <= 20  # O(log) replays, not a linear scan
        assert result.stall_snapshots
        assert result.dead_snapshots

    def test_replays_are_deterministic(self, tmp_path):
        path = _wedged_checkpoint(tmp_path)
        a = bisect_deadlock(path, window=WINDOW)
        b = bisect_deadlock(path, window=WINDOW)
        assert a.first_stalled_cycle == b.first_stalled_cycle
        assert a.signature == b.signature

    def test_diffs_pair_stall_against_detection(self, tmp_path):
        path = _wedged_checkpoint(tmp_path)
        result = bisect_deadlock(path, window=WINDOW)
        assert set(result.diffs) <= {s.node_id
                                     for s in result.dead_snapshots}
        for delta in result.diffs.values():
            for name, (at_stall, at_dead) in delta.items():
                assert at_stall != at_dead

    def test_format_is_printable(self, tmp_path):
        path = _wedged_checkpoint(tmp_path)
        report = bisect_deadlock(path, window=WINDOW).format()
        assert "first stalled cycle" in report
        assert "deadlock detected" in report
        assert "node state at the stall" in report
        assert "last telemetry events" in report

    def test_healthy_run_refused(self, tmp_path):
        machine = JMachine.build(8)
        program = assemble(ECHO)
        machine.load(program)
        base = program.end + 4
        for node in machine.nodes:
            node.proc.registers[Priority.P0].write(
                "A0", Word.segment(base, 4))
        machine.inject(1, program.entry("echo"),
                       [Word.from_int(2), Word.from_int(5)], source=2)
        path = str(tmp_path / "fine.ckpt")
        machine.save(path)
        with pytest.raises(SnapshotError) as info:
            bisect_deadlock(path, window=WINDOW)
        assert "without deadlocking" in str(info.value)
