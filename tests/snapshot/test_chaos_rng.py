"""Chaos named-stream RNG round-tripping through snapshots.

The fault injector's determinism rests on its named RNG streams
(``plan.rng("fabric") / ("macro") / ("schedule")``).  A snapshot must
save their *positions* mid-plan so a resumed run draws the exact
sequence the uninterrupted run would — same drops, same corruptions,
same stall schedule — which these tests check both at the unit level
(``getstate`` fidelity) and end to end (sha256 event-stream equality,
asserted in test_cycle_resume/test_macro_resume and spot-checked here).
"""

from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.core.errors import SnapshotError

import pytest

SPECS = (FaultSpec(kind="drop", rate=0.3),
         FaultSpec(kind="corrupt", rate=0.2),
         FaultSpec(kind="stall", node=1, start=100, duration=50))


def _engine():
    return ChaosEngine(FaultPlan(seed=11, specs=SPECS))


class _FakeMacro:
    """Just enough simulator for attach_macro."""

    telemetry = None

    def __init__(self):
        self._chaos = None


class TestStreamPositions:
    def test_positions_survive_mid_plan(self):
        """Save after consuming part of each stream; the restored engine
        continues the streams bit-identically."""
        engine = _engine().attach_macro(_FakeMacro())
        for i in range(137):
            engine.macro_verdict(0, 1, "h", 6, now=i)
        state = engine.state_dict()

        twin = _engine().attach_macro(_FakeMacro())
        twin.load_state(state)
        continued = [engine.macro_verdict(0, 1, "h", 6, now=1_000 + i)
                     for i in range(100)]
        replayed = [twin.macro_verdict(0, 1, "h", 6, now=1_000 + i)
                    for i in range(100)]
        assert continued == replayed
        assert engine.counters == twin.counters
        assert engine.log == twin.log

    def test_state_includes_every_stream(self):
        state = _engine().state_dict()
        for stream in ("fabric_rng", "macro_rng", "schedule_rng"):
            assert state[stream] is not None

    def test_counters_and_log_round_trip(self):
        engine = _engine().attach_macro(_FakeMacro())
        for i in range(200):
            engine.macro_verdict(0, 1, "h", 6, now=i)
        assert engine.counters["drops"] > 0
        twin = _engine().attach_macro(_FakeMacro())
        twin.load_state(engine.state_dict())
        assert dict(twin.counters) == dict(engine.counters)
        assert list(twin.log) == list(engine.log)
        assert twin.state_dict() == engine.state_dict()

    def test_plan_mismatch_rejected(self):
        engine = _engine()
        other = ChaosEngine(FaultPlan(seed=12, specs=SPECS))
        with pytest.raises(SnapshotError):
            other.load_state(engine.state_dict())


class TestEndToEnd:
    def test_resumed_cycle_chaos_replays_identically(self, tmp_path):
        """sha256 event-stream equality between an uninterrupted chaos
        run and one checkpointed mid-plan and resumed in a fresh
        machine (the satellite's acceptance wording)."""
        from tests.snapshot.test_cycle_resume import _build, _digest
        from repro.snapshot import CheckpointPolicy, load_machine

        specs = (FaultSpec(kind="drop", rate=0.3),
                 FaultSpec(kind="corrupt", rate=0.2))
        reference = _build(specs=specs)
        reference.run(max_cycles=20_000)
        want = _digest(reference)
        assert want["chaos"][0]["drops"] > 0  # the plan actually bit

        path = str(tmp_path / "chaos.ckpt")
        interrupted = _build(specs=specs)
        interrupted.checkpoint = CheckpointPolicy(path, every=30)
        interrupted.run(max_cycles=20_000)
        resumed = load_machine(path)
        resumed.run(max_cycles=20_000)
        got = _digest(resumed)
        assert got["fingerprint"] == want["fingerprint"]
        assert got["chaos"] == want["chaos"]
