"""Macro-level checkpoint/resume: restore-into, validated, bit-identical.

Macro snapshots restore *into* a prepared simulator (handlers are app
closures and cannot live in a file), so the contract includes shape
validation: same node count, same handler registry, a ReliableLayer on
both sides or neither, and the same chaos plan.
"""

import pytest

from repro.apps.lcs import LcsParams, run_parallel
from repro.chaos import ChaosEngine, FaultPlan, FaultSpec
from repro.chaos.harness import event_fingerprint
from repro.core.errors import SnapshotError
from repro.jsim.sim import MacroSimulator
from repro.snapshot import (CheckpointPolicy, read_header, restore_macro_into,
                            save_macro)
from repro.telemetry import Telemetry

PARAMS = LcsParams(a_len=64, b_len=256)
N_NODES = 16
DROPPY = (FaultSpec(kind="drop", rate=0.05),)


def _chaos():
    return ChaosEngine(FaultPlan(seed=5, specs=DROPPY))


def _digest(result, telemetry):
    return {
        "cycles": result.cycles,
        "output": result.output,
        "handler_stats": result.handler_stats,
        "extra": result.extra,
        "messages": result.sim.messages_sent,
        "profiles": [dict(node.profile.__dict__)
                     for node in result.sim.nodes],
        "fingerprint": event_fingerprint(telemetry.events),
    }


class TestLcsResume:
    def test_resume_under_chaos_and_reliable(self, tmp_path):
        """The acceptance scenario: LCS at 16 nodes with an active drop
        plan and the retransmitting transport; checkpoint mid-run,
        rebuild the app in a fresh simulator, resume — same answer, same
        cycle count, same telemetry digest."""
        telemetry = Telemetry()
        reference = run_parallel(N_NODES, PARAMS, telemetry=telemetry,
                                 chaos=_chaos(), reliable=True)
        want = _digest(reference, telemetry)

        path = str(tmp_path / "lcs.ckpt")
        telemetry = Telemetry()
        policy = CheckpointPolicy(path, every=want["cycles"] // 3)
        interrupted = run_parallel(N_NODES, PARAMS, telemetry=telemetry,
                                   chaos=_chaos(), reliable=True,
                                   checkpoint=policy)
        assert policy.saves >= 2
        assert _digest(interrupted, telemetry) == want  # saving is free

        telemetry = Telemetry()
        resumed = run_parallel(N_NODES, PARAMS, telemetry=telemetry,
                               chaos=_chaos(), reliable=True,
                               restore_from=path)
        assert _digest(resumed, telemetry) == want

    def test_resume_plain(self, tmp_path):
        telemetry = Telemetry()
        reference = run_parallel(N_NODES, PARAMS, telemetry=telemetry)
        want = _digest(reference, telemetry)

        path = str(tmp_path / "plain.ckpt")
        telemetry = Telemetry()
        run_parallel(N_NODES, PARAMS, telemetry=telemetry,
                     checkpoint=CheckpointPolicy(path,
                                                 every=want["cycles"] // 2))
        telemetry = Telemetry()
        resumed = run_parallel(N_NODES, PARAMS, telemetry=telemetry,
                               restore_from=path)
        assert _digest(resumed, telemetry) == want

    def test_network_model_state_round_trips(self):
        """The latency model's utilization window and backlog are part
        of the state: a cold model would re-time every arrival after a
        restore.  Its contract moves exactly the mutable counters."""
        hot = MacroSimulator(N_NODES)
        hot.register("h", lambda ctx: None)
        for i in range(200):
            hot.post(i % N_NODES, (i * 7) % N_NODES, "h", (), 8, 0, i)
        model = hot.network
        assert model.messages == 200

        cold = MacroSimulator(N_NODES).network
        assert cold.state_dict() != model.state_dict()
        cold.load_state(model.state_dict())
        assert cold.state_dict() == model.state_dict()
        # Identical latency decisions from here on.
        assert (cold.latency(0, N_NODES - 1, 8, 10_000)
                == model.latency(0, N_NODES - 1, 8, 10_000))


class TestValidation:
    def _saved(self, tmp_path):
        path = str(tmp_path / "val.ckpt")
        sim = MacroSimulator(4)
        sim.register("h", lambda ctx: None)
        sim.inject(0, "h")
        sim.run()
        save_macro(sim, path)
        return path

    def test_node_count_mismatch(self, tmp_path):
        path = self._saved(tmp_path)
        other = MacroSimulator(8)
        other.register("h", lambda ctx: None)
        with pytest.raises(SnapshotError) as info:
            restore_macro_into(other, path)
        assert "nodes" in str(info.value)

    def test_handler_registry_mismatch(self, tmp_path):
        path = self._saved(tmp_path)
        other = MacroSimulator(4)
        other.register("different", lambda ctx: None)
        with pytest.raises(SnapshotError) as info:
            restore_macro_into(other, path)
        assert "missing" in str(info.value)

    def test_reliable_layer_must_match(self, tmp_path):
        from repro.runtime.rpc import ReliableLayer

        path = self._saved(tmp_path)
        other = MacroSimulator(4)
        other.register("h", lambda ctx: None)
        ReliableLayer(other)
        with pytest.raises(SnapshotError) as info:
            restore_macro_into(other, path)
        assert "ReliableLayer" in str(info.value)

    def test_chaos_plan_must_match(self, tmp_path):
        path = str(tmp_path / "chaos.ckpt")
        sim = MacroSimulator(4)
        sim.register("h", lambda ctx: None)
        _chaos().attach_macro(sim)
        sim.inject(0, "h")
        sim.run()
        save_macro(sim, path)

        other = MacroSimulator(4)
        other.register("h", lambda ctx: None)
        ChaosEngine(FaultPlan(seed=99, specs=DROPPY)).attach_macro(other)
        with pytest.raises(SnapshotError) as info:
            restore_macro_into(other, path)
        assert "plan" in str(info.value)

    def test_wrong_kind_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        from repro.snapshot import load_machine

        with pytest.raises(SnapshotError) as info:
            load_machine(path)
        assert "macro" in str(info.value)

    def test_host_timer_capture_refused(self, tmp_path):
        """Arbitrary schedule_call callbacks cannot be serialized; the
        capture fails loudly instead of writing a broken file."""
        sim = MacroSimulator(4)
        sim.register("h", lambda ctx: None)
        sim.schedule_call(10, lambda now: None)
        with pytest.raises(SnapshotError) as info:
            save_macro(sim, str(tmp_path / "timer.ckpt"))
        assert "timer" in str(info.value)
