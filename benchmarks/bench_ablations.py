"""Ablations: what each MDP mechanism buys (beyond the paper's tables)."""

import pytest

from repro.bench import ablations


def test_dispatch_cost_ablation(benchmark, record_table):
    series = benchmark.pedantic(
        ablations.dispatch_cost_ablation,
        kwargs={"dispatch_cycles": (4, 50, 200)},
        rounds=1, iterations=1,
    )
    record_table(ablations.format_dispatch(series))
    # Each round trip contains two dispatches: RTT grows ~2x the delta.
    rtt = dict(zip(series.values, series.metrics))
    assert rtt[200] - rtt[4] == pytest.approx(2 * (200 - 4), abs=20)


def test_suspend_policy_ablation(benchmark, record_table):
    series = benchmark.pedantic(
        ablations.suspend_policy_ablation,
        kwargs={"n_nodes": 16},
        rounds=1, iterations=1,
    )
    record_table(ablations.format_suspend(series))
    assert series.metrics == sorted(series.metrics)


def test_emem_latency_ablation(benchmark, record_table):
    series = benchmark.pedantic(
        ablations.emem_bandwidth_ablation, rounds=1, iterations=1
    )
    record_table(ablations.format_emem(series))
    # Slower memory, lower terminal bandwidth — strictly.
    assert series.metrics == sorted(series.metrics, reverse=True)


def test_flow_control_ablation(benchmark, record_table):
    """Return-to-sender frees the path a refused message would block."""
    series = benchmark.pedantic(
        ablations.flow_control_ablation, rounds=1, iterations=1
    )
    record_table(ablations.format_flow_control(series))
    results = dict(zip(series.values, series.metrics))
    assert results["return_to_sender"] * 5 < results["block"]


def test_node_tlb_ablation(benchmark, record_table):
    """The proposed node TLB removes the per-message NNR calculation."""
    series = benchmark.pedantic(
        ablations.node_tlb_ablation, rounds=1, iterations=1
    )
    record_table(ablations.format_node_tlb(series))
    software, tlb = series.metrics
    assert tlb < software


def test_queue_pressure_ablation(benchmark, record_table):
    """N-Queens board buffering vs the 128-message hardware budget."""
    series = benchmark.pedantic(
        ablations.queue_pressure_ablation, kwargs={"n_values": (4, 16)},
        rounds=1, iterations=1,
    )
    record_table(ablations.format_queue_pressure(series))
    # Bigger machines expand more tasks per node up front.
    assert series.metrics[-1] >= series.metrics[0]


def test_arbitration_fairness_ablation(benchmark, record_table):
    """Fixed-priority injection starvation vs round-robin fairness."""
    series = benchmark.pedantic(
        ablations.arbitration_fairness_ablation, rounds=1, iterations=1
    )
    record_table(ablations.format_arbitration(series))
    results = dict(zip(series.values, series.metrics))
    assert results["fixed"] > results["round_robin"] * 1.3


def test_tsp_priority_one_ablation(benchmark, record_table):
    """Priority-1 bound delivery removes the null-call yield tax."""
    series = benchmark.pedantic(
        ablations.tsp_priority_ablation, rounds=1, iterations=1
    )
    record_table(ablations.format_tsp_priority(series))
    yields, priority_one = series.metrics
    assert priority_one < yields
