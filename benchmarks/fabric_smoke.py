"""Fabric-observatory smoke: hotspots, exactness, and calibration.

The ``make fabric-smoke`` entry point (chained into ``make check``).
Four end-to-end properties of the fabric observatory:

* **Hotspot detection** — a transpose permutation ((x,y) -> (y,x), the
  classic adversarial pattern for dimension-order routing) on an 8x8
  mesh must put X-midplane links at the top of the
  :class:`FabricReport` ranking, with midplane mean utilization above
  off-midplane.
* **Zero-cost-off / bit-identical-on** — the same seeded workload run
  with and without a probe attached produces byte-identical event
  streams (``event_fingerprint``): observation never perturbs the run.
* **Parallel exactness** — a probed run under ``parallel_shards=4``
  folds shard-local counters into a report *equal* to the serial one.
* **Calibration** — the flit-measured load sweep fits the macro
  model's contention scale and the fitted residuals do not regress.

Usage::

    PYTHONPATH=src python benchmarks/fabric_smoke.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

from repro.chaos.harness import event_fingerprint  # noqa: E402
from repro.core.message import Message  # noqa: E402
from repro.core.registers import Priority  # noqa: E402
from repro.core.word import Word  # noqa: E402
from repro.jsim.calibrate import calibrate  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.machine.jmachine import JMachine  # noqa: E402
from repro.network.fabric import Fabric  # noqa: E402
from repro.network.observatory import FabricReport, link_name  # noqa: E402
from repro.network.topology import Mesh3D  # noqa: E402
from repro.runtime.rpc import run_ping  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402

MESH_X = 8
MESH_Y = 8


def transpose_report() -> FabricReport:
    """Drive the crossing quadrant of a transpose through a probed fabric.

    The full (x,y) -> (y,x) permutation under e-cube routing funnels
    hardest at the mesh corners; the *midplane* hotspot the observatory
    must localize comes from the messages that change halves.  So this
    injects the transpose of the upper-left quadrant (sources x < X/2,
    y >= Y/2) — every one of those messages crosses the X midplane on
    its row, which is exactly the hotspot signature the report's
    ``is_midplane`` split and top-k ranking must recover.
    """
    mesh = Mesh3D(MESH_X, MESH_Y, 1)
    delivered = []
    fabric = Fabric(mesh,
                    lambda node, message: True,
                    lambda node, message, now: delivered.append(node))
    fabric.attach_probe()
    for x in range(MESH_X // 2):
        for y in range(MESH_Y // 2, MESH_Y):
            src = x + MESH_X * y
            dst = y + MESH_X * x
            words = [Word.ip(0), Word.from_int(src)]
            fabric.send(Message(words, source=src, dest=dst,
                                priority=Priority.P0), 0)
    now = 0
    while fabric.stats.completed < fabric.stats.submitted and now < 100_000:
        fabric.step(now)
        now += 1
    assert fabric.stats.completed == fabric.stats.submitted, \
        "transpose traffic did not drain"
    return FabricReport.from_fabric(fabric, now)


def check_hotspot() -> None:
    report = transpose_report()
    top = report.top_links(8)
    midplane_in_top = [link for link, _ in top if report.is_midplane(link)]
    assert midplane_in_top, (
        "transpose traffic must rank X-midplane links among the top 8; "
        f"got {[link_name(link) for link, _ in top]}")
    split = report.midplane_split()
    assert (split["midplane"]["mean_utilization"]
            > split["off_midplane"]["mean_utilization"]), (
        f"midplane should out-load the rest under transpose: {split}")
    print(f"fabric-smoke: hotspot OK — "
          f"{len(midplane_in_top)}/8 top links on the midplane, "
          f"midplane mean util "
          f"{split['midplane']['mean_utilization']:.3f} vs "
          f"{split['off_midplane']['mean_utilization']:.3f} off")


def _ping_fingerprint(probe: bool, shards: int = 0):
    config = MachineConfig(dims=(4, 4, 1), fabric_probe=probe,
                           parallel_shards=shards)
    telemetry = Telemetry()
    machine = JMachine(config, telemetry=telemetry)
    run_ping(machine, 0, machine.mesh.n_nodes - 1, iterations=10,
             stop="quiescent")
    return event_fingerprint(telemetry.events), machine


def check_digest_identical() -> None:
    digest_off, _ = _ping_fingerprint(probe=False)
    digest_on, _ = _ping_fingerprint(probe=True)
    assert digest_on == digest_off, (
        "attaching a fabric probe changed the event stream — "
        "observation must be bit-identical")
    print(f"fabric-smoke: digest OK — probe on/off both {digest_off[:16]}…")


def check_parallel_exact() -> None:
    _, serial = _ping_fingerprint(probe=True)
    _, sharded = _ping_fingerprint(probe=True, shards=4)
    report_a = serial.fabric_report()
    report_b = sharded.fabric_report()
    assert report_a == report_b, (
        "serial and parallel_shards=4 fabric reports diverged:\n"
        + report_a.format_diff(report_b))
    print(f"fabric-smoke: parallel OK — {len(report_a.links)} links, "
          f"{report_a.messages} messages, reports equal")


def check_calibration() -> None:
    result = calibrate(warmup_cycles=1500, measure_cycles=4000)
    print(result.format())
    assert result.scale > 0, "fitted contention scale collapsed to zero"
    before = result.residuals(result.default_scale)
    after = result.residuals(result.scale)
    rms = lambda r: (sum(v * v for v in r) / len(r)) ** 0.5  # noqa: E731
    assert rms(after) <= rms(before) + 1e-9, (
        f"calibration made the fit worse: {rms(before):.2f} -> "
        f"{rms(after):.2f}")
    print(f"fabric-smoke: calibration OK — rms {rms(before):.1f} -> "
          f"{rms(after):.1f} cycles")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the full smoke (the only mode)")
    parser.parse_args()
    check_hotspot()
    check_digest_identical()
    check_parallel_exact()
    check_calibration()
    print("fabric-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
