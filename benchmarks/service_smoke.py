"""Service smoke: boot, sweep, kill a worker, recover, cache, drain.

The ``make service-smoke`` entry point (chained into ``make check``).
It drives the fault-tolerant service end to end, as a real client —
everything through ``python -m repro.service`` subprocesses and the
HTTP API, nothing in-process:

1. **boot** a service with 2 workers on an ephemeral port;
2. **sweep**: submit a small LCS grid (3 scales) plus one ping job;
   while the biggest job is leased, ``kill -9`` its worker and assert
   the job still completes — recovered on a retry that *resumed* from
   the dead worker's checkpoint (``resumed_from > 0``);
3. **drain** the service and assert every worker process is gone and
   no ``*.tmp.<pid>`` litter survives anywhere in the workdir;
4. **re-boot** a fresh service on the same workdir and resubmit the
   identical grid: every job must come back instantly from the
   content-addressed cache (100% hits, zero executions), with
   fingerprints equal to the first pass — the determinism contract
   doing real work.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

#: The sweep: three LCS scales + one ping.  The 0.05 job is long
#: enough (~1 s, several checkpoints) to be killed mid-run.
GRID = [
    {"app": "lcs", "n_nodes": 4, "params": {"scale": 0.01},
     "checkpoint_every": 5_000, "sample_every": 1_000},
    {"app": "lcs", "n_nodes": 4, "params": {"scale": 0.02},
     "checkpoint_every": 5_000, "sample_every": 1_000},
    {"app": "lcs", "n_nodes": 4, "params": {"scale": 0.05},
     "checkpoint_every": 5_000, "sample_every": 1_000},
    {"app": "ping", "n_nodes": 4, "params": {"iterations": 10}},
]
VICTIM = 2  # index of the job whose worker gets killed


def _get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=15) as response:
        return json.loads(response.read())


def _post(url: str, path: str, body: dict):
    request = urllib.request.Request(
        url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _boot(workdir: str, workers: int = 2) -> tuple:
    """Start a service subprocess; returns (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.service", "serve",
         "--workdir", workdir, "--workers", str(workers), "--port", "0",
         "--heartbeat-s", "0.05", "--lease-timeout-s", "1.5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        match = re.search(r"on (http://[\d.:]+) ", line)
        if match:
            return proc, match.group(1)
    raise AssertionError("service never printed its URL")


def _wait_job(url: str, digest: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = _get(url, f"/jobs/{digest}")
        if record["state"] in ("done", "failed"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {digest[:8]} never settled")


def _assert_no_tmp_litter(workdir: str) -> None:
    litter = []
    for root, _dirs, files in os.walk(workdir):
        litter += [os.path.join(root, name) for name in files
                   if ".tmp." in name]
    assert not litter, f"orphaned tmp files after drain: {litter}"


def _shutdown(proc: subprocess.Popen, worker_pids) -> None:
    """SIGTERM the service; assert it drains and leaves no orphans."""
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 0, out
    assert "shut down cleanly" in out, out
    for pid in worker_pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        raise AssertionError(f"worker {pid} survived the drain")


def run_smoke(workdir: str) -> None:
    # ---- pass 1: execute the grid, killing one worker mid-run -------------
    proc, url = _boot(workdir)
    digests, fingerprints = [], {}
    try:
        status = _get(url, "/status")
        assert len(status["workers"]) == 2
        for spec in GRID:
            code, record = _post(url, "/submit", spec)
            assert code == 200, record
            digests.append(record["digest"])
        victim_digest = digests[VICTIM]

        # Kill the victim job's worker once it is leased and has
        # checkpointed (resumed_from > 0 below proves the checkpoint).
        ckpt = os.path.join(workdir, "ckpt", f"{victim_digest}.ckpt")
        deadline = time.monotonic() + 60
        victim_pid = None
        while time.monotonic() < deadline:
            status = _get(url, "/status")
            wid = next((lease["worker"] for lease
                        in status["leases"]["active"]
                        if lease["digest"] == victim_digest), None)
            if wid is not None and os.path.exists(ckpt):
                victim_pid = next(w["pid"] for w in status["workers"]
                                  if w["wid"] == wid)
                break
            if _get(url, f"/jobs/{victim_digest}")["state"] == "done":
                break  # too fast to kill; accept (but see assert below)
            time.sleep(0.01)
        killed = victim_pid is not None
        if killed:
            os.kill(victim_pid, signal.SIGKILL)
            print(f"service-smoke: killed worker pid {victim_pid} "
                  f"holding {victim_digest[:8]}")

        for spec, digest in zip(GRID, digests):
            record = _wait_job(url, digest)
            assert record["state"] == "done", record
            fingerprints[digest] = record["result"]["fingerprint"]
        assert killed, "victim job finished before it could be killed; " \
            "grow its scale so the recovery path is actually exercised"
        victim = _get(url, f"/jobs/{victim_digest}")
        assert victim["requeues"] == 1, victim
        assert victim["result"]["resumed_from"] > 0, \
            "retry restarted cold instead of resuming from checkpoint"
        print(f"service-smoke: recovered {victim_digest[:8]} on attempt "
              f"{victim['attempts']}, resumed from cycle "
              f"{victim['result']['resumed_from']}")

        status = _get(url, "/status")
        assert status["leases"]["revoked"] >= 0  # EOF path, not watchdog
        assert status["respawns"] >= 1
        worker_pids = [w["pid"] for w in status["workers"]]
    except BaseException:
        proc.kill()
        proc.communicate()
        raise
    _shutdown(proc, worker_pids)
    _assert_no_tmp_litter(workdir)
    print(f"service-smoke: pass 1 done — {len(GRID)} jobs, "
          f"1 worker killed, drained clean")

    # ---- pass 2: same grid, fresh service — 100% cache hits ---------------
    proc, url = _boot(workdir)
    try:
        t0 = time.monotonic()
        for spec, digest in zip(GRID, digests):
            code, record = _post(url, "/submit", spec)
            assert code == 200
            assert record["state"] == "done", \
                f"{digest[:8]} was not served from cache: {record}"
            assert record["cached"] is True
            assert record["result"]["fingerprint"] == fingerprints[digest]
        elapsed = time.monotonic() - t0
        status = _get(url, "/status")
        assert status["cache"]["hits"] == len(GRID), status["cache"]
        assert status["cache"]["misses"] == 0, status["cache"]
        assert status["queue"]["leased"] == 0
        worker_pids = [w["pid"] for w in status["workers"]]
    except BaseException:
        proc.kill()
        proc.communicate()
        raise
    _shutdown(proc, worker_pids)
    _assert_no_tmp_litter(workdir)
    print(f"service-smoke: pass 2 done — {len(GRID)}/{len(GRID)} cache "
          f"hits in {elapsed * 1000:.0f} ms, fingerprints equal")
    print("service-smoke: OK")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the smoke (the only mode; flag kept "
                             "for Makefile symmetry)")
    parser.add_argument("--workdir", default=None,
                        help="service state dir (default: a fresh "
                             "temporary directory, removed afterwards)")
    args = parser.parse_args()
    workdir = args.workdir or tempfile.mkdtemp(prefix="service-smoke-")
    try:
        run_smoke(workdir)
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
