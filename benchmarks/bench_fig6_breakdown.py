"""Figure 6: per-node function breakdown on a 64-node machine."""

import pytest

from repro.bench import fig6


@pytest.fixture(scope="module")
def result():
    return fig6.run(n_nodes=64)


def test_fig6_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        fig6.run, kwargs={"n_nodes": 16}, rounds=1, iterations=1
    )
    record_table(fig6.format_result(outcome))


def test_fractions_are_sane(result):
    for app, breakdown in result.breakdowns.items():
        total = sum(breakdown.values())
        assert total == pytest.approx(1.0, abs=1e-6), app
        assert all(0 <= v <= 1 for v in breakdown.values()), app


def test_compute_dominates_everywhere(result):
    """All four applications are computation-dominated (paper Fig 6)."""
    for app, breakdown in result.breakdowns.items():
        assert breakdown["compute"] > 0.4, app


def test_tsp_idles_less_than_nqueens(result):
    """Dynamic balancing (TSP) vs static distribution (N-Queens)."""
    assert result.breakdowns["tsp"]["idle"] < \
        result.breakdowns["nqueens"]["idle"]


def test_tsp_pays_sync_and_xlate(result):
    """CST's null-call yields and global names are visible costs."""
    assert result.breakdowns["tsp"]["sync"] > 0.02
    assert result.breakdowns["tsp"]["xlate"] > 0.01
    for other in ("lcs", "nqueens"):
        assert result.breakdowns["tsp"]["xlate"] > \
            result.breakdowns[other]["xlate"]


def test_radix_has_visible_comm(result):
    """A message per word makes radix sort's comm slice the largest."""
    radix_comm = result.breakdowns["radix_sort"]["comm"]
    assert radix_comm > result.breakdowns["nqueens"]["comm"]
    assert radix_comm > result.breakdowns["lcs"]["comm"]
