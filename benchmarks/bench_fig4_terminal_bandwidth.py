"""Figure 4: terminal network bandwidth vs message size."""

import pytest

from repro.bench import fig4


@pytest.fixture(scope="module")
def result():
    return fig4.run()


def test_fig4_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(fig4.run, rounds=1, iterations=1)
    record_table(fig4.format_result(outcome))


def test_eight_words_near_ninety_percent(result):
    assert result.fraction_of_peak("discard", 8) == pytest.approx(0.9, abs=0.05)


def test_two_words_above_half_of_peak(result):
    assert result.fraction_of_peak("discard", 2) > 0.5


def test_curves_monotone_in_size(result):
    for mode in fig4.SINK_MODES:
        rates = [result.curves[mode][s].bits_per_s
                 for s in sorted(result.curves[mode])]
        assert rates == sorted(rates)


def test_memory_copies_cap_bandwidth(result):
    """The critique: EMEM accepts data ~3x slower than the network
    delivers it; IMEM copy sits between."""
    discard = result.curves["discard"][16].bits_per_s
    imem = result.curves["imem"][16].bits_per_s
    emem = result.curves["emem"][16].bits_per_s
    assert discard > imem > emem
    assert discard / emem >= 2.5
