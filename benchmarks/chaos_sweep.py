"""Chaos harness: macro benchmarks under escalating fault rates.

Runs LCS and N-Queens with the reliable transport enabled while the
chaos engine drops an increasing fraction of messages, and records for
each rate: whether the run completed, the verified answer's
correctness, the cycle overhead versus the fault-free run, and the
transport's retry counts.

Usage::

    PYTHONPATH=src python benchmarks/chaos_sweep.py            # full sweep
    PYTHONPATH=src python benchmarks/chaos_sweep.py --smoke    # CI gate

``--smoke`` is the ``make chaos-smoke`` entry point: a fixed-seed run
at two fault rates that *asserts* the robustness contract —

* both apps complete correctly under 1% message drop;
* retries are visible in the chaos counters (the recovery path really
  ran);
* the same seed and plan produce the identical telemetry event stream
  across two runs (determinism).

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos import FaultPlan
from repro.chaos.harness import APPS, run_app_under_plan

SWEEP_RATES = (0.0, 0.005, 0.01, 0.02, 0.05)
SMOKE_RATES = (0.0, 0.01)
SMOKE_SEED = 20130501


def _plan(rate: float, seed: int) -> FaultPlan:
    if rate == 0.0:
        return FaultPlan(seed=seed, name="fault-free")
    return FaultPlan.message_loss(rate, seed=seed, name=f"drop-{rate:g}")


def sweep(rates, seed: int, n_nodes: int, scale: float, events: bool):
    """Run every app at every rate; returns rows of result dicts."""
    rows = []
    for app in APPS:
        baseline_cycles = None
        for rate in rates:
            result = run_app_under_plan(
                _plan(rate, seed), app=app, n_nodes=n_nodes, scale=scale,
                events=events)
            row = result.to_dict()
            row["rate"] = rate
            if rate == 0.0 and result.completed:
                baseline_cycles = result.cycles
            if baseline_cycles and result.completed:
                row["overhead"] = result.cycles / baseline_cycles - 1.0
            else:
                row["overhead"] = None
            rows.append(row)
    return rows


def format_rows(rows) -> str:
    lines = [
        f"{'app':<10} {'rate':>6} {'done':>5} {'cycles':>10} "
        f"{'overhead':>9} {'retries':>8} {'drops':>6}",
    ]
    for row in rows:
        overhead = (f"{row['overhead'] * 100:+.1f}%"
                    if row["overhead"] is not None else "-")
        lines.append(
            f"{row['app']:<10} {row['rate']:>6g} "
            f"{'yes' if row['completed'] else 'NO':>5} "
            f"{row['cycles']:>10} {overhead:>9} "
            f"{row['reliable'].get('retries', 0):>8} "
            f"{row['chaos'].get('drops', 0):>6}"
        )
    return "\n".join(lines)


def smoke(n_nodes: int, scale: float) -> int:
    """The CI gate; prints a verdict per contract clause, returns rc."""
    failures = []
    rows = sweep(SMOKE_RATES, SMOKE_SEED, n_nodes, scale, events=True)
    print(format_rows(rows))

    for row in rows:
        if not row["completed"]:
            failures.append(
                f"{row['app']} did not complete at rate {row['rate']}: "
                f"{row['error']}")
    lossy = [row for row in rows if row["rate"] > 0 and row["completed"]]
    for row in lossy:
        if row["chaos"].get("drops", 0) == 0:
            failures.append(
                f"{row['app']}: no messages were dropped at rate "
                f"{row['rate']} (injection did not run)")
        if row["reliable"].get("retries", 0) == 0:
            failures.append(
                f"{row['app']}: zero retries at rate {row['rate']} "
                f"(recovery path never exercised)")

    # Determinism: replay the lossy plan and compare event streams.
    plan = _plan(SMOKE_RATES[-1], SMOKE_SEED)
    for app in APPS:
        first = run_app_under_plan(plan, app=app, n_nodes=n_nodes,
                                   scale=scale)
        second = run_app_under_plan(plan, app=app, n_nodes=n_nodes,
                                    scale=scale)
        if first.fingerprint != second.fingerprint:
            failures.append(
                f"{app}: same seed and plan produced different event "
                f"streams ({first.fingerprint[:16]} vs "
                f"{second.fingerprint[:16]})")
        else:
            print(f"determinism: {app} event stream stable "
                  f"({first.n_events} events, "
                  f"fingerprint {first.fingerprint[:16]})")

    if failures:
        print("\nCHAOS SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nchaos smoke: all contracts hold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fixed-seed CI gate (asserts the contract)")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="LCS problem scale")
    parser.add_argument("--seed", type=int, default=SMOKE_SEED)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.nodes, args.scale)

    rows = sweep(SWEEP_RATES, args.seed, args.nodes, args.scale,
                 events=False)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_rows(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
