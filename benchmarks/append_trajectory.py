"""Accumulate perfsmoke results into a perf-trajectory history.

``make perfsmoke`` measures simulator throughput into a pytest-benchmark
JSON file — which pytest-benchmark *overwrites* on every run, so the
history of past measurements was lost.  This script merges a fresh run
into the committed artifact instead: the destination keeps the full
latest pytest-benchmark payload (so ``check_telemetry_overhead.py`` and
``python -m repro.telemetry report`` style tooling keep working) plus a
``trajectory`` list with one timestamped summary entry per run, oldest
first.  Each entry records the run's own pytest-benchmark timestamp,
the commit it measured, and min/mean seconds per benchmark, so the
throughput trend over the repo's history accumulates in-tree.

A trajectory is only meaningful when each point can be attributed to a
commit, so a dirty working tree (pytest-benchmark records this in
``commit_info.dirty``) is refused by default: a measurement of
uncommitted code would silently mix baselines.  Pass ``--allow-dirty``
to append anyway; the entry is then marked ``"dirty": true`` so later
readers can discount it.

Usage (what the Makefile runs)::

    PYTHONPATH=src python benchmarks/append_trajectory.py \
        BENCH_simspeed_run.json BENCH_simspeed.json
"""

from __future__ import annotations

import json
import os
import sys


def summarize(data: dict) -> dict:
    """One compact trajectory entry for a pytest-benchmark payload."""
    info = data.get("commit_info") or {}
    commit = info.get("id")
    entry = {
        "datetime": data.get("datetime"),
        "commit": commit[:12] if isinstance(commit, str) else None,
        "benchmarks": {
            bench["name"]: {
                "min": bench["stats"]["min"],
                "mean": bench["stats"]["mean"],
            }
            for bench in data.get("benchmarks", [])
        },
    }
    if "snapshot" in data:
        # snapshot_smoke.py payloads: checkpoint save/restore latency
        # and file size per simulation level.
        entry["snapshot"] = data["snapshot"]
    if info.get("dirty"):
        entry["dirty"] = True
    return entry


def merge(run_path: str, dest_path: str, allow_dirty: bool = False) -> int:
    with open(run_path, "r", encoding="utf-8") as handle:
        run = json.load(handle)
    if (run.get("commit_info") or {}).get("dirty") and not allow_dirty:
        print("perf trajectory: REFUSING to append — the working tree "
              "was dirty when this run was measured, so the point "
              "cannot be attributed to a commit.  Commit (or stash) "
              "first, or pass --allow-dirty to record it flagged.",
              file=sys.stderr)
        return 1
    trajectory = []
    if os.path.exists(dest_path):
        try:
            with open(dest_path, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle).get("trajectory", [])
        except (ValueError, OSError):
            trajectory = []  # a corrupt artifact should not block perfsmoke
    trajectory.append(summarize(run))
    run["trajectory"] = trajectory
    with open(dest_path, "w", encoding="utf-8") as handle:
        json.dump(run, handle, indent=4)
        handle.write("\n")
    entry = trajectory[-1]
    print(f"perf trajectory: {len(trajectory)} entries in {dest_path} "
          f"(latest {entry['datetime']}, "
          f"{len(entry['benchmarks'])} benchmarks)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    allow_dirty = "--allow-dirty" in argv
    argv = [arg for arg in argv if arg != "--allow-dirty"]
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return merge(argv[0], argv[1], allow_dirty=allow_dirty)


if __name__ == "__main__":
    sys.exit(main())
