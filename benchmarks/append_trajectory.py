"""Accumulate perfsmoke results into a perf-trajectory history.

``make perfsmoke`` measures simulator throughput into a pytest-benchmark
JSON file — which pytest-benchmark *overwrites* on every run, so the
history of past measurements was lost.  This script merges a fresh run
into the committed artifact instead: the destination keeps the full
latest pytest-benchmark payload (so ``check_telemetry_overhead.py`` and
``python -m repro.telemetry report`` style tooling keep working) plus a
``trajectory`` list with one timestamped summary entry per run, oldest
first.  Each entry records the run's own pytest-benchmark timestamp,
the commit it measured, and min/mean seconds per benchmark, so the
throughput trend over the repo's history accumulates in-tree.

Usage (what the Makefile runs)::

    PYTHONPATH=src python benchmarks/append_trajectory.py \
        BENCH_simspeed_run.json BENCH_simspeed.json
"""

from __future__ import annotations

import json
import os
import sys


def summarize(data: dict) -> dict:
    """One compact trajectory entry for a pytest-benchmark payload."""
    commit = (data.get("commit_info") or {}).get("id")
    return {
        "datetime": data.get("datetime"),
        "commit": commit[:12] if isinstance(commit, str) else None,
        "benchmarks": {
            bench["name"]: {
                "min": bench["stats"]["min"],
                "mean": bench["stats"]["mean"],
            }
            for bench in data.get("benchmarks", [])
        },
    }


def merge(run_path: str, dest_path: str) -> int:
    with open(run_path, "r", encoding="utf-8") as handle:
        run = json.load(handle)
    trajectory = []
    if os.path.exists(dest_path):
        try:
            with open(dest_path, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle).get("trajectory", [])
        except (ValueError, OSError):
            trajectory = []  # a corrupt artifact should not block perfsmoke
    trajectory.append(summarize(run))
    run["trajectory"] = trajectory
    with open(dest_path, "w", encoding="utf-8") as handle:
        json.dump(run, handle, indent=4)
        handle.write("\n")
    entry = trajectory[-1]
    print(f"perf trajectory: {len(trajectory)} entries in {dest_path} "
          f"(latest {entry['datetime']}, "
          f"{len(entry['benchmarks'])} benchmarks)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return merge(argv[0], argv[1])


if __name__ == "__main__":
    sys.exit(main())
