"""Measure the sharded parallel backend against the serial run loop.

Builds an instruction-dense, sparse-communication workload — every node
runs a counted compute loop, then sends one message to its +1 neighbour
— on a 256-node machine and times it serially and under 2 and 4 shards,
asserting bit-identical results before reporting any number.

Honest-measurement notes (see docs/PERFORMANCE.md, "Parallel backend"):

* Wall-clock speedup requires real CPUs.  On a single-core host the
  workers timeshare one core, so the parallel run costs serial compute
  *plus* coordination and can never be faster; this script always
  prints ``cpus`` next to the speedup so the number can be read in
  context, and computes the coordination overhead (the quantity the
  backend can actually control) either way.
* Conservative epochs cap fast-path run-ahead at the epoch window
  (5 busy / 11 idle cycles), so worker compute is intrinsically more
  expensive per simulated cycle than the serial loop's quiet-window
  batching.  The report separates that inflation from barrier cost.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py
    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py --smoke

``--smoke`` (what ``make parallel-smoke`` runs) skips the timing sweep
and just proves 2-shard bit-identity on a small workload in well under
30 seconds, exiting nonzero on any divergence or unexpected fallback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.asm.assembler import assemble
from repro.core.registers import Priority
from repro.core.word import Word
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine

WORK = """
; A0+0 = iterations, A0+1 = peer, A0+2 = done flag
work:
    MOVE  [A0+0], R0
loop:
    ADD   R0, #-1, R0
    GT    R0, #0, R1
    BT    R1, loop
    SEND  [A0+1]
    SEND  #IP:fin
    SENDE [A0+1]
    SUSPEND
fin:
    MOVE  #1, [A0+2]
    SUSPEND
"""


def build_machine(n_nodes: int, iters: int, shards: int) -> tuple:
    machine = JMachine(
        MachineConfig.for_nodes(n_nodes, parallel_shards=shards))
    program = assemble(WORK)
    machine.load(program)
    base = program.end + 4
    for i, node in enumerate(machine.nodes):
        node.proc.memory.poke(base + 0, Word.from_int(iters))
        node.proc.memory.poke(base + 1, Word.from_int((i + 1) % n_nodes))
        node.proc.registers[Priority.P0].write("A0", Word.segment(base, 4))
    return machine, program, base


def digest(machine, base) -> tuple:
    stats = machine.fabric.stats
    return (
        machine.now,
        machine.deliveries_committed,
        stats.submitted,
        stats.completed,
        tuple(dict(node.proc.counters.__dict__).items()
              for node in machine.nodes),
        tuple(node.proc.memory.peek(base + 2).value
              for node in machine.nodes),
    )


def run_once(n_nodes: int, iters: int, shards: int) -> tuple:
    machine, program, base = build_machine(n_nodes, iters, shards)
    for i in range(n_nodes):
        machine.inject(i, program.entry("work"), source=i)
    started = time.perf_counter()
    machine.run(max_cycles=10_000_000)
    elapsed = time.perf_counter() - started
    return elapsed, digest(machine, base), machine._parallel_skip_reason


def smoke() -> int:
    """2-shard bit-identity on small workloads; the make target.

    Two probes: the cycle-level LCS application (an end-to-end answer
    plus cycle/instruction/thread totals), and the compute-grid
    workload compared on a full architectural digest.
    """
    from repro.apps.lcs_cycle import run_cycle_lcs

    started = time.perf_counter()
    serial_lcs = run_cycle_lcs(8, stop="quiescent")
    parallel_lcs = run_cycle_lcs(8, stop="quiescent", parallel_shards=2)
    if serial_lcs != parallel_lcs:
        print("parallel-smoke: FAIL — 2-shard LCS diverged from serial")
        print(f"  serial:   {serial_lcs}")
        print(f"  parallel: {parallel_lcs}")
        return 1

    serial_time, serial_digest, _ = run_once(16, 120, 0)
    parallel_time, parallel_digest, skip = run_once(16, 120, 2)
    if skip is not None:
        print(f"parallel-smoke: FAIL — backend fell back serial ({skip})")
        return 1
    if serial_digest != parallel_digest:
        print("parallel-smoke: FAIL — 2-shard run diverged from serial")
        print(f"  serial:   now={serial_digest[0]} "
              f"deliveries={serial_digest[1]}")
        print(f"  parallel: now={parallel_digest[0]} "
              f"deliveries={parallel_digest[1]}")
        return 1
    print(f"parallel-smoke: OK — 2-shard LCS ({parallel_lcs.cycles} "
          f"cycles) and 16-node grid ({serial_digest[0]} cycles) "
          f"bit-identical to serial; grid serial "
          f"{serial_time * 1000:.0f}ms / parallel "
          f"{parallel_time * 1000:.0f}ms; total "
          f"{time.perf_counter() - started:.1f}s")
    return 0


def sweep(n_nodes: int, iters: int, reps: int, out: str | None) -> int:
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    print(f"workload: {n_nodes} nodes x {iters}-iteration compute loop "
          f"+ 1 neighbour message each; host cpus={cpus}")

    results = {}
    reference = None
    for shards in (0, 2, 4):
        best, dig, skip = min(
            (run_once(n_nodes, iters, shards) for _ in range(reps)),
            key=lambda r: r[0])
        if shards == 0:
            reference = dig
        else:
            if skip is not None:
                print(f"shards={shards}: fell back serial ({skip})")
                return 1
            if dig != reference:
                print(f"shards={shards}: DIVERGED from serial — refusing "
                      "to report a speedup for a wrong answer")
                return 1
        results[shards] = best
        label = "serial" if shards == 0 else f"{shards} shards"
        print(f"  {label:>9}: {best * 1000:8.1f} ms"
              + ("" if shards == 0 else
                 f"  (speedup {results[0] / best:.2f}x)"))

    speedup4 = results[0] / results[4]
    overhead4 = results[4] - results[0]
    print(f"\nspeedup at 4 shards: {speedup4:.2f}x on {cpus} cpu(s); "
          f"coordination + epoch-capping overhead {overhead4 * 1000:.0f} ms")
    if cpus < 2:
        print("single-core host: wall-clock speedup is impossible by "
              "construction (workers timeshare one core); the overhead "
              "figure above is the meaningful quantity here.")

    if out:
        payload = {
            "n_nodes": n_nodes,
            "iters": iters,
            "cpus": cpus,
            "serial_s": results[0],
            "shards2_s": results[2],
            "shards4_s": results[4],
            "speedup_4_shards": speedup4,
            "bit_identical": True,
        }
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast 2-shard bit-identity check only")
    parser.add_argument("--nodes", type=int, default=256)
    parser.add_argument("--iters", type=int, default=300)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--json", dest="out", default=None,
                        help="write the sweep summary to this JSON file")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    return sweep(args.nodes, args.iters, args.reps, args.out)


if __name__ == "__main__":
    sys.exit(main())
