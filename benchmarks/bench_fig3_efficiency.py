"""Figure 3 (right): processor efficiency vs grain size."""

import pytest

from repro.bench import fig3


@pytest.fixture(scope="module")
def result():
    return fig3.run()


def test_fig3_right_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        fig3.run,
        kwargs={"measure_cycles": 3000, "idles": (0, 100, 400, 1600, 4000)},
        rounds=1, iterations=1,
    )
    record_table(fig3.format_efficiency_table(outcome))


def test_efficiency_monotone_in_grain(result):
    for length, series in result.points.items():
        ordered = sorted(series, key=lambda p: p.grain_cycles)
        efficiencies = [p.efficiency for p in ordered]
        # Allow tiny non-monotonicity from measurement noise.
        for early, late in zip(efficiencies, efficiencies[1:]):
            assert late >= early - 0.05


def test_coarse_grain_reaches_high_efficiency(result):
    for length in result.points:
        best = max(p.efficiency for p in result.points[length])
        assert best > 0.9


def test_half_power_point_in_paper_range(result):
    """Paper: 50% efficiency between 100 and 300 cycles/message."""
    for length in result.points:
        grain = result.half_power_grain(length)
        assert 45 <= grain <= 400


def test_longer_messages_need_more_grain(result):
    assert result.half_power_grain(16) > result.half_power_grain(2)
