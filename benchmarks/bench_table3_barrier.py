"""Table 3: barrier synchronization vs machine size."""

import pytest

from repro.bench import table3
from repro.bench.reference import TABLE3_BARRIER_US


@pytest.fixture(scope="module")
def result():
    return table3.run(barriers=6)


def test_table3_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        table3.run, kwargs={"barriers": 4, "max_nodes": 16},
        rounds=1, iterations=1,
    )
    record_table(table3.format_result(outcome))


def test_logarithmic_growth(result):
    """Doubling the machine adds one wave, not double the time."""
    sizes = sorted(result.measured_us)
    for small, large in zip(sizes, sizes[1:]):
        ratio = result.measured_us[large] / result.measured_us[small]
        assert 1.0 < ratio < 1.9


def test_tracks_paper_j_machine_column(result):
    """Within 2x of the published J-Machine numbers at every size."""
    paper = TABLE3_BARRIER_US["J-Machine"]
    for n, measured in result.measured_us.items():
        assert measured / paper[n] < 2.0
        assert measured / paper[n] > 0.5


def test_orders_of_magnitude_vs_contemporaries(result):
    """The paper's claim: 1-2 orders faster than iPSC/860 and Delta."""
    for machine in ("IPSC/860", "Delta"):
        column = TABLE3_BARRIER_US[machine]
        for n, measured in result.measured_us.items():
            published = column.get(n)
            if published:
                assert published / measured > 5
