"""Figure 2: round-trip RPC latency vs distance (cycle-level)."""

import pytest

from repro.bench import fig2
from repro.bench.reference import PAPER_FIG2


@pytest.fixture(scope="module")
def result():
    return fig2.run(iterations=15)


def test_fig2_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(fig2.run, kwargs={"iterations": 10},
                                 rounds=1, iterations=1)
    record_table(fig2.format_result(outcome))
    assert set(outcome.series) == set(fig2.SERIES)


def test_slope_is_two_cycles_per_hop(result):
    for name in fig2.SERIES:
        assert result.slope(name) == pytest.approx(
            PAPER_FIG2["slope_per_hop_round_trip"], abs=0.4)


def test_base_ping_near_43(result):
    assert result.series["Ping"][0] == pytest.approx(
        PAPER_FIG2["ping_base_cycles"], abs=4)


def test_series_ordering_matches_figure(result):
    """At every distance: Ping < R1 Imem <= R1 Emem < R6 Imem < R6 Emem."""
    for hops in result.series["Ping"]:
        ping = result.series["Ping"][hops]
        r1i = result.series["Read 1 (Imem)"][hops]
        r1e = result.series["Read 1 (Emem)"][hops]
        r6i = result.series["Read 6 (Imem)"][hops]
        r6e = result.series["Read 6 (Emem)"][hops]
        assert ping < r1i <= r1e < r6i < r6e
