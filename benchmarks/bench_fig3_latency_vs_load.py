"""Figure 3 (left): one-way latency vs bisection traffic (flit-level)."""

import pytest

from repro.bench import fig3


@pytest.fixture(scope="module")
def result():
    return fig3.run()


def test_fig3_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        fig3.run,
        kwargs={"measure_cycles": 3000, "idles": (0, 200, 1600)},
        rounds=1, iterations=1,
    )
    record_table(fig3.format_latency_table(outcome))


def test_latency_rises_with_load(result):
    """Contention latency appears as offered load grows.

    Long messages drive the network hardest, so their curves must rise
    clearly; short-message curves (whose offered load is limited by the
    45-cycle loop) must at least not *fall* under load.
    """
    for length, series in result.points.items():
        loaded = min(series, key=lambda p: p.idle_cycles)
        light = max(series, key=lambda p: p.idle_cycles)
        if length >= 8:
            assert loaded.one_way_latency_cycles > \
                light.one_way_latency_cycles * 1.05
        else:
            assert loaded.one_way_latency_cycles > \
                light.one_way_latency_cycles - 3


def test_zero_load_latency_ordered_by_length(result):
    lengths = sorted(result.points)
    latencies = [result.zero_load_latency(length) for length in lengths]
    assert latencies == sorted(latencies)


def test_long_messages_drive_more_traffic(result):
    assert result.saturation_traffic(16) > result.saturation_traffic(2)


def test_saturation_below_capacity(result):
    """Wormhole saturates well below the wire peak (paper: ~half)."""
    for length in result.points:
        assert result.saturation_traffic(length) < result.capacity_bits_per_s
