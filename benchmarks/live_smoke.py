"""Live-monitoring smoke: headless watch of one sampled LCS run.

The ``make live-smoke`` entry point (chained into ``make check``).  It
drives the whole live-monitoring surface end to end:

* runs the systolic LCS app with a :class:`LiveSampler` attached
  (cycle-interval policy, so frame times are deterministic) while the
  terminal dashboard renders every frame headlessly (``--plain`` mode,
  output captured);
* asserts the frame stream is monotone — strictly increasing ``seq``
  and ``sim_now``, non-decreasing ``progress`` — and that the final
  forced frame's metrics equal a post-run ``report()`` exactly
  (minus ``live.sample_cost_us``, which by design accrues *after* the
  frame's registry snapshot);
* serves the finished sampler over HTTP and asserts ``/metrics``
  parses as Prometheus text exposition, ``/snapshot.json`` is the last
  frame, and ``/stream`` replays ≥2 SSE frames.

Usage::

    PYTHONPATH=src python benchmarks/live_smoke.py --smoke
"""

from __future__ import annotations

import argparse
import io
import json
import os
import re
import sys
import urllib.request

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

from repro.telemetry.demo import start_demo  # noqa: E402
from repro.telemetry.serve import LiveServer, iter_sse  # noqa: E402
from repro.telemetry.watch import watch_sampler  # noqa: E402

LCS_NODES = 16
LCS_SCALE = 0.1
SAMPLE_EVERY = 20_000

#: Prometheus text exposition 0.0.4: a metric line is
#: ``name{labels} value`` with the label block optional.
_PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+-]+$')


def _check_monotone(frames) -> None:
    assert len(frames) >= 2, (
        f"expected >=2 frames from a sampled LCS run, got {len(frames)}")
    last_progress = -1.0
    for prev, point in zip(frames, frames[1:]):
        assert point.seq == prev.seq + 1, (
            f"frame seq not contiguous: {prev.seq} -> {point.seq}")
        assert point.sim_now > prev.sim_now, (
            f"frame sim_now not increasing: {prev.sim_now} -> "
            f"{point.sim_now}")
    for point in frames:
        progress = point.derived.get("progress")
        if progress is not None:
            assert progress >= last_progress, (
                f"progress went backwards: {last_progress} -> {progress}")
            last_progress = progress


def _check_final_frame(run) -> None:
    final = run.sampler.latest()
    report = run.result.sim.report()
    want = dict(report.metrics)
    got = dict(final.metrics)
    # The mean sample cost is updated after each frame's snapshot (the
    # frame cannot observe its own not-yet-finished cost), so it is the
    # one metric allowed to differ between the last frame and report().
    want.pop("live.sample_cost_us", None)
    got.pop("live.sample_cost_us", None)
    assert got == want, (
        "final frame != report(): "
        + str({k: (got.get(k), want.get(k))
               for k in set(got) | set(want) if got.get(k) != want.get(k)}))


def _check_http(sampler) -> None:
    server = LiveServer(sampler)
    url = server.start_background()
    try:
        body = urllib.request.urlopen(url + "/metrics",
                                      timeout=10).read().decode()
        lines = [line for line in body.splitlines()
                 if line and not line.startswith("#")]
        assert lines, "/metrics served no metric lines"
        for line in lines:
            assert _PROM_LINE.match(line), (
                f"/metrics line is not exposition format: {line!r}")
        snap = json.loads(urllib.request.urlopen(
            url + "/snapshot.json", timeout=10).read())
        assert snap["seq"] == sampler.latest().seq, (
            f"/snapshot.json seq {snap['seq']} != latest frame "
            f"{sampler.latest().seq}")
        streamed = []
        for frame in iter_sse(url + "/stream", timeout=10):
            streamed.append(frame)
            if len(streamed) >= 2:
                break
        assert len(streamed) >= 2, (
            f"/stream replayed {len(streamed)} frames, expected >=2")
        assert streamed[0]["seq"] < streamed[1]["seq"]
    finally:
        server.stop()
    print(f"live-smoke: HTTP OK — {len(lines)} exposition lines, "
          f"snapshot seq {snap['seq']}, {len(streamed)} SSE frames")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true",
                        help="assert the live-monitoring contract "
                             "(make live-smoke); currently the only mode")
    parser.parse_args(argv)

    run = start_demo(workload="lcs", n_nodes=LCS_NODES, scale=LCS_SCALE,
                     every_cycles=SAMPLE_EVERY, every_wall_s=None)
    screen = io.StringIO()
    shown = watch_sampler(run.sampler, done=run.done, plain=True,
                          out=screen)
    run.join(timeout=120)
    assert run.done(), "LCS demo run did not finish"

    frames = list(run.sampler.points)
    _check_monotone(frames)
    _check_final_frame(run)
    rendered = screen.getvalue()
    assert "J-Machine live" in rendered and "utilization" in rendered, (
        "headless watch rendered no dashboard frames")
    print(f"live-smoke: watch OK — {shown} frames rendered headlessly, "
          f"{run.sampler.samples} samples, final t="
          f"{frames[-1].sim_now}, progress "
          f"{frames[-1].derived.get('progress', 0) * 100:.0f}%")
    _check_http(run.sampler)
    print("live-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
