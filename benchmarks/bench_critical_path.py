"""Critical-path analysis of the traced macro benchmarks.

Runs LCS and N-Queens with causal tracing on (``Telemetry(trace=True)``)
at several machine sizes, rebuilds the causal graph from the event
stream, and reports per run:

* the **critical path** — the longest chain of causally-dependent work
  from the first injection to run end, with its cycles attributed to
  compute / dispatch / send / net / sync / xlate;
* the **available parallelism** — total work divided by critical-path
  length, i.e. the speedup ceiling no machine size can beat.

This is the causal explanation of the Figure 5 speedup knees: an
application stops scaling once the node count passes its available
parallelism, because from there the machine is waiting on the critical
path, not on free processors.  Where the ceiling sits depends on the
problem size relative to the machine: the table makes the knee visible
as the point where ``avail.par`` stops tracking ``nodes`` — efficiency
(avail.par / nodes) decays monotonically as chunks shrink and the
serial spine (for LCS, node 0 generating every character message)
takes over.

Usage::

    PYTHONPATH=src python benchmarks/bench_critical_path.py           # table
    PYTHONPATH=src python benchmarks/bench_critical_path.py --smoke   # gate

``--smoke`` is the ``make trace-smoke`` entry point: a tiny traced LCS
run that *asserts* the tracing contract — the reconstructed path is
connected from an injection root to run end, the causal graph is
acyclic, and the per-category attribution sums to the path length and
never exceeds the run's cycle count.  Exit status is non-zero on any
violation.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import lcs, nqueens
from repro.telemetry import CausalGraph, Telemetry
from repro.telemetry.trace import PATH_CATEGORIES

#: (app name, runner) — runner(n_nodes, telemetry) -> AppResult.
APPS = (
    ("lcs", lambda n, t, scale: lcs.run_parallel(
        n, lcs.LcsParams().scaled(scale), telemetry=t)),
    ("nqueens", lambda n, t, scale: nqueens.run_parallel(
        n, nqueens.NQueensParams(n=9), telemetry=t)),
)

NODE_COUNTS = (4, 8, 16)


def trace_app(name: str, runner, n_nodes: int, scale: float):
    """Run one traced app; returns (AppResult, CausalGraph, CriticalPath)."""
    telemetry = Telemetry(trace=True)
    result = runner(n_nodes, telemetry, scale)
    graph = CausalGraph.from_bus(telemetry.events)
    path = graph.critical_path()
    return result, graph, path


def check_contract(result, graph, path) -> None:
    """Assert the tracing invariants the smoke gate holds."""
    problems = graph.validate()
    assert not problems, f"causal graph invalid: {problems}"
    assert path.connected, "critical path has a gap"
    assert path.acyclic, "critical path revisits a span"
    assert path.steps[0].span.parent is None, \
        "critical path does not start at an injection root"
    cats = path.categories()
    total = sum(cats.values())
    assert abs(total - path.length) <= max(1e-6 * path.length, 1e-6), \
        f"category attribution {total} != path length {path.length}"
    assert total <= result.cycles + 1e-6, \
        f"attributed cycles {total} exceed run cycles {result.cycles}"


def sweep(node_counts, scale: float):
    """Trace every app at every size; returns printable result rows."""
    rows = []
    for name, runner in APPS:
        for n_nodes in node_counts:
            result, graph, path = trace_app(name, runner, n_nodes, scale)
            check_contract(result, graph, path)
            cats = path.categories()
            rows.append({
                "app": name,
                "nodes": n_nodes,
                "cycles": result.cycles,
                "spans": graph.n_spans,
                "path": path.length,
                "work": path.total_work,
                "parallelism": path.available_parallelism,
                "cats": cats,
            })
    return rows


def format_rows(rows) -> str:
    out = ["# Critical path and available parallelism (traced runs)", ""]
    header = (f"{'app':<10}{'nodes':>6}{'cycles':>10}{'path':>10}"
              f"{'work':>11}{'avail.par':>10}  top categories")
    out.append(header)
    out.append("-" * len(header))
    for row in rows:
        cats = sorted(row["cats"].items(), key=lambda kv: -kv[1])
        top = "  ".join(f"{k}={v / row['path']:.0%}" for k, v in cats[:3]
                        if v > 0)
        out.append(f"{row['app']:<10}{row['nodes']:>6}{row['cycles']:>10}"
                   f"{round(row['path']):>10}{round(row['work']):>11}"
                   f"{row['parallelism']:>10.2f}  {top}")
    out.append("")
    out.append("The Figure 5 knee for each app sits where the node count "
               "crosses avail.par: past that, the run is bound by the "
               "critical path, not by processor count.")
    return "\n".join(out)


def smoke() -> int:
    """Tiny traced LCS run asserting the tracing contract (CI gate)."""
    result, graph, path = trace_app("lcs", APPS[0][1], 4, scale=0.05)
    check_contract(result, graph, path)
    cats = path.categories()
    assert set(cats) == set(PATH_CATEGORIES)
    print(f"trace-smoke OK: {graph.n_spans} spans, critical path "
          f"{round(path.length)} of {result.cycles} cycles, "
          f"available parallelism {path.available_parallelism:.2f}x")
    return 0


# ------------------------------------------------------------- pytest hooks


def test_trace_smoke_contract():
    """The smoke gate's assertions, runnable under plain pytest."""
    assert smoke() == 0


def test_parallelism_explains_speedup_knee():
    """Both apps hit a real ceiling: efficiency decays with node count."""
    for name, runner in APPS:
        efficiency = []
        for n_nodes in NODE_COUNTS:
            _, _, path = trace_app(name, runner, n_nodes, scale=0.25)
            assert path.available_parallelism < n_nodes + 1e-6
            efficiency.append(path.available_parallelism / n_nodes)
        assert efficiency == sorted(efficiency, reverse=True), \
            f"{name}: efficiency should decay toward the knee: {efficiency}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny asserting run (the make trace-smoke gate)")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="problem-size factor for the full sweep")
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=list(NODE_COUNTS),
                        help="machine sizes to trace")
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    rows = sweep(args.nodes, args.scale)
    print(format_rows(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
