"""Table 5: major components of cost for TSP."""

import pytest

from repro.bench import table5


@pytest.fixture(scope="module")
def result():
    return table5.run(n_nodes=16)


def test_table5_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        table5.run, kwargs={"n_nodes": 8}, rounds=1, iterations=1
    )
    record_table(table5.format_result(outcome))


def test_os_threads_comparable_to_user_threads(result):
    """CST: every call is a message, so OS traffic rivals user traffic."""
    extra = result.result.extra
    assert extra["os_threads"] > 0
    assert extra["os_threads"] / extra["user_threads"] > 0.05


def test_user_instructions_dominate(result):
    extra = result.result.extra
    assert extra["user_instructions"] > extra["os_instructions"]


def test_xlates_enormous_faults_tiny(result):
    """Paper: 5.1e8 xlates, 1.6e4 faults — a miss ratio near 3e-5."""
    extra = result.result.extra
    assert extra["xlates"] > 100 * max(1, extra["xlate_faults"])


def test_user_thread_length_hundreds_of_instructions(result):
    extra = result.result.extra
    mean = extra["user_instructions"] / extra["user_threads"]
    assert 100 < mean < 1200  # paper: 309
