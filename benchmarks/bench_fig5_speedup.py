"""Figure 5: application speedup vs machine size."""

import pytest

from repro.bench import fig5


@pytest.fixture(scope="module")
def result():
    return fig5.run()


def test_fig5_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        fig5.run, kwargs={"max_nodes": 16}, rounds=1, iterations=1
    )
    record_table(fig5.format_result(outcome))


def test_all_apps_speed_up(result):
    """Every application is faster on the largest machine than on one."""
    largest = result.node_counts[-1]
    for app in result.run_cycles:
        sizes = sorted(result.run_cycles[app])
        assert result.speedup(app, sizes[-1]) > result.speedup(app, sizes[0])


def test_tsp_superlinear_on_small_machines(result):
    """Paper: pruning makes small-machine TSP super-linear."""
    speedups = [result.speedup("tsp", n) / n
                for n in (2, 4) if n in result.run_cycles["tsp"]]
    assert max(speedups) > 0.95


def test_lcs_bends_over(result):
    """LCS efficiency decays as chunks shrink (entry/exit overhead)."""
    sizes = sorted(result.run_cycles["lcs"])
    small, large = sizes[1], sizes[-1]
    eff_small = result.speedup("lcs", small) / small
    eff_large = result.speedup("lcs", large) / large
    assert eff_large < eff_small


def test_radix_two_node_speedup_modest(result):
    """Paper: 1.3x from 1 to 2 nodes (remote writes ~3x local)."""
    if 2 in result.run_cycles["radix_sort"]:
        assert 1.0 < result.speedup("radix_sort", 2) < 2.0


def test_nqueens_scales_well(result):
    """N-Queens tracks closer to ideal than LCS at the largest size."""
    sizes = sorted(set(result.run_cycles["nqueens"])
                   & set(result.run_cycles["lcs"]))
    largest = sizes[-1]
    nq = result.speedup("nqueens", largest) / largest
    lcs_eff = result.speedup("lcs", largest) / largest
    assert nq > lcs_eff
