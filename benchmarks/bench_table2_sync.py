"""Table 2: producer-consumer synchronization costs."""

from repro.bench import table2


def test_table2_regenerates(benchmark, record_table):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    record_table(table2.format_result(result))
    assert result.matches_paper()


def test_tags_win_every_event():
    measured = table2.run().measured
    assert measured.tags_success < measured.flag_success
    assert measured.tags_failure < measured.flag_failure
    assert measured.tags_write < measured.flag_write
