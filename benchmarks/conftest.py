"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures, asserts
its headline qualitative claims, and (so results are inspectable after a
run) appends the rendered table to ``benchmarks/results.txt``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")
    yield


@pytest.fixture
def record_table():
    """Append a rendered table to the session's results file."""

    def write(text: str) -> None:
        with RESULTS_PATH.open("a") as handle:
            handle.write(text + "\n\n")

    return write
