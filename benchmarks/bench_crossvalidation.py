"""Cross-validation artifact: the two simulation levels vs each other.

Not a paper table, but the evidence behind DESIGN.md's central
substitution claim: the event-level macro simulator reproduces the
cycle-accurate machine's behaviour.  LCS runs at both levels at a size
small enough for cycle simulation.
"""

import pytest

from repro.apps.lcs import LcsParams, run_parallel as run_macro
from repro.apps.lcs_cycle import run_cycle_lcs
from repro.bench.harness import format_table

PARAMS = LcsParams(a_len=32, b_len=64)


@pytest.fixture(scope="module")
def results():
    cycle = run_cycle_lcs(4, PARAMS)
    macro = run_macro(4, PARAMS)
    return cycle, macro


def test_crossvalidation_regenerates(benchmark, record_table):
    def measure():
        return run_cycle_lcs(4, PARAMS), run_macro(4, PARAMS)

    cycle, macro = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["quantity", "cycle level", "macro level"],
        [
            ["LCS length", cycle.lcs_length, macro.output],
            ["run time (cycles)", cycle.cycles, macro.cycles],
            ["instructions", cycle.instructions,
             macro.total_instructions()],
            ["threads", cycle.threads, macro.total_threads()],
        ],
        title="Cross-validation: LCS in MDP assembly vs macro handlers "
              "(32x64, 4 nodes)",
    )
    record_table(table)


def test_same_answer(results):
    cycle, macro = results
    assert cycle.lcs_length == macro.output


def test_instruction_counts_within_15_percent(results):
    cycle, macro = results
    assert macro.total_instructions() == pytest.approx(
        cycle.instructions, rel=0.15)


def test_run_times_within_50_percent(results):
    cycle, macro = results
    assert macro.cycles == pytest.approx(cycle.cycles, rel=0.5)
