"""Grain-size crossover: fine-grained messaging vs block transfers."""

import pytest

from repro.bench import crossover


@pytest.fixture(scope="module")
def result():
    return crossover.run()


def test_crossover_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        crossover.run, kwargs={"n_nodes": 8, "n_keys": 2048},
        rounds=1, iterations=1,
    )
    record_table(crossover.format_result(outcome))


def test_fine_grain_affordable_on_jmachine(result):
    """With MDP overheads, message-per-key costs at most ~30% extra."""
    assert result.penalty("J-Machine (4+4)") < 1.35


def test_fine_grain_prohibitive_at_vendor_overheads(result):
    """With vendor-library overheads it is several times slower."""
    assert result.penalty("vendor class (~2900)") > 3.0


def test_penalty_monotone_in_overhead(result):
    """Each step up in per-message cost widens the gap."""
    penalties = [result.penalty(label)
                 for label, _, _ in crossover.OVERHEAD_SWEEP]
    for earlier, later in zip(penalties, penalties[1:]):
        assert later > earlier * 0.98  # tolerate tiny noise
