"""The telemetry-overhead gate (``make telemetry-gate``).

Reads the pytest-benchmark JSON written by ``make perfsmoke`` and
compares the loaded-fabric benchmark with metrics-only telemetry
attached against the uninstrumented run.  Registered metrics are pull
sources — closures sampled only at snapshot time — so attaching a
disabled-events :class:`~repro.telemetry.Telemetry` must be free.  The
gate fails the build if the measured overhead exceeds 3%.

Usage::

    python benchmarks/check_telemetry_overhead.py BENCH_simspeed.json
"""

import json
import sys

BASELINE = "test_loaded_fabric_throughput"
INSTRUMENTED = "test_loaded_fabric_metrics_only"
LIMIT = 0.03


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_simspeed.json"
    with open(path) as handle:
        data = json.load(handle)
    times = {}
    paired = None
    for bench in data["benchmarks"]:
        if bench["name"] in (BASELINE, INSTRUMENTED):
            # min is the standard noise-resistant statistic: every other
            # sample includes scheduling jitter on top of the true cost.
            times[bench["name"]] = bench["stats"]["min"]
        if bench["name"] == INSTRUMENTED:
            extra = bench.get("extra_info") or {}
            if "paired_off_min" in extra and "paired_on_min" in extra:
                paired = (extra["paired_off_min"], extra["paired_on_min"])
    missing = {BASELINE, INSTRUMENTED} - set(times)
    if missing:
        print(f"telemetry gate: {path} lacks {sorted(missing)}; "
              f"run 'make perfsmoke' first")
        return 2
    if paired is not None:
        # The instrumented test measures the pair interleaved, immune
        # to host drift between the two benchmark entries (which run
        # ~10 s apart); prefer that when present.
        off, on = paired
        kind = "paired"
    else:
        off, on = times[BASELINE], times[INSTRUMENTED]
        kind = "cross-entry"
    overhead = on / off - 1.0
    print(f"telemetry gate: off={off:.4f}s "
          f"metrics-only={on:.4f}s "
          f"overhead={overhead:+.1%} (limit {LIMIT:.0%}, {kind})")
    if overhead > LIMIT:
        print("telemetry gate: FAIL — disabled telemetry is not free")
        return 1
    print("telemetry gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
