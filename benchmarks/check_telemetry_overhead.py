"""The telemetry-overhead gate (``make telemetry-gate``).

Reads the pytest-benchmark JSON written by ``make perfsmoke`` and
compares the loaded-fabric benchmark with metrics-only telemetry
attached against the uninstrumented run.  Registered metrics are pull
sources — closures sampled only at snapshot time — so attaching a
disabled-events :class:`~repro.telemetry.Telemetry` must be free.  The
gate fails the build if the measured overhead exceeds 3%.

Usage::

    python benchmarks/check_telemetry_overhead.py BENCH_simspeed.json
"""

import json
import sys

BASELINE = "test_loaded_fabric_throughput"
INSTRUMENTED = "test_loaded_fabric_metrics_only"
SAMPLED = "test_loaded_fabric_sampler"
PROBE = "test_loaded_fabric_probe"

try:
    # The thresholds are shared with the trajectory CLI
    # (``python -m repro.bench trajectory``); repro.bench.trajectory is
    # their single source of truth.
    from repro.bench.trajectory import CONTRACT, NOISE_ALLOWANCE
except ImportError:  # PYTHONPATH without src: keep the gate standalone
    #: The contract: metrics-only telemetry stays within 3% of off.
    CONTRACT = 0.03
    #: Measurement-noise allowance.  On the shared single-core CI host
    #: the paired estimator's run-to-run spread has tails of +/-3-6% on
    #: *identical* code (steal-time windows lasting longer than the
    #: whole measurement), so a bare 3% limit flakes.  A real
    #: regression — any hook added to the per-cycle or per-message hot
    #: path — measures well above the combined limit.
    NOISE_ALLOWANCE = 0.05
LIMIT = CONTRACT + NOISE_ALLOWANCE


def _check_variant(times, paired, name, label):
    """Judge one instrumented variant against the baseline; 0/1."""
    if paired is not None:
        # The variant's test also measures the pair interleaved —
        # off/on back to back, order alternating, ratio of per-variant
        # minima — which is immune to the host drift between the two
        # benchmark entries (they run ~10 s apart).  Prefer it.
        overhead = paired
        kind = "paired"
    else:
        overhead = times[name] / times[BASELINE] - 1.0
        kind = "cross-entry"
    print(f"telemetry gate: off={times[BASELINE]:.4f}s "
          f"{label}={times[name]:.4f}s "
          f"overhead={overhead:+.1%} (contract {CONTRACT:.0%} + noise "
          f"allowance {NOISE_ALLOWANCE:.0%}, {kind})")
    if overhead > LIMIT:
        print(f"telemetry gate: FAIL — {label} is not free")
        return 1
    return 0


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_simspeed.json"
    with open(path) as handle:
        data = json.load(handle)
    times = {}
    paired = {}
    for bench in data["benchmarks"]:
        if bench["name"] in (BASELINE, INSTRUMENTED, SAMPLED, PROBE):
            # min is the standard noise-resistant statistic: every other
            # sample includes scheduling jitter on top of the true cost.
            times[bench["name"]] = bench["stats"]["min"]
            extra = bench.get("extra_info") or {}
            if "paired_overhead" in extra:
                paired[bench["name"]] = extra["paired_overhead"]
    missing = {BASELINE, INSTRUMENTED} - set(times)
    if missing:
        print(f"telemetry gate: {path} lacks {sorted(missing)}; "
              f"run 'make perfsmoke' first")
        return 2
    status = _check_variant(times, paired.get(INSTRUMENTED),
                            INSTRUMENTED, "metrics-only")
    if SAMPLED in times:
        # The sampler-attached variant (live monitoring) is held to the
        # same contract; absent in pre-sampler artifacts, so optional.
        status |= _check_variant(times, paired.get(SAMPLED),
                                 SAMPLED, "sampler-attached")
    if PROBE in times:
        # The fabric-observatory variant (per-link counters attached);
        # absent in pre-observatory artifacts, so optional.
        status |= _check_variant(times, paired.get(PROBE),
                                 PROBE, "fabric-probe")
    if status:
        return 1
    print("telemetry gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
