"""Host-performance benchmarks of the simulators themselves.

Not a paper artifact: these measure how fast *this library* simulates,
so regressions in simulator throughput (simulated instructions or events
per host second) are caught like any other regression.
"""

import pytest

from repro.asm.assembler import assemble
from repro.core.processor import Mdp
from repro.jsim.sim import MacroSimulator
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine

LOOP = """
start:
    MOVE #1000, R1
loop:
    ADD R0, R1, R0
    SUB R1, #1, R1
    BT R1, loop
    HALT
"""


def run_cycle_loop():
    proc = Mdp(node_id=0)
    program = assemble(LOOP)
    program.load(proc)
    proc.set_background(program.entry("start"))
    now = 0
    while not proc.halted:
        now = proc.tick(now)
    return proc.counters.instructions


def run_macro_relay():
    sim = MacroSimulator(16)

    def relay(ctx, remaining):
        ctx.charge(instructions=10)
        if remaining:
            ctx.send((ctx.node_id + 1) % 16, "relay", remaining - 1)

    sim.register("relay", relay)
    sim.inject(0, "relay", 2000)
    sim.run()
    return sim.messages_sent


def run_machine_ping():
    from repro.runtime.rpc import run_ping
    machine = JMachine(MachineConfig(dims=(4, 4, 4)))
    return run_ping(machine, 0, 63, iterations=25).iterations


def test_cycle_simulator_throughput(benchmark):
    instructions = benchmark(run_cycle_loop)
    assert instructions == 3002


def test_macro_simulator_throughput(benchmark):
    messages = benchmark(run_macro_relay)
    assert messages == 2001


def test_whole_machine_throughput(benchmark):
    iterations = benchmark.pedantic(run_machine_ping, rounds=3, iterations=1)
    assert iterations == 25
