"""Host-performance benchmarks of the simulators themselves.

Not a paper artifact: these measure how fast *this library* simulates,
so regressions in simulator throughput (simulated instructions or events
per host second) are caught like any other regression.

Run via ``make perfsmoke``, which writes ``BENCH_simspeed.json``; compare
against the committed baseline to spot throughput regressions (see
docs/PERFORMANCE.md).  The ``slow_reference`` variants pin the cycle
level to the single-step interpreter so the fast-path speedup itself is
visible in the report.
"""

import pytest

from repro.asm.assembler import assemble
from repro.core.processor import Mdp
from repro.jsim.sim import MacroSimulator
from repro.machine.config import MachineConfig
from repro.machine.jmachine import JMachine

LOOP = """
start:
    MOVE #1000, R1
loop:
    ADD R0, R1, R0
    SUB R1, #1, R1
    BT R1, loop
    HALT
"""

# A 16-node token ring exercised at the cycle level: each node decrements
# a hop counter held in its data segment, forwards the token to its
# +1 neighbour, and suspends.  Eight tokens circulate concurrently so the
# fabric stays loaded (send buffers, worm routing, delivery staging all
# on the hot path).
RING_NODES = 16
RING_HOPS = 300
RING_TOKENS = 8

RING = f"""
relay:
    MOVE  [A3+1], R1
    BF    R1, done
    SUB   R1, #1, R1
    MOVEID R2
    ADD   R2, #1, R2
    MOD   R2, #{RING_NODES}, R2
    SEND  R2
    SEND2E #IP:relay, R1
done:
    SUSPEND
"""


def run_cycle_loop(fast_path=True):
    proc = Mdp(node_id=0, fast_path=fast_path)
    program = assemble(LOOP)
    program.load(proc)
    proc.set_background(program.entry("start"))
    now = 0
    while not proc.halted:
        now = proc.tick(now)
    return proc.counters.instructions


def run_loaded_fabric(fast_path=True, telemetry=False, hops=RING_HOPS,
                      sampler=False, probe=False):
    from repro.core.word import Word

    rig = None
    if telemetry:
        from repro.telemetry import Telemetry

        rig = Telemetry(events=False)  # the metrics-only production mode
    machine = JMachine(MachineConfig(dims=(4, 4, 1), fast_path=fast_path,
                                     fabric_probe=probe),
                       telemetry=rig)
    if sampler:
        from repro.telemetry.live import LiveSampler, SamplePolicy

        # ~10 frames over the full ring (~20k cycles/frame): live
        # monitoring at a dashboard-like cadence, not a stress test.
        LiveSampler(SamplePolicy(every_cycles=20_000)).attach(machine)
    program = assemble(RING)
    machine.load(program)
    entry = program.entry("relay")
    for token in range(RING_TOKENS):
        machine.inject(token % RING_NODES, entry,
                       [Word.from_int(hops)])
    machine.run_until_quiescent(max_cycles=10_000_000)
    return machine.total_instructions()


def run_macro_relay():
    sim = MacroSimulator(16)

    def relay(ctx, remaining):
        ctx.charge(instructions=10)
        if remaining:
            ctx.send((ctx.node_id + 1) % 16, "relay", remaining - 1)

    sim.register("relay", relay)
    sim.inject(0, "relay", 2000)
    sim.run()
    return sim.messages_sent


def run_macro_radix():
    from repro.apps.radix_sort import RadixParams, run_parallel

    params = RadixParams(n_keys=4096, key_bits=16, digit_bits=4, seed=11)
    result = run_parallel(n_nodes=64, params=params)
    return result.n_nodes


def run_machine_ping():
    from repro.runtime.rpc import run_ping
    machine = JMachine(MachineConfig(dims=(4, 4, 4)))
    return run_ping(machine, 0, 63, iterations=25).iterations


def test_cycle_simulator_throughput(benchmark):
    instructions = benchmark(run_cycle_loop)
    assert instructions == 3002


def test_cycle_simulator_slow_reference(benchmark):
    instructions = benchmark(run_cycle_loop, fast_path=False)
    assert instructions == 3002


def _gc_settle():
    # The fabric pair feeds a ±3% overhead gate; collect before each
    # round so a GC threshold crossed mid-measurement doesn't land its
    # pause in one variant and not the other.
    import gc

    gc.collect()


def test_loaded_fabric_throughput(benchmark):
    instructions = benchmark.pedantic(run_loaded_fabric, rounds=3,
                                      iterations=1, setup=_gc_settle)
    assert instructions == RING_TOKENS * (RING_HOPS * 9 + 3)


def test_loaded_fabric_metrics_only(benchmark):
    """The instrumented-vs-off pair for the telemetry-overhead gate.

    Metrics registration is pull-based (sampled only at snapshot), so
    this must track ``test_loaded_fabric_throughput`` to within 3% —
    ``make telemetry-gate`` checks, and fails the build otherwise.

    Comparing this entry's timing against the other test's is too noisy
    for a 3% limit on a shared host (the two run ~10 s apart; host
    drift between them has measured up to ±10% on the CI container), so
    this test *also* measures the pair interleaved — off/on back to
    back, so drift hits both variants equally — and stores the paired
    minima in ``extra_info``, which ``check_telemetry_overhead.py``
    prefers over the cross-entry comparison.
    """
    import gc
    import time

    instructions = benchmark.pedantic(run_loaded_fabric, rounds=3,
                                      iterations=1, setup=_gc_settle,
                                      kwargs={"telemetry": True})
    assert instructions == RING_TOKENS * (RING_HOPS * 9 + 3)

    def timed(**kwargs):
        gc.collect()
        start = time.perf_counter()
        run_loaded_fabric(hops=100, **kwargs)
        return time.perf_counter() - start

    # A shorter ring (~40 ms) lets many pairs fit: with the host's
    # occasional ~10 ms steal spikes, the minimum over 15 pairs of each
    # variant is very likely a spike-free run, and the two minima come
    # from the same interleaved window so drift cannot separate them.
    off, on = [], []
    for rep in range(15):
        # Alternate which variant goes first so a systematic
        # second-position effect (warmer caches, grown heap) cancels
        # across pairs instead of biasing one variant.
        if rep % 2:
            on.append(timed(telemetry=True))
            off.append(timed())
        else:
            off.append(timed())
            on.append(timed(telemetry=True))
    benchmark.extra_info["paired_overhead"] = min(on) / min(off) - 1.0


def test_loaded_fabric_sampler(benchmark):
    """The sampler-attached variant of the overhead pair.

    A live sampler polls ``due()`` at the loop top (one integer compare)
    and takes a registry snapshot only when a frame is due, so a sampled
    run must hold the same 3%+noise contract as metrics-only telemetry.
    Measured paired-interleaved for the same drift-immunity reasons as
    ``test_loaded_fabric_metrics_only``; ``check_telemetry_overhead.py``
    reads the ``paired_overhead`` stored here.
    """
    import gc
    import time

    instructions = benchmark.pedantic(
        run_loaded_fabric, rounds=3, iterations=1, setup=_gc_settle,
        kwargs={"telemetry": True, "sampler": True})
    assert instructions == RING_TOKENS * (RING_HOPS * 9 + 3)

    def timed(**kwargs):
        gc.collect()
        start = time.perf_counter()
        run_loaded_fabric(hops=100, **kwargs)
        return time.perf_counter() - start

    off, on = [], []
    for rep in range(15):
        if rep % 2:
            on.append(timed(telemetry=True, sampler=True))
            off.append(timed())
        else:
            off.append(timed())
            on.append(timed(telemetry=True, sampler=True))
    benchmark.extra_info["paired_overhead"] = min(on) / min(off) - 1.0


def test_loaded_fabric_probe(benchmark):
    """The fabric-observatory variant of the overhead pair.

    A probed fabric counts per-link phits at message completion and
    blocked-at-head cycles at head acquisition — per-message-rate sites,
    not per-cycle ones — so it must hold the same 3%+noise contract as
    the other telemetry variants.  Measured paired-interleaved; the
    overhead gate reads the ``paired_overhead`` stored here.
    """
    import gc
    import time

    instructions = benchmark.pedantic(
        run_loaded_fabric, rounds=3, iterations=1, setup=_gc_settle,
        kwargs={"telemetry": True, "probe": True})
    assert instructions == RING_TOKENS * (RING_HOPS * 9 + 3)

    def timed(**kwargs):
        gc.collect()
        start = time.perf_counter()
        run_loaded_fabric(hops=100, **kwargs)
        return time.perf_counter() - start

    off, on = [], []
    for rep in range(15):
        if rep % 2:
            on.append(timed(telemetry=True, probe=True))
            off.append(timed())
        else:
            off.append(timed())
            on.append(timed(telemetry=True, probe=True))
    benchmark.extra_info["paired_overhead"] = min(on) / min(off) - 1.0


def test_macro_simulator_throughput(benchmark):
    messages = benchmark(run_macro_relay)
    assert messages == 2001


def test_macro_radix_throughput(benchmark):
    nodes = benchmark.pedantic(run_macro_radix, rounds=3, iterations=1)
    assert nodes == 64


def test_whole_machine_throughput(benchmark):
    iterations = benchmark.pedantic(run_machine_ping, rounds=3, iterations=1)
    assert iterations == 25


# A 64-node compute grid run serially and under the sharded parallel
# backend (repro.parallel).  The pair makes the backend's cost visible
# in the perf trajectory: speedup = grid_serial / grid_4shards.  On a
# single-core host the parallel entry *should* read slower — see
# docs/PERFORMANCE.md, "Parallel backend" — so the trajectory records
# coordination overhead there and real speedup on multi-core hosts.
GRID_NODES = 64
GRID_ITERS = 200


def run_parallel_grid(shards=0):
    import bench_parallel_speedup as bps

    machine, program, base = bps.build_machine(GRID_NODES, GRID_ITERS,
                                               shards)
    for i in range(GRID_NODES):
        machine.inject(i, program.entry("work"), source=i)
    machine.run(max_cycles=10_000_000)
    assert machine._parallel_skip_reason is None
    done = sum(machine.node(i).proc.memory.peek(base + 2).value
               for i in range(GRID_NODES))
    return done


def test_parallel_grid_serial(benchmark):
    done = benchmark.pedantic(run_parallel_grid, rounds=3, iterations=1)
    assert done == GRID_NODES


def test_parallel_grid_4shards(benchmark):
    done = benchmark.pedantic(run_parallel_grid, rounds=3, iterations=1,
                              kwargs={"shards": 4})
    assert done == GRID_NODES
