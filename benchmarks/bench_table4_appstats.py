"""Table 4: application statistics for a 64-node machine."""

import os

import pytest

from repro.bench import table4
from repro.bench.harness import is_paper_scale
from repro.bench.reference import PAPER_TABLE4


@pytest.fixture(scope="module")
def result():
    return table4.run(n_nodes=64)


def test_table4_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(
        table4.run, kwargs={"n_nodes": 16}, rounds=1, iterations=1
    )
    record_table(table4.format_result(outcome))


def test_message_lengths_match_paper(result):
    lcs = result.results["lcs"].handler_stats["NxtChar"]
    assert lcs.mean_message_words == 3
    nq = result.results["nqueens"].handler_stats["NQueens"]
    assert nq.mean_message_words == 8
    writes = result.results["radix_sort"].handler_stats["WriteData"]
    assert writes.mean_message_words == 3


def test_write_threads_are_four_instructions(result):
    writes = result.results["radix_sort"].handler_stats["WriteData"]
    assert writes.instructions_per_thread == pytest.approx(4, abs=0.2)


def test_paper_scale_thread_counts(result):
    """At paper problem sizes the absolute Table 4 counts reproduce."""
    if not is_paper_scale():
        pytest.skip("set JM_SCALE=paper for absolute-count checks")
    lcs = result.results["lcs"].handler_stats["NxtChar"]
    assert lcs.invocations == 262_144
    assert lcs.instructions_per_thread == pytest.approx(232, rel=0.05)
    nq = result.results["nqueens"].handler_stats["NQueens"]
    assert nq.invocations == pytest.approx(1030, rel=0.05)
    writes = result.results["radix_sort"].handler_stats["WriteData"]
    assert writes.invocations == pytest.approx(452_000, rel=0.01)


def test_runtimes_in_paper_band(result):
    """Run times land within 2x of Table 4 (exact at paper scale)."""
    if not is_paper_scale():
        pytest.skip("set JM_SCALE=paper for run-time checks")
    for app, expected in (("lcs", 153), ("nqueens", 775), ("radix_sort", 63)):
        measured = result.results[app].milliseconds
        assert 0.5 < measured / expected < 2.0, app
