"""Checkpoint/restore smoke: kill a run mid-flight, resume, same digest.

The ``make snapshot-smoke`` entry point (chained into ``make check``).
For both simulation levels it

* runs a scenario in a subprocess with a checkpoint policy whose first
  save *kills the process* (``os._exit``) — a real crash, not a polite
  return: nothing after the save survives;
* resumes from the orphaned checkpoint file in a second fresh process;
* asserts the resumed run's sha256 telemetry event-stream digest equals
  an uninterrupted run's (the determinism contract of docs/SNAPSHOT.md).

Scenarios: the systolic LCS app on 16 macro nodes, and the RPC ping on
a 16-node cycle-level machine.

It also measures checkpoint save/restore latency and payload size, and
appends them to the committed trajectory artifact
``BENCH_snapshot.json`` (one entry per run, oldest first) via
``append_trajectory.merge``.

Usage::

    PYTHONPATH=src python benchmarks/snapshot_smoke.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, SRC)

from repro.chaos.harness import event_fingerprint  # noqa: E402
from repro.snapshot import CheckpointPolicy  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402

#: The "crash" exit status the kill-phase subprocess must die with.
KILLED = 7

LCS_NODES = 16
PING_NODES = 16
PING_ITERATIONS = 50


class _KillAfterFirstSave(CheckpointPolicy):
    """A checkpoint policy that crashes the process after its first
    save, recording the save's wall-clock cost in a side file first."""

    def __init__(self, path: str, every: int, side_path: str) -> None:
        super().__init__(path, every=every)
        self.side_path = side_path

    def save(self, target, run_limit=None, at=None):
        t0 = time.perf_counter()
        path = super().save(target, run_limit=run_limit, at=at)
        save_s = time.perf_counter() - t0
        with open(self.side_path, "w", encoding="utf-8") as handle:
            json.dump({"save_s": save_s, "path": path,
                       "bytes": os.path.getsize(path)}, handle)
        os._exit(KILLED)


# ------------------------------------------------------------- scenarios


def _run_macro(checkpoint=None, restore_from=None):
    """Returns (final cycle, digest, restore seconds or None)."""
    from repro.apps.lcs import run_parallel
    from repro.jsim.sim import MacroSimulator

    telemetry = Telemetry()
    timing = {}
    if restore_from is not None:
        # The restore happens inside run_parallel (macro snapshots load
        # *into* the prepared app); time just that step.
        original = MacroSimulator.restore_state

        def timed(self, path):
            t0 = time.perf_counter()
            out = original(self, path)
            timing["restore_s"] = time.perf_counter() - t0
            return out

        MacroSimulator.restore_state = timed
    try:
        result = run_parallel(LCS_NODES, telemetry=telemetry,
                              checkpoint=checkpoint,
                              restore_from=restore_from)
    finally:
        if restore_from is not None:
            MacroSimulator.restore_state = original
    return (result.cycles, event_fingerprint(telemetry.events),
            timing.get("restore_s"))


def _run_cycle(checkpoint=None, restore_from=None):
    """Returns (final cycle, digest, restore seconds or None)."""
    from repro.machine.jmachine import JMachine
    from repro.runtime.rpc import run_ping

    restore_s = None
    if restore_from is not None:
        t0 = time.perf_counter()
        machine = JMachine.restore(restore_from)
        restore_s = time.perf_counter() - t0
        machine.run_until_quiescent()
    else:
        machine = JMachine.build(PING_NODES, telemetry=Telemetry())
        machine.checkpoint = checkpoint
        run_ping(machine, 0, PING_NODES - 1, iterations=PING_ITERATIONS,
                 stop="quiescent")
    return (machine.now, event_fingerprint(machine.telemetry.events),
            restore_s)


_SCENARIOS = {
    # kind -> (runner, checkpoint interval in simulated cycles)
    "macro": (_run_macro, 2_000_000),
    "cycle": (_run_cycle, 1_000),
}


def _phase_kill(kind: str, ckpt: str, side: str) -> int:
    runner, every = _SCENARIOS[kind]
    runner(checkpoint=_KillAfterFirstSave(ckpt, every, side))
    print(f"{kind}: ran to completion without saving", file=sys.stderr)
    return 1  # the save should have killed us


def _phase_resume(kind: str, ckpt: str) -> int:
    runner, _ = _SCENARIOS[kind]
    final, digest, restore_s = runner(restore_from=ckpt)
    print(json.dumps({"final": final, "digest": digest,
                      "restore_s": restore_s}))
    return 0


# ----------------------------------------------------------- orchestration


def _child(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.abspath(__file__)] + args,
        capture_output=True, text=True, env=env)


def _smoke_kind(kind: str, workdir: str) -> dict:
    runner, _ = _SCENARIOS[kind]
    ckpt = os.path.join(workdir, f"{kind}.ckpt")
    side = os.path.join(workdir, f"{kind}_save.json")

    final, want, _ = runner()  # uninterrupted reference, in-process

    killed = _child(["--phase", "kill", "--kind", kind,
                     "--ckpt", ckpt, "--side", side])
    assert killed.returncode == KILLED, (
        f"{kind}: kill phase exited {killed.returncode}, expected {KILLED}"
        f"\n{killed.stderr}")
    assert os.path.exists(ckpt), f"{kind}: no checkpoint file written"
    with open(side, "r", encoding="utf-8") as handle:
        save_info = json.load(handle)

    resumed = _child(["--phase", "resume", "--kind", kind, "--ckpt", ckpt])
    assert resumed.returncode == 0, (
        f"{kind}: resume phase failed\n{resumed.stderr}")
    out = json.loads(resumed.stdout)
    assert out["digest"] == want, (
        f"{kind}: resumed digest {out['digest'][:16]} != "
        f"uninterrupted {want[:16]} — resume is not bit-identical")
    assert out["final"] == final, (
        f"{kind}: resumed final cycle {out['final']} != {final}")
    print(f"snapshot-smoke: {kind} OK — killed at first save, resumed to "
          f"t={final}, digest {want[:12]} (save {save_info['save_s']:.3f}s, "
          f"restore {out['restore_s']:.3f}s, "
          f"{save_info['bytes'] / 1e6:.1f} MB)")
    return {"save_s": save_info["save_s"], "restore_s": out["restore_s"],
            "bytes": save_info["bytes"]}


def _commit_info() -> dict:
    def git(*args):
        try:
            return subprocess.run(["git"] + list(args), capture_output=True,
                                  text=True, cwd=os.path.dirname(SRC)
                                  ).stdout.strip()
        except OSError:
            return ""

    return {"id": git("rev-parse", "HEAD") or None,
            "dirty": bool(git("status", "--porcelain"))}


def _record(results: dict) -> None:
    root = os.path.dirname(SRC)
    run_path = os.path.join(root, "BENCH_snapshot_run.json")
    dest_path = os.path.join(root, "BENCH_snapshot.json")
    payload = {
        "datetime": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit_info": _commit_info(),
        "snapshot": results,
    }
    with open(run_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=4)
        handle.write("\n")
    sys.path.insert(0, os.path.join(root, "benchmarks"))
    from append_trajectory import merge

    # Smoke runs happen on PR branches; a dirty tree is expected and the
    # entry is flagged rather than refused.
    merge(run_path, dest_path, allow_dirty=True)
    os.remove(run_path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true",
                        help="assert the kill/resume contract (make "
                             "snapshot-smoke); currently the only mode")
    parser.add_argument("--phase", choices=("kill", "resume"),
                        help="internal: subprocess role")
    parser.add_argument("--kind", choices=tuple(_SCENARIOS))
    parser.add_argument("--ckpt")
    parser.add_argument("--side")
    args = parser.parse_args(argv)

    if args.phase == "kill":
        return _phase_kill(args.kind, args.ckpt, args.side)
    if args.phase == "resume":
        return _phase_resume(args.kind, args.ckpt)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="snapshot-smoke-") as workdir:
        results = {kind: _smoke_kind(kind, workdir) for kind in _SCENARIOS}
    _record(results)
    print("snapshot-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
