"""Table 1: one-way message overhead vs contemporary machines."""

import pytest

from repro.bench import table1


@pytest.fixture(scope="module")
def result():
    return table1.run()


def test_table1_regenerates(benchmark, record_table):
    outcome = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    record_table(table1.format_result(outcome))


def test_alpha_close_to_paper(result):
    """Paper: 11 cycles/message."""
    assert result.measured.cycles_per_msg == pytest.approx(11, abs=3)


def test_beta_matches_paper(result):
    """Paper: 0.5 cycles/byte."""
    assert result.measured.cycles_per_byte == pytest.approx(0.5, abs=0.1)


def test_orders_of_magnitude_vs_vendor_libraries(result):
    """The headline claim: 1-2 orders of magnitude less overhead."""
    measured = result.measured.cycles_per_msg
    for row in result.rows:
        if "Vendor" in row.machine:
            assert row.cycles_per_msg / measured > 100
    active_cm5 = next(r for r in result.rows if r.machine == "CM-5 (Active)")
    assert active_cm5.cycles_per_msg / measured > 8
