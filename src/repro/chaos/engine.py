"""The fault injector: deterministic chaos threaded through both levels.

A :class:`ChaosEngine` is built from a :class:`~repro.chaos.plan.FaultPlan`
and attached to a simulator:

* ``engine.attach_machine(machine)`` arms the cycle level — link outages
  and flit drop/corruption in the fabric, node stalls and fail-stop
  kills in the machine's scheduler, queue-space pressure and AMT
  poisoning on a cycle schedule;
* ``engine.attach_macro(sim)`` arms the macro level — per-message drop
  and delay in :meth:`MacroSimulator.post`.

Design rules:

* **Deterministic.**  Every random decision comes from a named stream of
  the plan's seed (:meth:`FaultPlan.rng`); the simulators are themselves
  deterministic, so the same (plan, workload) pair reproduces the same
  faults, the same recovery, and the same telemetry event stream.
* **Zero-cost when absent.**  Simulators hold ``chaos = None`` and every
  injection site is behind an ``is None`` guard; with no engine attached
  the instruction streams are bit-identical to a build without this
  module (enforced in tests/test_fastpath_equivalence.py).
* **Observable.**  Every injected fault increments a ``chaos.*`` counter,
  lands in the engine's own bounded :attr:`log`, and — when telemetry is
  wired — emits a ``chaos`` event that renders on the Perfetto timeline
  alongside the traffic it perturbed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .plan import FaultPlan, FaultSpec

__all__ = ["ChaosEngine"]

#: Verdicts returned by :meth:`ChaosEngine.fabric_verdict`.
OK, DROP, CORRUPT = 0, 1, 2

#: Engine counter names (fixed so the ``chaos`` metrics source has a
#: stable schema even before any fault fires).
COUNTER_NAMES = (
    "drops", "corruptions", "delays", "link_blocks", "stalls", "kills",
    "blackholes", "queue_pressure", "poisoned_entries", "checksum_rejects",
    "retries", "give_ups",
)


class ChaosEngine:
    """Injects a :class:`FaultPlan` into a machine or macro simulator."""

    def __init__(self, plan: FaultPlan, log_limit: int = 100_000) -> None:
        self.plan = plan
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        #: Bounded structured log of every injected fault, for replay
        #: diffing: (cycle, kind, node, detail) tuples in injection order.
        self.log: List[Tuple[int, str, int, Any]] = []
        self._log_limit = log_limit
        self._events = None  # telemetry EventBus, when bound

        # Rate-driven specs, split by level.
        self._fabric_rate_specs: List[FaultSpec] = plan.by_kind(
            "drop", "corrupt")
        self._macro_rate_specs: List[FaultSpec] = plan.by_kind(
            "drop", "delay")
        self._fabric_rng = plan.rng("fabric")
        self._macro_rng = plan.rng("macro")
        self._schedule_rng = plan.rng("schedule")

        # Scheduled windows, indexed per node for O(1)-ish lookup.
        self._link_windows: Dict[int, List[Tuple[int, Optional[int]]]] = {}
        for spec in plan.by_kind("link"):
            self._link_windows.setdefault(spec.node, []).append(
                (spec.start, spec.stop))
        self._stall_windows: Dict[int, List[Tuple[int, int]]] = {}
        for spec in plan.by_kind("stall"):
            self._stall_windows.setdefault(spec.node, []).append(
                (spec.start, spec.start + spec.duration))
        self._kill_at: Dict[int, int] = {}
        for spec in plan.by_kind("kill"):
            prev = self._kill_at.get(spec.node)
            if prev is None or spec.start < prev:
                self._kill_at[spec.node] = spec.start
        #: One-shot / windowed machine actions, drained by machine_tick:
        #: (cycle, fn) sorted ascending.
        self._machine_schedule: List[Tuple[int, Any]] = []
        self._schedule_pos = 0
        self._stall_recorded: set = set()
        self._kill_recorded: set = set()

    # ------------------------------------------------------------ observation

    @property
    def inert(self) -> bool:
        """True when the plan can never inject anything (no specs).

        The run loop treats an inert engine exactly like no engine:
        chaos hooks gate fast-path run-ahead and quiet-window batching,
        both of which reorder same-cycle event emissions, and the
        determinism contract says an attached-but-empty plan must not
        perturb the event stream.
        """
        return not self.plan.specs

    @property
    def faults_injected(self) -> int:
        """Total faults of all kinds injected so far."""
        log_kinds = ("drops", "corruptions", "delays", "stalls", "kills",
                     "queue_pressure", "poisoned_entries")
        return sum(self.counters[name] for name in log_kinds)

    def record(self, kind: str, now: int, node: int, counter: str,
               amount: int = 1, **detail: Any) -> None:
        """Count one injected fault and log/emit it."""
        self.counters[counter] += amount
        if len(self.log) < self._log_limit:
            self.log.append((int(now), kind, node,
                             tuple(sorted(detail.items())) or None))
        if self._events is not None:
            self._events.emit("chaos", now, node, name=kind, **detail)

    def bind_telemetry(self, telemetry) -> None:
        """Publish ``chaos.*`` metrics and chaos events on a rig."""
        if telemetry is None:
            return
        telemetry.registry.register_source(
            "chaos", lambda: dict(self.counters))
        if telemetry.events is not None:
            self._events = telemetry.events

    # ------------------------------------------------------------- attachment

    def attach_machine(self, machine) -> "ChaosEngine":
        """Arm the cycle level: fabric, scheduler, queues, and AMTs."""
        machine.chaos = self
        machine.fabric.chaos = self
        self._build_machine_schedule(machine)
        self.bind_telemetry(machine.telemetry)
        return self

    def attach_macro(self, sim) -> "ChaosEngine":
        """Arm the macro level: per-message drop/delay in ``post``."""
        sim._chaos = self
        self.bind_telemetry(sim.telemetry)
        return self

    def _build_machine_schedule(self, machine) -> None:
        actions: List[Tuple[int, Any]] = []
        for spec in self.plan.by_kind("queue"):
            node = machine.nodes[spec.node]

            def press(m, now, node=node, words=spec.words):
                for queue in node.proc.queues.values():
                    queue.pressure_words = max(queue.pressure_words, words)
                self.record("queue-pressure", now, node.node_id,
                            "queue_pressure", words=words)

            actions.append((spec.start, press))
            if spec.stop is not None:

                def release(m, now, node=node):
                    for queue in node.proc.queues.values():
                        queue.pressure_words = 0

                actions.append((spec.stop, release))
        for spec in self.plan.by_kind("poison"):
            node = machine.nodes[spec.node]

            def poison(m, now, node=node, fraction=spec.rate or 1.0):
                evicted = node.proc.amt.poison(self._schedule_rng, fraction)
                self.record("amt-poison", now, node.node_id,
                            "poisoned_entries", amount=evicted,
                            evicted=evicted)

            actions.append((spec.start, poison))
        actions.sort(key=lambda item: item[0])
        self._machine_schedule = actions
        self._schedule_pos = 0

    # -------------------------------------------------------- cycle-level hooks

    def machine_tick(self, machine, now: int) -> None:
        """Apply every scheduled action whose cycle has been reached."""
        schedule = self._machine_schedule
        pos = self._schedule_pos
        while pos < len(schedule) and schedule[pos][0] <= now:
            schedule[pos][1](machine, now)
            pos += 1
        self._schedule_pos = pos

    def link_blocked(self, key, now: int) -> bool:
        """True if the channel's owning router is down this cycle."""
        windows = self._link_windows.get(key[0])
        if windows is None:
            return False
        for start, stop in windows:
            if now >= start and (stop is None or now < stop):
                self.counters["link_blocks"] += 1
                return True
        return False

    def node_killed(self, node_id: int, now: int) -> bool:
        """True once ``node_id`` has fail-stopped."""
        kill_at = self._kill_at.get(node_id)
        if kill_at is None or now < kill_at:
            return False
        if node_id not in self._kill_recorded:
            self._kill_recorded.add(node_id)
            self.record("kill", now, node_id, "kills")
        return True

    def node_stall_until(self, node_id: int, now: int) -> int:
        """End cycle of an active stall on ``node_id``, or ``now``."""
        windows = self._stall_windows.get(node_id)
        if windows is None:
            return now
        for start, end in windows:
            if start <= now < end:
                if (node_id, start) not in self._stall_recorded:
                    self._stall_recorded.add((node_id, start))
                    self.record("stall", now, node_id, "stalls",
                                until=end)
                return end
        return now

    def blackhole(self, message, now: int) -> None:
        """A delivery to a dead node was destroyed."""
        self.record("blackhole", now, message.dest, "blackholes",
                    src=message.source)

    def fabric_verdict(self, message, now: int) -> int:
        """Decide one arriving worm's fate: OK, DROP, or CORRUPT."""
        rng = self._fabric_rng.random
        for spec in self._fabric_rate_specs:
            if not spec.active(now):
                continue
            if spec.node is not None and spec.node != message.dest:
                continue
            if rng() < spec.rate:
                if spec.kind == "drop":
                    self.record("drop", now, message.dest, "drops",
                                src=message.source)
                    return DROP
                self.record("corrupt", now, message.dest, "corruptions",
                            src=message.source)
                return CORRUPT
        return OK

    # -------------------------------------------------------- macro-level hook

    def macro_verdict(self, source: int, dest: int, handler: str,
                      length: int, now: int) -> Tuple[bool, int]:
        """(drop?, extra_delay) for one macro-level message."""
        rng = self._macro_rng.random
        extra = 0
        for spec in self._macro_rate_specs:
            if not spec.active(now):
                continue
            if spec.node is not None and spec.node != dest:
                continue
            if rng() < spec.rate:
                if spec.kind == "drop":
                    self.record("drop", now, dest, "drops",
                                src=source, handler=handler)
                    return True, 0
                extra += spec.delay
                self.record("delay", now, dest, "delays",
                            src=source, cycles=spec.delay)
        return False, extra

    # ------------------------------------------------------ snapshot contract

    #: Attributes re-derived from the plan by ``__init__`` /
    #: ``attach_*`` rather than captured: the rate-spec lists, the
    #: window/kill indexes, the schedule closures (which close over live
    #: node objects), and the telemetry binding.
    DERIVED_ATTRS = frozenset({
        "plan", "_events", "_fabric_rate_specs", "_macro_rate_specs",
        "_link_windows", "_stall_windows", "_kill_at", "_machine_schedule",
    })

    def state_dict(self) -> dict:
        """Everything needed to resume injection mid-plan, picklable.

        The RNG streams are captured as ``random.Random.getstate()``
        tuples — the named-stream *positions*, which is what makes a
        resumed chaos run replay the exact same drop/corrupt decisions
        as the uninterrupted one.
        """
        return {
            "plan": self.plan.to_dict(),
            "log_limit": self._log_limit,
            "counters": dict(self.counters),
            "log": list(self.log),
            "fabric_rng": self._fabric_rng.getstate(),
            "macro_rng": self._macro_rng.getstate(),
            "schedule_rng": self._schedule_rng.getstate(),
            "schedule_pos": self._schedule_pos,
            "stall_recorded": set(self._stall_recorded),
            "kill_recorded": set(self._kill_recorded),
        }

    def load_state(self, state: dict) -> None:
        """Resume a :meth:`state_dict` capture on this engine.

        Call *after* ``attach_machine``/``attach_macro``: attachment
        rebuilds the schedule closures over the restored nodes and
        resets ``_schedule_pos``, which this method then overwrites with
        the captured position so already-applied one-shot actions do not
        fire twice.
        """
        if state["plan"] != self.plan.to_dict():
            from ..core.errors import SnapshotError

            raise SnapshotError(
                "chaos state was captured under a different fault plan")
        self._log_limit = state["log_limit"]
        self.counters = dict(state["counters"])
        self.log = list(state["log"])
        self._fabric_rng.setstate(state["fabric_rng"])
        self._macro_rng.setstate(state["macro_rng"])
        self._schedule_rng.setstate(state["schedule_rng"])
        self._schedule_pos = state["schedule_pos"]
        self._stall_recorded = set(state["stall_recorded"])
        self._kill_recorded = set(state["kill_recorded"])

    # ------------------------------------------------------------- summaries

    def summary(self) -> Dict[str, int]:
        """Non-zero counters, for reports and the replay CLI."""
        return {k: v for k, v in self.counters.items() if v}

    def __repr__(self) -> str:
        active = ", ".join(f"{k}={v}" for k, v in self.summary().items())
        return (f"ChaosEngine(plan={self.plan.name!r}, "
                f"seed={self.plan.seed}, {active or 'no faults yet'})")
