"""Run macro benchmarks under a fault plan — the chaos sweep's engine.

This module is the shared plumbing behind ``benchmarks/chaos_sweep.py``
and ``python -m repro.chaos replay``: run LCS or N-Queens on the macro
simulator with a :class:`~repro.chaos.plan.FaultPlan` attached and the
reliable transport enabled, and report what happened — completion,
correctness, cycle overhead, retry counts, and a fingerprint of the
telemetry event stream (the thing the determinism gate compares).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.errors import SimulationError
from ..telemetry import Telemetry
from .engine import ChaosEngine
from .plan import FaultPlan

__all__ = ["ChaosRunResult", "run_app_under_plan", "event_fingerprint",
           "APPS"]

#: Benchmarks the harness knows how to run under chaos.
APPS = ("lcs", "nqueens")


def event_fingerprint(bus) -> str:
    """A stable digest of the full event stream, in emission order.

    Two runs with the same seed, plan, and workload must produce the
    same fingerprint — this is the determinism contract reduced to a
    string comparison.
    """
    digest = hashlib.sha256()
    for event in bus.events:
        ts, kind, node, priority, name, dur, args = event
        payload = (ts, kind, node, priority, name, dur,
                   tuple(sorted(args.items())) if args else None)
        digest.update(repr(payload).encode())
    return digest.hexdigest()


@dataclass
class ChaosRunResult:
    """One benchmark run under one fault plan."""

    app: str
    n_nodes: int
    plan_name: str
    seed: int
    completed: bool
    correct: bool
    cycles: int = 0
    error: str = ""
    chaos: Dict[str, int] = field(default_factory=dict)
    reliable: Dict[str, int] = field(default_factory=dict)
    fingerprint: str = ""
    n_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "n_nodes": self.n_nodes,
            "plan": self.plan_name,
            "seed": self.seed,
            "completed": self.completed,
            "correct": self.correct,
            "cycles": self.cycles,
            "error": self.error,
            "chaos": dict(self.chaos),
            "reliable": dict(self.reliable),
            "fingerprint": self.fingerprint,
            "n_events": self.n_events,
        }


def run_app_under_plan(
    plan: FaultPlan,
    app: str = "lcs",
    n_nodes: int = 8,
    scale: float = 0.02,
    reliable: Any = True,
    events: bool = True,
    event_limit: int = 2_000_000,
) -> ChaosRunResult:
    """Run one macro benchmark under ``plan`` and summarize the outcome.

    ``scale`` shrinks the LCS instance (fraction of the paper's 1024 x
    4096 problem); N-Queens runs a small board instead.  ``reliable``
    is forwarded to the app (True, False, or ReliableLayer kwargs).
    A failed run (deadlock, delivery give-up, wrong answer) is *caught*
    and reported, not raised — a chaos sweep's whole point is measuring
    the failure rate.
    """
    if app not in APPS:
        raise ValueError(f"unknown chaos app {app!r}; expected one of {APPS}")
    telemetry = Telemetry(events=events, event_limit=event_limit)
    engine = ChaosEngine(plan)
    result = ChaosRunResult(app=app, n_nodes=n_nodes, plan_name=plan.name,
                            seed=plan.seed, completed=False, correct=False)
    app_result = None
    try:
        if app == "lcs":
            from ..apps.lcs import LcsParams, run_parallel

            app_result = run_parallel(
                n_nodes, LcsParams().scaled(scale), telemetry=telemetry,
                chaos=engine, reliable=reliable)
        else:
            from ..apps.nqueens import NQueensParams, run_parallel

            app_result = run_parallel(
                n_nodes, NQueensParams(n=8, tasks_per_node=4),
                telemetry=telemetry, chaos=engine, reliable=reliable)
        result.completed = True
        result.correct = True  # both apps verify their own output
        result.cycles = app_result.cycles
        result.reliable = app_result.extra.get("reliable", {})
    except SimulationError as err:
        result.error = f"{type(err).__name__}: {err}"
    result.chaos = engine.summary()
    if telemetry.events is not None:
        result.fingerprint = event_fingerprint(telemetry.events)
        result.n_events = len(telemetry.events)
    return result
