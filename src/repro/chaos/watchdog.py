"""Machine-level deadlock detection with per-node diagnostics.

The fabric's own stagnation watchdog (``Fabric.watchdog_cycles``) only
sees the network; a machine can also wedge with an *empty* network — every
node spinning on send faults against a full buffer, or parked waiting for
a message that was dropped.  :class:`DeadlockWatchdog` watches the whole
machine: if no instruction retires, no message completes, and no delivery
commits for a full window of cycles while work is still outstanding, it
raises :class:`~repro.core.errors.DeadlockError` carrying a
:class:`NodeSnapshot` per implicated node — PC, queue depths, suspended
threads, spill occupancy — so a hung run fails with a diagnosis instead
of timing out with a generic error.

The watchdog is pull-based and cheap: ``JMachine.run`` polls it once per
loop iteration with a single integer comparison; the (O(nodes)) progress
signature is only computed every ``interval`` cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Tuple

from ..core.errors import DeadlockError
from ..core.registers import Priority

__all__ = ["NodeSnapshot", "DeadlockWatchdog", "ProgressGauge",
           "snapshot_node", "machine_snapshots"]


class ProgressGauge:
    """The no-progress window at the heart of every watchdog here.

    Feed it a *progress signature* — any value that changes whenever
    real work happens — together with a monotone clock reading, and it
    answers how long the signature has been frozen.
    :class:`DeadlockWatchdog` applies the idea to a machine's
    instruction/delivery counters on the simulated clock; the
    simulation service's supervisor applies it to each worker's
    relayed ``sim_now`` on the wall clock to catch a *hung* worker
    (heartbeats still arriving, simulation pinned) that lease expiry
    alone would never see.

    The clock is generic: pass cycles and get cycles back, pass wall
    seconds and get seconds back.
    """

    __slots__ = ("_last_signature", "_progress_at")

    def __init__(self, now=0) -> None:
        self._last_signature = None
        self._progress_at = now

    def reset(self, now=0) -> None:
        """Forget history (call between independent runs)."""
        self._last_signature = None
        self._progress_at = now

    def observe(self, signature, now):
        """Record one observation; returns time stalled at ``now``.

        A changed signature counts as progress and returns 0; an
        unchanged one returns ``now`` minus the last change's clock
        reading.  The first observation always counts as progress.
        """
        if self._last_signature is None or \
                signature != self._last_signature:
            self._last_signature = signature
            self._progress_at = now
            return 0
        return now - self._progress_at


@dataclass
class NodeSnapshot:
    """One node's state at the moment a deadlock was detected."""

    node_id: int
    ip: int                     # priority-0 program counter
    p0_depth: int               # queued messages, priority 0
    p1_depth: int               # queued messages, priority 1
    suspended: int              # threads parked on presence faults
    runnable: int               # suspended threads made runnable again
    spilled: int                # messages in the software overflow area
    instructions: int           # lifetime instruction count
    send_faults: int            # lifetime send-fault count
    next_tick: Optional[int]    # when the machine would tick it (None=parked)
    has_work: bool

    def __str__(self) -> str:
        state = "runnable" if self.has_work else "parked"
        return (
            f"node {self.node_id:4d}: ip={self.ip:#06x} "
            f"q0={self.p0_depth} q1={self.p1_depth} "
            f"susp={self.suspended} run={self.runnable} "
            f"spill={self.spilled} instr={self.instructions} "
            f"sfaults={self.send_faults} tick={self.next_tick} [{state}]"
        )

    def to_dict(self) -> dict:
        """Plain-dict form (snapshot headers, the ``diff`` CLI)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "NodeSnapshot":
        return NodeSnapshot(**data)

    def diff(self, other: "NodeSnapshot") -> Dict[str, Tuple]:
        """Fields that changed between two captures of the same node.

        Returns ``{field: (self_value, other_value)}``; empty when the
        node did not move.  Used by the time-travel bisector to show
        exactly what a node did (or stopped doing) between the last
        progressing cycle and the deadlock.
        """
        out: Dict[str, Tuple] = {}
        for field in fields(self):
            a = getattr(self, field.name)
            b = getattr(other, field.name)
            if a != b:
                out[field.name] = (a, b)
        return out


def snapshot_node(node) -> NodeSnapshot:
    """Capture one :class:`~repro.machine.node.Node`'s diagnostic state."""
    proc = node.proc
    counters = proc.counters
    return NodeSnapshot(
        node_id=node.node_id,
        ip=proc.registers[Priority.P0].ip,
        p0_depth=len(proc.queues[Priority.P0]),
        p1_depth=len(proc.queues[Priority.P1]),
        suspended=sum(len(ts) for ts in proc._watch.values()),
        runnable=(len(proc._runnable[Priority.P0])
                  + len(proc._runnable[Priority.P1])),
        spilled=len(proc._spill),
        instructions=counters.instructions,
        send_faults=counters.send_faults,
        next_tick=node.next_tick,
        has_work=proc.has_work(),
    )


def machine_snapshots(machine, only_busy: bool = True) -> List[NodeSnapshot]:
    """Snapshot every (by default: every *implicated*) node of a machine.

    ``only_busy`` keeps the report readable on big machines: nodes that
    are parked with nothing queued, suspended, or spilled are omitted
    unless *no* node has work (then everything is included so the report
    is never empty).
    """
    snaps = [snapshot_node(node) for node in machine.nodes]
    if only_busy:
        busy = [s for s in snaps
                if s.has_work or s.suspended or s.spilled
                or s.p0_depth or s.p1_depth]
        if busy:
            return busy
    return snaps


class DeadlockWatchdog:
    """No-progress detector for :class:`~repro.machine.jmachine.JMachine`.

    Progress means any of: an instruction retired anywhere, a message
    completed its network traversal, a new message was submitted, or a
    staged delivery committed.  Blocked cycles, send-fault retries, and
    delivery stalls are *not* progress — they are precisely the activity
    a deadlocked machine keeps burning.

    Args:
        window: cycles without progress before the watchdog trips.
        interval: how often (in cycles) the progress signature is
            recomputed; defaults to ``window // 8`` so detection latency
            stays within ~12% of the window at ~zero polling cost.
    """

    def __init__(self, window: int = 50_000,
                 interval: Optional[int] = None) -> None:
        if window <= 0:
            raise ValueError("watchdog window must be positive")
        self.window = window
        self.interval = max(1, window // 8) if interval is None else interval
        self.next_check = 0
        self._last_signature: Optional[Tuple[int, int, int, int]] = None
        self._last_progress_at = 0
        #: Number of times the watchdog has tripped (before raising).
        self.trips = 0

    def reset(self, now: int = 0) -> None:
        """Forget history (call between independent runs)."""
        self.next_check = now
        self._last_signature = None
        self._last_progress_at = now

    # -- the hot-path poll ---------------------------------------------------

    def poll(self, machine, now: int) -> None:
        """Cheap per-iteration check; raises :class:`DeadlockError`."""
        if now < self.next_check:
            return
        self.next_check = now + self.interval
        signature = self._signature(machine)
        if signature != self._last_signature:
            self._last_signature = signature
            self._last_progress_at = now
            return
        if now - self._last_progress_at >= self.window:
            self._trip(machine, now)

    @staticmethod
    def _signature(machine) -> Tuple[int, int, int, int]:
        instructions = 0
        for node in machine.nodes:
            instructions += node.proc.counters.instructions
        stats = machine.fabric.stats
        return (instructions, stats.completed, stats.submitted,
                machine.deliveries_committed)

    # -- the trip ------------------------------------------------------------

    def _trip(self, machine, now: int) -> None:
        self.trips += 1
        snapshots = machine_snapshots(machine)
        worms = machine.fabric.worms_in_flight
        telemetry = machine.telemetry
        if telemetry is not None and telemetry.events is not None:
            telemetry.events.emit("watchdog", now, -1, name="deadlock",
                                  worms=worms, nodes=len(snapshots))
        raise DeadlockError(
            f"no progress for {self.window} cycles at t={now}: "
            f"no instruction retired, no message completed, no delivery "
            f"committed; {worms} worms in flight, "
            f"{len(snapshots)} nodes implicated:",
            now=now,
            snapshots=snapshots,
            worms_in_flight=worms,
        )
