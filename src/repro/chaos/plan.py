"""Fault plans: the declarative, replayable description of a chaos run.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec`\\ s.  The
plan is *pure data*: it can be serialized to JSON, checked into CI, and
replayed bit-for-bit with ``python -m repro.chaos replay plan.json``.
Everything random about an injection run — which message is dropped,
which flit is corrupted, which AMT entries are poisoned — is drawn from
named RNG streams derived from the plan seed, so the same plan against
the same workload produces the same faults in the same order, and
therefore the same telemetry event stream (the determinism contract
``make chaos-smoke`` enforces).

The fault taxonomy (see docs/ROBUSTNESS.md for the full schema):

========== ============ =======================================================
kind        level        meaning
========== ============ =======================================================
drop        both         a message vanishes in transit (per-message ``rate``)
corrupt     cycle        a flit is flipped; the receiver's checksum rejects it
delay       macro        a delivered message arrives ``delay`` cycles late
link        cycle        all mesh channels owned by ``node`` are down during
                         ``[start, stop)`` (a router failure)
stall       cycle        ``node`` executes nothing during ``[start,
                         start+duration)``
kill        cycle        ``node`` fail-stops at ``start``; arrivals blackhole
queue        cycle        ``words`` of queue space withheld on ``node`` during
                         ``[start, stop)`` (forced overflow/spill pressure)
poison      cycle        at ``start``, evict ``rate`` of ``node``'s hardware
                         AMT entries (forced xlate miss faults)
========== ============ =======================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

from ..core.errors import ConfigurationError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: The closed fault vocabulary; a typo'd kind fails at plan-build time.
FAULT_KINDS = frozenset({
    "drop", "corrupt", "delay", "link", "stall", "kill", "queue", "poison",
})

#: Kinds that apply per message with a probability (``rate``).
RATE_KINDS = frozenset({"drop", "corrupt", "delay"})

#: Kinds that fire on a schedule (``start`` .. ``stop``/``duration``).
SCHEDULED_KINDS = frozenset({"link", "stall", "kill", "queue", "poison"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: what to break, where, when, and how hard."""

    kind: str
    #: Per-opportunity probability for rate kinds; for ``poison`` the
    #: fraction of hardware AMT entries to evict.
    rate: float = 0.0
    #: Target node (None = applies to every node / every message).
    node: Optional[int] = None
    #: Active window in simulated cycles: [start, stop).  ``stop=None``
    #: means "until the end of the run".
    start: int = 0
    stop: Optional[int] = None
    #: Stall length in cycles (``stall`` only).
    duration: int = 0
    #: Queue words withheld (``queue`` only).
    words: int = 0
    #: Extra latency in cycles (``delay`` only).
    delay: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"fault rate {self.rate} outside [0, 1]")
        if self.start < 0 or (self.stop is not None and self.stop < self.start):
            raise ConfigurationError(
                f"bad fault window [{self.start}, {self.stop})"
            )
        if self.kind in RATE_KINDS and self.rate == 0.0:
            raise ConfigurationError(f"{self.kind!r} fault needs a rate > 0")
        if self.kind == "stall" and self.duration <= 0:
            raise ConfigurationError("'stall' fault needs a duration > 0")
        if self.kind == "queue" and self.words <= 0:
            raise ConfigurationError("'queue' fault needs words > 0")
        if self.kind == "delay" and self.delay <= 0:
            raise ConfigurationError("'delay' fault needs delay > 0")
        if self.kind in ("link", "stall", "kill", "queue", "poison") \
                and self.node is None:
            raise ConfigurationError(f"{self.kind!r} fault needs a node")

    def active(self, now: int) -> bool:
        """True while ``now`` falls inside this spec's window."""
        if now < self.start:
            return False
        return self.stop is None or now < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus fault specs: everything a chaos run needs to replay."""

    seed: int = 0
    specs: tuple = ()
    name: str = "chaos"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"FaultPlan specs must be FaultSpec, got {type(spec)}"
                )

    # -- stream derivation ---------------------------------------------------

    def rng(self, stream: str) -> random.Random:
        """A named deterministic RNG stream.

        Each injection layer draws from its own stream (``"fabric"``,
        ``"macro"``, ``"schedule"``, ...), so adding draws in one layer
        never perturbs the faults another layer injects.
        """
        return random.Random(f"{self.seed}:{stream}")

    def by_kind(self, *kinds: str) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind in kinds]

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        def compact(spec: FaultSpec) -> dict:
            # Keep the JSON readable: omit fields left at their defaults.
            out = {"kind": spec.kind}
            for key, value in asdict(spec).items():
                if key != "kind" and value != getattr(FaultSpec, key, None):
                    out[key] = value
            return out

        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [compact(spec) for spec in self.specs],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        specs = tuple(FaultSpec(**spec) for spec in data.get("specs", ()))
        return FaultPlan(seed=int(data.get("seed", 0)), specs=specs,
                         name=str(data.get("name", "chaos")))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @staticmethod
    def load(path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return FaultPlan.from_dict(json.load(fh))

    # -- convenience constructors --------------------------------------------

    @staticmethod
    def message_loss(rate: float, seed: int = 0,
                     name: str = "message-loss") -> "FaultPlan":
        """The workhorse plan: uniform message-drop at ``rate``."""
        return FaultPlan(seed=seed, name=name,
                         specs=(FaultSpec(kind="drop", rate=rate),))
