"""Command-line interface: replay and inspect fault plans.

::

    python -m repro.chaos replay plan.json [--app lcs] [--nodes 8]
                                           [--twice] [--json]
    python -m repro.chaos show plan.json
    python -m repro.chaos example [--rate 0.01] [--seed 7] [-o plan.json]

``replay`` runs the saved plan against a reference macro benchmark with
the reliable transport enabled and prints the outcome: completion,
cycles, injected-fault counters, retry counts, and the event-stream
fingerprint.  ``--twice`` runs it twice and fails (exit 1) unless both
runs produce the identical fingerprint — the determinism contract as a
shell command.
"""

from __future__ import annotations

import argparse
import json
import sys

from .harness import APPS, run_app_under_plan
from .plan import FaultPlan, FaultSpec


def _cmd_replay(args: argparse.Namespace) -> int:
    plan = FaultPlan.load(args.plan)
    runs = 2 if args.twice else 1
    results = [
        run_app_under_plan(plan, app=args.app, n_nodes=args.nodes,
                           scale=args.scale)
        for _ in range(runs)
    ]
    first = results[0]
    if args.json:
        print(json.dumps(first.to_dict(), indent=2, sort_keys=True))
    else:
        status = "completed" if first.completed else f"FAILED ({first.error})"
        print(f"plan {plan.name!r} (seed={plan.seed}, "
              f"{len(plan.specs)} specs) x {args.app} on {args.nodes} nodes: "
              f"{status}")
        if first.completed:
            print(f"  cycles: {first.cycles}")
        if first.chaos:
            print("  injected: "
                  + ", ".join(f"{k}={v}" for k, v in first.chaos.items()))
        if first.reliable:
            print("  transport: "
                  + ", ".join(f"{k}={v}" for k, v in first.reliable.items()))
        print(f"  events: {first.n_events}  "
              f"fingerprint: {first.fingerprint[:16]}")
    if args.twice:
        second = results[1]
        if first.fingerprint != second.fingerprint:
            print("DETERMINISM VIOLATION: replays produced different "
                  "event streams", file=sys.stderr)
            print(f"  run 1: {first.fingerprint}", file=sys.stderr)
            print(f"  run 2: {second.fingerprint}", file=sys.stderr)
            return 1
        if not args.json:
            print("  replayed twice: event streams identical")
    return 0 if (first.completed or args.allow_failure) else 1


def _cmd_show(args: argparse.Namespace) -> int:
    plan = FaultPlan.load(args.plan)
    print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    plan = FaultPlan(
        seed=args.seed,
        name="example",
        specs=(
            FaultSpec(kind="drop", rate=args.rate),
            FaultSpec(kind="delay", rate=args.rate, delay=200),
        ),
    )
    if args.output:
        plan.save(args.output)
        print(f"wrote {args.output}")
    else:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Replay and inspect fault-injection plans.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    replay = sub.add_parser("replay", help="run a saved plan")
    replay.add_argument("plan", help="path to a FaultPlan JSON file")
    replay.add_argument("--app", choices=APPS, default="lcs")
    replay.add_argument("--nodes", type=int, default=8)
    replay.add_argument("--scale", type=float, default=0.02,
                        help="LCS problem scale (fraction of the paper's)")
    replay.add_argument("--twice", action="store_true",
                        help="replay twice and verify identical event "
                             "streams")
    replay.add_argument("--json", action="store_true",
                        help="machine-readable output")
    replay.add_argument("--allow-failure", action="store_true",
                        help="exit 0 even if the run did not complete")
    replay.set_defaults(fn=_cmd_replay)

    show = sub.add_parser("show", help="pretty-print a plan")
    show.add_argument("plan")
    show.set_defaults(fn=_cmd_show)

    example = sub.add_parser("example", help="emit a sample plan")
    example.add_argument("--rate", type=float, default=0.01)
    example.add_argument("--seed", type=int, default=7)
    example.add_argument("-o", "--output", default=None)
    example.set_defaults(fn=_cmd_example)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
