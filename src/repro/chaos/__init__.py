"""repro.chaos — deterministic fault injection and deadlock detection.

The subsystem has three parts (see docs/ROBUSTNESS.md):

* :mod:`~repro.chaos.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  the declarative, JSON-serializable description of what to break;
* :mod:`~repro.chaos.engine` — :class:`ChaosEngine`, which attaches a
  plan to either simulation level and injects the faults;
* :mod:`~repro.chaos.watchdog` — :class:`DeadlockWatchdog` and the
  per-node :class:`NodeSnapshot` diagnostics raised inside
  :class:`~repro.core.errors.DeadlockError`.

``python -m repro.chaos replay plan.json`` re-runs a saved plan against
a reference workload and prints (optionally diffs) the injected-fault
log — the determinism contract in executable form.
"""

from .engine import ChaosEngine
from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .watchdog import (DeadlockWatchdog, NodeSnapshot, machine_snapshots,
                       snapshot_node)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "ChaosEngine",
    "DeadlockWatchdog",
    "NodeSnapshot",
    "snapshot_node",
    "machine_snapshots",
]
