"""Deterministic e-cube (dimension-order) routing.

"Messages are routed through the 3D-mesh network using deterministic,
e-cube, wormhole routing" (Section 2.1, citing Dally's k-ary n-cube
analysis).  A message corrects its X offset first, then Y, then Z; since
the mesh has no wrap links, each dimension is traversed monotonically.
Dimension-order routing on a mesh is provably deadlock-free because the
channel dependency graph is acyclic, a property the test suite checks.

A route is expressed as a list of *channel keys*.  A channel key is the
tuple ``(node, dim, direction)``: the output channel of router ``node``
in dimension ``dim`` (0=X, 1=Y, 2=Z) toward ``direction`` (+1 or -1).
Injection and ejection ports are represented with dim = ``INJECT`` /
``EJECT`` so the whole path, end to end, is a uniform channel list.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from ..core.errors import ConfigurationError
from .topology import Mesh3D

__all__ = ["ChannelKey", "INJECT", "EJECT", "ecube_route", "route", "route_hops"]

#: Pseudo-dimension for the processor-to-router injection port.
INJECT = 3

#: Pseudo-dimension for the router-to-processor ejection (delivery) port.
EJECT = 4

ChannelKey = Tuple[int, int, int]


def ecube_route(mesh: Mesh3D, source: int, dest: int) -> List[ChannelKey]:
    """The full channel path from ``source`` to ``dest``.

    The first element is always the source's injection port and the last
    the destination's ejection port; between them come the mesh channels
    in strict X, then Y, then Z order.  A self-addressed message routes
    through the local router only (inject then eject), which is how the
    paper's self-ping baseline works.

    Routes are deterministic functions of (dims, source, dest), so they
    are memoized; the hot path (:func:`route`) returns a shared immutable
    tuple, and this list-returning wrapper keeps the original mutable
    contract for existing callers.
    """
    return list(route(mesh, source, dest))


def route(mesh: Mesh3D, source: int, dest: int) -> Tuple[ChannelKey, ...]:
    """Memoized :func:`ecube_route`; the tuple is shared, do not mutate."""
    return _cached_route(mesh.dims, source, dest)


@lru_cache(maxsize=1 << 18)
def _cached_route(
    dims: Tuple[int, int, int], source: int, dest: int
) -> Tuple[ChannelKey, ...]:
    x_dim, y_dim, z_dim = dims
    n_nodes = x_dim * y_dim * z_dim
    for node in (source, dest):
        if not 0 <= node < n_nodes:
            raise ConfigurationError(f"node {node} outside mesh of {n_nodes}")
    path: List[ChannelKey] = [(source, INJECT, 0)]
    sx = source % x_dim
    rest = source // x_dim
    dx = dest % x_dim
    drest = dest // x_dim
    here = [sx, rest % y_dim, rest // y_dim]
    target = (dx, drest % y_dim, drest // y_dim)
    for dim in range(3):
        step = 1 if target[dim] > here[dim] else -1
        while here[dim] != target[dim]:
            node = here[0] + x_dim * (here[1] + y_dim * here[2])
            path.append((node, dim, step))
            here[dim] += step
    path.append((dest, EJECT, 0))
    return tuple(path)


def route_hops(path: List[ChannelKey]) -> int:
    """Mesh hops in a route (excludes injection/ejection ports)."""
    return sum(1 for (_, dim, _) in path if dim < INJECT)
