"""Synthetic traffic harnesses for the network micro-benchmarks.

Two experiments from Section 3.1 live here, modelled exactly as the paper
describes them but without full MDP cores (the node behaviour in these
experiments is a fixed little loop, so simulating it as a state machine
is both faithful and hundreds of times faster):

* :class:`RandomTrafficExperiment` — "every node ... selects a random
  destination, sends a message of length L to the target, waits for an L
  word acknowledgment, and then idles for I cycles."  The basic loop
  costs 45 cycles; sweeping I sweeps the offered load.  Produces the
  latency-vs-bisection-traffic curves (Figure 3, left) and the
  efficiency-vs-grain-size curves (Figure 3, right).
* :class:`TerminalBandwidthExperiment` — a source streams back-to-back
  messages of a given length to a neighbouring node which either discards
  them, copies them to internal memory (3 cycles/word), or copies them to
  external memory (6 cycles/word) — the three curves of Figure 4.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.costs import CLOCK_HZ, CostModel, DATA_BITS, DEFAULT_COSTS
from ..core.errors import ConfigurationError
from ..core.message import Message
from ..core.registers import Priority
from ..core.word import Word
from .fabric import Fabric
from .topology import Mesh3D

__all__ = [
    "RandomTrafficExperiment",
    "RandomTrafficResult",
    "TerminalBandwidthExperiment",
    "TerminalBandwidthResult",
    "DEFAULT_LOOP_OVERHEAD",
]

#: "The basic loop of the application takes 45 cycles without any idling."
DEFAULT_LOOP_OVERHEAD = 45

#: Cycles the responding node spends dispatching and building the ack.
DEFAULT_REPLY_DELAY = 10

_REQUEST_IP = 1
_ACK_IP = 2


@dataclass
class RandomTrafficResult:
    """Measurements from one (message length, idle) load point."""

    message_words: int
    idle_cycles: int
    iterations: int
    mean_round_trip_cycles: float
    one_way_latency_cycles: float
    bisection_traffic_bits_per_s: float
    bisection_utilization: float
    grain_cycles: int
    efficiency: float


class RandomTrafficExperiment:
    """The Figure 3 experiment: uniform random request/ack traffic."""

    def __init__(
        self,
        mesh: Mesh3D,
        message_words: int,
        idle_cycles: int,
        loop_overhead: int = DEFAULT_LOOP_OVERHEAD,
        reply_delay: int = DEFAULT_REPLY_DELAY,
        costs: CostModel = DEFAULT_COSTS,
        seed: int = 12345,
    ) -> None:
        if message_words < 2:
            raise ConfigurationError("messages need at least 2 words (header + tag)")
        self.mesh = mesh
        self.message_words = message_words
        self.idle_cycles = idle_cycles
        self.loop_overhead = loop_overhead
        self.reply_delay = reply_delay
        self.costs = costs
        self.rng = random.Random(seed)
        self.fabric = Fabric(mesh, self._accept, self._deliver, costs=costs)
        self._events: List[Tuple[int, int, int, int]] = []  # (time, seq, kind, node)
        self._event_seq = 0
        self._iter_start: Dict[int, int] = {}
        self._round_trips: List[int] = []
        self._measuring = False
        # Ack routing: remember who asked (one outstanding request/node).
        self._requester_of: Dict[int, List[int]] = {}

    _ITERATE = 0
    _REPLY = 1

    def _accept(self, node: int, message: Message) -> bool:
        return True  # agents absorb immediately; replies serialize at inject

    def _deliver(self, node: int, message: Message, now: int) -> None:
        if message.handler_ip == _REQUEST_IP:
            self._requester_of.setdefault(node, []).append(message.source)
            self._push(now + self.reply_delay, self._REPLY, node)
        else:  # ack: the round trip is complete
            start = self._iter_start.pop(node, None)
            if start is not None and self._measuring:
                self._round_trips.append(now - start)
            self._push(
                now + self.loop_overhead + self.idle_cycles, self._ITERATE, node
            )

    def _push(self, time: int, kind: int, node: int) -> None:
        heapq.heappush(self._events, (time, self._event_seq, kind, node))
        self._event_seq += 1

    def _message(self, source: int, dest: int, header_ip: int) -> Message:
        words = [Word.ip(header_ip)] + [
            Word.from_int(0) for _ in range(self.message_words - 1)
        ]
        return Message(words, source=source, dest=dest, priority=Priority.P0)

    def _random_dest(self, source: int) -> int:
        n = self.mesh.n_nodes
        dest = self.rng.randrange(n - 1)
        return dest if dest < source else dest + 1

    def _process(self, now: int, kind: int, node: int) -> None:
        if kind == self._ITERATE:
            dest = self._random_dest(node)
            self._iter_start[node] = now
            self.fabric.send(self._message(node, dest, _REQUEST_IP), now)
        else:  # reply
            requesters = self._requester_of.get(node)
            if requesters:
                source = requesters.pop(0)
                self.fabric.send(self._message(node, source, _ACK_IP), now)

    def run(
        self, warmup_cycles: int = 3000, measure_cycles: int = 10000
    ) -> RandomTrafficResult:
        """Warm the network into steady state, then measure a window."""
        # Stagger starts across one full loop period: on hardware the
        # nodes decorrelate naturally, but with long idle times a
        # synchronized start would otherwise persist as periodic bursts.
        period = self.loop_overhead + self.idle_cycles + 1
        for node in range(self.mesh.n_nodes):
            self._push(self.rng.randrange(period), self._ITERATE, node)

        now = 0
        end_warm = warmup_cycles
        end = warmup_cycles + measure_cycles
        while now < end:
            if now == end_warm:
                self._measuring = True
                self._round_trips = []
                self.fabric.stats.open_window(now)
            while self._events and self._events[0][0] <= now:
                _, _, kind, node = heapq.heappop(self._events)
                self._process(now, kind, node)
            self.fabric.step(now)
            now += 1

        iterations = len(self._round_trips)
        mean_rt = (
            sum(self._round_trips) / iterations if iterations else float("nan")
        )
        one_way = mean_rt / 2 if iterations else float("nan")
        traffic = self.fabric.stats.bisection_traffic_bits_per_s(now)
        capacity = self.mesh.bisection_capacity_bits_per_s()
        grain = self.idle_cycles + self.loop_overhead
        total_per_iter = mean_rt + grain if iterations else float("inf")
        return RandomTrafficResult(
            message_words=self.message_words,
            idle_cycles=self.idle_cycles,
            iterations=iterations,
            mean_round_trip_cycles=mean_rt,
            one_way_latency_cycles=one_way,
            bisection_traffic_bits_per_s=traffic,
            bisection_utilization=traffic / capacity,
            grain_cycles=grain,
            efficiency=grain / total_per_iter if iterations else 0.0,
        )


@dataclass
class TerminalBandwidthResult:
    """Measured point-to-point data rate for one message size."""

    message_words: int
    sink_mode: str
    delivered_words: int
    cycles: int
    bits_per_s: float

    @property
    def words_per_cycle(self) -> float:
        return self.delivered_words / self.cycles if self.cycles else 0.0


class TerminalBandwidthExperiment:
    """The Figure 4 experiment: saturated neighbour-to-neighbour stream.

    ``sink_mode`` selects what the receiver does with each message:
    ``"discard"`` (no per-word work), ``"imem"`` (3 cycles/word copy), or
    ``"emem"`` (6 cycles/word copy) — the constants the paper gives for
    relocating arriving words (Section 4.3.2).
    """

    SINK_CYCLES_PER_WORD = {"discard": 0, "imem": 3, "emem": 6}

    def __init__(
        self,
        message_words: int,
        sink_mode: str = "discard",
        costs: CostModel = DEFAULT_COSTS,
        queue_capacity_words: int = 64,
        pipeline_depth: int = 4,
    ) -> None:
        if sink_mode not in self.SINK_CYCLES_PER_WORD:
            raise ConfigurationError(f"unknown sink mode {sink_mode!r}")
        if message_words < 1:
            raise ConfigurationError("message must be at least 1 word")
        self.message_words = message_words
        self.sink_mode = sink_mode
        self.costs = costs
        self.queue_capacity_words = queue_capacity_words
        self.pipeline_depth = pipeline_depth
        self.mesh = Mesh3D(2, 1, 1)
        self.fabric = Fabric(self.mesh, self._accept, self._deliver, costs=costs)
        self._queued_words = 0
        self._pending_service: List[int] = []  # message lengths awaiting sink
        self._service_busy_until = 0
        self._delivered_words = 0
        self._in_flight = 0
        self._measuring = False

    def _accept(self, node: int, message: Message) -> bool:
        return self._queued_words + message.length <= self.queue_capacity_words

    def _deliver(self, node: int, message: Message, now: int) -> None:
        self._in_flight -= 1
        per_word = self.SINK_CYCLES_PER_WORD[self.sink_mode]
        if per_word == 0:
            if self._measuring:
                self._delivered_words += message.length
            return
        self._queued_words += message.length
        self._pending_service.append(message.length)

    def _service(self, now: int) -> None:
        """Sink consumer: drains the receive queue at its copy rate."""
        per_word = self.SINK_CYCLES_PER_WORD[self.sink_mode]
        if per_word == 0 or now < self._service_busy_until:
            return
        if not self._pending_service:
            return
        length = self._pending_service.pop(0)
        self._service_busy_until = now + self.costs.dispatch + per_word * length
        self._queued_words -= length
        if self._measuring:
            self._delivered_words += length

    def run(
        self, warmup_cycles: int = 500, measure_cycles: int = 4000
    ) -> TerminalBandwidthResult:
        """Stream until steady state, then measure the delivered rate."""
        message_count = 0
        now = 0
        end = warmup_cycles + measure_cycles
        measured_cycles = measure_cycles
        while now < end:
            if now == warmup_cycles:
                self._measuring = True
                self._delivered_words = 0
            # Keep the source's injection pipeline full.
            while self._in_flight < self.pipeline_depth:
                words = [Word.ip(0)] + [
                    Word.from_int(i) for i in range(self.message_words - 1)
                ]
                self.fabric.send(
                    Message(words, source=0, dest=1, priority=Priority.P0), now
                )
                self._in_flight += 1
                message_count += 1
            self._service(now)
            self.fabric.step(now)
            now += 1

        words_per_cycle = self._delivered_words / measured_cycles
        bits_per_s = words_per_cycle * DATA_BITS * CLOCK_HZ
        return TerminalBandwidthResult(
            message_words=self.message_words,
            sink_mode=self.sink_mode,
            delivered_words=self._delivered_words,
            cycles=measured_cycles,
            bits_per_s=bits_per_s,
        )
