"""3-D mesh topology: node numbering, coordinates, and bisection geometry.

The J-Machine network is a three-dimensional mesh (not a torus): the
512-node prototype is an 8 x 8 x 8 cube; the planned 1024-node machine a
16 x 8 x 8 stack (Section 2.2).  Nodes are numbered x-major::

    id = x + X * (y + Y * z)

Channels are full duplex: each neighbouring node pair is joined by one
unidirectional channel in each direction per dimension.  Following the
paper's accounting, the *bisection capacity* counts the channels crossing
the machine's X midplane in a single direction — for the 8x8x8 machine
that is 64 channels at 0.5 words/cycle and 36 bits/word, i.e. 14.4
Gbits/sec at 12.5 MHz.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..core.costs import CLOCK_HZ, WORD_BITS
from ..core.errors import ConfigurationError

__all__ = ["Mesh3D", "Coord"]

Coord = Tuple[int, int, int]


class Mesh3D:
    """A 3-D mesh of ``X * Y * Z`` nodes with e-cube-orderable dimensions."""

    def __init__(self, x: int, y: int, z: int) -> None:
        if x <= 0 or y <= 0 or z <= 0:
            raise ConfigurationError(f"mesh dimensions must be positive, got {x, y, z}")
        self.dims = (x, y, z)
        self.n_nodes = x * y * z

    @staticmethod
    def cube(k: int) -> "Mesh3D":
        """A k x k x k mesh (k=8 gives the 512-node prototype)."""
        return Mesh3D(k, k, k)

    @staticmethod
    def for_nodes(n: int) -> "Mesh3D":
        """The most compact mesh for ``n`` nodes.

        Standard power-of-two sizes follow the hardware's growth path
        (64 -> 4x4x4, 512 -> 8x8x8, 1024 -> 16x8x8); other sizes get the
        factorization ``x >= y >= z`` that minimises the longest side.
        """
        if n <= 0:
            raise ConfigurationError(f"need a positive node count, got {n}")
        standard = {
            1: (1, 1, 1), 2: (2, 1, 1), 4: (2, 2, 1), 8: (2, 2, 2),
            16: (4, 2, 2), 32: (4, 4, 2), 64: (4, 4, 4), 128: (8, 4, 4),
            256: (8, 8, 4), 512: (8, 8, 8), 1024: (16, 8, 8),
        }
        if n in standard:
            return Mesh3D(*standard[n])
        best = (n, 1, 1)
        for z in range(1, int(round(n ** (1 / 3))) + 2):
            if n % z:
                continue
            rest = n // z
            for y in range(z, int(rest ** 0.5) + 1):
                if rest % y:
                    continue
                x = rest // y
                if x >= y and max(x, y, z) < max(best):
                    best = (x, y, z)
        return Mesh3D(*best)

    # -- numbering ----------------------------------------------------------

    def coord(self, node: int) -> Coord:
        """Coordinates of a node id (the hardware's NNR calculation)."""
        x_dim, y_dim, z_dim = self.dims
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(f"node {node} outside mesh of {self.n_nodes}")
        x = node % x_dim
        rest = node // x_dim
        return (x, rest % y_dim, rest // y_dim)

    def node_id(self, coord: Coord) -> int:
        """Node id of a coordinate triple."""
        x, y, z = coord
        x_dim, y_dim, z_dim = self.dims
        if not (0 <= x < x_dim and 0 <= y < y_dim and 0 <= z < z_dim):
            raise ConfigurationError(f"coordinate {coord} outside mesh {self.dims}")
        return x + x_dim * (y + y_dim * z)

    def hops(self, a: int, b: int) -> int:
        """Manhattan distance between two nodes (e-cube path length)."""
        ax, ay, az = self.coord(a)
        bx, by, bz = self.coord(b)
        return abs(ax - bx) + abs(ay - by) + abs(az - bz)

    def max_hops(self) -> int:
        """Corner-to-corner distance (21 for the 8x8x8 machine)."""
        return sum(d - 1 for d in self.dims)

    def neighbors(self, node: int) -> Iterator[int]:
        """Node ids adjacent to ``node`` (2-6 of them in a mesh)."""
        x, y, z = self.coord(node)
        for dim, (c, limit) in enumerate(zip((x, y, z), self.dims)):
            for delta in (-1, 1):
                nc = c + delta
                if 0 <= nc < limit:
                    coord = [x, y, z]
                    coord[dim] = nc
                    yield self.node_id(tuple(coord))

    def nodes_at_distance(self, origin: int, hops: int) -> List[int]:
        """All nodes exactly ``hops`` away from ``origin``."""
        return [n for n in range(self.n_nodes) if self.hops(origin, n) == hops]

    # -- bisection --------------------------------------------------------------

    def crosses_x_midplane(self, a: int, b: int) -> bool:
        """True if the e-cube path a->b crosses the X midplane."""
        half = self.dims[0] // 2
        ax = self.coord(a)[0]
        bx = self.coord(b)[0]
        return (ax < half) != (bx < half)

    def bisection_channels(self) -> int:
        """Channels crossing the X midplane, counted one direction."""
        return self.dims[1] * self.dims[2]

    def bisection_capacity_bits_per_s(self, clock_hz: int = CLOCK_HZ) -> float:
        """Peak bisection rate, paper convention (14.4 Gb/s at 8x8x8)."""
        words_per_cycle = 0.5 * self.bisection_channels()
        return words_per_cycle * WORD_BITS * clock_hz

    def __repr__(self) -> str:
        x, y, z = self.dims
        return f"Mesh3D({x}x{y}x{z}, {self.n_nodes} nodes)"
