"""Vectorized lanes for conflict-free worms in the flit fabric.

:meth:`repro.network.fabric.Fabric.advance` partitions in-flight worms
into a *conflict pool* (worms sharing at least one virtual channel with
another worm, stepped one-by-one through the exact arbitration path) and
a *solo* set whose channel footprints are disjoint from every other
worm's.  A solo worm's per-cycle evolution never consults the channel
owner map — its head always advances, nothing ever blocks on it — so the
whole solo population can be advanced with pure integer arithmetic over
parallel state lanes: head position, released tail, injected and
delivered phit counts.

Two interchangeable backends implement the same cycle-exact update:

* :class:`PyLanes` — flat Python lists, one short loop per worm per
  cycle.  Fastest for the small populations typical of runtime apps,
  and the only backend when numpy is unavailable.
* :class:`NumpyLanes` — one int64 array per state field; each simulated
  cycle is a fixed sequence of whole-array operations, so cost per cycle
  is (nearly) independent of population size.  Selected automatically
  above :attr:`Fabric.vector_threshold` worms.

Both backends must produce bit-identical worm state; the equivalence
tests drive them against each other and against the per-cycle reference
:meth:`Fabric.step`.

numpy is an optional dependency: this module imports without it
(``HAVE_NUMPY`` is False and only :class:`PyLanes` is offered), so the
package — and the tier-1 suite — works on a pure-Python install.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except Exception:  # pragma: no cover - numpy-less installs
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "SoloLanes", "PyLanes", "NumpyLanes"]

#: accept(worm) -> bool: may the destination take this message now?
AcceptProbe = Callable[[object], bool]


class PyLanes:
    """Pure-Python solo lanes: parallel lists of ints, loop per worm."""

    def __init__(self, worms: List, buffer_phits: int,
                 accept: AcceptProbe, track_stalls: bool = False) -> None:
        self.worms = worms
        self.buffer = buffer_phits
        self.accept = accept
        #: Per-lane refused-at-eject cycle counts, kept only when the
        #: fabric has an observatory probe attached (the aggregate
        #: ``stalls`` return stays unconditional and unchanged).
        self.stall_lane: Optional[List[int]] = (
            [0] * len(worms) if track_stalls else None)
        self.h = [w.head for w in worms]
        self.r = [w.released for w in worms]
        self.inj = [w.injected for w in worms]
        self.dlv = [w.delivered for w in worms]
        self.tot = [w.total_phits for w in worms]
        self.last = [len(w.path) - 1 for w in worms]
        self.res = [w.reserved for w in worms]
        # Destination-queue verdict, frozen for the batch window:
        # -1 unknown, 0 refused, 1 reserved.  The caller guarantees the
        # accept function's inputs cannot change inside the window.
        self.acc = [-1] * len(worms)
        self.alive = list(range(len(worms)))

    @property
    def n_alive(self) -> int:
        return len(self.alive)

    def worm(self, j: int):
        return self.worms[j]

    def cycle(self) -> Tuple[Optional[List[int]], Optional[List[int]], int]:
        """Advance every live lane one cycle.

        Returns ``(completed, injection_done, stall_cycles)`` where the
        lists hold lane indices (or None when empty).  The update mirrors
        :meth:`Fabric._step_worm` exactly, minus the owner-map traffic
        that solo worms by construction never need.
        """
        completed: Optional[List[int]] = None
        inj_done: Optional[List[int]] = None
        stalls = 0
        buffer_phits = self.buffer
        h, r, inj, dlv = self.h, self.r, self.inj, self.dlv
        tot, last, res, acc = self.tot, self.last, self.res, self.acc
        dead = None
        for j in self.alive:
            moved = False
            hj = h[j]
            # 1. Head acquisition: always free for a solo worm.
            if hj < last[j]:
                h[j] = hj = hj + 1
                moved = True
            # 2. Delivery streaming behind a (frozen) reservation.
            if hj == last[j]:
                if not res[j]:
                    a = acc[j]
                    if a < 0:
                        a = acc[j] = 1 if self.accept(self.worms[j]) else 0
                    if a:
                        res[j] = True
                    else:
                        stalls += 1
                        if self.stall_lane is not None:
                            self.stall_lane[j] += 1
                if res[j]:
                    dj = dlv[j]
                    ij = inj[j]
                    limit = ij if ij < tot[j] else tot[j]
                    if dj < limit:
                        dlv[j] = dj = dj + 1
                        moved = True
                        if dj == tot[j]:
                            if completed is None:
                                completed = []
                            completed.append(j)
                            if dead is None:
                                dead = set()
                            dead.add(j)
                            continue  # completion skips phases 3 and 4
            # 3. Injection, bounded by the held span's buffer slack.
            ij = inj[j]
            if ij < tot[j]:
                if ij - dlv[j] < buffer_phits * (hj - r[j] + 1):
                    inj[j] = ij = ij + 1
                    moved = True
                    if ij == tot[j]:
                        if inj_done is None:
                            inj_done = []
                        inj_done.append(j)
            # 4. Tail release keeps the span matched to in-flight phits.
            if ij == tot[j] and moved:
                in_flight = ij - dlv[j]
                span_needed = -(-in_flight // buffer_phits)
                if span_needed < 1:
                    span_needed = 1
                target = hj - span_needed + 1
                if r[j] < target:
                    r[j] = target
        if dead:
            self.alive = [j for j in self.alive if j not in dead]
        return completed, inj_done, stalls

    def alive_states(self):
        """Yield (worm, head, released, injected, delivered, reserved)
        for every lane still in flight, for write-back at batch end."""
        for j in self.alive:
            yield (self.worms[j], self.h[j], self.r[j], self.inj[j],
                   self.dlv[j], bool(self.res[j]))

    def stall_counts(self):
        """Yield ``(lane, cycles)`` for lanes that stalled refused.

        Empty unless constructed with ``track_stalls=True``.  Covers all
        lanes ever tracked (a refused lane's verdict is frozen for the
        window, so stalled lanes are in practice still alive).
        """
        if self.stall_lane is None:
            return
        for j, n in enumerate(self.stall_lane):
            if n:
                yield j, n


class NumpyLanes:
    """numpy solo lanes: one array per field, array ops per cycle."""

    def __init__(self, worms: List, buffer_phits: int,
                 accept: AcceptProbe, track_stalls: bool = False) -> None:
        if _np is None:  # pragma: no cover - guarded by the factory
            raise RuntimeError("numpy is not available")
        self.worms = worms
        self.buffer = buffer_phits
        self.accept = accept
        #: See :attr:`PyLanes.stall_lane` (same contract, int64 array).
        self.stall_lane = (_np.zeros(len(worms), dtype=_np.int64)
                           if track_stalls else None)
        self.h = _np.array([w.head for w in worms], dtype=_np.int64)
        self.r = _np.array([w.released for w in worms], dtype=_np.int64)
        self.inj = _np.array([w.injected for w in worms], dtype=_np.int64)
        self.dlv = _np.array([w.delivered for w in worms], dtype=_np.int64)
        self.tot = _np.array([w.total_phits for w in worms], dtype=_np.int64)
        self.last = _np.array([len(w.path) - 1 for w in worms],
                              dtype=_np.int64)
        self.res = _np.array([w.reserved for w in worms], dtype=bool)
        self.acc = _np.full(len(worms), -1, dtype=_np.int8)
        self.av = _np.ones(len(worms), dtype=bool)
        self.n_alive = len(worms)

    def worm(self, j: int):
        return self.worms[j]

    def cycle(self) -> Tuple[Optional[List[int]], Optional[List[int]], int]:
        """One simulated cycle for all live lanes via whole-array ops.

        Same contract as :meth:`PyLanes.cycle`; the phase order (head,
        delivery, injection, tail release) matches the scalar reference
        so intermediate values observed by later phases are identical.
        """
        np = _np
        av = self.av
        h, r, inj, dlv = self.h, self.r, self.inj, self.dlv
        tot, last, res = self.tot, self.last, self.res
        # 1. Head acquisition.
        adv = av & (h < last)
        h[adv] += 1
        # 2. Reservation and delivery streaming.
        at_eject = av & (h == last)
        need = at_eject & ~res
        stalls = 0
        if need.any():
            unknown = need & (self.acc == -1)
            if unknown.any():
                for j in np.nonzero(unknown)[0]:
                    self.acc[j] = 1 if self.accept(self.worms[j]) else 0
            res |= need & (self.acc == 1)
            still = at_eject & ~res
            stalls = int(still.sum())
            if self.stall_lane is not None and stalls:
                self.stall_lane[still] += 1
        deliver = at_eject & res & (dlv < np.minimum(inj, tot))
        dlv[deliver] += 1
        done = deliver & (dlv == tot)
        completed: Optional[List[int]] = None
        if done.any():
            completed = np.nonzero(done)[0].tolist()
            av = self.av = av & ~done
            self.n_alive -= len(completed)
        live = av  # completions skip phases 3 and 4
        moved = (adv | deliver) & live
        # 3. Injection, bounded by buffer slack over the held span.
        can_inject = (live & (inj < tot)
                      & (inj - dlv < self.buffer * (h - r + 1)))
        inj[can_inject] += 1
        moved |= can_inject
        inj_done: Optional[List[int]] = None
        just_full = can_inject & (inj == tot)
        if just_full.any():
            inj_done = np.nonzero(just_full)[0].tolist()
        # 4. Tail release.
        full = live & (inj == tot) & moved
        if full.any():
            in_flight = inj - dlv
            span_needed = np.maximum(
                1, -(-in_flight // self.buffer))
            target = h - span_needed + 1
            r[:] = np.where(full, np.maximum(r, target), r)
        return completed, inj_done, stalls

    def alive_states(self):
        for j in _np.nonzero(self.av)[0]:
            yield (self.worms[j], int(self.h[j]), int(self.r[j]),
                   int(self.inj[j]), int(self.dlv[j]), bool(self.res[j]))

    def stall_counts(self):
        """Same contract as :meth:`PyLanes.stall_counts`."""
        if self.stall_lane is None:
            return
        for j in _np.nonzero(self.stall_lane)[0]:
            yield int(j), int(self.stall_lane[j])


def SoloLanes(worms: List, buffer_phits: int, accept: AcceptProbe,
              use_numpy: bool, track_stalls: bool = False):
    """Backend factory: numpy lanes when requested and available."""
    if use_numpy and HAVE_NUMPY:
        return NumpyLanes(worms, buffer_phits, accept, track_stalls)
    return PyLanes(worms, buffer_phits, accept, track_stalls)
