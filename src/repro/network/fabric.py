"""Flit-level simulation of the J-Machine's wormhole-routed 3-D mesh.

The model follows the published channel parameters: each channel moves one
phit (half a 36-bit word) per cycle, so channel bandwidth is 0.5
words/cycle; the head flit advances one hop per cycle when unblocked
(Section 2.1).  Worms hold every virtual channel between their tail and
head; when the head blocks, body flits pile into the small per-hop
buffers and the worm stalls in place — which is how congestion propagates
backpressure all the way to the sending processor (whose ``SEND``
instructions then take send faults, Section 4.3.2).

Modelling choices, and why they preserve the paper's behaviour:

* **Virtual channel per priority.**  Priority-1 worms are arbitrated
  before priority-0 worms everywhere, matching "priority one messages
  receive preference during channel arbitration".
* **Fixed-priority arbitration.**  Contenders for a channel are examined
  in a fixed deterministic order: priority class first, then through
  traffic ahead of locally-injecting worms — the MDP router's unfair
  fixed input-port priority, under which "nodes may be unable to inject
  a message into the network for an arbitrarily long period" (Section
  4.3.2, the radix-sort starvation).  ``arbitration="round_robin"``
  selects the fair alternative.
* **Aggregate worm state.**  Rather than tracking every flit, each worm
  keeps counts of injected/delivered phits and the span of held channels;
  phits stream at one per cycle through that span, with ``BUFFER_PHITS``
  of slack per held channel.  This reproduces cut-through latency
  (head latency + 2 cycles/word of streaming), blocking, and progressive
  tail release at a fraction of the bookkeeping cost.
* **End-to-end interface latency.**  ``inject_latency`` and
  ``eject_latency`` model the pipeline stages between processor and
  network; their defaults are calibrated so a null self-ping's two
  network traversals cost the paper's 24 cycles (Section 3.1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.errors import ConfigurationError, DeadlockError
from ..core.message import Message
from ..core.registers import Priority
from .routing import ChannelKey, INJECT, route
from .stats import NetworkStats
from .topology import Mesh3D

__all__ = ["Fabric", "Worm", "BUFFER_PHITS", "FRAMING_PHITS"]

#: Phits of buffering per held channel (router latch + channel register).
BUFFER_PHITS = 2

#: Per-message wire overhead: the routing head phit and the tail marker.
#: This is what keeps very short messages below peak channel bandwidth
#: (Figure 4: 2-word messages reach just over half of peak; 8-word
#: messages reach 90%).
FRAMING_PHITS = 2

#: Calibration: cycles a worm spends in the sending interface pipeline.
DEFAULT_INJECT_LATENCY = 2

#: Calibration: cycles from last phit at router to message queued.
DEFAULT_EJECT_LATENCY = 5

AcceptFn = Callable[[int, Message], bool]
DeliverFn = Callable[[int, Message, int], None]


class Worm:
    """One message in flight: a worm of phits snaking through the mesh."""

    __slots__ = (
        "message", "path", "keys", "hops", "total_phits", "head", "released",
        "injected", "delivered", "reserved", "submit_time", "launch_time",
        "seq", "block_cycles", "crosses_bisection", "done",
    )

    def __init__(
        self,
        message: Message,
        path: Tuple[ChannelKey, ...],
        keys: Tuple[Tuple[int, int, int, int], ...],
        hops: int,
        total_phits: int,
        crosses_bisection: bool,
        seq: int,
    ) -> None:
        self.message = message
        #: Shared route tuples from the fabric's per-pair cache; worms
        #: must never mutate them.
        self.path = path
        self.keys = keys
        self.hops = hops
        self.total_phits = total_phits
        self.head = -1          # index of furthest acquired channel
        self.released = 0       # channels [0, released) have been freed
        self.injected = 0       # phits that have left the source interface
        self.delivered = 0      # phits absorbed at the destination
        self.reserved = False   # destination queue space reserved
        self.submit_time = 0
        self.launch_time: Optional[int] = None
        self.seq = seq
        self.block_cycles = 0
        self.crosses_bisection = crosses_bisection
        self.done = False


class Fabric:
    """The whole network: channels, arbitration, and worm progression.

    The fabric is cycle stepped: the owner (a machine or a synthetic
    traffic harness) calls :meth:`step` once per simulated cycle while
    :attr:`active` is truthy.  Message hand-off to nodes goes through two
    callbacks so the fabric stays independent of what a "node" is:

    * ``accept_fn(node, message) -> bool`` — may the destination take this
      message now?  (Queue-full refusal is how backpressure starts.)
    * ``deliver_fn(node, message, now)`` — the message has fully arrived.
    """

    def __init__(
        self,
        mesh: Mesh3D,
        accept_fn: AcceptFn,
        deliver_fn: DeliverFn,
        costs: CostModel = DEFAULT_COSTS,
        inject_latency: int = DEFAULT_INJECT_LATENCY,
        eject_latency: int = DEFAULT_EJECT_LATENCY,
        arbitration: str = "fixed",
        flow_control: str = "block",
    ) -> None:
        if arbitration not in ("fixed", "round_robin"):
            raise ConfigurationError(f"unknown arbitration {arbitration!r}")
        if flow_control not in ("block", "return_to_sender"):
            raise ConfigurationError(f"unknown flow control {flow_control!r}")
        self.mesh = mesh
        self.accept_fn = accept_fn
        self.deliver_fn = deliver_fn
        self.costs = costs
        self.inject_latency = inject_latency
        self.eject_latency = eject_latency
        self.arbitration = arbitration
        self.flow_control = flow_control
        self._owner: Dict[Tuple[int, int, int, int], Worm] = {}
        self._active: List[Worm] = []
        self._pending: Dict[Tuple[int, int], Deque[Worm]] = {}
        self._staged: List[Tuple[int, Worm]] = []  # (release_time, worm)
        #: (source, dest, pclass) -> (path, keys, hops, crosses): the
        #: route is a pure function of the pair, so recomputing it per
        #: message is wasted work on all-to-all traffic.
        self._route_cache: Dict[
            Tuple[int, int, int],
            Tuple[Tuple[ChannelKey, ...], Tuple[Tuple[int, int, int, int], ...],
                  int, bool],
        ] = {}
        self._seq = 0
        self.stats = NetworkStats(mesh)
        #: Optional callback fired once per worm when its tail has fully
        #: left the sending interface (frees the node's send buffer).
        self.on_injected: Optional[Callable[[Message], None]] = None
        #: When True, per-channel phit counts are accumulated in
        #: :attr:`channel_phits` (keyed by (node, dim, dir)) — used by
        #: the channel-load studies; off by default for speed.
        self.track_channel_load = False
        self.channel_phits: Dict[Tuple[int, int, int], int] = {}
        #: Deadlock watchdog: if no worm moves a phit for this many
        #: consecutive cycles while worms are active, :meth:`step`
        #: raises with a diagnostic.  0 disables.
        self.watchdog_cycles = 0
        self._stagnant_cycles = 0
        #: Telemetry event bus (installed by repro.telemetry.wiring).
        self._events = None
        #: Fault-injection engine (installed by
        #: :meth:`repro.chaos.ChaosEngine.attach_machine`); None keeps
        #: every injection site on its cheap ``is None`` branch.
        self.chaos = None

    # ------------------------------------------------------------------ send

    def send(self, message: Message, now: int) -> None:
        """Submit a message; it will be injected when its turn comes.

        Messages from one (node, priority) pair inject strictly in order:
        a worm cannot enter the network until the previous worm's tail has
        left the injection port.
        """
        worm = self._make_worm(message, now)
        # Model the send-interface pipeline as a staging delay.
        self._staged.append((now + self.inject_latency, worm))
        self.stats.submitted += 1
        if self._events is not None:
            t = message.trace
            if t is None:
                self._events.emit("send", now, message.source,
                                  int(message.priority), dest=message.dest,
                                  words=message.length)
            else:
                self._events.emit("send", now, message.source,
                                  int(message.priority), dest=message.dest,
                                  words=message.length,
                                  trace=t[0], span=t[1], parent=t[2])

    def _make_worm(self, message: Message, now: int) -> Worm:
        if not 0 <= message.dest < self.mesh.n_nodes:
            raise ConfigurationError(f"destination {message.dest} outside mesh")
        pclass = int(message.priority)
        cache_key = (message.source, message.dest, pclass)
        entry = self._route_cache.get(cache_key)
        if entry is None:
            path = route(self.mesh, message.source, message.dest)
            keys = tuple(
                (node, dim, direction, pclass)
                for (node, dim, direction) in path
            )
            crosses = self.mesh.crosses_x_midplane(message.source, message.dest)
            if len(self._route_cache) >= (1 << 17):
                self._route_cache.clear()  # bounded even on huge meshes
            entry = (path, keys, len(path) - 2, crosses)
            self._route_cache[cache_key] = entry
        path, keys, hops, crosses = entry
        total_phits = self.costs.phits_per_word * message.length + FRAMING_PHITS
        worm = Worm(message, path, keys, hops, total_phits, crosses, self._seq)
        self._seq += 1
        worm.submit_time = now
        if message.inject_time is None:
            message.inject_time = now
        return worm

    @property
    def active(self) -> bool:
        """True while any worm is staged, pending, or in the mesh."""
        return bool(self._active or self._staged or any(self._pending.values()))

    @property
    def worms_in_flight(self) -> int:
        return len(self._active)

    # ------------------------------------------------------------------ step

    def step(self, now: int) -> None:
        """Advance every worm by one cycle of network time."""
        if self._staged:
            still_staged = []
            for release_time, worm in self._staged:
                if release_time <= now:
                    queue_key = (worm.message.source, int(worm.message.priority))
                    self._pending.setdefault(queue_key, deque()).append(worm)
                else:
                    still_staged.append((release_time, worm))
            self._staged = still_staged

        # Activate queue fronts whose injection port is free.
        for queue_key, queue in self._pending.items():
            if not queue:
                continue
            worm = queue[0]
            port = worm.keys[0]
            if self._owner.get(port) is None:
                self._owner[port] = worm
                worm.head = 0
                worm.launch_time = now
                queue.popleft()
                self._active.append(worm)

        if not self._active:
            return

        # Priority-1 worms are stepped (and hence arbitrate) first.
        # Within a class, "fixed" arbitration models the MDP router's
        # fixed input-port priority: worms already in the mesh (through
        # traffic) beat worms still at their injection port, so under
        # congestion a node "may be unable to inject a message ... for
        # an arbitrarily long period" (Section 4.3.2).  "round_robin"
        # rotates precedence across source nodes each cycle — the fair
        # alternative.
        if self.arbitration == "fixed":
            self._active.sort(
                key=lambda w: (-int(w.message.priority),
                               0 if w.head > 0 else 1, w.seq)
            )
        else:
            n = self.mesh.n_nodes
            self._active.sort(
                key=lambda w: (-int(w.message.priority),
                               (w.message.source - now) % n, w.seq)
            )
        finished = False
        moved_any = False
        for worm in self._active:
            before = worm.injected + worm.delivered + worm.head
            if self._step_worm(worm, now):
                finished = True
                moved_any = True
            elif worm.injected + worm.delivered + worm.head != before:
                moved_any = True
        if finished:
            self._active = [w for w in self._active if not w.done]
        if self.watchdog_cycles:
            self._stagnant_cycles = 0 if moved_any else self._stagnant_cycles + 1
            if self._stagnant_cycles >= self.watchdog_cycles:
                self._raise_stagnation(now)

    def _step_worm(self, worm: Worm, now: int) -> bool:
        """Advance one worm one cycle; True if it completed delivery."""
        last = len(worm.path) - 1
        moved = False

        # 1. Head acquisition: one hop per cycle when the next VC is free
        #    *and* the link is up (chaos link outages hold the head in
        #    place exactly like contention, so backpressure — and, if the
        #    outage persists, deadlock — propagates realistically).
        if worm.head < last:
            key = worm.keys[worm.head + 1]
            if self._owner.get(key) is not None or (
                    self.chaos is not None
                    and self.chaos.link_blocked(key, now)):
                worm.block_cycles += 1
                self.stats.block_cycles += 1
            else:
                self._owner[key] = worm
                worm.head += 1
                moved = True

        # 2. Delivery: once the ejection port is held, stream phits out.
        if worm.head == last:
            if not worm.reserved:
                message = worm.message
                is_bounce = getattr(message, "bounce_of", None) is not None
                if is_bounce or self.accept_fn(message.dest, message):
                    worm.reserved = True
                elif self.flow_control == "return_to_sender":
                    # Refused: turn the worm around instead of blocking
                    # the network (the critique's proposed protocol).
                    self._bounce(worm, now)
                    return True
                else:
                    self.stats.delivery_stall_cycles += 1
            if worm.reserved and worm.delivered < min(worm.total_phits, worm.injected):
                worm.delivered += 1
                moved = True
                if worm.delivered == worm.total_phits:
                    self._complete(worm, now)
                    return True

        # 3. Injection: the source streams one phit per cycle while the
        #    held span has buffer slack.
        if worm.head >= 0 and worm.injected < worm.total_phits:
            span = worm.head - worm.released + 1
            if worm.injected - worm.delivered < BUFFER_PHITS * span:
                worm.injected += 1
                moved = True
                if (worm.injected == worm.total_phits and self.on_injected
                        and worm.message.bounce_of is None
                        and not worm.message.injection_reported):
                    worm.message.injection_reported = True
                    self.on_injected(worm.message)

        # 4. Tail release: after full injection the tail advances with the
        #    pipe, freeing channels behind the in-flight span.
        if worm.injected == worm.total_phits and moved:
            in_flight = worm.injected - worm.delivered
            span_needed = max(1, -(-in_flight // BUFFER_PHITS))
            target = worm.head - span_needed + 1
            while worm.released < target:
                self._release(worm, worm.released)
                worm.released += 1
        return False

    def _release(self, worm: Worm, index: int) -> None:
        key = worm.keys[index]
        if self._owner.get(key) is worm:
            del self._owner[key]

    def _complete(self, worm: Worm, now: int) -> None:
        """Tail arrived: free remaining channels, hand the message over."""
        for index in range(worm.released, len(worm.keys)):
            self._release(worm, index)
        worm.released = len(worm.keys)
        worm.done = True
        arrival = now + self.eject_latency
        original = getattr(worm.message, "bounce_of", None)
        if original is not None:
            # A returned message reached its sender: retry the original
            # after the interface re-processes it.
            retry_worm = self._make_worm(original, now)
            self._staged.append((arrival + self.inject_latency, retry_worm))
            return
        if self.chaos is not None:
            verdict = self.chaos.fabric_verdict(worm.message, now)
            if verdict == 1:  # dropped: the message vanishes in transit
                self.stats.drops += 1
                return
            if verdict == 2:  # corrupted: delivered, but checksum-dead
                worm.message.corrupted = True
        worm.message.arrive_time = arrival
        if self.track_channel_load:
            # Every phit crossed every channel of the path exactly once.
            for channel in worm.path:
                if channel[1] < INJECT:  # mesh channels only
                    self.channel_phits[channel] = (
                        self.channel_phits.get(channel, 0) + worm.total_phits
                    )
        self.deliver_fn(worm.message.dest, worm.message, arrival)
        self.stats.record_completion(worm, arrival)

    def _bounce(self, worm: Worm, now: int) -> None:
        """Return-to-sender: free the path and send the message back."""
        for index in range(worm.released, len(worm.keys)):
            self._release(worm, index)
        worm.released = len(worm.keys)
        worm.done = True
        self.stats.bounces += 1
        original = worm.message
        returned = Message(
            original.words,
            source=original.dest,
            dest=original.source,
            priority=original.priority,
        )
        returned.bounce_of = original
        returned.trace = original.trace  # one span covers the round trip
        returned.inject_time = now
        bounce_worm = self._make_worm(returned, now)
        self._staged.append((now + 1, bounce_worm))

    def _raise_stagnation(self, now: int) -> None:
        """Watchdog trip: describe every stuck worm and fail loudly."""
        details = []
        for worm in self._active[:8]:
            blocker = None
            if worm.head + 1 < len(worm.keys):
                owner = self._owner.get(worm.keys[worm.head + 1])
                blocker = owner.message if owner else None
            details.append(
                f"{worm.message!r} head={worm.head}/{len(worm.path) - 1} "
                f"blocked_by={blocker!r}"
            )
        if self._events is not None:
            self._events.emit("watchdog", now, -1, name="net-stagnation",
                              worms=len(self._active))
        raise DeadlockError(
            f"network made no progress for {self.watchdog_cycles} cycles "
            f"at t={now}; {len(self._active)} worms stuck:\n  "
            + "\n  ".join(details),
            now=now,
            worms_in_flight=len(self._active),
        )

    # ---------------------------------------------------------------- helpers

    def drain(self, now: int, max_cycles: int = 1_000_000) -> int:
        """Step until the network is empty; returns the finishing cycle.

        Only valid when message delivery does not trigger new sends (the
        synthetic micro-benchmarks); machines drive :meth:`step` directly.
        """
        cycle = now
        end = now + max_cycles
        while self.active and cycle < end:
            self.step(cycle)
            cycle += 1
        if self.active:
            raise ConfigurationError(f"network failed to drain in {max_cycles} cycles")
        return cycle
