"""Flit-level simulation of the J-Machine's wormhole-routed 3-D mesh.

The model follows the published channel parameters: each channel moves one
phit (half a 36-bit word) per cycle, so channel bandwidth is 0.5
words/cycle; the head flit advances one hop per cycle when unblocked
(Section 2.1).  Worms hold every virtual channel between their tail and
head; when the head blocks, body flits pile into the small per-hop
buffers and the worm stalls in place — which is how congestion propagates
backpressure all the way to the sending processor (whose ``SEND``
instructions then take send faults, Section 4.3.2).

Modelling choices, and why they preserve the paper's behaviour:

* **Virtual channel per priority.**  Priority-1 worms are arbitrated
  before priority-0 worms everywhere, matching "priority one messages
  receive preference during channel arbitration".
* **Fixed-priority arbitration.**  Contenders for a channel are examined
  in a fixed deterministic order: priority class first, then through
  traffic ahead of locally-injecting worms — the MDP router's unfair
  fixed input-port priority, under which "nodes may be unable to inject
  a message into the network for an arbitrarily long period" (Section
  4.3.2, the radix-sort starvation).  ``arbitration="round_robin"``
  selects the fair alternative.
* **Aggregate worm state.**  Rather than tracking every flit, each worm
  keeps counts of injected/delivered phits and the span of held channels;
  phits stream at one per cycle through that span, with ``BUFFER_PHITS``
  of slack per held channel.  This reproduces cut-through latency
  (head latency + 2 cycles/word of streaming), blocking, and progressive
  tail release at a fraction of the bookkeeping cost.
* **End-to-end interface latency.**  ``inject_latency`` and
  ``eject_latency`` model the pipeline stages between processor and
  network; their defaults are calibrated so a null self-ping's two
  network traversals cost the paper's 24 cycles (Section 3.1).
"""

from __future__ import annotations

import heapq
from collections import deque
from operator import attrgetter
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.errors import ConfigurationError, DeadlockError
from ..core.message import Message
from ..core.registers import Priority
from .observatory import FabricProbe
from .routing import ChannelKey, INJECT, route
from .stats import NetworkStats
from .topology import Mesh3D
from .vectorize import HAVE_NUMPY, SoloLanes

__all__ = ["Fabric", "Worm", "BUFFER_PHITS", "FRAMING_PHITS"]

#: Phits of buffering per held channel (router latch + channel register).
BUFFER_PHITS = 2

#: Per-message wire overhead: the routing head phit and the tail marker.
#: This is what keeps very short messages below peak channel bandwidth
#: (Figure 4: 2-word messages reach just over half of peak; 8-word
#: messages reach 90%).
FRAMING_PHITS = 2

#: Calibration: cycles a worm spends in the sending interface pipeline.
DEFAULT_INJECT_LATENCY = 2

#: Calibration: cycles from last phit at router to message queued.
DEFAULT_EJECT_LATENCY = 5

AcceptFn = Callable[[int, Message], bool]
DeliverFn = Callable[[int, Message, int], None]


class Worm:
    """One message in flight: a worm of phits snaking through the mesh."""

    __slots__ = (
        "message", "path", "keys", "hops", "total_phits", "head", "released",
        "injected", "delivered", "reserved", "submit_time", "launch_time",
        "seq", "block_cycles", "crosses_bisection", "done", "pri", "akey",
    )

    def __init__(
        self,
        message: Message,
        path: Tuple[ChannelKey, ...],
        keys: Tuple[Tuple[int, int, int, int], ...],
        hops: int,
        total_phits: int,
        crosses_bisection: bool,
        seq: int,
    ) -> None:
        self.message = message
        #: Shared route tuples from the fabric's per-pair cache; worms
        #: must never mutate them.
        self.path = path
        self.keys = keys
        self.hops = hops
        self.total_phits = total_phits
        self.head = -1          # index of furthest acquired channel
        self.released = 0       # channels [0, released) have been freed
        self.injected = 0       # phits that have left the source interface
        self.delivered = 0      # phits absorbed at the destination
        self.reserved = False   # destination queue space reserved
        self.submit_time = 0
        self.launch_time: Optional[int] = None
        self.seq = seq
        self.block_cycles = 0
        self.crosses_bisection = crosses_bisection
        self.done = False
        #: Cached ``int(message.priority)`` (hot in arbitration).
        self.pri = int(message.priority)
        #: Cached fixed-arbitration sort key ``(-pri, through, seq)``;
        #: the through flag flips to 0 when the head leaves the
        #: injection port (see :meth:`Fabric.step`).
        self.akey = (-self.pri, 1, seq)


class Fabric:
    """The whole network: channels, arbitration, and worm progression.

    The fabric is cycle stepped: the owner (a machine or a synthetic
    traffic harness) calls :meth:`step` once per simulated cycle while
    :attr:`active` is truthy.  Message hand-off to nodes goes through two
    callbacks so the fabric stays independent of what a "node" is:

    * ``accept_fn(node, message) -> bool`` — may the destination take this
      message now?  (Queue-full refusal is how backpressure starts.)
    * ``deliver_fn(node, message, now)`` — the message has fully arrived.
    """

    def __init__(
        self,
        mesh: Mesh3D,
        accept_fn: AcceptFn,
        deliver_fn: DeliverFn,
        costs: CostModel = DEFAULT_COSTS,
        inject_latency: int = DEFAULT_INJECT_LATENCY,
        eject_latency: int = DEFAULT_EJECT_LATENCY,
        arbitration: str = "fixed",
        flow_control: str = "block",
    ) -> None:
        if arbitration not in ("fixed", "round_robin"):
            raise ConfigurationError(f"unknown arbitration {arbitration!r}")
        if flow_control not in ("block", "return_to_sender"):
            raise ConfigurationError(f"unknown flow control {flow_control!r}")
        self.mesh = mesh
        self.accept_fn = accept_fn
        self.deliver_fn = deliver_fn
        self.costs = costs
        self.inject_latency = inject_latency
        self.eject_latency = eject_latency
        self.arbitration = arbitration
        self.flow_control = flow_control
        self._owner: Dict[Tuple[int, int, int, int], Worm] = {}
        self._active: List[Worm] = []
        self._pending: Dict[Tuple[int, int], Deque[Worm]] = {}
        self._pending_count = 0
        #: Heap of (release_time, seq, worm); seq keeps same-cycle
        #: releases in submission order, matching the old list scan.
        self._staged: List[Tuple[int, int, Worm]] = []
        #: (source, dest, pclass) -> (path, keys, hops, crosses): the
        #: route is a pure function of the pair, so recomputing it per
        #: message is wasted work on all-to-all traffic.
        self._route_cache: Dict[
            Tuple[int, int, int],
            Tuple[Tuple[ChannelKey, ...], Tuple[Tuple[int, int, int, int], ...],
                  int, bool],
        ] = {}
        #: Bound + traffic counters for the per-pair route cache
        #: (exported as ``net.route_cache.*`` by the telemetry wiring).
        self.route_cache_max = 1 << 17
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self._seq = 0
        #: Worm-population threshold above which the batched advance
        #: switches from the per-worm Python loop to the numpy lanes
        #: (see repro.network.vectorize); ignored without numpy.
        self.vector_threshold = 24 if HAVE_NUMPY else None
        self.stats = NetworkStats(mesh)
        #: Optional callback fired once per worm when its tail has fully
        #: left the sending interface (frees the node's send buffer).
        self.on_injected: Optional[Callable[[Message], None]] = None
        #: When True, per-channel phit counts are accumulated in
        #: :attr:`channel_phits` (keyed by (node, dim, dir)) — used by
        #: the channel-load studies; off by default for speed.
        self.track_channel_load = False
        self.channel_phits: Dict[Tuple[int, int, int], int] = {}
        #: Deadlock watchdog: if no worm moves a phit for this many
        #: consecutive cycles while worms are active, :meth:`step`
        #: raises with a diagnostic.  0 disables.
        self.watchdog_cycles = 0
        self._stagnant_cycles = 0
        #: Telemetry event bus (installed by repro.telemetry.wiring).
        self._events = None
        #: Fault-injection engine (installed by
        #: :meth:`repro.chaos.ChaosEngine.attach_machine`); None keeps
        #: every injection site on its cheap ``is None`` branch.
        self.chaos = None
        #: Fabric observatory probe
        #: (:class:`~repro.network.observatory.FabricProbe`); None keeps
        #: every accumulation site on its cheap ``is None`` branch so
        #: un-probed runs stay bit-identical.
        self.probe: Optional[FabricProbe] = None

    def attach_probe(self, now: int = 0) -> FabricProbe:
        """Attach (and return) a fresh observatory probe.

        Call before traffic starts so utilization denominators cover the
        whole run; re-attaching discards previous counters.
        """
        self.probe = FabricProbe(opened_at=now)
        return self.probe

    # ------------------------------------------------------------------ send

    def send(self, message: Message, now: int) -> None:
        """Submit a message; it will be injected when its turn comes.

        Messages from one (node, priority) pair inject strictly in order:
        a worm cannot enter the network until the previous worm's tail has
        left the injection port.
        """
        worm = self._make_worm(message, now)
        # Model the send-interface pipeline as a staging delay.
        heapq.heappush(self._staged, (now + self.inject_latency, worm.seq, worm))
        self.stats.submitted += 1
        if self._events is not None:
            t = message.trace
            if t is None:
                self._events.emit("send", now, message.source,
                                  int(message.priority), dest=message.dest,
                                  words=message.length)
            else:
                self._events.emit("send", now, message.source,
                                  int(message.priority), dest=message.dest,
                                  words=message.length,
                                  trace=t[0], span=t[1], parent=t[2])

    def _make_worm(self, message: Message, now: int) -> Worm:
        if not 0 <= message.dest < self.mesh.n_nodes:
            raise ConfigurationError(f"destination {message.dest} outside mesh")
        pclass = int(message.priority)
        cache_key = (message.source, message.dest, pclass)
        entry = self._route_cache.get(cache_key)
        if entry is None:
            self.route_cache_misses += 1
            path = route(self.mesh, message.source, message.dest)
            keys = tuple(
                (node, dim, direction, pclass)
                for (node, dim, direction) in path
            )
            crosses = self.mesh.crosses_x_midplane(message.source, message.dest)
            if len(self._route_cache) >= self.route_cache_max:
                self._route_cache.clear()  # bounded even on huge meshes
            entry = (path, keys, len(path) - 2, crosses)
            self._route_cache[cache_key] = entry
        else:
            self.route_cache_hits += 1
        path, keys, hops, crosses = entry
        total_phits = self.costs.phits_per_word * message.length + FRAMING_PHITS
        worm = Worm(message, path, keys, hops, total_phits, crosses, self._seq)
        self._seq += 1
        worm.submit_time = now
        if message.inject_time is None:
            message.inject_time = now
        return worm

    @property
    def active(self) -> bool:
        """True while any worm is staged, pending, or in the mesh."""
        return bool(self._active or self._staged or self._pending_count)

    @property
    def worms_in_flight(self) -> int:
        return len(self._active)

    def injection_quiet_cycles(self) -> Optional[int]:
        """A lower bound on cycles until any ``on_injected`` callback.

        A worm with ``r`` phits left to inject streams at most one phit
        per cycle, so its source's send buffer cannot be freed for at
        least ``r`` more cycles; staged and pending worms have their
        whole payload ahead of them.  Returns None when every worm has
        fully injected (no release can ever fire from current traffic).
        The machine uses this to let fast-path blocks run ahead while
        the fabric is busy.
        """
        best: Optional[int] = None
        for worm in self._active:
            remaining = worm.total_phits - worm.injected
            if remaining > 0 and (best is None or remaining < best):
                best = remaining
        for queue in self._pending.values():
            for worm in queue:
                if best is None or worm.total_phits < best:
                    best = worm.total_phits
        for _, _, worm in self._staged:
            if best is None or worm.total_phits < best:
                best = worm.total_phits
        return best

    # ------------------------------------------------------------------ step

    def _release_staged(self, now: int) -> None:
        """Move staged worms whose release time has come into the
        per-(source, priority) pending queues, in submission order."""
        staged = self._staged
        probe = self.probe
        while staged and staged[0][0] <= now:
            _, _, worm = heapq.heappop(staged)
            queue_key = (worm.message.source, worm.pri)
            queue = self._pending.get(queue_key)
            if queue is None:
                queue = self._pending[queue_key] = deque()
            queue.append(worm)
            self._pending_count += 1
            if probe is not None:
                probe.record_queue_depth(queue_key[0], len(queue))

    def _activate_pending(self, now: int) -> None:
        """Activate queue fronts whose injection port is free.

        Each (source, priority) queue contends only for its own
        injection port, so scan order across queues is immaterial;
        empty queues are pruned so the scan stays proportional to the
        number of *waiting* worms, not of sources ever seen.
        """
        owner = self._owner
        for queue_key in [k for k, q in self._pending.items() if q]:
            queue = self._pending[queue_key]
            worm = queue[0]
            port = worm.keys[0]
            if owner.get(port) is None:
                owner[port] = worm
                worm.head = 0
                worm.launch_time = now
                queue.popleft()
                self._pending_count -= 1
                self._active.append(worm)
            if not queue:
                del self._pending[queue_key]

    def _sort_active(self, now: int) -> None:
        # Priority-1 worms are stepped (and hence arbitrate) first.
        # Within a class, "fixed" arbitration models the MDP router's
        # fixed input-port priority: worms already in the mesh (through
        # traffic) beat worms still at their injection port, so under
        # congestion a node "may be unable to inject a message ... for
        # an arbitrarily long period" (Section 4.3.2).  "round_robin"
        # rotates precedence across source nodes each cycle — the fair
        # alternative.
        if self.arbitration == "fixed":
            self._active.sort(key=attrgetter("akey"))
        else:
            n = self.mesh.n_nodes
            self._active.sort(
                key=lambda w: (-w.pri, (w.message.source - now) % n, w.seq)
            )

    def step(self, now: int) -> None:
        """Advance every worm by one cycle of network time."""
        if self._staged and self._staged[0][0] <= now:
            self._release_staged(now)
        if self._pending_count:
            self._activate_pending(now)
        if not self._active:
            return
        self._sort_active(now)
        finished = False
        moved_any = False
        for worm in self._active:
            before = worm.injected + worm.delivered + worm.head
            if self._step_worm(worm, now):
                finished = True
                moved_any = True
            elif worm.injected + worm.delivered + worm.head != before:
                moved_any = True
        if finished:
            self._active = [w for w in self._active if not w.done]
        if self.watchdog_cycles:
            self._stagnant_cycles = 0 if moved_any else self._stagnant_cycles + 1
            if self._stagnant_cycles >= self.watchdog_cycles:
                self._raise_stagnation(now)

    def _step_worm(self, worm: Worm, now: int) -> bool:
        """Advance one worm one cycle; True if it completed delivery."""
        last = len(worm.path) - 1
        moved = False

        # 1. Head acquisition: one hop per cycle when the next VC is free
        #    *and* the link is up (chaos link outages hold the head in
        #    place exactly like contention, so backpressure — and, if the
        #    outage persists, deadlock — propagates realistically).
        if worm.head < last:
            key = worm.keys[worm.head + 1]
            blocked = self._owner.get(key) is not None
            outage = False
            if (not blocked and self.chaos is not None
                    and self.chaos.link_blocked(key, now)):
                blocked = outage = True
            if blocked:
                worm.block_cycles += 1
                self.stats.block_cycles += 1
                if self.probe is not None:
                    self.probe.record_block(key, outage)
            else:
                self._owner[key] = worm
                worm.head += 1
                if worm.head == 1:
                    # Left the injection port: now "through traffic",
                    # which fixed arbitration favours.
                    worm.akey = (-worm.pri, 0, worm.seq)
                moved = True

        # 2. Delivery: once the ejection port is held, stream phits out.
        if worm.head == last:
            if not worm.reserved:
                message = worm.message
                is_bounce = getattr(message, "bounce_of", None) is not None
                if is_bounce or self.accept_fn(message.dest, message):
                    worm.reserved = True
                elif self.flow_control == "return_to_sender":
                    # Refused: turn the worm around instead of blocking
                    # the network (the critique's proposed protocol).
                    self._bounce(worm, now)
                    return True
                else:
                    self.stats.delivery_stall_cycles += 1
                    if self.probe is not None:
                        self.probe.record_backpressure(message.dest)
            if worm.reserved and worm.delivered < min(worm.total_phits, worm.injected):
                worm.delivered += 1
                moved = True
                if worm.delivered == worm.total_phits:
                    self._complete(worm, now)
                    return True

        # 3. Injection: the source streams one phit per cycle while the
        #    held span has buffer slack.
        if worm.head >= 0 and worm.injected < worm.total_phits:
            span = worm.head - worm.released + 1
            if worm.injected - worm.delivered < BUFFER_PHITS * span:
                worm.injected += 1
                moved = True
                if (worm.injected == worm.total_phits and self.on_injected
                        and worm.message.bounce_of is None
                        and not worm.message.injection_reported):
                    worm.message.injection_reported = True
                    self.on_injected(worm.message)

        # 4. Tail release: after full injection the tail advances with the
        #    pipe, freeing channels behind the in-flight span.
        if worm.injected == worm.total_phits and moved:
            in_flight = worm.injected - worm.delivered
            span_needed = max(1, -(-in_flight // BUFFER_PHITS))
            target = worm.head - span_needed + 1
            while worm.released < target:
                self._release(worm, worm.released)
                worm.released += 1
        return False

    # ------------------------------------------------------------- batching

    def can_batch(self) -> bool:
        """May :meth:`advance` replace per-cycle :meth:`step` calls?

        Batch eligibility is conservative: any feature whose per-cycle
        hooks observe or perturb the cycle-by-cycle interleaving (fault
        injection, the stagnation watchdog, return-to-sender bounces)
        keeps the fabric on the exact reference path.
        """
        return ((self.chaos is None or self.chaos.inert)
                and self.watchdog_cycles == 0
                and self.flow_control == "block")

    def advance(self, now: int, horizon: int) -> int:
        """Simulate cycles ``[now, end)`` in one call; returns ``end``.

        The caller (the machine's run loop) guarantees a *quiet window*:
        no new sends, no delivery commits, and no processor activity can
        occur before ``horizon``, and ``accept_fn`` is a pure function of
        state that cannot change inside the window.  Under those
        conditions this method is cycle-exact with ``step(now) ..
        step(end - 1)``: identical worm state, owner map, statistics,
        and callback timing.

        Worms are split into a *conflict pool* — any worm sharing a
        channel key with another active, pending, or staged worm — and a
        *solo* rest.  Conflict worms go through :meth:`_step_worm`
        per cycle in exact arbitration order; solo worms advance on
        integer lanes (numpy above :attr:`vector_threshold`), touching
        the owner map only on entry/exit of the batch.  The window ends
        early when a completion schedules a delivery commit the machine
        must observe (``completion + eject_latency``).
        """
        # ---- conflict partition over every worm that could touch a channel
        seen: Dict[Tuple[int, int, int, int], Worm] = {}
        conflicted = set()

        def scan(worm: Worm) -> None:
            for key in worm.keys:
                other = seen.get(key)
                if other is None:
                    seen[key] = worm
                else:
                    conflicted.add(other.seq)
                    conflicted.add(worm.seq)

        for w in self._active:
            scan(w)
        for q in self._pending.values():
            for w in q:
                scan(w)
        for _, _, w in self._staged:
            scan(w)
        pool = [w for w in self._active if w.seq in conflicted]
        solo = [w for w in self._active if w.seq not in conflicted]
        lanes = None
        if solo:
            accept_fn = self.accept_fn

            def probe(worm: Worm) -> bool:
                message = worm.message
                return accept_fn(message.dest, message)

            use_numpy = (self.vector_threshold is not None
                         and len(solo) >= self.vector_threshold)
            lanes = SoloLanes(solo, BUFFER_PHITS, probe, use_numpy,
                              track_stalls=self.probe is not None)

        staged = self._staged
        stats = self.stats
        eject = self.eject_latency
        on_injected = self.on_injected
        owner = self._owner
        any_finished = False
        end = horizon
        c = now
        while c < end:
            if staged and staged[0][0] <= c:
                self._release_staged(c)
            if self._pending_count:
                before = len(self._active)
                self._activate_pending(c)
                # Fresh worms join the conflict pool: the partition
                # already proved they cannot touch a solo worm (pending
                # and staged footprints were scanned above).
                pool.extend(self._active[before:])
            if pool:
                if len(pool) > 1:
                    if self.arbitration == "fixed":
                        pool.sort(key=attrgetter("akey"))
                    else:
                        n = self.mesh.n_nodes
                        cyc = c
                        pool.sort(key=lambda w: (
                            -w.pri, (w.message.source - cyc) % n, w.seq))
                finished_here = False
                for w in pool:
                    if self._step_worm(w, c):
                        finished_here = True
                        any_finished = True
                        arrival = c + eject
                        if arrival < end:
                            end = arrival
                if finished_here:
                    pool = [w for w in pool if not w.done]
            if lanes is not None and lanes.n_alive:
                completed, inj_done, stalls = lanes.cycle()
                if stalls:
                    stats.delivery_stall_cycles += stalls
                if inj_done is not None:
                    for j in inj_done:
                        message = lanes.worm(j).message
                        if (on_injected is not None
                                and message.bounce_of is None
                                and not message.injection_reported):
                            message.injection_reported = True
                            on_injected(message)
                if completed is not None:
                    any_finished = True
                    for j in completed:
                        self._finish_solo(lanes.worm(j), c)
                    arrival = c + eject
                    if arrival < end:
                        end = arrival
            c += 1
            if (not pool and (lanes is None or not lanes.n_alive)
                    and not staged and not self._pending_count):
                break  # the fabric drained inside the window

        # Write live solo lanes back and reconcile the owner map: the
        # net effect of the skipped acquisitions/releases is that each
        # worm owns exactly keys[released : head + 1].
        if lanes is not None:
            for w, nh, nr, ni, nd, nres in lanes.alive_states():
                keys = w.keys
                for idx in range(w.head + 1, nh + 1):
                    owner[keys[idx]] = w
                for idx in range(w.released, nr):
                    key = keys[idx]
                    if owner.get(key) is w:
                        del owner[key]
                if nh > 0 and w.head == 0:
                    w.akey = (-w.pri, 0, w.seq)
                w.head = nh
                w.released = nr
                w.injected = ni
                w.delivered = nd
                w.reserved = nres
            if self.probe is not None:
                # Fold the lanes' per-worm refused-at-eject counts into
                # the probe; totals match the per-cycle reference path
                # (order of accumulation is immaterial for counters).
                for j, n in lanes.stall_counts():
                    self.probe.record_backpressure(
                        lanes.worm(j).message.dest, n)
        if any_finished:
            self._active = [w for w in self._active if not w.done]
        return c

    def _finish_solo(self, worm: Worm, now: int) -> None:
        """Deferred :meth:`_complete` for a solo-lane worm (no chaos,
        block flow control): free its owner entries and hand it over."""
        owner = self._owner
        for key in worm.keys:
            if owner.get(key) is worm:
                del owner[key]
        worm.released = len(worm.keys)
        worm.head = len(worm.path) - 1
        worm.injected = worm.delivered = worm.total_phits
        worm.reserved = True
        worm.done = True
        arrival = now + self.eject_latency
        worm.message.arrive_time = arrival
        if self.track_channel_load:
            for channel in worm.path:
                if channel[1] < INJECT:  # mesh channels only
                    self.channel_phits[channel] = (
                        self.channel_phits.get(channel, 0) + worm.total_phits
                    )
        if self.probe is not None:
            self.probe.record_completion(worm)
        self.deliver_fn(worm.message.dest, worm.message, arrival)
        self.stats.record_completion(worm, arrival)

    def _release(self, worm: Worm, index: int) -> None:
        key = worm.keys[index]
        if self._owner.get(key) is worm:
            del self._owner[key]

    def _complete(self, worm: Worm, now: int) -> None:
        """Tail arrived: free remaining channels, hand the message over."""
        for index in range(worm.released, len(worm.keys)):
            self._release(worm, index)
        worm.released = len(worm.keys)
        worm.done = True
        arrival = now + self.eject_latency
        original = getattr(worm.message, "bounce_of", None)
        if original is not None:
            # A returned message reached its sender: retry the original
            # after the interface re-processes it.
            retry_worm = self._make_worm(original, now)
            heapq.heappush(self._staged,
                           (arrival + self.inject_latency, retry_worm.seq,
                            retry_worm))
            return
        if self.chaos is not None:
            verdict = self.chaos.fabric_verdict(worm.message, now)
            if verdict == 1:  # dropped: the message vanishes in transit
                self.stats.drops += 1
                return
            if verdict == 2:  # corrupted: delivered, but checksum-dead
                worm.message.corrupted = True
        worm.message.arrive_time = arrival
        if self.track_channel_load:
            # Every phit crossed every channel of the path exactly once.
            for channel in worm.path:
                if channel[1] < INJECT:  # mesh channels only
                    self.channel_phits[channel] = (
                        self.channel_phits.get(channel, 0) + worm.total_phits
                    )
        if self.probe is not None:
            self.probe.record_completion(worm)
        self.deliver_fn(worm.message.dest, worm.message, arrival)
        self.stats.record_completion(worm, arrival)

    def _bounce(self, worm: Worm, now: int) -> None:
        """Return-to-sender: free the path and send the message back."""
        for index in range(worm.released, len(worm.keys)):
            self._release(worm, index)
        worm.released = len(worm.keys)
        worm.done = True
        self.stats.bounces += 1
        original = worm.message
        returned = Message(
            original.words,
            source=original.dest,
            dest=original.source,
            priority=original.priority,
        )
        returned.bounce_of = original
        returned.trace = original.trace  # one span covers the round trip
        returned.inject_time = now
        bounce_worm = self._make_worm(returned, now)
        heapq.heappush(self._staged, (now + 1, bounce_worm.seq, bounce_worm))

    def _raise_stagnation(self, now: int) -> None:
        """Watchdog trip: describe every stuck worm and fail loudly."""
        details = []
        for worm in self._active[:8]:
            blocker = None
            if worm.head + 1 < len(worm.keys):
                owner = self._owner.get(worm.keys[worm.head + 1])
                blocker = owner.message if owner else None
            details.append(
                f"{worm.message!r} head={worm.head}/{len(worm.path) - 1} "
                f"blocked_by={blocker!r}"
            )
        if self._events is not None:
            self._events.emit("watchdog", now, -1, name="net-stagnation",
                              worms=len(self._active))
        raise DeadlockError(
            f"network made no progress for {self.watchdog_cycles} cycles "
            f"at t={now}; {len(self._active)} worms stuck:\n  "
            + "\n  ".join(details),
            now=now,
            worms_in_flight=len(self._active),
        )

    # ------------------------------------------------------- snapshot contract

    #: Constructor-wired attributes :meth:`state_dict` deliberately does
    #: NOT capture: they belong to whoever built the fabric (the machine
    #: or a harness) and are re-established by fresh construction on
    #: restore.  tests/snapshot/test_contracts.py asserts that captured
    #: + external covers every instance attribute, so a new attribute
    #: cannot silently vanish from checkpoints.
    EXTERNAL_ATTRS = frozenset({
        "mesh", "accept_fn", "deliver_fn", "costs", "inject_latency",
        "eject_latency", "arbitration", "flow_control", "on_injected",
        "_events", "chaos",
    })

    def state_dict(self) -> dict:
        """Every run-mutable piece of fabric state, picklable.

        Worms are captured by reference (they pickle via ``__slots__``),
        so the sharing structure — one worm appearing as a channel owner,
        in the active list, and in a pending queue — survives the
        round trip through the snapshot's single pickle.
        """
        return {
            "owner": dict(self._owner),
            "active": list(self._active),
            "pending": {key: list(queue)
                        for key, queue in self._pending.items()},
            "pending_count": self._pending_count,
            "staged": list(self._staged),
            "route_cache": dict(self._route_cache),
            "route_cache_max": self.route_cache_max,
            "route_cache_hits": self.route_cache_hits,
            "route_cache_misses": self.route_cache_misses,
            "seq": self._seq,
            "vector_threshold": self.vector_threshold,
            "stats": self.stats,
            "track_channel_load": self.track_channel_load,
            "channel_phits": dict(self.channel_phits),
            "watchdog_cycles": self.watchdog_cycles,
            "stagnant_cycles": self._stagnant_cycles,
            "probe": self.probe,
        }

    def load_state(self, state: dict) -> None:
        """Install a :meth:`state_dict` capture into this fabric.

        The fabric must have been constructed with the same topology and
        wiring as the captured one; everything in
        :data:`EXTERNAL_ATTRS` is left untouched.
        """
        self._owner = dict(state["owner"])
        self._active = list(state["active"])
        self._pending = {key: deque(queue)
                         for key, queue in state["pending"].items()}
        self._pending_count = state["pending_count"]
        self._staged = list(state["staged"])
        self._route_cache = dict(state["route_cache"])
        self.route_cache_max = state["route_cache_max"]
        self.route_cache_hits = state["route_cache_hits"]
        self.route_cache_misses = state["route_cache_misses"]
        self._seq = state["seq"]
        # The threshold is a host capability, not machine state: honour
        # the captured tuning only where numpy exists at all.
        self.vector_threshold = (state["vector_threshold"]
                                 if HAVE_NUMPY else None)
        self.stats = state["stats"]
        self.stats.mesh = self.mesh
        self.track_channel_load = state["track_channel_load"]
        self.channel_phits = dict(state["channel_phits"])
        self.watchdog_cycles = state["watchdog_cycles"]
        self._stagnant_cycles = state["stagnant_cycles"]
        # Absent in pre-observatory captures: restore to un-probed.
        self.probe = state.get("probe")

    # ---------------------------------------------------------------- helpers

    def drain(self, now: int, max_cycles: int = 1_000_000) -> int:
        """Step until the network is empty; returns the finishing cycle.

        Only valid when message delivery does not trigger new sends (the
        synthetic micro-benchmarks); machines drive :meth:`step` directly.
        """
        cycle = now
        end = now + max_cycles
        while self.active and cycle < end:
            self.step(cycle)
            cycle += 1
        if self.active:
            raise ConfigurationError(f"network failed to drain in {max_cycles} cycles")
        return cycle
