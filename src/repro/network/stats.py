"""Network measurement: latency and bisection-traffic statistics.

The paper's Figure 3 plots one-way message latency against *bisection
traffic* — the rate at which data crosses the machine's X midplane.  Its
capacity convention counts the midplane channels in a single direction
(64 channels for 8x8x8, giving the quoted 14.4 Gbits/sec peak), so for
symmetric traffic we count all midplane crossings and halve them, which
this module documents once so every benchmark reports the same quantity.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Optional, Sequence, TYPE_CHECKING

from ..core.costs import CLOCK_HZ, WORD_BITS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import Worm
    from .topology import Mesh3D

__all__ = ["NetworkStats", "LatencySummary"]

#: Default histogram bucket upper bounds: powers of two up to ~1M cycles.
#: Latencies in this simulator span a handful of cycles (one hop) to the
#: hundreds of thousands (a saturated 512-node bisection), so a
#: logarithmic scale keeps relative quantile error bounded everywhere.
DEFAULT_BUCKET_BOUNDS = tuple(1 << k for k in range(21))


class LatencySummary:
    """Streaming mean/min/max plus fixed-bucket quantile estimates.

    Values land in fixed buckets (``bounds[i-1] < v <= bounds[i]``, with
    one overflow bucket above the last bound), so memory is O(buckets)
    regardless of sample count and summaries from different nodes can be
    :meth:`merge`\\ d exactly.  Quantiles are bucket-resolution estimates:
    :meth:`percentile` returns the upper bound of the bucket holding the
    requested rank, clamped to the observed min/max.
    """

    __slots__ = ("count", "total", "min", "max", "bounds", "buckets")

    def __init__(self, bounds: Optional[Sequence[int]] = None) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.bounds = (DEFAULT_BUCKET_BOUNDS if bounds is None
                       else tuple(bounds))
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.buckets = [0] * (len(self.bounds) + 1)

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Bucket-resolution quantile estimate (0.0 when empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(self.count * fraction))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                upper = (self.bounds[i] if i < len(self.bounds)
                         else self.max)
                return float(min(max(upper, self.min), self.max))
        return float(self.max)  # pragma: no cover - bucket counts == count

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def merge(self, other: "LatencySummary") -> None:
        """Fold another summary (e.g. a per-node one) into this one."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge summaries with different buckets")
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n

    def snapshot(self) -> Dict[str, float]:
        """Flat scalar view (the telemetry registry's histogram format)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.p50,
            "p99": self.p99,
        }


class NetworkStats:
    """Counters the fabric maintains, with a resettable window.

    ``window_*`` fields accumulate since the last :meth:`open_window`
    call, so benchmarks can warm the network up and then measure a clean
    steady-state interval.
    """

    def __init__(self, mesh: "Mesh3D") -> None:
        self.mesh = mesh
        self.submitted = 0
        self.completed = 0
        self.block_cycles = 0
        self.delivery_stall_cycles = 0
        self.bounces = 0
        #: Messages destroyed in transit by fault injection (repro.chaos).
        self.drops = 0
        self.latency = LatencySummary()
        # measurement window
        self._window_start_cycle = 0
        self.window_completed = 0
        self.window_bisection_words = 0
        self.window_message_words = 0
        self.window_latency = LatencySummary()

    def record_completion(self, worm: "Worm", now: int) -> None:
        self.completed += 1
        message = worm.message
        if message.inject_time is not None:
            latency = now - message.inject_time
            self.latency.record(latency)
            self.window_latency.record(latency)
        self.window_completed += 1
        self.window_message_words += message.length
        if worm.crosses_bisection:
            self.window_bisection_words += message.length

    # -- measurement windows --------------------------------------------------

    def open_window(self, now: int) -> None:
        """Start a fresh measurement interval at cycle ``now``."""
        self._window_start_cycle = now
        self.window_completed = 0
        self.window_bisection_words = 0
        self.window_message_words = 0
        self.window_latency = LatencySummary()

    def window_cycles(self, now: int) -> int:
        return max(1, now - self._window_start_cycle)

    def bisection_traffic_bits_per_s(self, now: int, clock_hz: int = CLOCK_HZ) -> float:
        """Measured bisection traffic, paper convention (one direction).

        Crossings are counted in both directions and halved, matching the
        capacity convention of
        :meth:`~repro.network.topology.Mesh3D.bisection_capacity_bits_per_s`.
        """
        words_per_cycle = self.window_bisection_words / 2 / self.window_cycles(now)
        return words_per_cycle * WORD_BITS * clock_hz

    def message_rate_per_cycle(self, now: int) -> float:
        """Completed messages per cycle in the current window."""
        return self.window_completed / self.window_cycles(now)


def format_channel_heatmap(fabric, dim: int = 0, z: int = 0,
                           direction: int = 1) -> str:
    """Render one Z-plane's channel loads as an ASCII heat map.

    Requires the fabric to have been run with ``track_channel_load``
    enabled.  Each cell shows the relative load of the node's output
    channel in dimension ``dim`` toward ``direction``, scaled 0-9
    against the busiest such channel ('.' = unused).  For uniform random
    traffic under e-cube routing the X midplane columns glow — the
    bisection-concentration effect Figure 3's saturation comes from.
    """
    mesh = fabric.mesh
    x_dim, y_dim, z_dim = mesh.dims
    if not 0 <= z < z_dim:
        raise ValueError(f"z={z} outside mesh")
    loads = {}
    peak = 0
    for (node, channel_dim, channel_dir), phits in \
            fabric.channel_phits.items():
        if channel_dim == dim and channel_dir == direction:
            loads[node] = phits
            peak = max(peak, phits)
    lines = [f"channel load: dim={'XYZ'[dim]} dir={direction:+d} "
             f"z-plane {z} (peak {peak} phits)"]
    for y in range(y_dim - 1, -1, -1):
        row = []
        for x in range(x_dim):
            node = mesh.node_id((x, y, z))
            phits = loads.get(node)
            if not phits:
                row.append(".")
            else:
                row.append(str(min(9, int(round(9 * phits / peak)))))
        lines.append(" ".join(row))
    return "\n".join(lines)
