"""The fabric observatory: per-link and per-router congestion telemetry.

Endpoint statistics (:class:`~repro.network.stats.NetworkStats`) can say
that p99 latency rose; they cannot say *where* in the mesh the cycles
went.  This module adds the missing layer:

* :class:`FabricProbe` — raw counters the fabric accumulates while a
  probe is attached (``fabric.probe`` is None by default, and every
  instrumentation site sits behind the standard ``is None`` guard, so
  un-probed runs are bit-identical and cost nothing):

  - per-directed-link phit and message counts (a channel moves one phit
    per cycle, so accumulated phits / elapsed cycles *is* utilization),
  - per-link blocked-at-head cycles, split by cause: channel busy
    (contention) vs. chaos link outage vs. destination backpressure,
  - per-dimension e-cube hop and phit attribution (X is the bisection
    dimension, so this shows how much traffic the midplane carries),
  - per-router injection-queue occupancy histograms built on
    :class:`~repro.network.stats.LatencySummary`'s mergeable fixed
    buckets.

  Probes merge exactly (:meth:`FabricProbe.merge`), which is what lets
  the sharded parallel backend fold shard-local counters back without
  drift — serial and ``parallel_shards=N`` runs produce equal reports.

* :class:`FabricReport` — the analyzer over a probe: top-k saturated
  links, midplane vs. off-midplane split (same X-midplane convention as
  :meth:`~repro.network.topology.Mesh3D.bisection_channels`), stall
  breakdown, per-Z-slice heat maps, JSON round-trip, and diffs between
  two runs.

``FABRIC_METRICS`` is the canonical schema of everything the telemetry
wiring exports for a probed fabric; docs/OBSERVABILITY.md §8 is kept in
sync with it by a test.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from .routing import ChannelKey, EJECT, INJECT
from .stats import LatencySummary

__all__ = [
    "FabricProbe",
    "FabricReport",
    "FABRIC_METRICS",
    "QUEUE_OCCUPANCY_BOUNDS",
    "link_name",
    "parse_link_name",
]

#: Injection-queue depths span one message to a few hundred under the
#: radix-sort starvation pattern; powers of two to 1024 keep the
#: histogram small and exactly mergeable across shards.
QUEUE_OCCUPANCY_BOUNDS = tuple(1 << k for k in range(11))

#: Canonical fabric-metric schema: (name, type, unit, advance site).
#: The telemetry wiring emits exactly these names (histograms expand to
#: ``.count``/``.mean``/... like every other LatencySummary) and the
#: docs/OBSERVABILITY.md §8 table mirrors this tuple row for row — a
#: sync test keeps the two from drifting.
FABRIC_METRICS = (
    ("net.link.observed", "gauge", "links", "message completion"),
    ("net.link.phits", "counter", "phits", "message completion"),
    ("net.link.messages", "counter", "messages", "message completion"),
    ("net.link.peak_phits", "gauge", "phits", "message completion"),
    ("net.link.peak_utilization", "gauge", "fraction", "snapshot (derived)"),
    ("net.link.blocked_cycles", "counter", "cycles", "head acquisition"),
    ("net.stall.channel_busy", "counter", "cycles", "head acquisition"),
    ("net.stall.link_outage", "counter", "cycles", "head acquisition"),
    ("net.stall.backpressure", "counter", "cycles", "delivery reservation"),
    ("net.dim.x.hops", "counter", "hops", "message completion"),
    ("net.dim.y.hops", "counter", "hops", "message completion"),
    ("net.dim.z.hops", "counter", "hops", "message completion"),
    ("net.dim.x.phits", "counter", "phits", "message completion"),
    ("net.dim.y.phits", "counter", "phits", "message completion"),
    ("net.dim.z.phits", "counter", "phits", "message completion"),
    ("net.router.inject_queue", "histogram", "messages", "injection staging"),
)

_DIM_LETTERS = "xyz"


def link_name(link: ChannelKey) -> str:
    """Stable string form of a directed channel: ``"12.x+"``.

    Mesh channels render as ``<node>.<xyz><+->``; the router's
    processor-side ports (where head flits can also block, waiting for
    a busy ejection port) render as ``<node>.inj`` / ``<node>.ej``.
    """
    node, dim, direction = link
    if dim >= INJECT:
        return f"{node}.{'inj' if dim == INJECT else 'ej'}"
    return f"{node}.{_DIM_LETTERS[dim]}{'+' if direction > 0 else '-'}"


def parse_link_name(name: str) -> ChannelKey:
    """Inverse of :func:`link_name`."""
    node_part, tag = name.rsplit(".", 1)
    if tag == "inj":
        return (int(node_part), INJECT, 0)
    if tag == "ej":
        return (int(node_part), EJECT, 0)
    return (int(node_part), _DIM_LETTERS.index(tag[0]),
            1 if tag[1] == "+" else -1)


class FabricProbe:
    """Raw per-link/per-router counters for one fabric.

    The probe holds no mesh reference and only dicts of ints plus
    histograms, so it deep-copies and pickles cheaply — the parallel
    backend clones it with the fabric and the snapshot layer captures it
    with :meth:`Fabric.state_dict`.

    Accumulation sites (all in ``fabric.py``/``vectorize.py``, all
    behind ``probe is None`` guards):

    * :meth:`record_completion` — message delivered: every phit crossed
      every mesh channel of the path exactly once.
    * :meth:`record_block` — a head flit failed to acquire its next
      virtual channel this cycle (contention or chaos outage).
    * :meth:`record_backpressure` — a fully-arrived worm was refused by
      the destination queue this cycle.
    * :meth:`record_queue_depth` — a worm entered its source's
      injection queue (depth observed after the append).
    """

    __slots__ = (
        "opened_at", "messages", "link_phits", "link_messages",
        "link_blocked", "dim_hops", "dim_phits", "stall_channel_busy",
        "stall_link_outage", "stall_backpressure", "node_backpressure",
        "queue_occupancy",
    )

    def __init__(self, opened_at: int = 0) -> None:
        self.opened_at = opened_at
        self.messages = 0
        self.link_phits: Dict[ChannelKey, int] = {}
        self.link_messages: Dict[ChannelKey, int] = {}
        self.link_blocked: Dict[ChannelKey, int] = {}
        self.dim_hops = [0, 0, 0]
        self.dim_phits = [0, 0, 0]
        self.stall_channel_busy = 0
        self.stall_link_outage = 0
        self.stall_backpressure = 0
        self.node_backpressure: Dict[int, int] = {}
        self.queue_occupancy: Dict[int, LatencySummary] = {}

    # -- accumulation (hot paths: keep these allocation-free) ---------------

    def record_completion(self, worm) -> None:
        """Attribute a delivered worm's phits to every link it held."""
        phits = worm.total_phits
        self.messages += 1
        link_phits = self.link_phits
        link_messages = self.link_messages
        dim_hops = self.dim_hops
        dim_phits = self.dim_phits
        for channel in worm.path:
            dim = channel[1]
            if dim < INJECT:  # mesh channels only
                link_phits[channel] = link_phits.get(channel, 0) + phits
                link_messages[channel] = link_messages.get(channel, 0) + 1
                dim_hops[dim] += 1
                dim_phits[dim] += phits

    def record_block(self, key, outage: bool) -> None:
        """One blocked-at-head cycle on the channel behind ``key``.

        ``key`` is the virtual-channel tuple ``(node, dim, dir, pclass)``;
        blocked cycles aggregate on the physical link.
        """
        link = key[:3]
        self.link_blocked[link] = self.link_blocked.get(link, 0) + 1
        if outage:
            self.stall_link_outage += 1
        else:
            self.stall_channel_busy += 1

    def record_backpressure(self, dest: int, cycles: int = 1) -> None:
        """``cycles`` of delivery refusal by ``dest``'s queue."""
        self.stall_backpressure += cycles
        self.node_backpressure[dest] = (
            self.node_backpressure.get(dest, 0) + cycles)

    def record_queue_depth(self, node: int, depth: int) -> None:
        """A worm joined ``node``'s injection queue at ``depth``."""
        summary = self.queue_occupancy.get(node)
        if summary is None:
            summary = self.queue_occupancy[node] = LatencySummary(
                QUEUE_OCCUPANCY_BOUNDS)
        summary.record(depth)

    # -- derived ------------------------------------------------------------

    def elapsed(self, now: int) -> int:
        """Cycles observed so far (never 0, for safe division)."""
        return max(1, now - self.opened_at)

    def inject_queue_summary(self) -> LatencySummary:
        """All routers' injection-queue occupancy, merged exactly."""
        merged = LatencySummary(QUEUE_OCCUPANCY_BOUNDS)
        for summary in self.queue_occupancy.values():
            merged.merge(summary)
        return merged

    # -- merge (the parallel fold-back / multi-run currency) ----------------

    def merge(self, other: "FabricProbe") -> None:
        """Fold another probe's counters into this one, exactly."""
        self.messages += other.messages
        for field in ("link_phits", "link_messages", "link_blocked"):
            mine = getattr(self, field)
            for link, n in getattr(other, field).items():
                mine[link] = mine.get(link, 0) + n
        for dim in range(3):
            self.dim_hops[dim] += other.dim_hops[dim]
            self.dim_phits[dim] += other.dim_phits[dim]
        self.stall_channel_busy += other.stall_channel_busy
        self.stall_link_outage += other.stall_link_outage
        self.stall_backpressure += other.stall_backpressure
        for node, n in other.node_backpressure.items():
            self.node_backpressure[node] = (
                self.node_backpressure.get(node, 0) + n)
        for node, summary in other.queue_occupancy.items():
            mine = self.queue_occupancy.get(node)
            if mine is None:
                mine = self.queue_occupancy[node] = LatencySummary(
                    QUEUE_OCCUPANCY_BOUNDS)
            mine.merge(summary)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "opened_at": self.opened_at,
            "messages": self.messages,
            "link_phits": {link_name(k): v
                           for k, v in sorted(self.link_phits.items())},
            "link_messages": {link_name(k): v
                              for k, v in sorted(self.link_messages.items())},
            "link_blocked": {link_name(k): v
                             for k, v in sorted(self.link_blocked.items())},
            "dim_hops": list(self.dim_hops),
            "dim_phits": list(self.dim_phits),
            "stall_channel_busy": self.stall_channel_busy,
            "stall_link_outage": self.stall_link_outage,
            "stall_backpressure": self.stall_backpressure,
            "node_backpressure": {str(node): n for node, n
                                  in sorted(self.node_backpressure.items())},
            "queue_occupancy": {str(node): summary.snapshot()
                                for node, summary
                                in sorted(self.queue_occupancy.items())},
        }


class FabricReport:
    """Hotspot analysis over a :class:`FabricProbe`.

    Built with :meth:`from_fabric` at the end of (or during) a run; the
    report is plain data — JSON round-trippable, diffable, and equal
    (``==``) across serial and parallel executions of the same run.
    """

    def __init__(self, dims: Tuple[int, int, int], elapsed: int,
                 messages: int, links: Dict[ChannelKey, Dict[str, float]],
                 dim_hops: List[int], dim_phits: List[int],
                 stalls: Dict[str, int], node_backpressure: Dict[int, int],
                 queue_occupancy: Dict[int, Dict[str, float]]) -> None:
        self.dims = tuple(dims)
        self.elapsed = elapsed
        self.messages = messages
        self.links = links
        self.dim_hops = list(dim_hops)
        self.dim_phits = list(dim_phits)
        self.stalls = dict(stalls)
        self.node_backpressure = dict(node_backpressure)
        self.queue_occupancy = dict(queue_occupancy)

    @classmethod
    def from_fabric(cls, fabric, now: int) -> "FabricReport":
        """Analyze ``fabric.probe`` as of cycle ``now``."""
        probe = fabric.probe
        if probe is None:
            raise ValueError("fabric has no probe attached "
                             "(call fabric.attach_probe() before the run)")
        return cls.from_probe(probe, fabric.mesh.dims, now)

    @classmethod
    def from_probe(cls, probe: FabricProbe, dims: Tuple[int, int, int],
                   now: int) -> "FabricReport":
        elapsed = probe.elapsed(now)
        links: Dict[ChannelKey, Dict[str, float]] = {}
        for link in set(probe.link_phits) | set(probe.link_blocked):
            phits = probe.link_phits.get(link, 0)
            links[link] = {
                "phits": phits,
                "messages": probe.link_messages.get(link, 0),
                "blocked_cycles": probe.link_blocked.get(link, 0),
                "utilization": phits / elapsed,
            }
        return cls(
            dims=dims,
            elapsed=elapsed,
            messages=probe.messages,
            links=links,
            dim_hops=probe.dim_hops,
            dim_phits=probe.dim_phits,
            stalls={
                "channel_busy": probe.stall_channel_busy,
                "link_outage": probe.stall_link_outage,
                "backpressure": probe.stall_backpressure,
            },
            node_backpressure=dict(probe.node_backpressure),
            queue_occupancy={node: summary.snapshot() for node, summary
                             in probe.queue_occupancy.items()},
        )

    # -- analysis -----------------------------------------------------------

    def is_midplane(self, link: ChannelKey) -> bool:
        """Does this channel cross the X midplane?

        Same boundary as
        :meth:`~repro.network.topology.Mesh3D.crosses_x_midplane`: the
        plane sits between ``x = X//2 - 1`` and ``x = X//2``, so the
        crossing channels are the ``x+`` outputs of the former column
        and the ``x-`` outputs of the latter.
        """
        node, dim, direction = link
        if dim != 0:
            return False
        half = self.dims[0] // 2
        x = node % self.dims[0]
        return ((x == half - 1 and direction > 0)
                or (x == half and direction < 0))

    def top_links(self, k: int = 8) -> List[Tuple[ChannelKey, Dict[str, float]]]:
        """The ``k`` busiest links by phits (deterministic tie-break)."""
        ranked = sorted(self.links.items(),
                        key=lambda item: (-item[1]["phits"], item[0]))
        return ranked[:k]

    def midplane_split(self) -> Dict[str, Dict[str, float]]:
        """Traffic split across vs. off the X midplane.

        Uniform random traffic under e-cube routing concentrates on the
        midplane (Figure 3's saturation) — this is the number that shows
        it.  Mean utilization is over *observed* links in each group.
        """
        out = {}
        for group, member in (("midplane", True), ("off_midplane", False)):
            rows = [info for link, info in self.links.items()
                    if self.is_midplane(link) == member]
            utils = [row["utilization"] for row in rows]
            out[group] = {
                "links": len(rows),
                "phits": sum(row["phits"] for row in rows),
                "blocked_cycles": sum(row["blocked_cycles"] for row in rows),
                "mean_utilization": (sum(utils) / len(utils)) if utils else 0.0,
                "peak_utilization": max(utils) if utils else 0.0,
            }
        return out

    def saturated_links(self, threshold: float = 0.5
                        ) -> List[Tuple[ChannelKey, Dict[str, float]]]:
        """Links at or above ``threshold`` utilization (busiest first)."""
        hot = [(link, info) for link, info in self.links.items()
               if info["utilization"] >= threshold]
        hot.sort(key=lambda item: (-item[1]["phits"], item[0]))
        return hot

    def heatmap(self, dim: int = 0, z: int = 0, direction: int = 1) -> str:
        """One Z-plane's link loads as an ASCII grid (0-9, '.' unused).

        Same rendering convention as
        :func:`~repro.network.stats.format_channel_heatmap`, but over
        the probe's counters instead of ``track_channel_load``.
        """
        x_dim, y_dim, z_dim = self.dims
        if not 0 <= z < z_dim:
            raise ValueError(f"z={z} outside mesh")
        loads = {}
        peak = 0
        for (node, link_dim, link_dir), info in self.links.items():
            if link_dim == dim and link_dir == direction:
                loads[node] = info["phits"]
                peak = max(peak, info["phits"])
        lines = [f"link load: dim={_DIM_LETTERS[dim].upper()} "
                 f"dir={direction:+d} z-plane {z} (peak {peak} phits)"]
        for y in range(y_dim - 1, -1, -1):
            row = []
            for x in range(x_dim):
                node = x + x_dim * (y + y_dim * z)
                phits = loads.get(node)
                if not phits:
                    row.append(".")
                else:
                    row.append(str(min(9, int(round(9 * phits / peak)))))
            lines.append(" ".join(row))
        return "\n".join(lines)

    def format(self, top: int = 8, dim: int = 0, direction: int = 1) -> str:
        """Human-readable report: totals, stalls, hotspots, heat maps."""
        lines = [
            f"fabric observatory: {self.dims[0]}x{self.dims[1]}x"
            f"{self.dims[2]} mesh, {self.elapsed} cycles observed, "
            f"{self.messages} messages, {len(self.links)} links touched",
            "stalled cycles: "
            f"channel_busy={self.stalls['channel_busy']} "
            f"link_outage={self.stalls['link_outage']} "
            f"backpressure={self.stalls['backpressure']}",
        ]
        total_hops = sum(self.dim_hops)
        if total_hops:
            shares = " ".join(
                f"{_DIM_LETTERS[d]}={self.dim_hops[d]}"
                f" ({100.0 * self.dim_hops[d] / total_hops:.0f}%)"
                for d in range(3))
            lines.append(f"hop attribution: {shares}")
        split = self.midplane_split()
        mid, off = split["midplane"], split["off_midplane"]
        lines.append(
            f"midplane: {mid['links']} links, "
            f"mean util {mid['mean_utilization']:.3f}, "
            f"peak {mid['peak_utilization']:.3f}; off-midplane: "
            f"{off['links']} links, mean util "
            f"{off['mean_utilization']:.3f}, "
            f"peak {off['peak_utilization']:.3f}")
        ranked = self.top_links(top)
        if ranked:
            lines.append(f"top {len(ranked)} links by phits:")
            for link, info in ranked:
                tag = " [midplane]" if self.is_midplane(link) else ""
                lines.append(
                    f"  {link_name(link):>8}  {info['phits']:>10} phits  "
                    f"util {info['utilization']:.3f}  blocked "
                    f"{info['blocked_cycles']} cyc{tag}")
        for z in range(self.dims[2]):
            lines.append(self.heatmap(dim=dim, z=z, direction=direction))
        return "\n".join(lines)

    # -- serialization / equality / diff ------------------------------------

    def to_dict(self) -> dict:
        return {
            "dims": list(self.dims),
            "elapsed": self.elapsed,
            "messages": self.messages,
            "links": {link_name(k): dict(v)
                      for k, v in sorted(self.links.items())},
            "dim_hops": list(self.dim_hops),
            "dim_phits": list(self.dim_phits),
            "stalls": dict(self.stalls),
            "node_backpressure": {str(node): n for node, n
                                  in sorted(self.node_backpressure.items())},
            "queue_occupancy": {str(node): dict(snap) for node, snap
                                in sorted(self.queue_occupancy.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FabricReport":
        return cls(
            dims=tuple(payload["dims"]),
            elapsed=payload["elapsed"],
            messages=payload["messages"],
            links={parse_link_name(name): dict(info)
                   for name, info in payload["links"].items()},
            dim_hops=list(payload["dim_hops"]),
            dim_phits=list(payload["dim_phits"]),
            stalls=dict(payload["stalls"]),
            node_backpressure={int(node): n for node, n
                               in payload["node_backpressure"].items()},
            queue_occupancy={int(node): dict(snap) for node, snap
                             in payload["queue_occupancy"].items()},
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FabricReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FabricReport):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    __hash__ = None  # mutable container semantics

    def diff(self, other: "FabricReport"
             ) -> Dict[str, Tuple[float, float]]:
        """Per-link phit pairs ``(mine, theirs)`` where they differ,
        plus stall-counter pairs under ``stall.<cause>`` keys."""
        out: Dict[str, Tuple[float, float]] = {}
        for link in sorted(set(self.links) | set(other.links)):
            a = self.links.get(link, {}).get("phits", 0)
            b = other.links.get(link, {}).get("phits", 0)
            if a != b:
                out[link_name(link)] = (a, b)
        for cause in sorted(set(self.stalls) | set(other.stalls)):
            a = self.stalls.get(cause, 0)
            b = other.stalls.get(cause, 0)
            if a != b:
                out[f"stall.{cause}"] = (a, b)
        return out

    def format_diff(self, other: "FabricReport", limit: int = 20) -> str:
        """Text diff of two runs' link loads, largest deltas first."""
        pairs = self.diff(other)
        if not pairs:
            return "fabric: no per-link differences"
        ranked = sorted(pairs.items(),
                        key=lambda item: (-abs(item[1][0] - item[1][1]),
                                          item[0]))
        lines = [f"fabric: {len(pairs)} differing entries "
                 f"(a={self.elapsed} cyc, b={other.elapsed} cyc)"]
        for name, (a, b) in ranked[:limit]:
            lines.append(f"  {name:>20}  a={a:>10}  b={b:>10}  "
                         f"delta={a - b:+}")
        if len(ranked) > limit:
            lines.append(f"  ... {len(ranked) - limit} more")
        return "\n".join(lines)
