"""The 3-D mesh wormhole network: topology, e-cube routing, flit fabric."""

from .fabric import BUFFER_PHITS, Fabric, Worm
from .observatory import FABRIC_METRICS, FabricProbe, FabricReport
from .routing import ChannelKey, EJECT, INJECT, ecube_route, route_hops
from .stats import LatencySummary, NetworkStats, format_channel_heatmap
from .topology import Mesh3D
from .traffic import (
    DEFAULT_LOOP_OVERHEAD,
    RandomTrafficExperiment,
    RandomTrafficResult,
    TerminalBandwidthExperiment,
    TerminalBandwidthResult,
)

__all__ = [
    "BUFFER_PHITS",
    "Fabric",
    "Worm",
    "FABRIC_METRICS",
    "FabricProbe",
    "FabricReport",
    "ChannelKey",
    "EJECT",
    "INJECT",
    "ecube_route",
    "route_hops",
    "LatencySummary",
    "NetworkStats",
    "format_channel_heatmap",
    "Mesh3D",
    "DEFAULT_LOOP_OVERHEAD",
    "RandomTrafficExperiment",
    "RandomTrafficResult",
    "TerminalBandwidthExperiment",
    "TerminalBandwidthResult",
]
