"""Exception hierarchy for the J-Machine reproduction.

Two families of exceptions exist:

* :class:`SimulationError` and subclasses signal *misuse of the simulator*
  (bad configuration, assembling garbage, indexing a node that does not
  exist).  These are ordinary Python errors.
* :class:`MdpFault` and subclasses model *architectural faults* of the MDP
  itself — events the real chip would vector to a system-software fault
  handler (reading a ``cfut`` slot, missing in the name-translation table,
  overflowing the hardware message queue, a send instruction finding the
  network interface unable to accept a word).  The processor model catches
  these internally and invokes the configured fault policy; they only
  escape to the caller when no handler is installed.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "ConfigurationError",
    "AssemblyError",
    "MemoryError_",
    "QueueUnderflowError",
    "DeadlockError",
    "DeliveryError",
    "SnapshotError",
    "MdpFault",
    "CfutFault",
    "FutUseFault",
    "XlateMissFault",
    "QueueOverflowFault",
    "SendFault",
    "EarlySuspend",
    "IllegalInstructionFault",
    "SegmentationFault",
    "TypeFault",
]


class SimulationError(Exception):
    """Base class for errors in the simulation infrastructure itself."""


class ConfigurationError(SimulationError):
    """An invalid machine/network/benchmark configuration was requested."""


class AssemblyError(SimulationError):
    """The MDP assembler rejected a source program."""

    def __init__(self, message: str, line: int = 0, source: str = "") -> None:
        self.line = line
        self.source = source
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")


class MemoryError_(SimulationError):
    """Host-level misuse of a simulated memory (not an architectural fault)."""


class QueueUnderflowError(SimulationError):
    """Dequeue from an empty hardware message queue (host-side misuse).

    The real MDP cannot underflow — dispatch only fires when a message
    reaches the queue head — so an empty-queue dequeue is always a bug in
    the simulation host, not an architectural fault, and must not be
    conflated with :class:`QueueOverflowFault`.
    """


class DeadlockError(SimulationError):
    """The machine (or the network) stopped making progress.

    Raised by the fabric's stagnation watchdog, by
    :class:`~repro.chaos.watchdog.DeadlockWatchdog`, and by
    ``JMachine.run_until_quiescent`` when a run wedges.  Carries a
    diagnostic payload so a hung run fails with *evidence* instead of a
    generic error:

    Attributes:
        now: the simulated cycle the stall was detected at.
        snapshots: per-node diagnostic snapshots (see
            :func:`repro.chaos.watchdog.snapshot_node`), possibly empty.
        worms_in_flight: messages stuck in the network at detection time.
    """

    def __init__(self, detail: str = "", now: int = 0, snapshots=(),
                 worms_in_flight: int = 0) -> None:
        self.now = now
        self.snapshots = list(snapshots)
        self.worms_in_flight = worms_in_flight
        lines = [detail]
        for snap in self.snapshots[:16]:
            lines.append(f"  {snap}")
        if len(self.snapshots) > 16:
            lines.append(f"  ... and {len(self.snapshots) - 16} more nodes")
        super().__init__("\n".join(lines))


class DeliveryError(SimulationError):
    """A reliable-transport message exhausted its retry budget.

    Raised by :class:`repro.runtime.rpc.ReliableLayer` when a message is
    retransmitted ``max_retries`` times without an acknowledgment —
    either the injected loss rate is higher than the retry budget can
    absorb or the destination node is dead.
    """

    def __init__(self, detail: str = "", source: int = -1, dest: int = -1,
                 seq: int = -1, attempts: int = 0) -> None:
        self.source = source
        self.dest = dest
        self.seq = seq
        self.attempts = attempts
        super().__init__(detail)


class SnapshotError(SimulationError):
    """A checkpoint file could not be written, read, or applied.

    Raised by :mod:`repro.snapshot` for corrupt payloads (sha256
    mismatch), unknown format versions, and restores into a simulator
    whose shape (node count, registered handlers) does not match the
    one that was captured.
    """


class MdpFault(Exception):
    """Base class for architectural faults raised inside the MDP model.

    Attributes:
        fault_name: short mnemonic used to look up the fault vector.
        cycles: cycles charged for fault detection itself (the vectoring
            and handler costs are charged by whoever handles the fault).
    """

    fault_name = "fault"
    cycles = 1

    def __init__(self, detail: str = "") -> None:
        self.detail = detail
        super().__init__(f"{self.fault_name}: {detail}" if detail else self.fault_name)


class CfutFault(MdpFault):
    """A ``cfut``-tagged slot was read before its value was produced."""

    fault_name = "cfut"


class FutUseFault(MdpFault):
    """A ``fut``-tagged word was used as an operand."""

    fault_name = "fut"


class XlateMissFault(MdpFault):
    """``xlate`` did not find the key in the associative match table."""

    fault_name = "xlate_miss"


class QueueOverflowFault(MdpFault):
    """A message arrived while the hardware message queue was full."""

    fault_name = "queue_overflow"


class SendFault(MdpFault):
    """The network interface refused a word (injection backpressure)."""

    fault_name = "send"


class EarlySuspend(MdpFault):
    """Internal control-flow signal: the running thread suspended."""

    fault_name = "suspend"


class IllegalInstructionFault(MdpFault):
    """Decode failure or an operation applied to unsupported operands."""

    fault_name = "illegal"


class SegmentationFault(MdpFault):
    """An indexed access fell outside its segment descriptor's bounds."""

    fault_name = "segv"


class TypeFault(MdpFault):
    """A tag check failed (e.g. arithmetic on a non-numeric tag)."""

    fault_name = "type"
