"""The 36-bit tagged word: the MDP's universal unit of state.

A :class:`Word` is an immutable (tag, value) pair.  The value is always
stored as a Python int normalised to the signed 32-bit range; helper
constructors and packers are provided for the architectural tags that carry
structured payloads:

* ``ADDR`` words pack a segment descriptor: 20-bit *base* and 12-bit
  *length*, both in words.  Segments therefore cover the full 1 MByte node
  memory and may be up to 4095 words long, which comfortably holds every
  object the paper's applications allocate.
* ``MSG`` words pack a message descriptor: 16-bit destination node id and a
  16-bit handler hint.
* ``PHYS`` words pack a physical router address: three 6-bit mesh
  coordinates (enough for a 64×64×64 machine, far beyond the 8×8×8 /
  16×8×8 prototypes).

Equality compares tag and value; hashing matches, so words can key
dictionaries (the associative match table relies on this).
"""

from __future__ import annotations

from typing import Tuple

from .errors import TypeFault
from .tags import Tag

__all__ = ["Word", "NIL", "TRUE", "FALSE"]

_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1
_MASK32 = (1 << 32) - 1

_BASE_BITS = 20
_LEN_BITS = 12
_BASE_MASK = (1 << _BASE_BITS) - 1
_LEN_MASK = (1 << _LEN_BITS) - 1

_NODE_BITS = 16
_NODE_MASK = (1 << _NODE_BITS) - 1

_COORD_BITS = 6
_COORD_MASK = (1 << _COORD_BITS) - 1


def _to_signed32(value: int) -> int:
    """Normalise an int into the signed 32-bit range (two's complement)."""
    value &= _MASK32
    if value > _INT_MAX:
        value -= 1 << 32
    return value


class Word:
    """An immutable 36-bit MDP word: 4-bit :class:`Tag` + 32-bit value."""

    __slots__ = ("tag", "value")

    def __init__(self, tag: Tag, value: int = 0) -> None:
        if type(tag) is not Tag:
            tag = Tag(tag)
        value = int(value) & _MASK32
        if value > _INT_MAX:
            value -= 1 << 32
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "value", value)

    # -- immutability -----------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Word is immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError("Word is immutable")

    def __reduce__(self):
        # Default slot-state unpickling would go through __setattr__ and
        # hit the immutability guard; rebuild through the constructor.
        return (Word, (self.tag, self.value))

    # -- constructors -----------------------------------------------------

    @staticmethod
    def from_int(value: int) -> "Word":
        """An ``INT``-tagged word.

        Small values come from an interning cache: words are immutable
        and compare by (tag, value), so sharing them is unobservable,
        and the hot ALU/counter paths allocate mostly small ints.
        """
        cached = _SMALL_INTS.get(value)
        if cached is not None:
            return cached
        return Word(Tag.INT, value)

    @staticmethod
    def from_bool(value: bool) -> "Word":
        """A ``BOOL``-tagged word (value 0 or 1)."""
        return Word(Tag.BOOL, 1 if value else 0)

    @staticmethod
    def from_sym(code: int) -> "Word":
        """A ``SYM``-tagged word carrying a character/symbol code."""
        return Word(Tag.SYM, code)

    @staticmethod
    def ip(address: int) -> "Word":
        """An ``IP``-tagged word: the address of code to run."""
        return Word(Tag.IP, address)

    @staticmethod
    def cfut(token: int = 0) -> "Word":
        """A ``CFUT`` presence tag marking a not-yet-produced slot."""
        return Word(Tag.CFUT, token)

    @staticmethod
    def fut(token: int = 0) -> "Word":
        """A ``FUT`` (copyable) future referencing a pending value."""
        return Word(Tag.FUT, token)

    @staticmethod
    def segment(base: int, length: int) -> "Word":
        """An ``ADDR`` word describing the segment [base, base+length)."""
        if not 0 <= base <= _BASE_MASK:
            raise TypeFault(f"segment base {base} out of range")
        if not 0 <= length <= _LEN_MASK:
            raise TypeFault(f"segment length {length} out of range")
        return Word(Tag.ADDR, (base << _LEN_BITS) | length)

    @staticmethod
    def msg(node: int, hint: int = 0) -> "Word":
        """A ``MSG`` descriptor addressed to ``node``."""
        return Word(Tag.MSG, ((node & _NODE_MASK) << _NODE_BITS) | (hint & _NODE_MASK))

    @staticmethod
    def phys(x: int, y: int, z: int) -> "Word":
        """A ``PHYS`` router address packing three mesh coordinates."""
        for coord in (x, y, z):
            if not 0 <= coord <= _COORD_MASK:
                raise TypeFault(f"router coordinate {coord} out of range")
        return Word(Tag.PHYS, (x << (2 * _COORD_BITS)) | (y << _COORD_BITS) | z)

    # -- structured accessors ----------------------------------------------

    def as_segment(self) -> Tuple[int, int]:
        """Unpack an ``ADDR`` word into (base, length)."""
        if self.tag is not Tag.ADDR:
            raise TypeFault(f"expected ADDR, found {self.tag.name}")
        raw = self.value & _MASK32
        return (raw >> _LEN_BITS) & _BASE_MASK, raw & _LEN_MASK

    def as_msg(self) -> Tuple[int, int]:
        """Unpack a ``MSG`` word into (node, hint)."""
        if self.tag is not Tag.MSG:
            raise TypeFault(f"expected MSG, found {self.tag.name}")
        raw = self.value & _MASK32
        return (raw >> _NODE_BITS) & _NODE_MASK, raw & _NODE_MASK

    def as_phys(self) -> Tuple[int, int, int]:
        """Unpack a ``PHYS`` word into (x, y, z)."""
        if self.tag is not Tag.PHYS:
            raise TypeFault(f"expected PHYS, found {self.tag.name}")
        raw = self.value & _MASK32
        return (
            (raw >> (2 * _COORD_BITS)) & _COORD_MASK,
            (raw >> _COORD_BITS) & _COORD_MASK,
            raw & _COORD_MASK,
        )

    # -- predicates ---------------------------------------------------------

    def is_numeric(self) -> bool:
        """True if the word may be an arithmetic operand."""
        return self.tag in (Tag.INT, Tag.BOOL, Tag.SYM, Tag.FLOAT)

    def is_future(self) -> bool:
        """True for either presence-tag type."""
        return self.tag.is_future()

    def truthy(self) -> bool:
        """Branch-condition interpretation: nonzero value is true."""
        return self.value != 0

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Word):
            return NotImplemented
        return self.tag is other.tag and self.value == other.value

    def __hash__(self) -> int:
        return hash((int(self.tag), self.value))

    def __repr__(self) -> str:
        if self.tag is Tag.ADDR:
            base, length = self.as_segment()
            return f"Word.segment({base}, {length})"
        if self.tag is Tag.MSG:
            node, hint = self.as_msg()
            return f"Word.msg({node}, {hint})"
        return f"Word({self.tag.name}, {self.value})"


#: Interned INT words for the small values the hot paths churn through.
_SMALL_INTS = {v: Word(Tag.INT, v) for v in range(-256, 1025)}

#: Conventional "no value" word: an INT zero.  Registers reset to NIL.
NIL = Word(Tag.INT, 0)
TRUE = Word(Tag.BOOL, 1)
FALSE = Word(Tag.BOOL, 0)
