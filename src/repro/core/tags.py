"""Data-type tags for the MDP's 36-bit tagged words.

Every word in the MDP — in the register file, the on-chip SRAM, and the
off-chip DRAM — carries a 4-bit tag alongside its 32 data bits.  The paper
(Section 2.1) highlights two of the sixteen possible types, ``cfut`` and
``fut``, which mark storage slots whose values have not yet been computed:

* ``CFUT`` ("context future") behaves like a full/empty bit: *any* attempt
  to touch the slot — read or copy — raises a fault so the runtime can
  suspend the reading thread until the value arrives.
* ``FUT`` (general future, after Baker & Hewitt) may be *copied* freely
  without faulting; only an attempt to *use* the value (as an operand of an
  arithmetic/logical operation, a branch condition, an address, …) faults.
  This is what makes futures first-class: they can be returned from
  functions and stored into arrays.

The remaining tags cover the usual scalar types plus the architectural
types the MDP needs: instruction pointers (messages begin with one),
segment-descriptor addresses, and message descriptors.
"""

from __future__ import annotations

import enum

__all__ = ["Tag", "TRAP_ON_READ_TAGS", "TRAP_ON_USE_TAGS", "POINTER_TAGS"]


class Tag(enum.IntEnum):
    """The 4-bit type tag attached to every MDP word.

    The encoding follows the MDP convention of placing the hardware-
    interpreted types in the low codes.  User programs may use ``USER0``
    through ``USER3`` for their own dynamically-checked types.
    """

    INT = 0x0        #: 32-bit signed integer
    BOOL = 0x1       #: boolean (0 or 1)
    SYM = 0x2        #: symbol / character / opaque enumeration
    IP = 0x3         #: instruction pointer (message header word)
    ADDR = 0x4       #: segment descriptor: packed (base, length)
    MSG = 0x5        #: message descriptor: packed (node, handler hint)
    CFUT = 0x6       #: context future — trap on ANY access
    FUT = 0x7        #: future — copyable, trap on USE
    INSTR = 0x8      #: encoded instruction pair (code memory)
    FLOAT = 0x9      #: fixed-point/float payload (not used by the paper)
    VNODE = 0xA      #: virtual node id, pre-NNR-translation
    PHYS = 0xB       #: physical router address (x, y, z packed)
    USER0 = 0xC
    USER1 = 0xD
    USER2 = 0xE
    USER3 = 0xF

    def is_future(self) -> bool:
        """Return True for either of the presence-tag types."""
        return self in (Tag.CFUT, Tag.FUT)


#: Tags that fault when the word is merely *read* (moved/copied).
TRAP_ON_READ_TAGS = frozenset({Tag.CFUT})

#: Tags that fault when the word is *used* as an operand of an operation.
#: ``CFUT`` faults at read time, before use is even attempted, but is
#: included so operand checking is a single set lookup.
TRAP_ON_USE_TAGS = frozenset({Tag.CFUT, Tag.FUT})

#: Tags whose payload is interpreted as a memory reference of some kind.
POINTER_TAGS = frozenset({Tag.ADDR, Tag.MSG, Tag.IP, Tag.VNODE, Tag.PHYS})
