"""The MDP core: tagged words, memory, ISA, queues, naming, and processor.

This package is the paper's primary contribution rendered as a library:
the Message-Driven Processor's mechanisms for communication (SEND
instructions, hardware message queues, 4-cycle dispatch), synchronization
(presence tags, fault-driven suspend/restart), and naming (the
``enter``/``xlate`` associative match table).
"""

from .amt import AssociativeMatchTable
from .costs import CLOCK_HZ, CYCLE_NS, DEFAULT_COSTS, CostModel
from .errors import (
    AssemblyError,
    CfutFault,
    ConfigurationError,
    FutUseFault,
    IllegalInstructionFault,
    MdpFault,
    QueueOverflowFault,
    SegmentationFault,
    SendFault,
    SimulationError,
    TypeFault,
    XlateMissFault,
)
from .faults import AbortFaultPolicy, FaultPolicy, RuntimeFaultPolicy
from .isa import Imm, Instr, MemIdx, MemOff, OPCODES, Reg
from .memory import EMEM_WORDS, IMEM_WORDS, NodeMemory, SegmentAllocator
from .message import Message
from .processor import Mdp, MdpCounters, NetworkInterface, USER_BASE
from .queues import DEFAULT_QUEUE_WORDS, MIN_MESSAGE_WORDS, MessageQueue
from .registers import Priority, RegisterFile, RegisterSet
from .tags import Tag
from .word import FALSE, NIL, TRUE, Word

__all__ = [
    "AssociativeMatchTable",
    "CLOCK_HZ",
    "CYCLE_NS",
    "DEFAULT_COSTS",
    "CostModel",
    "AssemblyError",
    "CfutFault",
    "ConfigurationError",
    "FutUseFault",
    "IllegalInstructionFault",
    "MdpFault",
    "QueueOverflowFault",
    "SegmentationFault",
    "SendFault",
    "SimulationError",
    "TypeFault",
    "XlateMissFault",
    "AbortFaultPolicy",
    "FaultPolicy",
    "RuntimeFaultPolicy",
    "Imm",
    "Instr",
    "MemIdx",
    "MemOff",
    "OPCODES",
    "Reg",
    "EMEM_WORDS",
    "IMEM_WORDS",
    "NodeMemory",
    "SegmentAllocator",
    "Message",
    "Mdp",
    "MdpCounters",
    "NetworkInterface",
    "USER_BASE",
    "DEFAULT_QUEUE_WORDS",
    "MIN_MESSAGE_WORDS",
    "MessageQueue",
    "Priority",
    "RegisterFile",
    "RegisterSet",
    "Tag",
    "FALSE",
    "NIL",
    "TRUE",
    "Word",
]
