"""The MDP instruction set.

The real MDP packs two 17-bit instructions per 36-bit word and provides
"the usual arithmetic, data movement, and control instructions" plus the
communication (``SEND`` family), synchronization (tag checks, faulting
reads), and naming (``ENTER``/``XLATE``) instructions that make it unique
(Section 2.1).  This module defines the *architectural* form of those
instructions — operands, addressing modes, opcode metadata — independent
of both the assembler (which produces them from text) and the processor
(which executes them).

Addressing modes
----------------

======================  =============================  ===================
mode                    assembly syntax                class
======================  =============================  ===================
data register           ``R0`` .. ``R3``               :class:`Reg`
address register        ``A0`` .. ``A3``               :class:`Reg`
immediate               ``#5``, ``#'x``, ``#lbl``      :class:`Imm`
indexed                 ``[A2+3]``, ``[A2]``           :class:`MemOff`
register-indexed        ``[A2+R1]``                    :class:`MemIdx`
======================  =============================  ===================

Indexed modes go through the segment descriptor held in the address
register, so every memory access is bounds checked — the MDP's memory
protection model.  An instruction may name at most one memory operand
(matching the encoding constraint that lets "most operators read one of
the operands from memory").

Cycle costs are *not* stored on instructions; the processor consults the
:class:`~repro.core.costs.CostModel` so ablation benches can retime the
machine without reassembling programs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from .errors import AssemblyError, IllegalInstructionFault
from .registers import ADDR_REG_NAMES, DATA_REG_NAMES
from .tags import Tag
from .word import Word

__all__ = [
    "Reg", "Imm", "MemOff", "MemIdx", "Operand",
    "Instr", "OPCODES", "OpSpec",
    "ALU_OPS", "COMPARE_OPS",
]


class Reg:
    """A register operand: one of R0-R3 / A0-A3."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        name = name.upper()
        if name not in DATA_REG_NAMES and name not in ADDR_REG_NAMES:
            raise IllegalInstructionFault(f"unknown register {name!r}")
        self.name = name

    @property
    def is_address(self) -> bool:
        """True for A-registers (which hold segment descriptors)."""
        return self.name in ADDR_REG_NAMES

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Reg", self.name))

    def __repr__(self) -> str:
        return self.name


class Imm:
    """An immediate operand carrying a full tagged word."""

    __slots__ = ("word",)

    def __init__(self, word: Word) -> None:
        self.word = word

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Imm) and other.word == self.word

    def __hash__(self) -> int:
        return hash(("Imm", self.word))

    def __repr__(self) -> str:
        if self.word.tag is Tag.INT:
            return f"#{self.word.value}"
        if self.word.tag is Tag.IP:
            return f"#IP:{self.word.value}"
        return f"#{self.word!r}"


class MemOff:
    """Indexed memory operand ``[Areg + offset]`` (offset may be 0)."""

    __slots__ = ("areg", "offset")

    def __init__(self, areg: str, offset: int = 0) -> None:
        self.areg = Reg(areg)
        if not self.areg.is_address:
            raise IllegalInstructionFault("indexed access requires an A register")
        self.offset = int(offset)

    def __repr__(self) -> str:
        return f"[{self.areg.name}+{self.offset}]"


class MemIdx:
    """Register-indexed memory operand ``[Areg + Rreg]``."""

    __slots__ = ("areg", "idxreg")

    def __init__(self, areg: str, idxreg: str) -> None:
        self.areg = Reg(areg)
        if not self.areg.is_address:
            raise IllegalInstructionFault("indexed access requires an A register")
        self.idxreg = Reg(idxreg)
        if self.idxreg.is_address:
            raise IllegalInstructionFault("index must be a data register")

    def __repr__(self) -> str:
        return f"[{self.areg.name}+{self.idxreg.name}]"


Operand = Union[Reg, Imm, MemOff, MemIdx]


class OpSpec:
    """Static description of one opcode: operand count and roles.

    ``roles`` is a string of one character per operand:
    ``s`` source, ``d`` destination, ``t`` branch target (label/imm),
    ``g`` tag name (encoded as an Imm holding the tag code).
    """

    __slots__ = ("name", "roles", "kind", "doc")

    def __init__(self, name: str, roles: str, kind: str, doc: str) -> None:
        self.name = name
        self.roles = roles
        self.kind = kind
        self.doc = doc

    @property
    def arity(self) -> int:
        return len(self.roles)


#: Binary ALU operations: dst = s1 OP s2 (INT result).
ALU_OPS = ("ADD", "SUB", "MUL", "DIV", "MOD", "AND", "OR", "XOR", "ASH", "LSH")

#: Comparison operations: dst = s1 CMP s2 (BOOL result).
COMPARE_OPS = ("EQ", "NE", "LT", "LE", "GT", "GE")

OPCODES: Dict[str, OpSpec] = {}


def _op(name: str, roles: str, kind: str, doc: str) -> None:
    OPCODES[name] = OpSpec(name, roles, kind, doc)


# --- data movement ----------------------------------------------------------
_op("MOVE", "sd", "move", "dst = src; faults on cfut read, copies fut freely")
_op("MOVER", "sd", "move", "raw move: no presence-tag fault (fault-handler use)")
_op("WTAG", "sgd", "move", "dst = Word(tag, src.value): retag a word")
_op("RTAG", "sd", "move", "dst = INT(tag code of src)")
_op("MOVEID", "d", "move", "dst = INT(node id) — read the node-number register")
_op("CYCLE", "d", "move",
    "dst = INT(current cycle) — the statistics counter the paper's "
    "critique wished the MDP had included")

# --- arithmetic / logic ------------------------------------------------------
for _name in ALU_OPS:
    _op(_name, "ssd", "alu", f"dst = s1 {_name} s2")
for _name in COMPARE_OPS:
    _op(_name, "ssd", "alu", f"dst = BOOL(s1 {_name} s2)")
_op("NOT", "sd", "alu", "dst = bitwise complement of src")
_op("NEG", "sd", "alu", "dst = -src")

# --- control -------------------------------------------------------------------
_op("BR", "t", "branch", "unconditional branch")
_op("BT", "st", "branch", "branch if src is nonzero")
_op("BF", "st", "branch", "branch if src is zero")
_op("CALL", "td", "branch", "dst = return address; jump to target")
_op("JMP", "s", "branch", "jump to the address held in src")
_op("SUSPEND", "", "control", "end this thread; dispatch the next message")
_op("HALT", "", "control", "stop this node (simulation control)")
_op("NOP", "", "control", "no operation")

# --- messaging ---------------------------------------------------------------------
_op("SEND", "s", "send", "inject one word into the send buffer")
_op("SEND2", "ss", "send", "inject two words in one cycle")
_op("SENDE", "s", "send", "inject final word and launch the message")
_op("SEND2E", "ss", "send", "inject two final words and launch the message")

# --- naming ---------------------------------------------------------------------------
_op("ENTER", "ss", "name", "insert (key, value) into the match table")
_op("XLATE", "sd", "name", "dst = translation of key; faults on miss")
_op("PROBE", "sd", "name", "dst = translation of key, or INT 0 (no fault)")

# --- synchronization ----------------------------------------------------------------------
_op("CHECK", "sgd", "sync", "dst = BOOL(tag of src == tag)")


class Instr:
    """One decoded MDP instruction.

    Attributes:
        op: opcode mnemonic (a key of :data:`OPCODES`).
        operands: operand objects, matching the opcode's :class:`OpSpec`.
        label: optional source-level label attached to this address.
        line: source line (diagnostics).
    """

    __slots__ = ("op", "operands", "label", "line")

    def __init__(
        self,
        op: str,
        operands: Sequence[Operand] = (),
        label: Optional[str] = None,
        line: int = 0,
    ) -> None:
        op = op.upper()
        spec = OPCODES.get(op)
        if spec is None:
            raise AssemblyError(f"unknown opcode {op!r}", line)
        if len(operands) != spec.arity:
            raise AssemblyError(
                f"{op} takes {spec.arity} operands, got {len(operands)}", line
            )
        self.op = op
        self.operands = tuple(operands)
        self.label = label
        self.line = line

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.op]

    def memory_operands(self) -> Tuple[Operand, ...]:
        """The operands that touch memory (for cost accounting)."""
        return tuple(
            operand
            for operand in self.operands
            if isinstance(operand, (MemOff, MemIdx))
        )

    def __repr__(self) -> str:
        parts = ", ".join(repr(operand) for operand in self.operands)
        prefix = f"{self.label}: " if self.label else ""
        return f"{prefix}{self.op} {parts}".strip()


def tag_imm(tag: Tag) -> Imm:
    """Encode a tag name as an immediate operand (for WTAG/CHECK)."""
    return Imm(Word(Tag.SYM, int(tag)))
