"""Translation lookaside buffers — the paper's proposed naming upgrade.

Section 5 (Critique): "The naming mechanisms of the MDP are inadequate to
transparently and inexpensively provide a global name space. ...
Automatic translation from virtual memory addresses to physical memory
address and from virtual node id's to physical router addresses would
eliminate the need for explicit name management.  This mechanism could be
implemented with a pair of TLBs."

This module implements that proposal so its effect can be measured:

* :class:`TranslationBuffer` — a set-associative TLB mapping virtual page
  numbers to physical frame numbers, with LRU replacement and a software-
  walked backing map, mirroring the AMT's structure but *indexed* (no
  explicit ``xlate`` instruction: translation happens on use, for free on
  a hit).
* :class:`NodeTlb` — the second TLB of the pair: virtual node ids to
  physical router node ids.  The machine's network interface consults it
  automatically when a message's destination word carries the ``VNODE``
  tag, which removes the software NNR calculation the applications
  otherwise pay (Figure 6's "NNR Calc" slice) and, because translations
  are confined to the TLB, isolates partitions from each other — the
  protection benefit the paper highlights.

The ablation benchmark ``benchmarks/bench_ablations_naming.py`` measures
both effects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError, XlateMissFault

__all__ = ["TranslationBuffer", "NodeTlb", "DEFAULT_PAGE_WORDS"]

#: Virtual memory pages of 256 words (1 KByte of data).
DEFAULT_PAGE_WORDS = 256


class TranslationBuffer:
    """A set-associative virtual-to-physical translation buffer.

    Keys and values are plain ints (page/frame numbers or node ids);
    timing is the caller's concern: hits are meant to be free (pipelined
    into the access), misses cost a software walk.
    """

    def __init__(self, sets: int = 16, ways: int = 2) -> None:
        if sets <= 0 or ways <= 0:
            raise ConfigurationError("TLB geometry must be positive")
        self.sets = sets
        self.ways = ways
        self._table: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]
        self._backing: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.walks = 0
        self.evictions = 0

    # -- management ---------------------------------------------------------

    def map(self, virtual: int, physical: int) -> None:
        """Install a mapping in the backing table (page-table write)."""
        self._backing[virtual] = physical

    def unmap(self, virtual: int) -> None:
        """Remove a mapping everywhere (invalidation)."""
        self._backing.pop(virtual, None)
        entry_set = self._set_for(virtual)
        entry_set[:] = [(k, v) for (k, v) in entry_set if k != virtual]

    def _set_for(self, virtual: int) -> List[Tuple[int, int]]:
        return self._table[virtual % self.sets]

    # -- translation -----------------------------------------------------------

    def lookup(self, virtual: int) -> Optional[int]:
        """TLB-only probe: physical id on a hit, None on a miss."""
        entry_set = self._set_for(virtual)
        for i, (key, value) in enumerate(entry_set):
            if key == virtual:
                if i != len(entry_set) - 1:
                    entry_set.append(entry_set.pop(i))
                self.hits += 1
                return value
        self.misses += 1
        return None

    def translate(self, virtual: int) -> int:
        """Full translation: TLB, then software walk; faults if unmapped."""
        result = self.lookup(virtual)
        if result is not None:
            return result
        self.walks += 1
        try:
            physical = self._backing[virtual]
        except KeyError:
            raise XlateMissFault(f"virtual id {virtual} is unmapped") from None
        entry_set = self._set_for(virtual)
        if len(entry_set) >= self.ways:
            entry_set.pop(0)
            self.evictions += 1
        entry_set.append((virtual, physical))
        return physical

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._table = [[] for _ in range(self.sets)]
        self._backing.clear()
        self.hits = self.misses = self.walks = self.evictions = 0


class NodeTlb(TranslationBuffer):
    """Virtual node id -> physical node id, with identity preloading.

    A fresh machine maps every node to itself (one flat partition).
    Partitioning experiments remap subsets; ids outside the map fault,
    which is the protection property the paper wants: a program cannot
    name nodes outside its partition.
    """

    def __init__(self, n_nodes: int, sets: int = 16, ways: int = 2) -> None:
        super().__init__(sets=sets, ways=ways)
        self.n_nodes = n_nodes
        for node in range(n_nodes):
            self.map(node, node)

    def restrict_partition(self, members: List[int]) -> None:
        """Keep only ``members`` visible (virtual = rank in partition)."""
        self.clear()
        for rank, node in enumerate(members):
            if not 0 <= node < self.n_nodes:
                raise ConfigurationError(f"node {node} outside machine")
            self.map(rank, node)
