"""The associative match table (AMT): ``enter`` / ``xlate`` hardware.

Section 2.1: "A hardware name-translation table is provided to accelerate
virtual address to physical segment descriptor conversion.  Virtual-
physical pairs are inserted in the table using the ``enter`` instruction
and extracted using ``xlate``.  A successful ``xlate`` takes three
cycles."

The MDP's table is a small set-associative memory; entries can be evicted,
at which point a later ``xlate`` takes a miss fault and system software
reloads the binding from its (memory-resident) table.  We model:

* a bounded table with 2-way set-associative placement and LRU-within-set
  replacement (the MDP used its on-chip SRAM rows similarly),
* an unbounded software backing map, which the miss handler consults,
* hit/miss statistics, which Table 5 of the paper reports for TSP
  (5.1e8 xlates, 1.6e4 xlate faults — a tiny miss ratio).

Keys and values are tagged :class:`~repro.core.word.Word` objects: the tag
participates in matching, so an integer 7 and a symbol 7 are different
names (the MDP compares the full 36-bit key).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import ConfigurationError, XlateMissFault
from .word import Word

__all__ = ["AssociativeMatchTable"]


class AssociativeMatchTable:
    """Bounded 2-way associative name cache over an unbounded backing map."""

    def __init__(self, sets: int = 64, ways: int = 2) -> None:
        if sets <= 0 or ways <= 0:
            raise ConfigurationError("AMT geometry must be positive")
        self.sets = sets
        self.ways = ways
        # Each set is an LRU-ordered list of (key, value); index 0 = LRU.
        self._table: List[List[Tuple[Word, Word]]] = [[] for _ in range(sets)]
        self._backing: Dict[Word, Word] = {}
        # statistics
        self.hits = 0
        self.misses = 0
        self.enters = 0
        self.evictions = 0

    def _set_for(self, key: Word) -> List[Tuple[Word, Word]]:
        return self._table[hash(key) % self.sets]

    # -- architecture-visible operations -------------------------------------

    def enter(self, key: Word, value: Word) -> None:
        """The ``enter`` instruction: insert/replace a binding.

        The binding is recorded in the software backing map and installed
        in the hardware table, evicting the set's LRU entry if needed.
        """
        self.enters += 1
        self._backing[key] = value
        entry_set = self._set_for(key)
        for i, (existing, _) in enumerate(entry_set):
            if existing == key:
                del entry_set[i]
                break
        else:
            if len(entry_set) >= self.ways:
                entry_set.pop(0)
                self.evictions += 1
        entry_set.append((key, value))

    def xlate(self, key: Word) -> Word:
        """The ``xlate`` instruction: translate ``key`` or fault.

        A hit refreshes LRU order and returns the value (3 cycles on the
        real chip; the caller charges cycles).  A miss raises
        :class:`XlateMissFault`; the processor's fault path then calls
        :meth:`miss_fill`.
        """
        entry_set = self._set_for(key)
        for i, (existing, value) in enumerate(entry_set):
            if existing == key:
                self.hits += 1
                if i != len(entry_set) - 1:
                    entry_set.append(entry_set.pop(i))
                return value
        self.misses += 1
        raise XlateMissFault(f"no binding for {key!r}")

    # -- fault path ------------------------------------------------------------

    def miss_fill(self, key: Word) -> Word:
        """The software miss handler: reload from the backing map.

        Raises :class:`XlateMissFault` again if the name is genuinely
        unbound — that is a program error the runtime surfaces.
        """
        try:
            value = self._backing[key]
        except KeyError:
            raise XlateMissFault(f"name {key!r} is unbound") from None
        entry_set = self._set_for(key)
        if len(entry_set) >= self.ways:
            entry_set.pop(0)
            self.evictions += 1
        entry_set.append((key, value))
        return value

    # -- fault injection ------------------------------------------------------

    def poison(self, rng, fraction: float = 1.0) -> int:
        """Evict a deterministic random ``fraction`` of hardware entries.

        Models a transient corruption of the on-chip table (see
        :mod:`repro.chaos`): the *backing map is untouched*, so every
        poisoned name is still bound — the next ``xlate`` simply takes
        the miss fault and the software reload path, exactly the recovery
        the real system performs after losing AMT state.  Returns the
        number of entries evicted; counted in :attr:`evictions`.
        """
        victims = 0
        for entry_set in self._table:
            if not entry_set:
                continue
            keep = []
            for pair in entry_set:
                if rng.random() < fraction:
                    victims += 1
                else:
                    keep.append(pair)
            entry_set[:] = keep
        self.evictions += victims
        return victims

    # -- management ---------------------------------------------------------------

    def purge(self, key: Word) -> None:
        """Remove a binding everywhere (object deletion/migration)."""
        self._backing.pop(key, None)
        entry_set = self._set_for(key)
        entry_set[:] = [(k, v) for (k, v) in entry_set if k != key]

    def probe(self, key: Word) -> Optional[Word]:
        """Non-faulting lookup (hardware ``probe``): value or None."""
        entry_set = self._set_for(key)
        for existing, value in entry_set:
            if existing == key:
                return value
        return self._backing.get(key)

    @property
    def miss_ratio(self) -> float:
        """Fraction of xlates that missed (0.0 when never used)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def clear(self) -> None:
        """Drop all bindings and statistics (machine reset)."""
        self._table = [[] for _ in range(self.sets)]
        self._backing.clear()
        self.hits = self.misses = self.enters = self.evictions = 0
