"""The MDP's hardware message queues.

Arriving messages are buffered automatically in an on-chip queue — one per
priority — and a task is dispatched when a message reaches the head
(Section 2.1).  Capacity is limited: "This queue can contain no more than
256 minimum-length messages (four words) and is configured for 128 of
these messages in Tuned-J" (Section 4.3.3).  We therefore model each queue
as a *word-capacity* ring: a message occupies ``max(len, MIN_MESSAGE_WORDS)``
words, matching the hardware's row-granularity allocation.

When a message would not fit, the queue raises
:class:`~repro.core.errors.QueueOverflowFault`.  The processor model
responds the way the real system software does: an expensive fault handler
spills the message to a memory-backed overflow list (Section 4.3.3 calls
this "relatively expensive ... intended to be used for transient traffic
overruns").  While a queue is refusing words the router backs up, which is
how backpressure propagates (and how send faults arise at remote nodes).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .errors import ConfigurationError, QueueOverflowFault, QueueUnderflowError
from .message import Message

__all__ = ["MessageQueue", "MIN_MESSAGE_WORDS", "DEFAULT_QUEUE_WORDS"]

#: Queue space is allocated in rows of four words (minimum message size).
MIN_MESSAGE_WORDS = 4

#: Tuned-J configures 128 minimum-length messages per queue.
DEFAULT_QUEUE_WORDS = 128 * MIN_MESSAGE_WORDS


class MessageQueue:
    """A word-capacity-bounded FIFO of messages for one priority level."""

    def __init__(self, capacity_words: int = DEFAULT_QUEUE_WORDS) -> None:
        if capacity_words < MIN_MESSAGE_WORDS:
            raise ConfigurationError(
                f"queue capacity {capacity_words} below minimum message size"
            )
        self.capacity_words = capacity_words
        self._messages: Deque[Message] = deque()
        self._used_words = 0
        #: Words withheld from the free pool by fault injection (see
        #: :mod:`repro.chaos`): a forced-exhaustion fault shrinks the
        #: queue's effective capacity without touching real occupancy.
        #: Always 0 outside chaos runs.
        self.pressure_words = 0
        # statistics
        self.enqueued = 0
        self.overflows = 0
        self.high_water = 0

    # -- space accounting ---------------------------------------------------

    @staticmethod
    def footprint(message: Message) -> int:
        """Words of queue space a message occupies (row granularity)."""
        rows = (message.length + MIN_MESSAGE_WORDS - 1) // MIN_MESSAGE_WORDS
        return rows * MIN_MESSAGE_WORDS

    @property
    def used_words(self) -> int:
        """Words of queue space currently occupied."""
        return self._used_words

    @property
    def free_words(self) -> int:
        """Words of queue space currently available."""
        return self.capacity_words - self._used_words - self.pressure_words

    def would_fit(self, message: Message) -> bool:
        """True if ``message`` can be enqueued without overflow."""
        return self.footprint(message) <= self.free_words

    # -- queue operations -----------------------------------------------------

    def enqueue(self, message: Message) -> None:
        """Append a message; raises :class:`QueueOverflowFault` if full."""
        need = self.footprint(message)
        if need > self.free_words:
            self.overflows += 1
            raise QueueOverflowFault(
                f"message of {message.length} words needs {need}, "
                f"only {self.free_words} free"
            )
        self._messages.append(message)
        self._used_words += need
        self.enqueued += 1
        if self._used_words > self.high_water:
            self.high_water = self._used_words

    def head(self) -> Optional[Message]:
        """The message at the head, or None if empty (no dequeue)."""
        return self._messages[0] if self._messages else None

    def dequeue(self) -> Message:
        """Remove and return the head message.

        Raises :class:`QueueUnderflowError` on an empty queue: that is a
        simulation-host bug (dispatch only fires when a message is at
        the head), not the architectural overflow fault.
        """
        if not self._messages:
            raise QueueUnderflowError("dequeue from empty queue")
        message = self._messages.popleft()
        self._used_words -= self.footprint(message)
        return message

    def __len__(self) -> int:
        return len(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def clear(self) -> None:
        """Drop all buffered messages (machine reset)."""
        self._messages.clear()
        self._used_words = 0
        self.pressure_words = 0
