"""Fault handling policies for the MDP.

The MDP reflects exceptional events — reading a not-present value, missing
in the name table, running out of queue space, the network refusing a word
— to *system software* through fault vectors.  What that software does is
a policy choice, and the paper is explicit that policy costs dominate some
mechanisms (Table 2 quotes 30-50 cycles for thread save and 20-50 for
restart, "reflecting different possible policies within the runtime and
compiler system").

:class:`FaultPolicy` is the hook the processor calls; the default
:class:`RuntimeFaultPolicy` implements the behaviour the paper's runtime
uses:

* **cfut read** — suspend the faulting thread, watch the faulted address,
  and restart the thread when a value is written there (charging the
  configured save and restart costs).
* **fut use** — same treatment (the future's value has not arrived).
* **xlate miss** — reload the binding from the software table, charging
  the miss-path cost, and resume the instruction.
* **send fault** — stall one cycle and retry (hardware backpressure).

:class:`AbortFaultPolicy` re-raises everything; unit tests use it to
assert that specific instruction sequences fault.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .errors import CfutFault, FutUseFault, MdpFault, SendFault, XlateMissFault
from .word import Word

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .processor import Mdp

__all__ = ["FaultPolicy", "RuntimeFaultPolicy", "AbortFaultPolicy"]


class FaultPolicy:
    """Interface the processor uses to resolve architectural faults.

    Each method returns the cycle cost of the fault path.  ``on_cfut``
    and ``on_fut_use`` may suspend the current thread (by calling
    ``proc.suspend_on(address)``); the processor then abandons the
    faulting instruction and re-runs it on restart.
    """

    def on_cfut(self, proc: "Mdp", address: Optional[int], fault: CfutFault) -> int:
        raise NotImplementedError

    def on_fut_use(self, proc: "Mdp", address: Optional[int], fault: FutUseFault) -> int:
        raise NotImplementedError

    def on_xlate_miss(self, proc: "Mdp", key: Word, fault: XlateMissFault) -> int:
        raise NotImplementedError

    def on_send_fault(self, proc: "Mdp", fault: SendFault) -> int:
        raise NotImplementedError


class RuntimeFaultPolicy(FaultPolicy):
    """The paper's runtime behaviour: suspend/restart on presence faults.

    Args:
        save_cycles: thread-save cost charged when a presence fault
            suspends the running thread (paper range 30-50).
        restart_cycles: cost charged when the thread is made runnable
            again (paper range 20-50).
    """

    def __init__(self, save_cycles: int = 30, restart_cycles: int = 20) -> None:
        self.save_cycles = save_cycles
        self.restart_cycles = restart_cycles

    def on_cfut(self, proc: "Mdp", address: Optional[int], fault: CfutFault) -> int:
        if address is None:
            # A cfut in a register with no memory home cannot be watched;
            # that is a programming error under this runtime.
            raise fault
        proc.suspend_on(address, restart_cycles=self.restart_cycles)
        return proc.costs.fault_vector + self.save_cycles

    def on_fut_use(self, proc: "Mdp", address: Optional[int], fault: FutUseFault) -> int:
        if address is None:
            raise fault
        proc.suspend_on(address, restart_cycles=self.restart_cycles)
        return proc.costs.fault_vector + self.save_cycles

    def on_xlate_miss(self, proc: "Mdp", key: Word, fault: XlateMissFault) -> int:
        proc.amt.miss_fill(key)  # re-raises if genuinely unbound
        if proc._events is not None:
            # Single emission point covering both the reference
            # interpreter and the fast-path XLATE runner.
            priority = proc._active_priority
            proc._events.emit(
                "xlate-fault", proc._event_time, proc.node_id,
                int(priority) if priority is not None else 0,
                key=repr(key),
            )
        return proc.costs.xlate_miss

    def on_send_fault(self, proc: "Mdp", fault: SendFault) -> int:
        proc.counters.send_faults += 1
        return 1  # retry next cycle


class AbortFaultPolicy(FaultPolicy):
    """Re-raise every fault to the simulation host (for tests)."""

    def _raise(self, fault: MdpFault) -> int:
        raise fault

    def on_cfut(self, proc: "Mdp", address: Optional[int], fault: CfutFault) -> int:
        return self._raise(fault)

    def on_fut_use(self, proc: "Mdp", address: Optional[int], fault: FutUseFault) -> int:
        return self._raise(fault)

    def on_xlate_miss(self, proc: "Mdp", key: Word, fault: XlateMissFault) -> int:
        return self._raise(fault)

    def on_send_fault(self, proc: "Mdp", fault: SendFault) -> int:
        return self._raise(fault)
