"""Messages: the unit of communication and of task creation.

Section 2.1: "The format of a message is arbitrary except that the first
word must contain the address of the code to run at the destination and
the length of the message."  We model a message as an immutable sequence
of tagged words whose word 0 is ``IP``-tagged, plus routing metadata
(source, destination, priority) that in hardware rides in the head flit.

Timestamps are attached by the network/machine layers for latency
accounting; they are not visible to programs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from .errors import TypeFault
from .registers import Priority
from .tags import Tag
from .word import Word

__all__ = ["Message"]


class Message:
    """An MDP message: header word (handler IP) plus body words."""

    __slots__ = (
        "words",
        "source",
        "dest",
        "priority",
        "inject_time",
        "arrive_time",
        "dispatch_time",
        "bounce_of",
        "injection_reported",
        "corrupted",
        "trace",
    )

    def __init__(
        self,
        words: Sequence[Word],
        source: int,
        dest: int,
        priority: Priority = Priority.P0,
    ) -> None:
        words = tuple(words)
        if not words:
            raise TypeFault("a message must contain at least its header word")
        if words[0].tag is not Tag.IP:
            raise TypeFault(
                f"message word 0 must be IP-tagged, found {words[0].tag.name}"
            )
        self.words: Tuple[Word, ...] = words
        self.source = source
        self.dest = dest
        self.priority = Priority(priority)
        self.inject_time: Optional[int] = None
        self.arrive_time: Optional[int] = None
        self.dispatch_time: Optional[int] = None
        #: Under return-to-sender flow control: the refused message this
        #: one is carrying back to its sender (None for normal messages).
        self.bounce_of: Optional["Message"] = None
        #: Fabric bookkeeping: the injection-complete callback has fired
        #: (must be once-only even when the message retries after a
        #: bounce, or send-buffer accounting would double-free).
        self.injection_reported = False
        #: Fault injection flipped a flit in transit (see
        #: :mod:`repro.chaos`); the receiving node's software checksum
        #: will reject the message instead of dispatching it.
        self.corrupted = False
        #: Causal-tracing context ``(trace_id, span_id, parent_span)``
        #: stamped by the sending interface when tracing is enabled (see
        #: :mod:`repro.telemetry.trace`); None otherwise.  Like the
        #: timestamps above, it is carrier metadata — programs never see
        #: it, and it occupies no message words.
        self.trace = None

    @property
    def handler_ip(self) -> int:
        """Address of the code the destination will run."""
        return self.words[0].value

    @property
    def length(self) -> int:
        """Message length in words, including the header."""
        return len(self.words)

    def body(self) -> Tuple[Word, ...]:
        """The argument words (everything after the header)."""
        return self.words[1:]

    @staticmethod
    def build(
        handler_ip: int,
        args: Iterable[Word],
        source: int,
        dest: int,
        priority: Priority = Priority.P0,
    ) -> "Message":
        """Convenience constructor from a handler address and arguments."""
        return Message(
            [Word.ip(handler_ip), *args], source=source, dest=dest, priority=priority
        )

    def __len__(self) -> int:
        return len(self.words)

    def __getitem__(self, index: int) -> Word:
        return self.words[index]

    def __repr__(self) -> str:
        return (
            f"Message(ip={self.handler_ip}, len={self.length}, "
            f"{self.source}->{self.dest}, P{int(self.priority)})"
        )
