"""The MDP register architecture: three register sets for fast interrupts.

Section 2.1: "The register file includes four data registers and four
address registers per priority" and "Fast interrupt processing is achieved
through the use of three distinct register sets" — one for priority-0
threads, one for priority-1 threads, and one for the background thread that
runs when both message queues are empty.  Switching priority levels
therefore costs nothing in save/restore: the processor simply starts using
another set.

Register names follow the MDP convention:

* ``R0..R3`` — data registers
* ``A0..A3`` — address (segment-descriptor) registers; by software
  convention ``A3`` is pointed at the current message on dispatch so the
  handler can read its arguments with ``[A3 + k]`` operands.
* ``IP``    — instruction pointer (word address into code memory, with the
  low bit selecting which of the word's two 17-bit instructions is next).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from .errors import IllegalInstructionFault
from .word import NIL, Word

__all__ = ["Priority", "RegisterSet", "RegisterFile",
           "DATA_REG_NAMES", "ADDR_REG_NAMES", "REGISTER_NAMES"]


class Priority(enum.IntEnum):
    """Execution priority levels, highest first in dispatch preference."""

    P1 = 1          #: priority-one (interrupt) threads
    P0 = 0          #: priority-zero (normal) threads
    BACKGROUND = 2  #: runs only when both queues are empty


DATA_REG_NAMES = ("R0", "R1", "R2", "R3")
ADDR_REG_NAMES = ("A0", "A1", "A2", "A3")
REGISTER_NAMES = DATA_REG_NAMES + ADDR_REG_NAMES + ("IP",)


class RegisterSet:
    """One priority level's registers: R0-R3, A0-A3 and IP."""

    __slots__ = ("regs", "ip")

    def __init__(self) -> None:
        self.regs: Dict[str, Word] = {name: NIL for name in DATA_REG_NAMES + ADDR_REG_NAMES}
        self.ip = 0

    def read(self, name: str) -> Word:
        """Read a register by name (raises on unknown names)."""
        try:
            return self.regs[name]
        except KeyError:
            raise IllegalInstructionFault(f"unknown register {name!r}") from None

    def write(self, name: str, word: Word) -> None:
        """Write a register by name (raises on unknown names)."""
        if name not in self.regs:
            raise IllegalInstructionFault(f"unknown register {name!r}")
        self.regs[name] = word

    def snapshot(self) -> List[Word]:
        """Capture register contents for thread suspension."""
        return [self.regs[name] for name in DATA_REG_NAMES + ADDR_REG_NAMES]

    def restore(self, snapshot: List[Word]) -> None:
        """Restore registers captured by :meth:`snapshot`."""
        names = DATA_REG_NAMES + ADDR_REG_NAMES
        if len(snapshot) != len(names):
            raise IllegalInstructionFault("register snapshot has wrong arity")
        for name, word in zip(names, snapshot):
            self.regs[name] = word

    def clear(self) -> None:
        """Reset all registers to NIL (used between dispatched threads)."""
        for name in self.regs:
            self.regs[name] = NIL
        self.ip = 0


class RegisterFile:
    """The full file: one :class:`RegisterSet` per priority level."""

    __slots__ = ("sets",)

    def __init__(self) -> None:
        self.sets: Dict[Priority, RegisterSet] = {p: RegisterSet() for p in Priority}

    def __getitem__(self, priority: Priority) -> RegisterSet:
        return self.sets[priority]

    def reset(self) -> None:
        """Clear every set (machine reset)."""
        for regset in self.sets.values():
            regset.clear()
