"""Instruction pre-decoding for the MDP's fast execution path.

The reference interpreter (:meth:`repro.core.processor.Mdp._execute_one`)
re-classifies every operand and walks the opcode if-chain on every
execution.  This module compiles each installed instruction *once* into a
closure specialised for its exact operand forms — register names become
captured dict keys, immediates become captured constants, segment offsets
become captured ints — so the per-execution work is just the semantic
core: the reads, the ALU function, the write, the presence-tag guards.

The compiled form of one instruction is a :class:`Decoded` tuple:

``runner``
    ``runner(regset, vnow) -> extra_cycles`` executes the instruction and
    returns the cycles beyond the base cost (exactly what
    ``_dispatch_instr`` returns).  ``None`` means the instruction could
    not be compiled and must go through the reference interpreter.
``cat_key``
    The counter attribute charged (``"compute_cycles"`` etc., the
    Figure 6 category of the instruction's kind).
``base``
    The precomputed base cost: ``reg_op`` plus the external-fetch
    surcharge when the instruction lives outside the SRAM.
``boundary``
    True when the block executor must stop *after* this instruction:
    SEND-family ops (queue/buffer state changes the network can see),
    SUSPEND (dequeues the message), and HALT.
``writes``
    True when executing the instruction may change simulated machine
    state that an ``until`` predicate could read (memory writes, queue
    operations).  The block executor only evaluates its probe after such
    instructions.

Cycle-exactness is the contract: every fault message, every guard order,
every cost term matches the reference path bit for bit.  The equivalence
suite (``tests/test_fastpath_equivalence.py``) enforces this.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Optional, TYPE_CHECKING

from .errors import (
    CfutFault,
    FutUseFault,
    SegmentationFault,
    SendFault,
    TypeFault,
    XlateMissFault,
)
from .isa import Imm, Instr, MemIdx, MemOff, Operand, Reg
from .registers import ADDR_REG_NAMES, DATA_REG_NAMES, RegisterSet
from .tags import Tag
from .word import FALSE, TRUE, Word, _SMALL_INTS

if TYPE_CHECKING:  # pragma: no cover
    from .processor import Mdp

__all__ = ["Decoded", "compile_instr", "BOUNDARY_OPS"]

#: Ops after which a block must stop: they change queue or send-buffer
#: state that the surrounding machine observes between processor steps.
BOUNDARY_OPS = frozenset({"SEND", "SENDE", "SEND2", "SEND2E", "SUSPEND", "HALT"})

_REG_NAMES = frozenset(DATA_REG_NAMES + ADDR_REG_NAMES)

_NUMERIC_TAGS = frozenset((Tag.INT, Tag.BOOL, Tag.SYM, Tag.FLOAT))

Reader = Callable[[RegisterSet], Word]
Writer = Callable[[RegisterSet, Word], None]
Runner = Callable[[RegisterSet, int], int]


class Decoded(NamedTuple):
    """One pre-decoded instruction (see module docstring)."""

    runner: Optional[Runner]
    cat_key: str
    base: int
    boundary: bool
    writes: bool


# --------------------------------------------------------------- operands


def _cfut_read(address: Optional[int]) -> CfutFault:
    fault = CfutFault("read of cfut slot")
    fault.address = address
    return fault


def _cfut_use(address: Optional[int]) -> CfutFault:
    fault = CfutFault("use of cfut slot")
    fault.address = address
    return fault


def _fut_use(address: Optional[int]) -> FutUseFault:
    fault = FutUseFault("use of unresolved future")
    fault.address = address
    return fault


def _make_reader(proc: "Mdp", operand: Operand, mode: str) -> Optional[Reader]:
    """Compile an operand read; ``mode`` is "read", "use", or "raw".

    Mirrors ``Mdp._read_operand``: immediates are unguarded constants,
    register reads guard without an address, memory reads guard with the
    resolved address attached to the fault.
    """
    if isinstance(operand, Imm):
        word = operand.word
        return lambda regset: word

    if isinstance(operand, Reg):
        name = operand.name
        if name not in _REG_NAMES:
            return None
        if mode == "raw":
            return lambda regset: regset.regs[name]
        if mode == "use":

            def read_use(regset: RegisterSet) -> Word:
                word = regset.regs[name]
                tag = word.tag
                if tag is Tag.CFUT:
                    raise _cfut_use(None)
                if tag is Tag.FUT:
                    raise _fut_use(None)
                return word

            return read_use

        def read_move(regset: RegisterSet) -> Word:
            word = regset.regs[name]
            if word.tag is Tag.CFUT:
                raise _cfut_read(None)
            return word

        return read_move

    resolve = _make_resolver(proc, operand)
    if resolve is None:
        return None
    mem_read = proc.memory.read

    if mode == "raw":

        def read_mem_raw(regset: RegisterSet) -> Word:
            return mem_read(resolve(regset))

        return read_mem_raw

    if mode == "use":

        def read_mem_use(regset: RegisterSet) -> Word:
            address = resolve(regset)
            word = mem_read(address)
            tag = word.tag
            if tag is Tag.CFUT:
                raise _cfut_use(address)
            if tag is Tag.FUT:
                raise _fut_use(address)
            return word

        return read_mem_use

    def read_mem(regset: RegisterSet) -> Word:
        address = resolve(regset)
        word = mem_read(address)
        if word.tag is Tag.CFUT:
            raise _cfut_read(address)
        return word

    return read_mem


def _make_resolver(
    proc: "Mdp", operand: Operand
) -> Optional[Callable[[RegisterSet], int]]:
    """Compile a memory operand's address resolution (bounds checked)."""
    if isinstance(operand, MemOff):
        areg = operand.areg.name
        offset = operand.offset
        if areg not in _REG_NAMES:
            return None

        def resolve_off(regset: RegisterSet) -> int:
            base, length = regset.regs[areg].as_segment()
            if not 0 <= offset < length:
                raise SegmentationFault(
                    f"index {offset} outside segment base={base} length={length}"
                )
            return base + offset

        return resolve_off

    if isinstance(operand, MemIdx):
        areg = operand.areg.name
        idxreg = operand.idxreg.name
        if areg not in _REG_NAMES or idxreg not in _REG_NAMES:
            return None

        def resolve_idx(regset: RegisterSet) -> int:
            base, length = regset.regs[areg].as_segment()
            index_word = regset.regs[idxreg]
            tag = index_word.tag
            if tag is Tag.CFUT:
                raise _cfut_use(None)
            if tag is Tag.FUT:
                raise _fut_use(None)
            index = index_word.value
            if not 0 <= index < length:
                raise SegmentationFault(
                    f"index {index} outside segment base={base} length={length}"
                )
            return base + index

        return resolve_idx

    return None


def _make_writer(proc: "Mdp", operand: Operand) -> Optional[Writer]:
    """Compile an operand write, including watched-address wakeups."""
    if isinstance(operand, Reg):
        name = operand.name
        if name not in _REG_NAMES:
            return None

        def write_reg(regset: RegisterSet, word: Word) -> None:
            regset.regs[name] = word

        return write_reg

    if isinstance(operand, Imm):
        return None  # reference path raises IllegalInstructionFault

    resolve = _make_resolver(proc, operand)
    if resolve is None:
        return None
    mem_write = proc.memory.write
    watch = proc._watch
    wake = proc._wake_watchers

    def write_mem(regset: RegisterSet, word: Word) -> None:
        address = resolve(regset)
        mem_write(address, word)
        if watch and address in watch:
            wake(address)

    return write_mem


def _writes_memory(operand: Operand) -> bool:
    return isinstance(operand, (MemOff, MemIdx))


# ------------------------------------------------------------------ opcodes


def _compile_runner(proc: "Mdp", instr: Instr) -> Optional[Runner]:
    # Imported here to share the single authoritative tables with the
    # reference interpreter (one source of truth for semantics).
    from .processor import _ALU_FUNCS, _COMPARE, _MULTICYCLE_ALU

    op = instr.op
    ops = instr.operands
    costs = proc.costs

    if op in _ALU_FUNCS:
        fn = _ALU_FUNCS[op]
        extra = _MULTICYCLE_ALU.get(op, 0)
        read1 = _make_reader(proc, ops[0], "use")
        read2 = _make_reader(proc, ops[1], "use")
        write = _make_writer(proc, ops[2])
        if read1 is None or read2 is None or write is None:
            return None

        if op in _COMPARE:
            # Comparisons only ever produce the two BOOL words; reuse
            # the interned pair instead of allocating per execution.
            def run_alu_cmp(regset: RegisterSet, vnow: int) -> int:
                s1 = read1(regset)
                s2 = read2(regset)
                if s1.tag not in _NUMERIC_TAGS or s2.tag not in _NUMERIC_TAGS:
                    raise TypeFault(
                        f"{op} on non-numeric tags {s1.tag.name},{s2.tag.name}"
                    )
                write(regset, TRUE if fn(s1.value, s2.value) else FALSE)
                return extra

            return run_alu_cmp

        def run_alu(regset: RegisterSet, vnow: int) -> int:
            s1 = read1(regset)
            s2 = read2(regset)
            if s1.tag not in _NUMERIC_TAGS or s2.tag not in _NUMERIC_TAGS:
                raise TypeFault(
                    f"{op} on non-numeric tags {s1.tag.name},{s2.tag.name}"
                )
            value = fn(s1.value, s2.value)
            word = _SMALL_INTS.get(value)
            write(regset, word if word is not None else Word(Tag.INT, value))
            return extra

        return run_alu

    if op in ("MOVE", "MOVER"):
        read = _make_reader(proc, ops[0], "raw" if op == "MOVER" else "read")
        write = _make_writer(proc, ops[1])
        if read is None or write is None:
            return None

        def run_move(regset: RegisterSet, vnow: int) -> int:
            write(regset, read(regset))
            return 0

        return run_move

    if op == "WTAG":
        read = _make_reader(proc, ops[0], "raw")
        read_tag = _make_reader(proc, ops[1], "raw")
        write = _make_writer(proc, ops[2])
        if read is None or read_tag is None or write is None:
            return None

        def run_wtag(regset: RegisterSet, vnow: int) -> int:
            word = read(regset)
            write(regset, Word(Tag(read_tag(regset).value), word.value))
            return 0

        return run_wtag

    if op == "RTAG":
        read = _make_reader(proc, ops[0], "raw")
        write = _make_writer(proc, ops[1])
        if read is None or write is None:
            return None

        def run_rtag(regset: RegisterSet, vnow: int) -> int:
            write(regset, Word.from_int(int(read(regset).tag)))
            return 0

        return run_rtag

    if op == "MOVEID":
        write = _make_writer(proc, ops[0])
        if write is None:
            return None
        ident = Word.from_int(proc.node_id)

        def run_moveid(regset: RegisterSet, vnow: int) -> int:
            write(regset, ident)
            return 0

        return run_moveid

    if op == "CYCLE":
        write = _make_writer(proc, ops[0])
        if write is None:
            return None

        def run_cycle(regset: RegisterSet, vnow: int) -> int:
            write(regset, Word.from_int(vnow))
            return 0

        return run_cycle

    if op in ("NOT", "NEG"):
        read = _make_reader(proc, ops[0], "use")
        write = _make_writer(proc, ops[1])
        if read is None or write is None:
            return None
        negate = op == "NEG"

        def run_unary(regset: RegisterSet, vnow: int) -> int:
            value = read(regset).value
            write(regset, Word.from_int(-value if negate else ~value))
            return 0

        return run_unary

    if op in ("BR", "JMP"):
        read = _make_reader(proc, ops[0], "use")
        if read is None:
            return None
        taken_extra = costs.branch_taken_extra

        def run_br(regset: RegisterSet, vnow: int) -> int:
            regset.ip = read(regset).value
            return taken_extra

        return run_br

    if op in ("BT", "BF"):
        read_cond = _make_reader(proc, ops[0], "use")
        read_target = _make_reader(proc, ops[1], "use")
        if read_cond is None or read_target is None:
            return None
        want_true = op == "BT"
        taken_extra = costs.branch_taken_extra

        def run_cond_br(regset: RegisterSet, vnow: int) -> int:
            if (read_cond(regset).value != 0) is want_true:
                regset.ip = read_target(regset).value
                return taken_extra
            return 0

        return run_cond_br

    if op == "CALL":
        read = _make_reader(proc, ops[0], "use")
        write = _make_writer(proc, ops[1])
        if read is None or write is None:
            return None
        taken_extra = costs.branch_taken_extra

        def run_call(regset: RegisterSet, vnow: int) -> int:
            return_addr = Word.from_int(regset.ip)
            regset.ip = read(regset).value
            write(regset, return_addr)
            return taken_extra

        return run_call

    if op == "SUSPEND":

        def run_suspend(regset: RegisterSet, vnow: int) -> int:
            proc._finish_thread(proc._active_priority)
            return 0

        return run_suspend

    if op == "HALT":

        def run_halt(regset: RegisterSet, vnow: int) -> int:
            proc.halted = True
            return 0

        return run_halt

    if op == "NOP":
        return lambda regset, vnow: 0

    if op in ("SEND", "SENDE"):
        read = _make_reader(proc, ops[0], "read")
        if read is None:
            return None
        end = op == "SENDE"
        meter = proc.memory.meter
        reg_op = costs.reg_op
        counters = proc.counters.__dict__

        def run_send(regset: RegisterSet, vnow: int) -> int:
            word = read(regset)
            # The word enters the interface when the instruction retires,
            # so a slow (external-memory) operand delays the launch.
            retire = vnow + meter.cycles + reg_op
            proc.network.send_word(proc._active_priority, word, end=end,
                                   now=retire)
            counters["words_sent"] += 1
            if end:
                counters["messages_sent"] += 1
            return 0

        return run_send

    if op in ("SEND2", "SEND2E"):
        read1 = _make_reader(proc, ops[0], "read")
        read2 = _make_reader(proc, ops[1], "read")
        if read1 is None or read2 is None:
            return None
        end = op == "SEND2E"
        meter = proc.memory.meter
        reg_op = costs.reg_op
        counters = proc.counters.__dict__

        def run_send2(regset: RegisterSet, vnow: int) -> int:
            w1 = read1(regset)
            w2 = read2(regset)
            priority = proc._active_priority
            network = proc.network
            if not network.can_accept(priority, 2):
                raise SendFault("send buffer full")
            retire = vnow + meter.cycles + reg_op
            network.send_word(priority, w1, end=False, now=retire)
            network.send_word(priority, w2, end=end, now=retire)
            counters["words_sent"] += 2
            if end:
                counters["messages_sent"] += 1
            return 0

        return run_send2

    if op == "ENTER":
        read_key = _make_reader(proc, ops[0], "read")
        read_value = _make_reader(proc, ops[1], "read")
        if read_key is None or read_value is None:
            return None
        enter = proc.amt.enter
        extra = costs.enter - costs.reg_op

        def run_enter(regset: RegisterSet, vnow: int) -> int:
            key = read_key(regset)
            enter(key, read_value(regset))
            return extra

        return run_enter

    if op == "XLATE":
        read_key = _make_reader(proc, ops[0], "read")
        write = _make_writer(proc, ops[1])
        if read_key is None or write is None:
            return None
        amt = proc.amt
        hit_extra = costs.xlate_hit - costs.reg_op

        def run_xlate(regset: RegisterSet, vnow: int) -> int:
            key = read_key(regset)
            try:
                value = amt.xlate(key)
                extra = hit_extra
            except XlateMissFault as fault:
                miss_cost = proc.fault_policy.on_xlate_miss(proc, key, fault)
                value = amt.probe(key)
                if value is None:
                    raise
                extra = miss_cost
            write(regset, value)
            return extra

        return run_xlate

    if op == "PROBE":
        read_key = _make_reader(proc, ops[0], "read")
        write = _make_writer(proc, ops[1])
        if read_key is None or write is None:
            return None
        amt_probe = proc.amt.probe
        extra = costs.xlate_hit - costs.reg_op
        missing = Word.from_int(0)

        def run_probe(regset: RegisterSet, vnow: int) -> int:
            value = amt_probe(read_key(regset))
            write(regset, value if value is not None else missing)
            return extra

        return run_probe

    if op == "CHECK":
        read = _make_reader(proc, ops[0], "raw")
        read_tag = _make_reader(proc, ops[1], "raw")
        write = _make_writer(proc, ops[2])
        if read is None or read_tag is None or write is None:
            return None

        def run_check(regset: RegisterSet, vnow: int) -> int:
            word = read(regset)
            tag = Tag(read_tag(regset).value)
            write(regset, Word.from_bool(word.tag is tag))
            return 0

        return run_check

    return None  # unimplemented opcode: reference path raises


def _written_operands(instr: Instr) -> tuple:
    """Destination operands, per opcode (for the ``writes`` flag)."""
    op = instr.op
    ops = instr.operands
    from .processor import _ALU_FUNCS

    if op in _ALU_FUNCS or op in ("WTAG", "CHECK"):
        return (ops[2],)
    if op in ("MOVE", "MOVER", "RTAG", "NOT", "NEG", "XLATE", "PROBE"):
        return (ops[1],)
    if op in ("MOVEID", "CYCLE"):
        return (ops[0],)
    if op == "CALL":
        return (ops[1],)
    return ()


def compile_instr(proc: "Mdp", addr: int, instr: Instr) -> Decoded:
    """Compile one installed instruction into its :class:`Decoded` form."""
    from .processor import _KIND_CATEGORY

    cat_key = _KIND_CATEGORY[instr.spec.kind] + "_cycles"
    base = proc.costs.reg_op
    if not proc.memory.is_internal(addr):
        base += proc.costs.emem_fetch_per_word // 2
    boundary = instr.op in BOUNDARY_OPS
    runner = _compile_runner(proc, instr)
    writes = (
        boundary  # queue/buffer state changes
        or runner is None  # reference path: assume the worst
        or instr.op in ("ENTER", "XLATE")  # may mutate the match table
        or any(_writes_memory(dest) for dest in _written_operands(instr))
    )
    return Decoded(runner, cat_key, base, boundary, writes)
