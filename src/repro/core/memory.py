"""The MDP node memory system.

Each J-Machine node couples the MDP's 4K-word on-chip SRAM with 1 MByte of
external ECC DRAM (three 1M x 4 chips).  Both memories hold 36-bit tagged
words.  The two memories form a single flat word-address space:

* words ``[0, imem_words)``           — internal SRAM (1-cycle access)
* words ``[imem_words, total_words)`` — external DRAM (6-cycle access)

A fixed region at the bottom of the SRAM holds the hardware structures:
fault vectors, the two message queues, and the send buffer.  The rest is
available to code and data; the :class:`SegmentAllocator` hands out
segment descriptors (``ADDR`` words) the way the MDP's memory-management
unit expects objects to be referenced — every indexed access is bounds
checked against its descriptor, which is what lets objects be relocated
for heap compaction.

Access-cost accounting is *pull* style: reads and writes return/record the
cycle cost via the optional ``meter``; the processor adds those cycles to
its clock.  This keeps the memory model usable standalone in tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .costs import CostModel, DEFAULT_COSTS
from .errors import MemoryError_, SegmentationFault
from .word import NIL, Word

__all__ = ["AccessMeter", "NodeMemory", "SegmentAllocator",
           "IMEM_WORDS", "EMEM_WORDS", "TOTAL_WORDS"]

#: 4K words of on-chip SRAM (Section 1).
IMEM_WORDS = 4096

#: 1 MByte of DRAM = 256K * 32-bit data words (Section 1).
EMEM_WORDS = 256 * 1024

#: Total flat address space per node, in words.
TOTAL_WORDS = IMEM_WORDS + EMEM_WORDS


class AccessMeter:
    """Accumulates memory-access cycle charges and traffic counts."""

    __slots__ = ("cycles", "imem_reads", "imem_writes", "emem_reads", "emem_writes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.cycles = 0
        self.imem_reads = 0
        self.imem_writes = 0
        self.emem_reads = 0
        self.emem_writes = 0

    def take_cycles(self) -> int:
        """Return and clear the accumulated cycle charge."""
        cycles = self.cycles
        self.cycles = 0
        return cycles


class NodeMemory:
    """Flat tagged-word memory of one node: SRAM low, DRAM high."""

    def __init__(
        self,
        imem_words: int = IMEM_WORDS,
        emem_words: int = EMEM_WORDS,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        if imem_words <= 0 or emem_words < 0:
            raise MemoryError_("memory sizes must be positive")
        self.imem_words = imem_words
        self.emem_words = emem_words
        self.total_words = imem_words + emem_words
        self.costs = costs
        self.meter = AccessMeter()
        # The SRAM is dense; the DRAM is allocated lazily (a 512-node
        # machine would otherwise hold 512 x 256K word cells up front,
        # and most nodes never touch most of their DRAM).  Word objects
        # are immutable, so sharing NIL is safe.
        self._imem_cells: List[Word] = [NIL] * imem_words
        self._emem_cells: dict = {}

    # -- classification ------------------------------------------------------

    def is_internal(self, address: int) -> bool:
        """True if ``address`` falls in the on-chip SRAM."""
        return 0 <= address < self.imem_words

    def _check(self, address: int) -> None:
        if not 0 <= address < self.total_words:
            raise SegmentationFault(f"address {address} outside node memory")

    def access_cycles(self, address: int) -> int:
        """Cycle cost of touching ``address`` once."""
        if self.is_internal(address):
            return self.costs.imem_access
        return self.costs.emem_access

    # -- raw access ---------------------------------------------------------

    def read(self, address: int) -> Word:
        """Read one word, charging the access cost to the meter.

        Presence-tag faulting is *not* done here: the MDP faults when the
        processor moves a ``cfut`` into a register, and the processor model
        owns that check.  Raw reads let the runtime inspect tags.
        """
        self._check(address)
        if address < self.imem_words:
            self.meter.imem_reads += 1
            self.meter.cycles += self.costs.imem_access
            return self._imem_cells[address]
        self.meter.emem_reads += 1
        self.meter.cycles += self.costs.emem_access
        return self._emem_cells.get(address, NIL)

    def write(self, address: int, word: Word) -> None:
        """Write one word, charging the access cost to the meter."""
        self._check(address)
        if not isinstance(word, Word):
            raise MemoryError_(f"can only store Word, got {type(word).__name__}")
        if address < self.imem_words:
            self.meter.imem_writes += 1
            self.meter.cycles += self.costs.imem_access
            self._imem_cells[address] = word
        else:
            self.meter.emem_writes += 1
            self.meter.cycles += self.costs.emem_access
            self._emem_cells[address] = word

    def peek(self, address: int) -> Word:
        """Read without metering (debugger/test access)."""
        self._check(address)
        if address < self.imem_words:
            return self._imem_cells[address]
        return self._emem_cells.get(address, NIL)

    def poke(self, address: int, word: Word) -> None:
        """Write without metering (loader/debugger access)."""
        self._check(address)
        if address < self.imem_words:
            self._imem_cells[address] = word
        else:
            self._emem_cells[address] = word

    # -- block helpers ------------------------------------------------------

    def load_block(self, base: int, words: List[Word]) -> None:
        """Loader helper: poke a contiguous block (no cycle charges)."""
        if base < 0 or base + len(words) > self.total_words:
            raise MemoryError_(
                f"block [{base}, {base + len(words)}) outside node memory"
            )
        for offset, word in enumerate(words):
            self.poke(base + offset, word)

    def dump_block(self, base: int, count: int) -> List[Word]:
        """Debugger helper: peek a contiguous block (no cycle charges)."""
        if base < 0 or base + count > self.total_words:
            raise MemoryError_(f"block [{base}, {base + count}) outside node memory")
        return [self.peek(base + offset) for offset in range(count)]

    # -- segment (descriptor-checked) access ---------------------------------

    def read_indexed(self, descriptor: Word, index: int) -> Word:
        """Read ``descriptor[index]`` with bounds checking.

        This is the MDP's indexed addressing mode: every object access goes
        through a segment descriptor so that the length check is free in
        hardware (and so objects can be relocated).
        """
        base, length = descriptor.as_segment()
        if not 0 <= index < length:
            raise SegmentationFault(
                f"index {index} outside segment base={base} length={length}"
            )
        return self.read(base + index)

    def write_indexed(self, descriptor: Word, index: int, word: Word) -> None:
        """Write ``descriptor[index]`` with bounds checking."""
        base, length = descriptor.as_segment()
        if not 0 <= index < length:
            raise SegmentationFault(
                f"index {index} outside segment base={base} length={length}"
            )
        self.write(base + index, word)


class SegmentAllocator:
    """Bump allocator handing out segment descriptors.

    Two independent bump pointers cover the internal and external regions;
    ``alloc`` takes ``internal=True`` to request on-chip space.  The real
    machine's runtime performs heap compaction (the paper notes objects
    "may be relocated at will"); this allocator supports ``reset`` and
    ``mark``/``release`` for arena-style reuse, which is all the
    benchmarks need.
    """

    def __init__(self, memory: NodeMemory, imem_start: int, emem_start: Optional[int] = None) -> None:
        if emem_start is None:
            emem_start = memory.imem_words
        if not 0 <= imem_start <= memory.imem_words:
            raise MemoryError_(f"imem_start {imem_start} outside SRAM")
        if not memory.imem_words <= emem_start <= memory.total_words:
            raise MemoryError_(f"emem_start {emem_start} outside DRAM")
        self.memory = memory
        self._imem_next = imem_start
        self._emem_next = emem_start
        self._imem_start = imem_start
        self._emem_start = emem_start

    def alloc(self, length: int, internal: bool = False) -> Word:
        """Allocate ``length`` words and return the segment descriptor."""
        if length <= 0:
            raise MemoryError_("segment length must be positive")
        if internal:
            base = self._imem_next
            if base + length > self.memory.imem_words:
                raise MemoryError_(
                    f"internal memory exhausted ({length} words requested)"
                )
            self._imem_next = base + length
        else:
            base = self._emem_next
            if base + length > self.memory.total_words:
                raise MemoryError_(
                    f"external memory exhausted ({length} words requested)"
                )
            self._emem_next = base + length
        return Word.segment(base, length)

    def mark(self) -> Tuple[int, int]:
        """Snapshot the allocation frontier (for arena release)."""
        return (self._imem_next, self._emem_next)

    def release(self, mark: Tuple[int, int]) -> None:
        """Roll the frontier back to a previous :meth:`mark`."""
        imem, emem = mark
        if not self._imem_start <= imem <= self._imem_next:
            raise MemoryError_("bad imem release mark")
        if not self._emem_start <= emem <= self._emem_next:
            raise MemoryError_("bad emem release mark")
        self._imem_next, self._emem_next = imem, emem

    def reset(self) -> None:
        """Release everything allocated since construction."""
        self._imem_next = self._imem_start
        self._emem_next = self._emem_start

    @property
    def imem_free(self) -> int:
        """Words of on-chip memory still available."""
        return self.memory.imem_words - self._imem_next

    @property
    def emem_free(self) -> int:
        """Words of external memory still available."""
        return self.memory.total_words - self._emem_next
