"""Instruction-level execution tracing.

The paper's authors lamented the absence of statistics hardware;
simulation has no such excuse.  A :class:`Tracer` attached to an
:class:`~repro.core.processor.Mdp` records every executed instruction,
dispatch, suspension, and restart with its cycle timestamp, subject to
filters, and renders a human-readable listing — the tool you want when a
handler misbehaves three messages deep into a 512-node run.

Usage::

    tracer = Tracer.attach(machine.node(3).proc, limit=500)
    machine.run(...)
    print(tracer.format())

Tracing costs host time only; simulated timing is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .isa import Instr
from .processor import Mdp

__all__ = ["TraceEvent", "Tracer"]


@dataclass
class TraceEvent:
    """One recorded event: an instruction or a scheduling action."""

    cycle: int
    node: int
    priority: str
    kind: str          # "instr" | "dispatch" | "suspend" | "restart"
    detail: str
    address: Optional[int] = None

    def render(self) -> str:
        where = f"@{self.address}" if self.address is not None else ""
        return (f"[{self.cycle:>8}] n{self.node} {self.priority:<3} "
                f"{self.kind:<8} {where:<7} {self.detail}")


class Tracer:
    """Records a processor's execution by wrapping its tick method."""

    def __init__(self, proc: Mdp, limit: int = 10_000,
                 predicate: Optional[Callable[[Instr], bool]] = None) -> None:
        self.proc = proc
        self.limit = limit
        self.predicate = predicate
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._original_tick = None
        self._saved_fast_path = proc.fast_path

    @classmethod
    def attach(cls, proc: Mdp, limit: int = 10_000,
               predicate: Optional[Callable[[Instr], bool]] = None) -> "Tracer":
        """Create a tracer and splice it into the processor."""
        tracer = cls(proc, limit=limit, predicate=predicate)
        tracer._splice()
        return tracer

    def _splice(self) -> None:
        if self._original_tick is not None:
            return  # already attached; a re-entrant attach must not
            # re-save fast_path (it is False while spliced) or wrap
            # the already-wrapped tick.
        proc = self.proc
        original = proc.tick
        self._original_tick = original
        # Tracing wants one instruction per tick; force the per-step
        # reference path while attached (simulated timing is identical).
        self._saved_fast_path = proc.fast_path
        proc.fast_path = False

        def traced_tick(now: int, deadline=None, probe=None):
            before = _snapshot(proc)
            result = original(now)
            self._record(now, before, _snapshot(proc))
            return result

        proc.tick = traced_tick  # type: ignore[method-assign]

    def detach(self) -> None:
        """Restore the processor's untraced tick and fast-path setting.

        Safe to call more than once, and ``fast_path`` is restored even
        if un-splicing fails partway — so a detach in an ``except`` or
        ``finally`` block after a run raised always leaves the processor
        in its original configuration.
        """
        try:
            if self._original_tick is not None:
                self.proc.tick = self._original_tick  # type: ignore[method-assign]
                self._original_tick = None
        finally:
            self.proc.fast_path = self._saved_fast_path

    def __enter__(self) -> "Tracer":
        self._splice()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # ------------------------------------------------------------ recording

    def _record(self, now: int, before: dict, after: dict) -> None:
        proc = self.proc
        events = []
        if after["dispatches"] > before["dispatches"]:
            events.append(("dispatch", "message thread dispatched", None))
        if after["restarts"] > before["restarts"]:
            events.append(("restart", "suspended thread restarted", None))
        if after["suspends"] > before["suspends"]:
            events.append(("suspend", "thread suspended on cfut", None))
        if after["instructions"] > before["instructions"]:
            address = before["ip"]
            instr = proc.code.get(address)
            if instr is not None and (self.predicate is None
                                      or self.predicate(instr)):
                events.append(("instr", repr(instr), address))
        priority = before["priority"]
        for kind, detail, address in events:
            if len(self.events) >= self.limit:
                self.dropped += 1
                continue
            self.events.append(TraceEvent(
                cycle=now, node=proc.node_id, priority=priority,
                kind=kind, detail=detail, address=address,
            ))

    # ------------------------------------------------------------ reporting

    def format(self, kinds: Optional[set] = None) -> str:
        lines = [event.render() for event in self.events
                 if kinds is None or event.kind in kinds]
        if self.dropped:
            lines.append(f"... {self.dropped} events beyond the "
                         f"{self.limit}-event limit were dropped")
        return "\n".join(lines)

    def instructions(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "instr"]


def _snapshot(proc: Mdp) -> dict:
    counters = proc.counters
    selection = proc._select()
    if selection is not None:
        priority = selection[0].name
        regset = proc.registers[selection[0]]
        ip = regset.ip
    else:
        priority, ip = "-", 0
    return {
        "instructions": counters.instructions,
        "dispatches": counters.dispatches,
        "suspends": counters.suspends,
        "restarts": counters.restarts,
        "priority": priority,
        "ip": ip,
    }
