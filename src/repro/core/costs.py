"""The MDP cycle-cost model.

Every timing constant the paper publishes is collected here, in one place,
so that the cycle simulator (``repro.core.processor``), the event-driven
macro simulator (``repro.jsim``), and the benchmark harness all draw on the
same numbers.  Citations point at the paper section that states each value.

Key constants (Section 2.1 unless noted):

* The processor clock is 12.5 MHz (Section 2.2), i.e. 80 ns/cycle.
* Most instructions take 1 cycle with both operands in registers and
  2 cycles with one operand in internal memory.
* External memory has a 6-cycle access latency (Section 5, "External
  memory latency (6 cycles)").
* A series of send instructions injects up to 2 words/cycle.
* Network channels carry 0.5 words/cycle; head latency is 1 cycle/hop.
* Message dispatch takes 4 processor cycles.
* A successful ``xlate`` takes 3 cycles.
* The remote-read micro-benchmark adds 2 cycles/word for internal memory
  and 8 cycles/word for external memory (Section 3.1).
* The null-RPC base latency is 43 cycles: 24 cycles of network time plus
  19 cycles of thread execution (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["CostModel", "DEFAULT_COSTS", "CLOCK_HZ", "CYCLE_NS", "WORD_BITS",
           "DATA_BITS", "PHITS_PER_WORD"]

#: Prototype clock rate: 12.5 MHz (Section 2.2).
CLOCK_HZ = 12_500_000

#: One processor cycle, in nanoseconds.
CYCLE_NS = 1e9 / CLOCK_HZ  # 80 ns

#: Full word width including tag.
WORD_BITS = 36

#: Data bits per word (what "bandwidth" counts — tags ride along free).
DATA_BITS = 32

#: A word crosses a channel as two physical transfer units (phits), which
#: is what "channel bandwidth is 0.5 words/cycle" means.
PHITS_PER_WORD = 2


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of MDP operations.

    The defaults encode the published machine; benchmarks construct
    variants via :meth:`with_overrides` for ablation studies (e.g. a
    software-dispatch machine, or slower external memory).
    """

    # --- instruction execution -------------------------------------------
    #: Base cost of an instruction with register/immediate operands.
    reg_op: int = 1
    #: Extra cycles when one operand lives in internal (on-chip) memory.
    imem_operand_extra: int = 1
    #: Extra cycles when an operand lives in external DRAM.
    emem_operand_extra: int = 5          # 6-cycle access = 1 base + 5 extra
    #: Penalty for a taken branch (prefetch refill).
    branch_taken_extra: int = 2
    #: Cycles to fetch one instruction word (two instructions) from EMEM
    #: when executing out of external memory.
    emem_fetch_per_word: int = 6

    # --- memory ------------------------------------------------------------
    #: Internal SRAM read/write latency (cycles) for explicit accesses.
    imem_access: int = 1
    #: External DRAM access latency (cycles).
    emem_access: int = 6
    #: Cycles to relocate one arriving message word into internal memory
    #: ("it takes at least 3 cycles to relocate the value into internal
    #: memory and 6 into external memory", Section 4.3.2).
    queue_copy_imem_per_word: int = 3
    queue_copy_emem_per_word: int = 6

    # --- messaging -----------------------------------------------------------
    #: Words injected per cycle by back-to-back SEND2 instructions.
    inject_words_per_cycle: int = 2
    #: Cycles from message-at-queue-head to first handler instruction.
    dispatch: int = 4
    #: Cycles of thread execution in the null-RPC round trip (two threads
    #: totalling 19 cycles; the request thread runs 10, the reply 9).
    null_rpc_thread_cycles: int = 19
    #: Per-word cost of computing a remote-read reply from internal memory.
    remote_read_imem_per_word: int = 2
    #: Per-word cost of computing a remote-read reply from external memory.
    remote_read_emem_per_word: int = 8

    # --- network ---------------------------------------------------------------
    #: Head-flit latency per hop, cycles.
    hop: int = 1
    #: Cycles for one phit to cross a channel.
    phit: int = 1
    #: Phits per 36-bit word.
    phits_per_word: int = PHITS_PER_WORD
    #: Cycles consumed in the router at injection and at delivery (each).
    interface: int = 1

    # --- naming -----------------------------------------------------------------
    #: Cycles for a successful xlate (hit in the associative match table).
    xlate_hit: int = 3
    #: Cycles for the xlate-miss fault path (vector + software probe).
    xlate_miss: int = 40
    #: Cycles for an enter instruction.
    enter: int = 4

    # --- synchronization (Table 2) ------------------------------------------------
    #: Read of a present, tagged slot (Success row, Tags column).
    sync_tag_success: int = 2
    #: Detecting a cfut fault (Failure row, Tags column).
    sync_tag_failure: int = 6
    #: Write data to a tagged slot (Write row, Tags column).
    sync_tag_write: int = 4
    #: Read guarded by a software flag (Success row, No-Tags column).
    sync_flag_success: int = 5
    #: Failed software-flag test (Failure row, No-Tags column).
    sync_flag_failure: int = 7
    #: Write data + set flag (Write row, No-Tags column).
    sync_flag_write: int = 6
    #: Thread save cost range on suspension (Save/Restore column).
    suspend_save_min: int = 30
    suspend_save_max: int = 50
    #: Thread restart cost range.
    restart_min: int = 20
    restart_max: int = 50

    # --- faults -----------------------------------------------------------------------
    #: Cycles to vector to a fault handler (flush + vector fetch).
    fault_vector: int = 6
    #: Software cost of the queue-overflow handler, per message spilled.
    queue_overflow_per_msg: int = 100

    #: Free-form extras for ablation benches.
    extras: Dict[str, int] = field(default_factory=dict)

    def with_overrides(self, **kwargs: int) -> "CostModel":
        """Return a copy with the given fields replaced.

        Unknown keys land in :attr:`extras` so ablation benches can carry
        custom knobs without widening this class.
        """
        known = {k: v for k, v in kwargs.items() if k in self.__dataclass_fields__}
        unknown = {k: v for k, v in kwargs.items() if k not in self.__dataclass_fields__}
        model = replace(self, **known)
        if unknown:
            merged = dict(model.extras)
            merged.update(unknown)
            model = replace(model, extras=merged)
        return model

    # -- derived quantities -------------------------------------------------

    def message_wire_cycles(self, length_words: int, hops: int) -> int:
        """One-way network time for a worm of ``length_words`` over ``hops``.

        The head takes 1 cycle/hop; the body streams behind it at 1 phit
        per cycle, so the tail arrives ``phits_per_word * length`` cycles
        after the head enters the network, plus interface cycles at each
        end.
        """
        pipeline = self.hop * hops
        streaming = self.phits_per_word * length_words
        return pipeline + streaming + 2 * self.interface

    def cycles_to_us(self, cycles: float) -> float:
        """Convert cycles to microseconds at the prototype clock."""
        return cycles * CYCLE_NS / 1e3

    def us_to_cycles(self, us: float) -> float:
        """Convert microseconds to cycles at the prototype clock."""
        return us * 1e3 / CYCLE_NS


#: The published machine.
DEFAULT_COSTS = CostModel()
