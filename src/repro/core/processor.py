"""The Message-Driven Processor: execution engine of one J-Machine node.

This module implements the MDP's execution model at instruction
granularity with cycle-accurate costs drawn from
:class:`~repro.core.costs.CostModel`:

* **Message-driven execution.**  The processor is idle until a message
  reaches the head of a queue; dispatch then takes 4 cycles, during which
  the IP is loaded from the message header and ``A3`` is pointed at the
  message so the thread can read its arguments (Section 2.1).
* **Two priorities plus background.**  Priority-1 messages preempt
  priority-0 threads at instruction boundaries; a background thread runs
  whenever both queues are empty.  Each level has its own register set, so
  switching is free of save/restore cost.
* **Presence tags.**  Moving a ``cfut`` or using a ``fut`` faults; the
  installed :class:`~repro.core.faults.FaultPolicy` typically suspends the
  thread and watches the faulted address, restarting the thread when a
  value is written there.
* **Send instructions.**  ``SEND``/``SEND2`` stream words into the network
  interface at up to 2 words/cycle; ``SENDE``/``SEND2E`` launch the
  message.  A full send buffer raises a send fault, which the default
  policy turns into a 1-cycle stall-and-retry — exactly the backpressure
  behaviour the paper describes for congested networks (Section 4.3.2).

The processor is scheduled externally: the machine calls :meth:`Mdp.tick`
whenever the simulation clock reaches the processor's ``ready_at`` time,
and the processor executes one dispatch or one instruction per call,
returning when it will next be runnable.  A parked (idle) processor
returns ``None`` and is woken by message delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .amt import AssociativeMatchTable
from .costs import CostModel, DEFAULT_COSTS
from .errors import (
    CfutFault,
    FutUseFault,
    IllegalInstructionFault,
    SendFault,
    TypeFault,
    XlateMissFault,
)
from .faults import FaultPolicy, RuntimeFaultPolicy
from .fastpath import Decoded, compile_instr
from .isa import Imm, Instr, MemIdx, MemOff, Operand, Reg
from .memory import NodeMemory
from .message import Message
from .queues import MessageQueue
from .registers import Priority, RegisterFile, RegisterSet
from .tags import Tag
from .word import Word

__all__ = [
    "Mdp",
    "MdpCounters",
    "NetworkInterface",
    "NullNetworkInterface",
    "MSG_WINDOW_WORDS",
    "MSG_WINDOW_P0",
    "MSG_WINDOW_P1",
    "USER_BASE",
]

#: Maximum message length the dispatch window accommodates, in words.
MSG_WINDOW_WORDS = 32

#: Fault vectors occupy the bottom of the SRAM (reserved, unused here).
_VECTORS_WORDS = 16

#: Fixed SRAM windows exposing the current message at each priority.
MSG_WINDOW_P0 = _VECTORS_WORDS
MSG_WINDOW_P1 = MSG_WINDOW_P0 + MSG_WINDOW_WORDS

#: Interned A3 message-window descriptors, keyed (window base, length).
#: Both coordinates are drawn from a handful of values, and ADDR words
#: are immutable, so dispatch can reuse them instead of repacking.
_A3_SEGMENTS: Dict[tuple, "Word"] = {}

#: First SRAM address available to loaded programs and data.
USER_BASE = MSG_WINDOW_P1 + MSG_WINDOW_WORDS


class NetworkInterface:
    """What the processor needs from the node's network interface.

    Implementations buffer the words streamed by SEND instructions and
    launch a worm when the end-marked word arrives.  ``send_word`` raises
    :class:`~repro.core.errors.SendFault` when no buffer space is
    available, which the fault policy converts into a stall-and-retry.
    """

    def send_word(self, priority: Priority, word: Word, end: bool, now: int) -> None:
        raise NotImplementedError

    def can_accept(self, priority: Priority, nwords: int) -> bool:
        raise NotImplementedError


class NullNetworkInterface(NetworkInterface):
    """Interface for standalone single-processor use: sending is an error."""

    def send_word(self, priority: Priority, word: Word, end: bool, now: int) -> None:
        raise IllegalInstructionFault("this processor has no network attached")

    def can_accept(self, priority: Priority, nwords: int) -> bool:
        return False


@dataclass
class MdpCounters:
    """Per-processor activity counters.

    Cycle counts are split by the *function* being performed, which is what
    Figure 6 of the paper reports: computation, communication (send
    instructions), synchronization (tag faults, suspends, restarts),
    naming (xlate/enter), plus dispatch and stall overheads.  Idle time is
    derived by the machine as total time minus busy time.
    """

    instructions: int = 0
    dispatches: int = 0
    threads_completed: int = 0
    messages_sent: int = 0
    words_sent: int = 0
    send_faults: int = 0
    suspends: int = 0
    restarts: int = 0
    spills: int = 0

    compute_cycles: int = 0
    comm_cycles: int = 0
    sync_cycles: int = 0
    xlate_cycles: int = 0
    dispatch_cycles: int = 0
    fault_cycles: int = 0
    stall_cycles: int = 0

    @property
    def busy_cycles(self) -> int:
        """All cycles the processor was doing something."""
        return (
            self.compute_cycles
            + self.comm_cycles
            + self.sync_cycles
            + self.xlate_cycles
            + self.dispatch_cycles
            + self.fault_cycles
            + self.stall_cycles
        )

    def breakdown(self) -> Dict[str, int]:
        """Busy cycles by category (Figure 6 input)."""
        return {
            "compute": self.compute_cycles,
            "comm": self.comm_cycles,
            "sync": self.sync_cycles,
            "xlate": self.xlate_cycles,
            "dispatch": self.dispatch_cycles,
            "fault": self.fault_cycles,
            "stall": self.stall_cycles,
        }


@dataclass
class _Thread:
    """A running thread at one priority level."""

    priority: Priority
    message: Optional[Message] = None
    #: True until the 4-cycle dispatch sequence has completed.
    needs_dispatch: bool = False
    #: Trace context of the dispatching message (None when untraced);
    #: sends issued by this thread become children of it.
    trace: Optional[tuple] = None


@dataclass
class _SuspendedThread:
    """A thread suspended on a presence fault, awaiting a write."""

    priority: Priority
    ip: int
    registers: List[Word] = field(default_factory=list)
    window: List[Word] = field(default_factory=list)
    window_base: int = 0
    restart_cycles: int = 20
    trace: Optional[tuple] = None


# Categories for instruction kinds (Figure 6 accounting).
_KIND_CATEGORY = {
    "move": "compute",
    "alu": "compute",
    "branch": "compute",
    "control": "compute",
    "send": "comm",
    "name": "xlate",
    "sync": "sync",
}

_ALU_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "ADD": lambda a, b: a + b,
    "SUB": lambda a, b: a - b,
    "MUL": lambda a, b: a * b,
    "DIV": lambda a, b: _div(a, b),
    "MOD": lambda a, b: _mod(a, b),
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "ASH": lambda a, b: a << b if b >= 0 else a >> (-b),
    "LSH": lambda a, b: _lsh(a, b),
    "EQ": lambda a, b: int(a == b),
    "NE": lambda a, b: int(a != b),
    "LT": lambda a, b: int(a < b),
    "LE": lambda a, b: int(a <= b),
    "GT": lambda a, b: int(a > b),
    "GE": lambda a, b: int(a >= b),
}

_COMPARE = {"EQ", "NE", "LT", "LE", "GT", "GE"}
_MULTICYCLE_ALU = {"MUL": 1, "DIV": 12, "MOD": 12}


def _div(a: int, b: int) -> int:
    if b == 0:
        raise TypeFault("division by zero")
    return int(a / b)  # truncating division, C-style


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise TypeFault("modulo by zero")
    return a - _div(a, b) * b


def _lsh(a: int, b: int) -> int:
    unsigned = a & 0xFFFFFFFF
    return unsigned << b if b >= 0 else unsigned >> (-b)


class Mdp:
    """One Message-Driven Processor with its memory, AMT, and queues."""

    def __init__(
        self,
        node_id: int,
        memory: Optional[NodeMemory] = None,
        costs: CostModel = DEFAULT_COSTS,
        fault_policy: Optional[FaultPolicy] = None,
        queue_words: Optional[int] = None,
        network: Optional[NetworkInterface] = None,
        fast_path: bool = False,
    ) -> None:
        self.node_id = node_id
        self.costs = costs
        self.memory = memory if memory is not None else NodeMemory(costs=costs)
        self.amt = AssociativeMatchTable()
        self.fault_policy = fault_policy if fault_policy is not None else RuntimeFaultPolicy()
        self.network = network if network is not None else NullNetworkInterface()

        queue_kwargs = {} if queue_words is None else {"capacity_words": queue_words}
        self.queues: Dict[Priority, MessageQueue] = {
            Priority.P0: MessageQueue(**queue_kwargs),
            Priority.P1: MessageQueue(**queue_kwargs),
        }

        self.registers = RegisterFile()
        self.code: Dict[int, Instr] = {}
        self.counters = MdpCounters()

        self._current: Dict[Priority, Optional[_Thread]] = {
            Priority.P0: None,
            Priority.P1: None,
            Priority.BACKGROUND: None,
        }
        self._runnable: Dict[Priority, List[_SuspendedThread]] = {
            Priority.P0: [],
            Priority.P1: [],
        }
        self._watch: Dict[int, List[_SuspendedThread]] = {}
        self._background_ip: Optional[int] = None
        #: When True, queue overflow spills to memory instead of
        #: backpressuring the network (the paper's software fault path).
        self.spill_enabled = False
        self._spill: List[Message] = []
        self._active_priority: Optional[Priority] = None
        self._current_instr_addr: int = 0
        self._suspended_by_fault = False
        self.halted = False
        #: Fast-path block executor (see :mod:`repro.core.fastpath`).  Off
        #: by default so bare processors keep the documented one-step-per-
        #: tick contract; the machine turns it on via MachineConfig.
        self.fast_path = fast_path
        #: Decoded-instruction cache keyed by address (fast path only).
        self._decoded: Dict[int, "Decoded"] = {}
        #: Set by :meth:`_wake_watchers`; tells a running block that the
        #: scheduler's view changed and the block must end.
        self._woke = False
        #: Observers called as fn(proc, message) when a thread completes.
        self.on_thread_complete: List[Callable[["Mdp", Optional[Message]], None]] = []
        #: Telemetry event bus, installed by repro.telemetry.wiring; None
        #: keeps every emission site on its cheap ``is None`` branch.
        self._events = None
        #: Virtual time the current instruction started at — maintained
        #: only while events are enabled, so suspension/thread-end events
        #: carry timestamps identical between fast and reference paths.
        self._event_time = 0

    # ------------------------------------------------------------------ setup

    def install_code(self, base: int, instrs: Sequence[Instr]) -> int:
        """Place decoded instructions at sequential addresses from ``base``.

        Returns the next free address.  Instruction *objects* live in a
        side table; their addresses still classify as internal/external
        memory for fetch-cost purposes.
        """
        for i, instr in enumerate(instrs):
            self.code[base + i] = instr
        self._decoded.clear()  # self-modifying loads invalidate the fast path
        return base + len(instrs)

    def set_background(self, ip: Optional[int]) -> None:
        """Install (or clear) the background thread's entry point."""
        self._background_ip = ip
        if ip is not None:
            self.registers[Priority.BACKGROUND].ip = ip
            self._current[Priority.BACKGROUND] = None

    # --------------------------------------------------------------- delivery

    def can_accept(self, message: Message) -> bool:
        """True if the target queue has room (network flow control).

        With :attr:`spill_enabled` the processor never refuses: overflow
        messages go to the software-managed spill area instead (the
        paper's "system-level queue overflow fault handler", Section
        4.3.3 — "relatively expensive and ... intended for transient
        traffic overruns").
        """
        if self.spill_enabled:
            return True
        return self.queues[message.priority].would_fit(message)

    def deliver(self, message: Message, now: int) -> None:
        """Accept an arriving message into its priority queue."""
        message.arrive_time = now
        queue = self.queues[message.priority]
        if self.spill_enabled and not queue.would_fit(message):
            self._spill.append(message)
            self.counters.spills += 1
            if self._events is not None:
                t = message.trace
                if t is None:
                    self._events.emit("queue-overflow", now, self.node_id,
                                      int(message.priority),
                                      src=message.source)
                else:
                    self._events.emit("queue-overflow", now, self.node_id,
                                      int(message.priority),
                                      src=message.source,
                                      trace=t[0], span=t[1], parent=t[2])
            return
        queue.enqueue(message)
        if self._events is not None:
            t = message.trace
            if t is None:
                self._events.emit("deliver", now, self.node_id,
                                  int(message.priority), src=message.source)
            else:
                self._events.emit("deliver", now, self.node_id,
                                  int(message.priority), src=message.source,
                                  trace=t[0], span=t[1], parent=t[2])

    def checksum_reject(self, message: Message, now: int) -> int:
        """Discard a corrupted arrival: the software integrity check failed.

        Fault injection (:mod:`repro.chaos`) can flip flits in transit;
        the machine routes such messages here instead of enqueueing them.
        The fault handler vectors, scans the message (charged per word),
        and drops it — recovery, if any, is end-to-end (the sender's
        reliable transport notices the missing acknowledgment and
        retransmits).  Returns the cycles charged.
        """
        cost = self.costs.fault_vector + 2 * message.length
        self._charge("fault", cost)
        if self._events is not None:
            t = message.trace
            if t is None:
                self._events.emit("chaos", now, self.node_id,
                                  int(message.priority),
                                  name="checksum-reject", src=message.source)
            else:
                self._events.emit("chaos", now, self.node_id,
                                  int(message.priority),
                                  name="checksum-reject", src=message.source,
                                  trace=t[0], span=t[1], parent=t[2])
        return cost

    def _refill_from_spill(self) -> int:
        """Move spilled messages back into the hardware queue.

        Returns the software cost charged (per message re-queued).
        """
        if not self._spill:
            return 0
        cost = 0
        while self._spill:
            message = self._spill[0]
            queue = self.queues[message.priority]
            if not queue.would_fit(message):
                break
            queue.enqueue(message)
            self._spill.pop(0)
            cost += self.costs.queue_overflow_per_msg
        if cost:
            self._charge("fault", cost)
        return cost

    def current_trace(self) -> Optional[tuple]:
        """Trace context of the thread executing right now, or None.

        The network interface consults this when a SEND launches a
        message, so the message becomes a child span of the message that
        dispatched the sending thread (:mod:`repro.telemetry.trace`).
        """
        priority = self._active_priority
        if priority is None:
            return None
        thread = self._current[priority]
        return thread.trace if thread is not None else None

    def has_work(self) -> bool:
        """True if the processor would do anything if ticked."""
        if self.halted:
            return False
        if any(self._current.values()):
            return True
        if self.queues[Priority.P1] or self.queues[Priority.P0]:
            return True
        if self._runnable[Priority.P1] or self._runnable[Priority.P0]:
            return True
        if self._spill:
            return True
        return self._background_ip is not None

    # ------------------------------------------------------------- scheduling

    def _charge(self, category: str, cycles: int) -> None:
        setattr(
            self.counters,
            f"{category}_cycles",
            getattr(self.counters, f"{category}_cycles") + cycles,
        )

    def _window_base(self, priority: Priority) -> int:
        return MSG_WINDOW_P1 if priority is Priority.P1 else MSG_WINDOW_P0

    def _select(self) -> Optional[Tuple[Priority, str]]:
        """Choose what to run next: (priority, action) or None if idle.

        Preference order implements preemption: priority 1 work always
        precedes priority 0 work, which precedes the background thread.
        Within a priority, a thread already running continues, restartable
        suspended threads go next, then new messages are dispatched.
        """
        for priority in (Priority.P1, Priority.P0):
            if self._current[priority] is not None:
                return priority, "run"
            if self._runnable[priority]:
                return priority, "restart"
            if self.queues[priority]:
                return priority, "dispatch"
        if self._background_ip is not None:
            return Priority.BACKGROUND, "run"
        return None

    def tick(
        self,
        now: int,
        deadline: Optional[int] = None,
        probe: Optional[Callable[[int], bool]] = None,
    ) -> Optional[int]:
        """Execute one scheduling step; return the next ready time.

        Returns ``None`` when the processor has nothing to do (parked);
        the machine re-ticks it after the next delivery.

        With :attr:`fast_path` enabled, one call executes an entire
        straight-line *block* of instructions instead of a single step:
        execution continues, accumulating cycle charges in virtual time,
        until the thread suspends, sends, faults, wakes a watcher, or the
        virtual clock reaches ``deadline`` (exclusive: every instruction
        *starting* before the deadline runs to completion, exactly as the
        per-step reference would execute it).  ``probe(start_time)`` is
        the machine's ``until``-predicate hook: it is evaluated after any
        instruction that may change predicate-visible state, and a truthy
        return ends the block.  The returned next-ready time is identical
        to what the per-step reference path would eventually produce.
        """
        if not self.fast_path:
            return self._tick_reference(now)
        if probe is not None and probe(now):
            # The predicate already holds at this pass: perform exactly
            # one reference step so machine state at the until-stop matches
            # the per-step schedule bit for bit.
            return self._tick_reference(now)
        if self.halted:
            return None
        if self._spill:
            refill_cost = self._refill_from_spill()
            if refill_cost:
                return now + refill_cost
        selection = self._select()
        if selection is None:
            return None
        priority, action = selection

        vnow = now
        if action == "dispatch":
            vnow += self._do_dispatch(priority, now)
        elif action == "restart":
            vnow += self._do_restart(priority, now)
        if action != "run":
            # The window pokes may have flipped the predicate or the
            # deadline may already be due; in either case stop here.
            if probe is not None and probe(now):
                return vnow
            if deadline is not None and vnow >= deadline:
                return vnow

        thread = self._current[priority]
        if priority is Priority.BACKGROUND and thread is None:
            thread = _Thread(Priority.BACKGROUND)
            self._current[Priority.BACKGROUND] = thread
        assert thread is not None
        if self._events is None and probe is None:
            self._active_priority = priority
            self._suspended_by_fault = False
            self._woke = False
            return self._run_block_quiet(priority, thread, vnow, deadline)
        return self._run_block(priority, thread, vnow, deadline, probe)

    def _tick_reference(self, now: int) -> Optional[int]:
        """The per-step scheduler: one dispatch/restart/instruction."""
        if self.halted:
            return None
        if self._spill:
            # Software overflow handler runs ahead of normal dispatch.
            refill_cost = self._refill_from_spill()
            if refill_cost:
                return now + refill_cost
        selection = self._select()
        if selection is None:
            return None
        priority, action = selection

        if action == "dispatch":
            return now + self._do_dispatch(priority, now)
        if action == "restart":
            return now + self._do_restart(priority, now)

        thread = self._current[priority]
        if priority is Priority.BACKGROUND and thread is None:
            thread = _Thread(Priority.BACKGROUND)
            self._current[Priority.BACKGROUND] = thread
        assert thread is not None
        return now + self._execute_one(priority, thread, now)

    def _run_block(
        self,
        priority: Priority,
        thread: _Thread,
        vnow: int,
        deadline: Optional[int],
        probe: Optional[Callable[[int], bool]],
    ) -> int:
        """Run straight-line instructions until a block boundary.

        Replicates :meth:`_execute_one` per instruction — same charge
        order, same fault handling, same counter updates — but without
        re-entering the scheduler between instructions.
        """
        regset = self.registers[priority]
        decoded = self._decoded
        decoded_get = decoded.get
        code_get = self.code.get
        counters = self.counters.__dict__
        meter = self.memory.meter
        current = self._current
        events = self._events
        self._active_priority = priority
        self._suspended_by_fault = False
        self._woke = False

        while True:
            if deadline is not None and vnow >= deadline:
                break
            addr = regset.ip
            dec = decoded_get(addr)
            if dec is None:
                instr = code_get(addr)
                if instr is None:
                    raise IllegalInstructionFault(
                        f"node {self.node_id}: no instruction at {addr}"
                    )
                dec = compile_instr(self, addr, instr)
                decoded[addr] = dec
            runner, cat_key, base, boundary, writes = dec

            if runner is None:
                # Operand form the compiler does not handle: run this one
                # instruction through the reference interpreter and end
                # the block (conservative, and vanishingly rare).
                start = vnow
                vnow += self._execute_one(priority, thread, vnow)
                if probe is not None:
                    probe(start)
                break

            regset.ip = addr + 1
            meter.cycles = 0  # discard any stale charge

            start = vnow
            if events is not None:
                self._event_time = start
            try:
                extra = runner(regset, vnow)
            except SendFault as fault:
                regset.ip = addr  # retry the send
                meter.cycles = 0
                self._current_instr_addr = addr
                cost = self.fault_policy.on_send_fault(self, fault)
                counters["stall_cycles"] += cost
                vnow += cost
                if probe is not None:
                    probe(start)
                break
            except CfutFault as fault:
                self._current_instr_addr = addr
                cost = self.fault_policy.on_cfut(self, fault_address(fault), fault)
                counters["sync_cycles"] += cost
                meter.cycles = 0
                vnow += cost
                if probe is not None:
                    probe(start)
                break
            except FutUseFault as fault:
                self._current_instr_addr = addr
                cost = self.fault_policy.on_fut_use(self, fault_address(fault), fault)
                counters["sync_cycles"] += cost
                meter.cycles = 0
                vnow += cost
                if probe is not None:
                    probe(start)
                break

            mem_cycles = meter.cycles
            meter.cycles = 0
            cost = base + extra + mem_cycles
            counters["instructions"] += 1
            counters[cat_key] += cost
            vnow += cost

            if writes and probe is not None and probe(start):
                break
            if boundary or self._woke or current[priority] is None:
                self._woke = False
                break
        return vnow

    def _run_block_quiet(
        self,
        priority: Priority,
        thread: _Thread,
        vnow: int,
        deadline: Optional[int],
    ) -> int:
        """:meth:`_run_block` specialised for the dominant case: no event
        bus attached and no ``until`` probe.  Semantics are identical —
        same charge order, same fault handling — with the per-instruction
        probe/event branches hoisted out of the loop.
        """
        regset = self.registers[priority]
        decoded = self._decoded
        decoded_get = decoded.get
        code_get = self.code.get
        counters = self.counters.__dict__
        meter = self.memory.meter
        current = self._current
        end = deadline if deadline is not None else 0x7FFFFFFFFFFFFFFF
        while vnow < end:
            addr = regset.ip
            dec = decoded_get(addr)
            if dec is None:
                instr = code_get(addr)
                if instr is None:
                    raise IllegalInstructionFault(
                        f"node {self.node_id}: no instruction at {addr}"
                    )
                dec = compile_instr(self, addr, instr)
                decoded[addr] = dec
            runner, cat_key, base, boundary, writes = dec

            if runner is None:
                vnow += self._execute_one(priority, thread, vnow)
                break

            regset.ip = addr + 1
            meter.cycles = 0  # discard any stale charge

            try:
                extra = runner(regset, vnow)
            except SendFault as fault:
                regset.ip = addr  # retry the send
                meter.cycles = 0
                self._current_instr_addr = addr
                cost = self.fault_policy.on_send_fault(self, fault)
                counters["stall_cycles"] += cost
                vnow += cost
                break
            except CfutFault as fault:
                self._current_instr_addr = addr
                cost = self.fault_policy.on_cfut(self, fault_address(fault), fault)
                counters["sync_cycles"] += cost
                meter.cycles = 0
                vnow += cost
                break
            except FutUseFault as fault:
                self._current_instr_addr = addr
                cost = self.fault_policy.on_fut_use(self, fault_address(fault), fault)
                counters["sync_cycles"] += cost
                meter.cycles = 0
                vnow += cost
                break

            mem_cycles = meter.cycles
            meter.cycles = 0
            cost = base + extra + mem_cycles
            counters["instructions"] += 1
            counters[cat_key] += cost
            vnow += cost

            if boundary or self._woke or current[priority] is None:
                self._woke = False
                break
        return vnow

    def _do_dispatch(self, priority: Priority, now: int) -> int:
        """Hardware dispatch: 4 cycles from queue head to runnable thread."""
        queue = self.queues[priority]
        message = queue.head()
        assert message is not None
        message.dispatch_time = now
        window = self._window_base(priority)
        for i, word in enumerate(message.words[:MSG_WINDOW_WORDS]):
            self.memory.poke(window + i, word)
        regset = self.registers[priority]
        regset.ip = message.handler_ip
        seg_key = (window, min(len(message.words), MSG_WINDOW_WORDS))
        seg = _A3_SEGMENTS.get(seg_key)
        if seg is None:
            seg = _A3_SEGMENTS[seg_key] = Word.segment(*seg_key)
        regset.write("A3", seg)
        self._current[priority] = _Thread(priority, message=message,
                                          trace=message.trace)
        counters = self.counters
        counters.dispatches += 1
        counters.dispatch_cycles += self.costs.dispatch
        if self._events is not None:
            t = message.trace
            if t is None:
                self._events.emit("dispatch", now, self.node_id,
                                  int(priority),
                                  name=f"handler@{message.handler_ip}",
                                  src=message.source)
            else:
                self._events.emit("dispatch", now, self.node_id,
                                  int(priority),
                                  name=f"handler@{message.handler_ip}",
                                  src=message.source,
                                  trace=t[0], span=t[1], parent=t[2])
        return self.costs.dispatch

    def _do_restart(self, priority: Priority, now: int) -> int:
        """Resume a suspended thread whose awaited value has arrived."""
        suspended = self._runnable[priority].pop(0)
        regset = self.registers[priority]
        regset.restore(suspended.registers)
        regset.ip = suspended.ip
        for i, word in enumerate(suspended.window):
            self.memory.poke(suspended.window_base + i, word)
        if suspended.window:
            regset.write(
                "A3", Word.segment(suspended.window_base, len(suspended.window))
            )
        self._current[priority] = _Thread(priority, message=None,
                                          trace=suspended.trace)
        self.counters.restarts += 1
        self._charge("sync", suspended.restart_cycles)
        if self._events is not None:
            t = suspended.trace
            if t is None:
                self._events.emit("restart", now, self.node_id,
                                  int(priority), name=f"restart@{suspended.ip}")
            else:
                self._events.emit("restart", now, self.node_id,
                                  int(priority), name=f"restart@{suspended.ip}",
                                  trace=t[0], span=t[1], parent=t[2])
        return suspended.restart_cycles

    # -------------------------------------------------------------- execution

    def _execute_one(self, priority: Priority, thread: _Thread, now: int) -> int:
        regset = self.registers[priority]
        addr = regset.ip
        instr = self.code.get(addr)
        if instr is None:
            raise IllegalInstructionFault(
                f"node {self.node_id}: no instruction at {addr}"
            )
        self._current_instr_addr = addr
        self._active_priority = priority
        self._suspended_by_fault = False
        if self._events is not None:
            self._event_time = now
        regset.ip = addr + 1
        self.memory.meter.take_cycles()  # discard any stale charge

        category = _KIND_CATEGORY[instr.spec.kind]
        base = self.costs.reg_op
        if not self.memory.is_internal(addr):
            base += self.costs.emem_fetch_per_word // 2

        try:
            extra = self._dispatch_instr(instr, regset, priority, now)
        except SendFault as fault:
            regset.ip = addr  # retry the send
            self.memory.meter.take_cycles()
            cost = self.fault_policy.on_send_fault(self, fault)
            self._charge("stall", cost)
            return cost
        except CfutFault as fault:
            cost = self.fault_policy.on_cfut(self, fault_address(fault), fault)
            self._charge("sync", cost)
            self.memory.meter.take_cycles()
            return cost
        except FutUseFault as fault:
            cost = self.fault_policy.on_fut_use(self, fault_address(fault), fault)
            self._charge("sync", cost)
            self.memory.meter.take_cycles()
            return cost

        mem_cycles = self.memory.meter.take_cycles()
        cost = base + extra + mem_cycles
        self.counters.instructions += 1
        self._charge(category, cost)
        return cost

    # -- operand access ------------------------------------------------------

    def _operand_address(self, operand: Operand, regset: RegisterSet) -> int:
        """Resolve a memory operand to a flat address (bounds checked)."""
        if isinstance(operand, MemOff):
            descriptor = regset.read(operand.areg.name)
            base, length = descriptor.as_segment()
            index = operand.offset
        elif isinstance(operand, MemIdx):
            descriptor = regset.read(operand.areg.name)
            base, length = descriptor.as_segment()
            index_word = regset.read(operand.idxreg.name)
            self._guard_use(index_word, None)
            index = index_word.value
        else:
            raise IllegalInstructionFault("not a memory operand")
        if not 0 <= index < length:
            from .errors import SegmentationFault

            raise SegmentationFault(
                f"index {index} outside segment base={base} length={length}"
            )
        return base + index

    def _guard_read(self, word: Word, address: Optional[int]) -> None:
        """cfut faults on *any* read (move/copy included)."""
        if word.tag is Tag.CFUT:
            raise _with_address(CfutFault("read of cfut slot"), address)

    def _guard_use(self, word: Word, address: Optional[int]) -> None:
        """fut faults when the value is *used*; cfut faults here too."""
        if word.tag is Tag.CFUT:
            raise _with_address(CfutFault("use of cfut slot"), address)
        if word.tag is Tag.FUT:
            raise _with_address(FutUseFault("use of unresolved future"), address)

    def _read_operand(
        self,
        operand: Operand,
        regset: RegisterSet,
        use: bool,
        raw: bool = False,
    ) -> Word:
        if isinstance(operand, Imm):
            return operand.word
        if isinstance(operand, Reg):
            word = regset.read(operand.name)
            address = None
        else:
            address = self._operand_address(operand, regset)
            word = self.memory.read(address)
        if raw:
            return word
        if use:
            self._guard_use(word, address)
        else:
            self._guard_read(word, address)
        return word

    def _write_operand(self, operand: Operand, regset: RegisterSet, word: Word) -> None:
        if isinstance(operand, Reg):
            regset.write(operand.name, word)
            return
        if isinstance(operand, Imm):
            raise IllegalInstructionFault("immediate cannot be a destination")
        address = self._operand_address(operand, regset)
        self.memory.write(address, word)
        if self._watch and address in self._watch:
            self._wake_watchers(address)

    # -- suspension ------------------------------------------------------------

    def suspend_on(self, address: int, restart_cycles: int = 20) -> None:
        """Suspend the current thread until ``address`` is written.

        Called by the fault policy from inside instruction execution.  The
        thread's registers and message window are saved; the IP is rolled
        back so the faulting instruction re-executes on restart.
        """
        priority = self._active_priority
        if priority is None or priority is Priority.BACKGROUND:
            raise IllegalInstructionFault("only message threads may suspend")
        thread = self._current[priority]
        assert thread is not None
        regset = self.registers[priority]
        window_base = self._window_base(priority)
        window: List[Word] = []
        if thread.message is not None:
            length = min(thread.message.length, MSG_WINDOW_WORDS)
            window = self.memory.dump_block(window_base, length)
            # The thread owns its message now; release the queue slot.
            self.queues[priority].dequeue()
        suspended = _SuspendedThread(
            priority=priority,
            ip=self._current_instr_addr,
            registers=regset.snapshot(),
            window=window,
            window_base=window_base,
            restart_cycles=restart_cycles,
            trace=thread.trace,
        )
        self._watch.setdefault(address, []).append(suspended)
        self._current[priority] = None
        self.counters.suspends += 1
        self._suspended_by_fault = True
        if self._events is not None:
            # _event_time is the faulting instruction's start time, which
            # is identical on the fast and reference paths.
            t = thread.trace
            if t is None:
                self._events.emit("suspend", self._event_time, self.node_id,
                                  int(priority), addr=address)
            else:
                self._events.emit("suspend", self._event_time, self.node_id,
                                  int(priority), addr=address,
                                  trace=t[0], span=t[1], parent=t[2])

    def _wake_watchers(self, address: int) -> None:
        woke = False
        for suspended in self._watch.pop(address, []):
            self._runnable[suspended.priority].append(suspended)
            woke = True
        if woke:
            self._woke = True

    # -- instruction semantics ---------------------------------------------------

    def _dispatch_instr(
        self, instr: Instr, regset: RegisterSet, priority: Priority, now: int
    ) -> int:
        """Execute ``instr``; return extra cycles beyond the base cost."""
        op = instr.op
        ops = instr.operands

        if op in _ALU_FUNCS:
            s1 = self._read_operand(ops[0], regset, use=True)
            s2 = self._read_operand(ops[1], regset, use=True)
            if not (s1.is_numeric() and s2.is_numeric()):
                raise TypeFault(f"{op} on non-numeric tags {s1.tag.name},{s2.tag.name}")
            value = _ALU_FUNCS[op](s1.value, s2.value)
            tag = Tag.BOOL if op in _COMPARE else Tag.INT
            self._write_operand(ops[2], regset, Word(tag, value))
            return _MULTICYCLE_ALU.get(op, 0)

        if op == "MOVE":
            word = self._read_operand(ops[0], regset, use=False)
            self._write_operand(ops[1], regset, word)
            return 0
        if op == "MOVER":
            word = self._read_operand(ops[0], regset, use=False, raw=True)
            self._write_operand(ops[1], regset, word)
            return 0
        if op == "WTAG":
            word = self._read_operand(ops[0], regset, use=False, raw=True)
            tag = Tag(self._read_operand(ops[1], regset, use=False, raw=True).value)
            self._write_operand(ops[2], regset, Word(tag, word.value))
            return 0
        if op == "RTAG":
            word = self._read_operand(ops[0], regset, use=False, raw=True)
            self._write_operand(ops[1], regset, Word.from_int(int(word.tag)))
            return 0
        if op == "MOVEID":
            self._write_operand(ops[0], regset, Word.from_int(self.node_id))
            return 0
        if op == "CYCLE":
            self._write_operand(ops[0], regset, Word.from_int(now))
            return 0
        if op == "NOT":
            word = self._read_operand(ops[0], regset, use=True)
            self._write_operand(ops[1], regset, Word.from_int(~word.value))
            return 0
        if op == "NEG":
            word = self._read_operand(ops[0], regset, use=True)
            self._write_operand(ops[1], regset, Word.from_int(-word.value))
            return 0

        if op == "BR":
            regset.ip = self._read_operand(ops[0], regset, use=True).value
            return self.costs.branch_taken_extra
        if op in ("BT", "BF"):
            cond = self._read_operand(ops[0], regset, use=True)
            taken = cond.truthy() if op == "BT" else not cond.truthy()
            if taken:
                regset.ip = self._read_operand(ops[1], regset, use=True).value
                return self.costs.branch_taken_extra
            return 0
        if op == "CALL":
            return_addr = Word.from_int(regset.ip)
            regset.ip = self._read_operand(ops[0], regset, use=True).value
            self._write_operand(ops[1], regset, return_addr)
            return self.costs.branch_taken_extra
        if op == "JMP":
            regset.ip = self._read_operand(ops[0], regset, use=True).value
            return self.costs.branch_taken_extra

        if op == "SUSPEND":
            self._finish_thread(priority)
            return 0
        if op == "HALT":
            self.halted = True
            return 0
        if op == "NOP":
            return 0

        if op in ("SEND", "SENDE"):
            word = self._read_operand(ops[0], regset, use=False)
            # The word enters the interface when the instruction retires,
            # so a slow (external-memory) operand delays the launch.
            retire = now + self.memory.meter.cycles + self.costs.reg_op
            self.network.send_word(priority, word, end=(op == "SENDE"),
                                   now=retire)
            self.counters.words_sent += 1
            if op == "SENDE":
                self.counters.messages_sent += 1
            return 0
        if op in ("SEND2", "SEND2E"):
            end = op == "SEND2E"
            w1 = self._read_operand(ops[0], regset, use=False)
            w2 = self._read_operand(ops[1], regset, use=False)
            if not self.network.can_accept(priority, 2):
                raise SendFault("send buffer full")
            retire = now + self.memory.meter.cycles + self.costs.reg_op
            self.network.send_word(priority, w1, end=False, now=retire)
            self.network.send_word(priority, w2, end=end, now=retire)
            self.counters.words_sent += 2
            if end:
                self.counters.messages_sent += 1
            return 0

        if op == "ENTER":
            key = self._read_operand(ops[0], regset, use=False)
            value = self._read_operand(ops[1], regset, use=False)
            self.amt.enter(key, value)
            return self.costs.enter - self.costs.reg_op
        if op == "XLATE":
            key = self._read_operand(ops[0], regset, use=False)
            try:
                value = self.amt.xlate(key)
                extra = self.costs.xlate_hit - self.costs.reg_op
            except XlateMissFault as fault:
                miss_cost = self.fault_policy.on_xlate_miss(self, key, fault)
                value = self.amt.probe(key)
                if value is None:
                    raise
                extra = miss_cost
            self._write_operand(ops[1], regset, value)
            return extra
        if op == "PROBE":
            key = self._read_operand(ops[0], regset, use=False)
            value = self.amt.probe(key)
            self._write_operand(
                ops[1], regset, value if value is not None else Word.from_int(0)
            )
            return self.costs.xlate_hit - self.costs.reg_op

        if op == "CHECK":
            word = self._read_operand(ops[0], regset, use=False, raw=True)
            tag = Tag(self._read_operand(ops[1], regset, use=False, raw=True).value)
            self._write_operand(ops[2], regset, Word.from_bool(word.tag is tag))
            return 0

        raise IllegalInstructionFault(f"unimplemented opcode {op}")

    def _finish_thread(self, priority: Priority) -> None:
        """SUSPEND semantics: retire the thread, free its message."""
        thread = self._current[priority]
        message = thread.message if thread else None
        if priority is Priority.BACKGROUND:
            self._background_ip = None
            self._current[Priority.BACKGROUND] = None
        else:
            if message is not None:
                self.queues[priority].dequeue()
            self._current[priority] = None
            self.counters.threads_completed += 1
        if self._events is not None:
            t = thread.trace if thread is not None else None
            if t is None:
                self._events.emit("thread-end", self._event_time,
                                  self.node_id, int(priority))
            else:
                self._events.emit("thread-end", self._event_time,
                                  self.node_id, int(priority),
                                  trace=t[0], span=t[1], parent=t[2])
        for observer in self.on_thread_complete:
            observer(self, message)


def _with_address(fault, address):
    """Attach the faulting memory address (if any) to a presence fault."""
    fault.address = address
    return fault


def fault_address(fault) -> Optional[int]:
    """The memory address a presence fault occurred at, or None."""
    return getattr(fault, "address", None)
