"""Checkpoint/restore and deterministic time-travel replay.

The subsystem has four layers:

* :mod:`~repro.snapshot.format` — the versioned, self-describing file
  format (magic line, JSON header, sha256-verified pickle payload);
* :mod:`~repro.snapshot.state` — the capture/restore contracts for both
  simulation levels, composed from each subsystem's own
  ``state_dict``/``load_state`` pair;
* :mod:`~repro.snapshot.policy` — :class:`CheckpointPolicy`, the
  periodic auto-save driver the run loops consult;
* :mod:`~repro.snapshot.bisect` — time-travel debugging: replay from a
  checkpoint and binary-search to the first stalled cycle of a deadlock.

Front doors::

    machine.checkpoint = CheckpointPolicy("run.ckpt", every=50_000)
    machine.run(...)                        # periodic saves, both backends
    resumed = JMachine.restore("run.ckpt")  # fresh process, bit-identical

    sim.save("macro.ckpt", run_limit=None)  # macro level: restore-into
    ... same app setup on a fresh sim ...
    sim.restore_state("macro.ckpt")

    python -m repro.snapshot info run.ckpt  # CLI: info/save/resume/diff/bisect

Resume is *bit-identical*: the restored run produces the same final
state and the same sha256 telemetry event-stream digest as the
uninterrupted run — the determinism contract of docs/SNAPSHOT.md,
enforced by tests/snapshot/.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import SnapshotError
from .bisect import BisectResult, bisect_deadlock
from .format import (FORMAT_VERSION, MAGIC, read_header, read_snapshot,
                     sweep_stale_tmp, write_snapshot)
from .policy import CheckpointPolicy
from .state import (capture_machine, capture_macro, restore_machine,
                    restore_macro)

__all__ = [
    "SnapshotError", "FORMAT_VERSION", "MAGIC",
    "read_header", "read_snapshot", "write_snapshot", "sweep_stale_tmp",
    "capture_machine", "restore_machine", "capture_macro", "restore_macro",
    "save_machine", "load_machine", "save_macro", "restore_macro_into",
    "CheckpointPolicy", "BisectResult", "bisect_deadlock",
]


def _meta(target, run_limit: Optional[int], meta) -> dict:
    out = {"now": target.now, "n_nodes": len(target.nodes),
           "run_limit": run_limit}
    if meta:
        out.update(meta)
    return out


def save_machine(machine, path: str, run_limit: Optional[int] = None,
                 meta=None) -> dict:
    """Capture a ``JMachine`` to ``path``; returns the written header."""
    return write_snapshot(path, "cycle", capture_machine(machine),
                          meta=_meta(machine, run_limit, meta))


def load_machine(path: str):
    """Rebuild a ``JMachine`` from a cycle-level snapshot file."""
    header, payload = read_snapshot(path)
    if header["kind"] != "cycle":
        raise SnapshotError(
            f"{path} is a {header['kind']!r} snapshot; use restore_state "
            f"on a macro simulator for it")
    return restore_machine(payload)


def save_macro(sim, path: str, run_limit: Optional[int] = None,
               meta=None) -> dict:
    """Capture a ``MacroSimulator`` to ``path``; returns the header."""
    return write_snapshot(path, "macro", capture_macro(sim),
                          meta=_meta(sim, run_limit, meta))


def restore_macro_into(sim, path: str) -> dict:
    """Restore a macro snapshot into a prepared ``sim``; returns header."""
    header, payload = read_snapshot(path)
    if header["kind"] != "macro":
        raise SnapshotError(
            f"{path} is a {header['kind']!r} snapshot; use "
            f"JMachine.restore for it")
    restore_macro(sim, payload)
    return header
