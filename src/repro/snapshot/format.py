"""The on-disk checkpoint format: a self-describing two-part file.

A snapshot file is::

    #repro-snapshot 1\n          <- ASCII magic + major format version
    {...json header...}\n        <- one line of JSON metadata
    <pickle payload>             <- the state itself, one pickle

The header is readable without touching the payload (``repro.snapshot
info`` does exactly that): it carries the format version, the simulation
level (``"cycle"`` or ``"macro"``), the payload length and its sha256,
and free-form ``meta`` (capture cycle, node count, the run limit a
resume should honour, scenario hints for the CLI).

The payload is a *single* pickle of the whole state tree.  One pickle —
rather than one per node — matters for correctness, not just speed:
pickle memoization preserves object sharing, so route tuples shared
between worms, messages referenced from both a staged heap and a node
queue, and chaos plans referenced from several places come back as the
same graph shape they had when captured.

Compatibility rule: a reader accepts files whose major version is at
most its own :data:`FORMAT_VERSION` (the header is additive within a
major version); anything newer raises :class:`SnapshotError` rather
than guessing.
"""

from __future__ import annotations

import fnmatch
import hashlib
import io
import json
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import SnapshotError

__all__ = ["FORMAT_VERSION", "MAGIC", "SnapshotError", "write_snapshot",
           "read_header", "read_snapshot", "sweep_stale_tmp"]

#: Major version of the file format this build reads and writes.
FORMAT_VERSION = 1

#: First line of every snapshot file (includes the major version).
MAGIC = b"#repro-snapshot 1\n"

#: Fixed pickle protocol: snapshots written on any supported Python
#: must load on any other, so the protocol is pinned, not "highest".
_PICKLE_PROTOCOL = 4


def write_snapshot(path: str, kind: str, payload: Any,
                   meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Serialize ``payload`` to ``path``; returns the written header.

    The file is written to a temporary sibling and renamed into place so
    a crash mid-checkpoint (the very failure checkpoints exist to
    survive) never leaves a truncated file under the final name.
    """
    if kind not in ("cycle", "macro"):
        raise SnapshotError(f"unknown snapshot kind {kind!r}")
    blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
    header = {
        "format": "repro-snapshot",
        "version": FORMAT_VERSION,
        "kind": kind,
        "payload_bytes": len(blob),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "meta": dict(meta) if meta else {},
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(json.dumps(header, sort_keys=True).encode("utf-8"))
            fh.write(b"\n")
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        # A failed write must not leave its half-written sibling behind
        # (a writer killed outright still can — sweep_stale_tmp covers
        # that when the next checkpoint policy arms on the same path).
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return header


def sweep_stale_tmp(path: str) -> List[str]:
    """Remove orphaned ``*.tmp.<pid>`` siblings of checkpoint ``path``.

    A writer that dies between ``open`` and ``os.replace`` (the very
    crash checkpoints exist to survive) leaves a ``<path>.tmp.<pid>``
    file behind.  This sweeps every such leftover for the given
    checkpoint path — ``{cycle}``-templated paths match any cycle —
    and returns the paths removed.  Called when a
    :class:`~repro.snapshot.policy.CheckpointPolicy` arms, i.e. exactly
    when a new writer takes ownership of the path family, so a sweep
    can never race a live writer of the same checkpoint.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    base = os.path.basename(path)
    try:
        base = base.format(cycle="*")
    except (IndexError, KeyError, ValueError):
        pass  # not a {cycle} template; match the literal name
    pattern = base + ".tmp.*"
    removed: List[str] = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return removed
    for name in entries:
        if fnmatch.fnmatch(name, pattern):
            stale = os.path.join(directory, name)
            try:
                os.unlink(stale)
            except OSError:
                continue
            removed.append(stale)
    return removed


def _read_magic_and_header(fh: io.BufferedReader,
                           path: str) -> Dict[str, Any]:
    magic = fh.readline(len(MAGIC) + 1)
    if not magic.startswith(b"#repro-snapshot "):
        raise SnapshotError(f"{path}: not a repro snapshot file")
    try:
        header = json.loads(fh.readline().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header: {exc}")
    version = header.get("version")
    if not isinstance(version, int) or version < 1:
        raise SnapshotError(f"{path}: malformed snapshot version {version!r}")
    if version > FORMAT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot format version {version} is newer than "
            f"this build's {FORMAT_VERSION}; upgrade to read it")
    return header


def read_header(path: str) -> Dict[str, Any]:
    """The JSON header alone — cheap, never unpickles the payload."""
    with open(path, "rb") as fh:
        return _read_magic_and_header(fh, path)


def read_snapshot(path: str) -> Tuple[Dict[str, Any], Any]:
    """Load and verify a snapshot; returns ``(header, payload)``.

    The payload's sha256 is checked against the header before
    unpickling, so a truncated or bit-flipped file fails with a clear
    error instead of a confusing unpickling exception (or, worse, a
    silently wrong machine state).
    """
    with open(path, "rb") as fh:
        header = _read_magic_and_header(fh, path)
        blob = fh.read()
    expected = header.get("payload_bytes")
    if expected is not None and len(blob) != expected:
        raise SnapshotError(
            f"{path}: payload is {len(blob)} bytes, header says {expected} "
            f"(truncated file?)")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("sha256"):
        raise SnapshotError(f"{path}: payload sha256 mismatch (corrupt file)")
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise SnapshotError(f"{path}: cannot unpickle payload: {exc}")
    return header, payload
