"""Time-travel debugging: find the first stalled cycle of a deadlock.

A deadlock diagnosis (:class:`~repro.core.errors.DeadlockError`) tells
you where the machine *was found* wedged — typically a full watchdog
window after it actually stopped.  Given a checkpoint from before the
stall, this module replays deterministically and binary-searches for the
moment progress ceased.

The search exploits a monotonicity the watchdog's progress signature
already has: ``(total instructions, messages completed, messages
submitted, deliveries committed)`` is component-wise non-decreasing in
time, and once the machine deadlocks it never changes again.  So
"replayed ``M`` cycles and reached the deadlock signature" is a monotone
predicate in ``M``, and the first stalled cycle is found with
``O(log(window))`` deterministic replays from the checkpoint — each one
a fresh restore, so probes cannot contaminate each other.

The result pairs per-node :class:`~repro.chaos.watchdog.NodeSnapshot`
captures at the stall cycle with the ones from the deadlock itself and
diffs them — the same snapshot type the watchdog raises with, so the
"what changed after the stall" view and the "what was stuck" view are
one vocabulary (usually the diff is empty: the interesting signal is
which nodes still had work and where their IPs parked).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import DeadlockError, SnapshotError

__all__ = ["BisectResult", "bisect_deadlock"]

#: Telemetry events shown per implicated node around the stall cycle.
_EVENT_TAIL = 5


@dataclass
class BisectResult:
    """What the time-travel bisection established."""

    path: str                    # the checkpoint replayed from
    start_cycle: int             # checkpoint capture cycle
    deadlock_cycle: int          # where the watchdog/limit caught it
    first_stalled_cycle: int     # first cycle with the final signature
    probes: int                  # deterministic replays performed
    signature: Tuple[int, int, int, int]
    error: str                   # the DeadlockError's first line
    stall_snapshots: list = field(default_factory=list)
    dead_snapshots: list = field(default_factory=list)
    #: node_id -> {field: (at_stall, at_deadlock)}; empty dict = frozen.
    diffs: Dict[int, dict] = field(default_factory=dict)
    #: Last telemetry events at/before the stall cycle, newest last.
    last_events: List[tuple] = field(default_factory=list)

    def format(self) -> str:
        """Human-readable report (what the CLI prints)."""
        lines = [
            f"checkpoint {self.path} @ cycle {self.start_cycle}",
            f"deadlock detected at t={self.deadlock_cycle}: {self.error}",
            f"first stalled cycle: t={self.first_stalled_cycle} "
            f"(found in {self.probes} replays)",
            f"final progress signature: instructions={self.signature[0]} "
            f"completed={self.signature[1]} submitted={self.signature[2]} "
            f"deliveries={self.signature[3]}",
            "",
            f"node state at the stall (t={self.first_stalled_cycle}):",
        ]
        for snap in self.stall_snapshots:
            lines.append(f"  {snap}")
        lines.append("")
        lines.append("drift between stall and detection "
                     "(empty = frozen solid):")
        any_drift = False
        for node_id in sorted(self.diffs):
            delta = self.diffs[node_id]
            if delta:
                any_drift = True
                changes = ", ".join(f"{name}: {a} -> {b}"
                                    for name, (a, b) in sorted(delta.items()))
                lines.append(f"  node {node_id}: {changes}")
        if not any_drift:
            lines.append("  (none — every implicated node is identical at "
                         "both cycles)")
        if self.last_events:
            lines.append("")
            lines.append("last telemetry events before the stall:")
            for ts, kind, node, priority, name, dur, args in self.last_events:
                detail = f" {name}" if name else ""
                lines.append(f"  t={ts} node={node} {kind}{detail}")
        return "\n".join(lines)


def _load(path: str):
    """A fresh, serial, observer-free machine from the checkpoint.

    Every probe replays from disk so no state leaks between replays;
    the parallel backend is disabled because probes run tiny bounded
    windows where fork overhead would dominate (the serial and parallel
    backends are bit-identical, so this is a speed choice, not a
    correctness one).
    """
    from . import load_machine

    machine = load_machine(path)
    machine.parallel_shards = 0
    machine.checkpoint = None
    machine.watchdog = None
    return machine


def bisect_deadlock(path: str, max_cycles: int = 10_000_000,
                    window: int = 50_000) -> BisectResult:
    """Replay ``path`` to its deadlock, then bisect to the first stall.

    Raises :class:`SnapshotError` if the replayed run completes (no
    deadlock to find).  ``window`` configures the watchdog installed
    for the initial detection run when the checkpoint carried none.
    """
    from ..chaos.watchdog import DeadlockWatchdog, machine_snapshots

    detector = _load(path)
    start = detector.now
    detector.watchdog = DeadlockWatchdog(window=window)
    try:
        detector.run_until_quiescent(max_cycles=max_cycles)
    except DeadlockError as exc:
        dead_at = exc.now
        dead_snapshots = list(exc.snapshots)
        error = str(exc).split("\n", 1)[0]
    else:
        raise SnapshotError(
            f"{path}: run completed without deadlocking; nothing to bisect")
    signature = DeadlockWatchdog._signature(detector)

    probes = 0

    def replay(cycles: int):
        """Machine state after exactly ``cycles`` replayed cycles."""
        nonlocal probes
        probes += 1
        machine = _load(path)
        machine.run(max_cycles=cycles)
        return machine

    # Smallest M with signature(M) == final signature.  Monotone:
    # progress counters never decrease and never change again after the
    # stall, so equality holds exactly on [first_stall, infinity).
    lo, hi = 0, dead_at - start
    while lo < hi:
        mid = (lo + hi) // 2
        machine = replay(mid)
        if DeadlockWatchdog._signature(machine) == signature:
            hi = mid
        else:
            lo = mid + 1
    first_stalled = start + lo

    stalled = replay(lo)
    stall_snapshots = machine_snapshots(stalled)
    stall_by_id = {snap.node_id: snap for snap in stall_snapshots}
    diffs: Dict[int, dict] = {}
    for dead in dead_snapshots:
        at_stall = stall_by_id.get(dead.node_id)
        if at_stall is not None:
            diffs[dead.node_id] = at_stall.diff(dead)
    last_events: List[tuple] = []
    telemetry = stalled.telemetry
    if telemetry is not None and telemetry.events is not None:
        # run-end is the probe's own bookkeeping, not history.
        last_events = [event for event in telemetry.events.events
                       if event[0] <= first_stalled
                       and event[1] != "run-end"][-_EVENT_TAIL:]
    return BisectResult(
        path=path,
        start_cycle=start,
        deadlock_cycle=dead_at,
        first_stalled_cycle=first_stalled,
        probes=probes,
        signature=signature,
        error=error,
        stall_snapshots=stall_snapshots,
        dead_snapshots=dead_snapshots,
        diffs=diffs,
        last_events=last_events,
    )
