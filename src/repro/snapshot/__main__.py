"""CLI for checkpoint files: ``python -m repro.snapshot <command>``.

Commands:

* ``info <path>`` — print a snapshot's header without unpickling it;
* ``save`` — run a built-in scenario with periodic checkpointing
  (``--scenario ping`` is cycle-level, ``--scenario lcs`` macro-level);
* ``resume <path>`` — restore and run to completion, printing the final
  cycle and the sha256 telemetry event-stream digest (compare it with
  an uninterrupted run's to verify bit-identity);
* ``diff <a> <b>`` — compare two cycle-level snapshots node by node;
* ``bisect <path>`` — replay to a deadlock and binary-search for the
  first stalled cycle (time-travel debugging; see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.errors import SimulationError
from . import (CheckpointPolicy, bisect_deadlock, load_machine, read_header)

_PING_ITERATIONS = 50
_LCS_NODES = 16


def _digest(telemetry) -> str:
    from ..chaos.harness import event_fingerprint

    if telemetry is None or telemetry.events is None:
        return "(no telemetry)"
    return event_fingerprint(telemetry.events)


def _cmd_info(args) -> int:
    header = read_header(args.path)
    print(json.dumps(header, indent=2, sort_keys=True))
    return 0


def _save_ping(args) -> int:
    from ..machine.jmachine import JMachine
    from ..runtime.rpc import run_ping
    from ..telemetry import Telemetry

    machine = JMachine.build(args.nodes, telemetry=Telemetry())
    machine.checkpoint = CheckpointPolicy(args.out, every=args.every)
    result = run_ping(machine, 0, args.nodes - 1,
                      iterations=_PING_ITERATIONS, stop="quiescent")
    print(f"ping ran to t={machine.now} "
          f"(avg round-trip {result.round_trip_cycles:.0f} cycles); "
          f"{machine.checkpoint.saves} checkpoint(s), "
          f"last: {machine.checkpoint.last_path}")
    print(f"final digest: {_digest(machine.telemetry)}")
    return 0


def _save_lcs(args) -> int:
    from ..apps.lcs import run_parallel
    from ..telemetry import Telemetry

    policy = CheckpointPolicy(args.out, every=args.every,
                              meta={"scenario": "lcs"})
    telemetry = Telemetry()
    result = run_parallel(args.nodes, telemetry=telemetry, checkpoint=policy)
    print(f"lcs ran to t={result.cycles} (answer {result.output}); "
          f"{policy.saves} checkpoint(s), last: {policy.last_path}")
    print(f"final digest: {_digest(telemetry)}")
    return 0


def _cmd_save(args) -> int:
    if args.scenario == "ping":
        return _save_ping(args)
    return _save_lcs(args)


def _cmd_resume(args) -> int:
    header = read_header(args.path)
    meta = header.get("meta") or {}
    if header["kind"] == "cycle":
        machine = load_machine(args.path)
        limit = args.limit if args.limit is not None else meta.get(
            "run_limit")
        if limit is not None:
            machine.run(max_cycles=limit - machine.now)
        else:
            machine.run_until_quiescent()
        print(f"resumed t={meta.get('now')} -> t={machine.now}")
        print(f"final digest: {_digest(machine.telemetry)}")
        return 0
    # Macro snapshots restore *into* a prepared app (handlers are
    # closures; see docs/SNAPSHOT.md), so resume only works for
    # scenarios this CLI can rebuild — currently the LCS app.
    scenario = meta.get("scenario")
    if scenario != "lcs":
        raise SimulationError(
            f"cannot resume a macro snapshot for scenario {scenario!r}; "
            "re-run your application with restore_from=, or use "
            "`save --scenario lcs` checkpoints")
    from ..apps.lcs import run_parallel
    from ..telemetry import Telemetry

    telemetry = Telemetry()
    result = run_parallel(meta["n_nodes"], telemetry=telemetry,
                          restore_from=args.path)
    print(f"resumed t={meta.get('now')} -> t={result.cycles} "
          f"(answer {result.output})")
    print(f"final digest: {_digest(telemetry)}")
    return 0


def _cmd_diff(args) -> int:
    from ..chaos.watchdog import machine_snapshots

    headers = []
    snaps = []
    for path in (args.a, args.b):
        header = read_header(path)
        if header["kind"] != "cycle":
            raise SimulationError(
                f"{path} is a {header['kind']!r} snapshot; diff works on "
                "cycle-level snapshots")
        headers.append(header)
        machine = load_machine(path)
        snaps.append({snap.node_id: snap
                      for snap in machine_snapshots(machine,
                                                    only_busy=False)})
    a_meta, b_meta = (h.get("meta") or {} for h in headers)
    print(f"a: {args.a} @ t={a_meta.get('now')}")
    print(f"b: {args.b} @ t={b_meta.get('now')}")
    same = True
    for node_id in sorted(snaps[0]):
        delta = snaps[0][node_id].diff(snaps[1][node_id])
        if delta:
            same = False
            changes = ", ".join(f"{name}: {a} -> {b}"
                                for name, (a, b) in sorted(delta.items()))
            print(f"node {node_id}: {changes}")
    if same:
        print("no per-node differences")
    return 0 if same else 1


def _cmd_bisect(args) -> int:
    result = bisect_deadlock(args.path, window=args.window)
    print(result.format())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.snapshot",
        description=__doc__.split("\n", 1)[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print a snapshot's header")
    p.add_argument("path")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("save",
                       help="run a built-in scenario with checkpointing")
    p.add_argument("--scenario", choices=("ping", "lcs"), default="ping")
    p.add_argument("--out", default="snapshot_{cycle}.ckpt",
                   help="checkpoint path; {cycle} expands per save")
    p.add_argument("--every", type=int, default=10_000,
                   help="checkpoint interval in simulated cycles")
    p.add_argument("--nodes", type=int, default=None)
    p.set_defaults(fn=_cmd_save)

    p = sub.add_parser("resume", help="restore and run to completion")
    p.add_argument("path")
    p.add_argument("--limit", type=int, default=None,
                   help="cycle limit override (default: the saved one)")
    p.set_defaults(fn=_cmd_resume)

    p = sub.add_parser("diff", help="compare two cycle-level snapshots")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("bisect",
                       help="find a deadlock's first stalled cycle")
    p.add_argument("path")
    p.add_argument("--window", type=int, default=50_000,
                   help="watchdog no-progress window for detection")
    p.set_defaults(fn=_cmd_bisect)

    args = parser.parse_args(argv)
    if args.command == "save" and args.nodes is None:
        args.nodes = _LCS_NODES
    try:
        return args.fn(args)
    except (SimulationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
