"""When to checkpoint: the periodic auto-save policy.

A :class:`CheckpointPolicy` is handed to a simulator via its
``checkpoint`` attribute; the run loops consult it at their safe points
(the serial cycle loop's top, the macro event loop's top, the parallel
coordinator's epoch-barrier idle jumps) and call :meth:`save` when
:meth:`due` says so.  The policy deliberately knows nothing about the
simulator beyond its ``save(path, run_limit=...)`` method, so one class
serves both levels and the parallel backend.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CheckpointPolicy"]


class CheckpointPolicy:
    """Save to ``path`` every ``every`` simulated cycles.

    ``path`` may contain ``{cycle}``, expanded to the capture cycle so
    successive checkpoints keep distinct files (a plain path is
    overwritten in place — crash-safe, see ``write_snapshot``).

    The first ``due`` call only arms the clock: a checkpoint at cycle 0
    would capture the state the caller already has.  Arming also sweeps
    any orphaned ``*.tmp.<pid>`` siblings of ``path`` left by a writer
    that died mid-checkpoint (:func:`~repro.snapshot.format
    .sweep_stale_tmp`) — the policy taking ownership of the path family
    is the one moment such leftovers are provably stale.
    """

    def __init__(self, path: str, every: int = 100_000,
                 meta: Optional[dict] = None) -> None:
        if every <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.path = path
        self.every = every
        #: Extra header metadata stamped into every save (e.g. which
        #: scenario to rebuild before a macro restore).
        self.meta = meta
        self.next_due: Optional[int] = None
        #: Number of checkpoints written, and the last file's path —
        #: what tests and the smoke harness assert on.
        self.saves = 0
        self.last_path: Optional[str] = None
        self.last_header: Optional[dict] = None
        #: Stale temp files removed when the policy armed.
        self.swept: list = []

    def due(self, now: int) -> bool:
        """Is a checkpoint due at simulated time ``now``?  O(1)."""
        if self.next_due is None:
            self.next_due = now + self.every
            from .format import sweep_stale_tmp

            self.swept = sweep_stale_tmp(self.path)
            return False
        return now >= self.next_due

    def save(self, target, run_limit: Optional[int] = None,
             at: Optional[int] = None) -> str:
        """Checkpoint ``target`` (a machine or macro sim) and re-arm.

        ``at`` overrides the cycle the clock re-arms from — the macro
        loop passes the *next event's* time, since its own clock only
        advances when that event is processed.
        """
        reached = target.now if at is None else at
        path = self.path.format(cycle=reached)
        self.last_header = target.save(path, run_limit=run_limit,
                                       meta=self.meta)
        self.next_due = reached + self.every
        self.saves += 1
        self.last_path = path
        return path
