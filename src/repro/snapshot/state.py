"""Capture/restore of whole-simulator state, both levels.

This module is the single place that knows which attributes of which
objects constitute "machine state".  Each stateful subsystem owns its
own serialization contract (``Fabric.state_dict``,
``ChaosEngine.state_dict``, ``ReliableLayer.state_dict``); this module
composes them with the pieces that live directly on the machine — node
processors, heaps, staged deliveries, telemetry — into one payload for
:mod:`repro.snapshot.format`.

**Cycle level** (:func:`capture_machine` / :func:`restore_machine`):
snapshots are fully self-contained.  Processor state is the processor's
whole ``__dict__`` (registers, memory, queues, AMT, suspended threads,
code image, counters) minus the machine-wired attributes in
:data:`PROC_EXTERNAL_ATTRS`; restore builds a fresh ``JMachine`` from
the captured config and installs state into its existing objects, so
internal wiring (interface→processor trace hooks, fabric callbacks)
stays bound.

**Macro level** (:func:`capture_macro` / :func:`restore_macro`):
handlers are Python closures over application data, which no snapshot
can capture; macro restore is therefore *restore-into* — the caller
re-runs the same deterministic application setup (registering the same
handlers) and this module overwrites the mutable state: clocks, node
queues/state/profiles, the event heap (with reliable-transport timers
re-bound by sequence number), chaos RNG positions, and telemetry.

What is **not** captured (by design) is documented in docs/SNAPSHOT.md:
watchdog progress clocks (reset on the next ``run``), registry
instruments (pull sources re-derive from restored counters), and
``Mdp.on_thread_complete`` host callbacks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.errors import SnapshotError

__all__ = [
    "PROC_EXTERNAL_ATTRS", "MACHINE_CAPTURED_ATTRS", "MACHINE_EXTERNAL_ATTRS",
    "MACRO_CAPTURED_ATTRS", "MACRO_EXTERNAL_ATTRS",
    "capture_machine", "restore_machine", "capture_macro", "restore_macro",
]

#: Processor attributes owned by the machine wiring, not by the
#: processor's architectural state: the network interface binding, the
#: telemetry bus, the decoded-instruction cache (rebuilt lazily), and
#: host completion callbacks (closures).  Everything else in
#: ``Mdp.__dict__`` — registers, memory, queues, AMT, code, suspended
#: threads, counters — is captured wholesale.
PROC_EXTERNAL_ATTRS = frozenset({
    "network", "_events", "_decoded", "on_thread_complete",
})

#: ``JMachine.__dict__`` partition, asserted complete by
#: tests/snapshot/test_contract.py so new machine attributes must be
#: classified before they can ship.
MACHINE_CAPTURED_ATTRS = frozenset({
    "config", "now", "_seq", "deliveries_committed", "parallel_shards",
    "_parallel_skip_reason", "_parallel_skips", "nodes", "_proc_heap",
    "_delivery_heap", "_staged_messages", "_staged_words_per_node",
    "fabric", "chaos", "watchdog", "telemetry",
})
MACHINE_EXTERNAL_ATTRS = frozenset({
    "mesh",          # derived from config
    "_trace_state",  # telemetry wiring, re-installed on restore
    "checkpoint",    # the policy driving saves is host-side, not state
    "sampler",       # live-monitoring rig, host-side (docs/OBSERVABILITY.md)
})

#: Same partition for ``MacroSimulator.__dict__``.
MACRO_CAPTURED_ATTRS = frozenset({
    "config", "costs", "n_nodes", "now", "end_time", "messages_sent",
    "_seq", "handlers", "handler_stats", "nodes", "_events", "_chaos",
    "network",                # stateful: utilization window + backlog
    "telemetry",
})
MACRO_EXTERNAL_ATTRS = frozenset({
    "mesh",                   # derived from n_nodes/costs
    "_ebus", "_trace", "_inject_trace",  # telemetry wiring
    "post",                   # ReliableLayer's shadow, handled explicitly
    "checkpoint",             # host-side policy
    "sampler",                # host-side live-monitoring rig
})

#: Placeholder for a reliable-transport retransmit timer in a captured
#: macro event heap; re-bound to the restored layer by sequence number.
_TIMER_SENTINEL = "__repro.rel-timer__"


# ----------------------------------------------------------------- telemetry


def _capture_telemetry(telemetry) -> Optional[dict]:
    if telemetry is None:
        return None
    out: Dict[str, Any] = {"events": None, "trace": None}
    bus = telemetry.events
    if bus is not None:
        out["events"] = {"limit": bus.limit, "events": list(bus.events),
                         "dropped": bus.dropped}
    trace = telemetry.trace
    if trace is not None:
        out["trace"] = {"next_trace": trace._next_trace,
                        "next_span": trace._next_span}
    return out


def _restore_telemetry(state: Optional[dict]):
    """Build a fresh rig preloaded with the captured stream/counters.

    Preloading the bus is what makes the *full* event stream of a
    resumed run digest-equal to the uninterrupted run's: the events from
    before the checkpoint are already in place when the resumed run
    appends the rest.
    """
    if state is None:
        return None
    from ..telemetry import Telemetry

    events = state["events"]
    trace = state["trace"]
    telemetry = Telemetry(
        events=events is not None,
        event_limit=events["limit"] if events is not None else 1_000_000,
        trace=trace is not None,
    )
    if events is not None:
        telemetry.events.events.extend(events["events"])
        telemetry.events.dropped = events["dropped"]
    if trace is not None:
        telemetry.trace._next_trace = trace["next_trace"]
        telemetry.trace._next_span = trace["next_span"]
    return telemetry


# --------------------------------------------------------------- cycle level


def capture_machine(machine) -> dict:
    """Snapshot a ``JMachine`` into a picklable payload.

    Must be called between run-loop iterations (the checkpoint hook's
    position): no partially-stepped fabric cycle, no half-committed
    delivery.  The capture reads but never mutates the machine.
    """
    nodes: List[dict] = []
    for node in machine.nodes:
        proc = node.proc
        iface = node.interface
        nodes.append({
            "proc": {name: value for name, value in proc.__dict__.items()
                     if name not in PROC_EXTERNAL_ATTRS},
            "building": {priority: list(words)
                         for priority, words in iface._building.items()},
            "outstanding_words": iface._outstanding_words,
            "node_tlb": iface.node_tlb,
            "next_tick": node.next_tick,
        })
    # Staged deliveries in exact commit order: sorting the heap yields
    # the pop order of its (arrival, node, index) entries, and restoring
    # through machine._deliver in that order reassigns fresh indices
    # that preserve every tie-break.
    deliveries = [
        (arrival, node_id, machine._staged_messages[index])
        for arrival, node_id, index in sorted(machine._delivery_heap)
    ]
    watchdog = machine.watchdog
    return {
        "config": machine.config,
        "now": machine.now,
        "seq": machine._seq,
        "deliveries_committed": machine.deliveries_committed,
        "parallel_shards": machine.parallel_shards,
        "parallel_skip_reason": machine._parallel_skip_reason,
        "parallel_skips": machine._parallel_skips,
        "nodes": nodes,
        "proc_heap": list(machine._proc_heap),
        "deliveries": deliveries,
        "fabric": machine.fabric.state_dict(),
        "chaos": (machine.chaos.state_dict()
                  if machine.chaos is not None else None),
        "watchdog": (None if watchdog is None else {
            "window": watchdog.window,
            "interval": watchdog.interval,
            "trips": watchdog.trips,
        }),
        "telemetry": _capture_telemetry(machine.telemetry),
    }


def restore_machine(payload: dict):
    """Rebuild a ``JMachine`` from a :func:`capture_machine` payload."""
    from ..machine.jmachine import JMachine

    machine = JMachine(payload["config"],
                       telemetry=_restore_telemetry(payload["telemetry"]))
    if len(payload["nodes"]) != machine.mesh.n_nodes:
        raise SnapshotError(
            f"snapshot has {len(payload['nodes'])} nodes but the captured "
            f"config builds {machine.mesh.n_nodes}")
    machine.now = payload["now"]
    machine._seq = payload["seq"]
    machine.deliveries_committed = payload["deliveries_committed"]
    machine.parallel_shards = payload["parallel_shards"]
    machine._parallel_skip_reason = payload["parallel_skip_reason"]
    machine._parallel_skips = payload["parallel_skips"]
    for node, state in zip(machine.nodes, payload["nodes"]):
        # Install into the *existing* processor object so the wiring
        # established at construction (interface trace hooks, the
        # fabric's accept/deliver callbacks) keeps pointing at it.
        proc = node.proc
        proc.__dict__.update(state["proc"])
        proc._decoded = {}  # rebuilt lazily, invalidated like a load
        iface = node.interface
        iface._building = {priority: list(words)
                           for priority, words in state["building"].items()}
        iface._outstanding_words = state["outstanding_words"]
        iface.node_tlb = state["node_tlb"]
        node.next_tick = state["next_tick"]
    # A copied heap is a valid heap; stale entries are preserved on
    # purpose (they bound the quiescence jump exactly as captured).
    machine._proc_heap = list(payload["proc_heap"])
    for arrival, node_id, message in payload["deliveries"]:
        machine._deliver(node_id, message, arrival)
    machine.fabric.load_state(payload["fabric"])
    chaos = payload["chaos"]
    if chaos is not None:
        from ..chaos.engine import ChaosEngine
        from ..chaos.plan import FaultPlan

        engine = ChaosEngine(FaultPlan.from_dict(chaos["plan"]),
                             log_limit=chaos["log_limit"])
        # Attach first (rebuilds schedule closures over the restored
        # nodes, binds telemetry), then load (RNG positions, counters,
        # and the schedule cursor past already-applied actions).
        engine.attach_machine(machine)
        engine.load_state(chaos)
    wd = payload["watchdog"]
    if wd is not None:
        from ..chaos.watchdog import DeadlockWatchdog

        watchdog = DeadlockWatchdog(window=wd["window"],
                                    interval=wd["interval"])
        watchdog.trips = wd["trips"]
        machine.watchdog = watchdog
    return machine


# --------------------------------------------------------------- macro level


def _reliable_layer(sim):
    """The installed ``ReliableLayer``, found via its ``post`` shadow."""
    post = sim.__dict__.get("post")
    if post is None:
        return None
    owner = getattr(post, "__self__", None)
    from ..runtime.rpc import ReliableLayer

    return owner if isinstance(owner, ReliableLayer) else None


def capture_macro(sim) -> dict:
    """Snapshot a ``MacroSimulator`` into a picklable payload.

    Handler *names* are captured for validation; the handler callables
    themselves are the caller's to re-register before restore.  Queued
    task arguments and node state must be picklable application data
    (they are for every app in :mod:`repro.apps`).
    """
    from ..runtime.rpc import _RetryTimer

    timer_kind = sim._TIMER
    events = []
    for event in sim._events:  # verbatim heap order (a list copy is a heap)
        (time, seq, kind, dest, handler, args, length, priority,
         trace) = event
        if kind == timer_kind:
            fn = args[0]
            if not isinstance(fn, _RetryTimer):
                raise SnapshotError(
                    f"cannot capture a host timer callback {fn!r}; only "
                    f"reliable-transport retry timers are serializable")
            args = (_TIMER_SENTINEL, fn.seq)
        events.append((time, seq, kind, dest, handler, args, length,
                       priority, trace))
    layer = _reliable_layer(sim)
    nodes = []
    for node in sim.nodes:
        nodes.append({
            "busy_until": node.busy_until,
            "running": node.running,
            "q0": list(node.queues[0]),
            "q1": list(node.queues[1]),
            "state": dict(node.state),
            "profile": dict(node.profile.__dict__),
            "queue_high_water": node.queue_high_water,
            "messages_received": node.messages_received,
        })
    return {
        "config": sim.config,
        "costs": sim.costs,
        "n_nodes": sim.n_nodes,
        "now": sim.now,
        "end_time": sim.end_time,
        "messages_sent": sim.messages_sent,
        "seq": sim._seq,
        "handlers": sorted(sim.handlers),
        "handler_stats": {name: dict(stats.__dict__)
                          for name, stats in sim.handler_stats.items()},
        "nodes": nodes,
        "events": events,
        "network": sim.network.state_dict(),
        "chaos": (sim._chaos.state_dict()
                  if sim._chaos is not None else None),
        "reliable": layer.state_dict() if layer is not None else None,
        "telemetry": _capture_telemetry(sim.telemetry),
    }


def restore_macro(sim, payload: dict) -> None:
    """Install a :func:`capture_macro` payload into ``sim``.

    ``sim`` must already have the same handlers registered (same
    application setup, including installing a ``ReliableLayer`` when the
    capture used one) and a telemetry rig when the capture carried one.
    Node state dicts and queues are updated *in place* so handler
    closures holding references to them keep observing the node.
    """
    if payload["n_nodes"] != sim.n_nodes:
        raise SnapshotError(
            f"snapshot was captured on {payload['n_nodes']} nodes, "
            f"this simulator has {sim.n_nodes}")
    layer = _reliable_layer(sim)
    reliable = payload["reliable"]
    if reliable is not None and layer is None:
        raise SnapshotError(
            "snapshot used a ReliableLayer; install one before restoring")
    if reliable is None and layer is not None:
        raise SnapshotError(
            "snapshot had no ReliableLayer but this simulator has one")
    captured = set(payload["handlers"])
    current = set(sim.handlers)
    if captured != current:
        missing = sorted(captured - current)
        extra = sorted(current - captured)
        raise SnapshotError(
            "handler registry mismatch: re-run the same application "
            f"setup before restoring (missing={missing}, extra={extra})")

    sim.now = payload["now"]
    sim.end_time = payload["end_time"]
    sim.messages_sent = payload["messages_sent"]
    sim._seq = payload["seq"]
    for name, data in payload["handler_stats"].items():
        sim.handler_stats[name].__dict__.update(data)
    for node, state in zip(sim.nodes, payload["nodes"]):
        node.busy_until = state["busy_until"]
        node.running = state["running"]
        node.queues[0].clear()
        node.queues[0].extend(state["q0"])
        node.queues[1].clear()
        node.queues[1].extend(state["q1"])
        node.state.clear()
        node.state.update(state["state"])
        node.profile.__dict__.update(state["profile"])
        node.queue_high_water = state["queue_high_water"]
        node.messages_received = state["messages_received"]
    if reliable is not None:
        layer.load_state(reliable)
    from ..runtime.rpc import _RetryTimer

    timer_kind = sim._TIMER
    events = []
    for event in payload["events"]:
        (time, seq, kind, dest, handler, args, length, priority,
         trace) = event
        if kind == timer_kind:
            args = (_RetryTimer(layer, args[1]),)
        events.append((time, seq, kind, dest, handler, args, length,
                       priority, trace))
    sim._events = events
    sim.network.load_state(payload["network"])
    chaos = payload["chaos"]
    if chaos is not None:
        engine = sim._chaos
        if engine is None:
            from ..chaos.engine import ChaosEngine
            from ..chaos.plan import FaultPlan

            engine = ChaosEngine(FaultPlan.from_dict(chaos["plan"]),
                                 log_limit=chaos["log_limit"])
            engine.attach_macro(sim)
        engine.load_state(chaos)
    telemetry = payload["telemetry"]
    if telemetry is not None and telemetry["events"] is not None:
        if sim._ebus is None:
            raise SnapshotError(
                "snapshot carries telemetry events; construct the "
                "simulator with a Telemetry rig before restoring")
        sim._ebus.events[:] = telemetry["events"]["events"]
        sim._ebus.dropped = telemetry["events"]["dropped"]
        if telemetry["trace"] is not None and sim._trace is not None:
            sim._trace._next_trace = telemetry["trace"]["next_trace"]
            sim._trace._next_span = telemetry["trace"]["next_span"]
