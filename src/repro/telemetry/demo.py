"""Sampled demo workloads behind ``repro.telemetry serve`` / ``watch``.

Both CLI surfaces need a running simulation to observe; this module
provides two — the systolic LCS app on the macro level (the paper's
Figure-5 workload; scalable to its real size with ``--scale 1``) and
the cycle-level RPC ring ping — each started on a background thread
with a :class:`~repro.telemetry.live.LiveSampler` attached, so the
serving/rendering thread has a live frame ring to read while the
simulation makes progress.  A final forced sample on completion makes
the last frame equal the finished run's ``report()`` (the live-smoke
gate asserts exactly this).
"""

from __future__ import annotations

import threading
from typing import Optional

from . import Telemetry
from .live import LiveSampler, SamplePolicy

__all__ = ["DemoRun", "start_demo", "WORKLOADS"]

WORKLOADS = ("lcs", "ping")


class DemoRun:
    """A demo workload in flight: its sampler plus completion state."""

    def __init__(self, sampler: LiveSampler) -> None:
        self.sampler = sampler
        self.result = None
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def done(self) -> bool:
        return self._thread is not None and not self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
        if self.error is not None:
            raise self.error


def _lcs_job(run: DemoRun, n_nodes: int, scale: float) -> None:
    from ..apps.lcs import LcsParams, run_parallel

    params = LcsParams().scaled(scale) if scale != 1.0 else LcsParams()
    run.result = run_parallel(n_nodes, params, telemetry=Telemetry(),
                              sampler=run.sampler)
    # Final frame at the end state: equals a subsequent report().
    sim = run.result.sim
    run.sampler.sample(sim, sim.end_time)


def _ping_job(run: DemoRun, n_nodes: int, scale: float) -> None:
    from ..machine.jmachine import JMachine
    from ..runtime.rpc import run_ping

    machine = JMachine.build(n_nodes, telemetry=Telemetry())
    run.sampler.attach(machine)
    iterations = max(1, int(200 * scale))
    run_ping(machine, 0, n_nodes - 1, iterations=iterations,
             stop="quiescent")
    run.result = machine
    run.sampler.sample(machine, machine.now)


_JOBS = {"lcs": _lcs_job, "ping": _ping_job}


def start_demo(workload: str = "lcs", n_nodes: int = 64,
               scale: float = 0.25,
               every_cycles: Optional[int] = None,
               every_wall_s: Optional[float] = 0.5,
               ring: int = 512) -> DemoRun:
    """Launch a sampled demo workload on a daemon thread.

    The default policy is wall-clock driven (2 frames/sec) so the
    dashboard refreshes steadily regardless of simulation speed; pass
    ``every_cycles`` for deterministic frame times instead.
    """
    if workload not in _JOBS:
        raise ValueError(f"unknown demo workload {workload!r}; "
                         f"choose from {WORKLOADS}")
    policy = SamplePolicy(every_cycles=every_cycles,
                          every_wall_s=every_wall_s)
    run = DemoRun(LiveSampler(policy, ring=ring))

    def guarded():
        try:
            _JOBS[workload](run, n_nodes, scale)
        except BaseException as exc:  # surfaced by join()
            run.error = exc

    thread = threading.Thread(target=guarded,
                              name=f"demo-{workload}", daemon=True)
    run._thread = thread
    thread.start()
    return run
