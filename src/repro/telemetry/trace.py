"""Causal message tracing and critical-path analysis.

The aggregate counters (metrics, Figure 6 breakdowns) say how much time
went to each overhead category; they cannot say *which* overheads bound
speedup.  That is a causality question: which message caused which
handler, and what chain of sends, queue waits, dispatches, and handler
executions forms the longest dependency path of the run.  This module
supplies both halves:

* **Trace context** (:class:`TraceState`) — a deterministic allocator of
  ``(trace_id, span_id, parent_span)`` triples.  Every traced message
  carries one; a handler's sends become children of the message that
  dispatched it, so a whole run decomposes into trees of spans rooted at
  the host injections.  Retransmissions (the reliable transport's
  retries) reuse the original span, so a retry chain is one span with a
  visible retry count, not a forest of unrelated messages.
* **Causal graph** (:class:`CausalGraph`) — rebuilt offline from the
  telemetry event stream (``send`` / ``deliver`` / ``dispatch`` /
  ``task`` / ``thread-end`` events stamped with span fields).  It
  computes the **critical path** from first inject to run-end and
  attributes every cycle of it to the paper's categories: ``compute``,
  ``dispatch``, ``send`` (the sender-side overhead), ``net`` (wire
  time), ``sync`` (queue wait + suspension), ``xlate`` (naming).
  ``total work / critical path`` is the run's *available parallelism* —
  the quantity that explains where the Figure 5 speedup curves knee.

The critical path is found by walking backwards from the last-finishing
span.  At each span the binding constraint on its start is identified:

* **message-bound** — the span started as soon as its message arrived:
  the path continues through the network to the *parent* span, entering
  it at the cycle the send was issued;
* **queue-bound** — the span's message had already arrived but the node
  was busy: the path continues through the task whose completion freed
  the node (the classic resource edge of request-tracing systems).

Cycle accounting tiles the path exactly: wire time between a send and
its delivery is ``net``, time between delivery and dispatch is ``sync``
(queue wait), and each span's executed portion is split using the
per-task category breakdown recorded in its ``task`` event (macro
level) or dispatch/suspend/restart timestamps (cycle level).
"""

from __future__ import annotations

import bisect
import json
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Tuple)

__all__ = [
    "TraceState",
    "Span",
    "PathStep",
    "CriticalPath",
    "CausalGraph",
    "PATH_CATEGORIES",
]

#: A trace context as carried on messages: (trace_id, span_id, parent).
TraceContext = Tuple[int, int, Optional[int]]

#: The categories critical-path cycles are attributed to (paper order).
PATH_CATEGORIES = ("compute", "dispatch", "send", "net", "sync", "xlate")

#: Macro profile categories -> path categories.
_CAT_MAP = {
    "compute": "compute",
    "dispatch": "dispatch",
    "comm": "send",
    "sync": "sync",
    "xlate": "xlate",
    "nnr": "xlate",  # node-number translation is naming overhead
}


class TraceState:
    """Deterministic allocator of trace contexts.

    One instance is shared by everything attached to a
    :class:`~repro.telemetry.Telemetry` rig, so span ids are unique
    across both simulation levels of a run.  Allocation is a pair of
    counters — no wall clock, no randomness — so a rerun of the same
    workload produces the identical id stream (the same determinism
    contract the chaos engine keeps).
    """

    __slots__ = ("_next_trace", "_next_span")

    def __init__(self) -> None:
        self._next_trace = 1
        self._next_span = 1

    def root(self) -> TraceContext:
        """A fresh trace with its root span (a host injection)."""
        trace = self._next_trace
        self._next_trace += 1
        span = self._next_span
        self._next_span += 1
        return (trace, span, None)

    def child(self, parent: TraceContext) -> TraceContext:
        """A new span caused by ``parent`` (same trace)."""
        span = self._next_span
        self._next_span += 1
        return (parent[0], span, parent[1])

    def derive(self, parent: Optional[TraceContext]) -> TraceContext:
        """Child of ``parent``, or a fresh root when there is none."""
        return self.root() if parent is None else self.child(parent)


class Span:
    """Everything the event stream said about one traced message."""

    __slots__ = (
        "span", "trace", "parent", "name", "src", "dest", "priority",
        "send_ts", "deliver_ts", "start_ts", "end_ts", "cats",
        "suspends", "restarts", "retries",
    )

    def __init__(self, span: int) -> None:
        self.span = span
        self.trace: Optional[int] = None
        self.parent: Optional[int] = None
        self.name: Optional[str] = None
        self.src: Optional[int] = None
        self.dest: Optional[int] = None
        self.priority = 0
        self.send_ts: Optional[int] = None
        self.deliver_ts: Optional[int] = None
        self.start_ts: Optional[int] = None
        self.end_ts: Optional[int] = None
        #: Per-category cycle breakdown of the handler execution (macro
        #: ``task`` events record it; None at the cycle level).
        self.cats: Optional[Dict[str, int]] = None
        self.suspends: List[int] = []
        self.restarts: List[int] = []
        self.retries = 0

    @property
    def executed(self) -> int:
        """Cycles of node occupancy (dispatch through completion)."""
        if self.start_ts is None or self.end_ts is None:
            return 0
        return max(0, self.end_ts - self.start_ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.span}, trace={self.trace}, "
                f"parent={self.parent}, name={self.name!r}, "
                f"[{self.send_ts}->{self.deliver_ts}->{self.start_ts}"
                f"->{self.end_ts}])")


class PathStep:
    """One span's contribution to the critical path."""

    __slots__ = ("span", "enter", "exit", "segments", "link")

    def __init__(self, span: Span, enter: int, exit: int,
                 segments: Dict[str, float], link: str) -> None:
        self.span = span
        #: Cycle the path enters this span's causal region.
        self.enter = enter
        #: Cycle the path hands off to the next step.
        self.exit = exit
        #: Category -> cycles for [enter, exit] (tiles it exactly).
        self.segments = segments
        #: How the path left the *previous* step: "inject" (path start),
        #: "message" (a send caused this span), "queue" (this span's
        #: completion freed the node the next span was waiting for).
        self.link = link


class CriticalPath:
    """The longest dependency chain of a run, with cycle attribution."""

    def __init__(self, steps: List[PathStep], run_end: Optional[int],
                 total_work: int, n_nodes: int) -> None:
        self.steps = steps
        self.run_end = run_end
        self.total_work = total_work
        self.n_nodes = n_nodes

    @property
    def start(self) -> int:
        return self.steps[0].enter if self.steps else 0

    @property
    def end(self) -> int:
        return self.steps[-1].exit if self.steps else 0

    @property
    def length(self) -> int:
        """Cycles from the path's first inject to its final completion."""
        return self.end - self.start

    @property
    def connected(self) -> bool:
        """Every step hands off exactly where the next one picks up."""
        if not self.steps:
            return False
        if self.steps[0].span.parent is not None:
            return False  # did not reach a root injection
        return all(self.steps[i].exit == self.steps[i + 1].enter
                   for i in range(len(self.steps) - 1))

    @property
    def acyclic(self) -> bool:
        """No span appears twice (guarded during construction)."""
        seen = set()
        for step in self.steps:
            if step.span.span in seen:
                return False
            seen.add(step.span.span)
        return True

    def categories(self) -> Dict[str, float]:
        """Critical-path cycles by category (sums to :attr:`length`)."""
        out = {name: 0.0 for name in PATH_CATEGORIES}
        for step in self.steps:
            for name, cycles in step.segments.items():
                out[name] = out.get(name, 0.0) + cycles
        return out

    @property
    def available_parallelism(self) -> float:
        """Total work over critical path: the speedup ceiling."""
        return self.total_work / self.length if self.length else 0.0

    def format(self, limit: int = 0) -> str:
        """A human-readable report (the CLI's output)."""
        lines = [
            f"critical path: {len(self.steps)} spans, "
            f"t={self.start} -> t={self.end} "
            f"({self.length} cycles)",
            f"  connected: {'yes' if self.connected else 'NO'}   "
            f"acyclic: {'yes' if self.acyclic else 'NO'}",
        ]
        cats = self.categories()
        total = sum(cats.values())
        lines.append("  category attribution:")
        for name in PATH_CATEGORIES:
            cycles = cats.get(name, 0.0)
            share = cycles / total if total else 0.0
            lines.append(f"    {name:<9} {cycles:>14.0f}  {share:>6.1%}")
        lines.append(f"    {'total':<9} {total:>14.0f}  "
                     f"(path length {self.length})")
        lines.append(f"  total work: {self.total_work} cycles on "
                     f"{self.n_nodes} nodes")
        lines.append(f"  available parallelism: "
                     f"{self.available_parallelism:.2f}x")
        if limit:
            lines.append("  hottest path steps:")
            ranked = sorted(self.steps,
                            key=lambda s: s.exit - s.enter, reverse=True)
            for step in ranked[:limit]:
                span = step.span
                lines.append(
                    f"    span {span.span:>7} {span.name or '?':<16} "
                    f"node {span.dest if span.dest is not None else '?':>4} "
                    f"[{step.enter}..{step.exit}] "
                    f"({step.exit - step.enter} cy, via {step.link})")
        return "\n".join(lines)


class CausalGraph:
    """The span graph of one traced run, rebuilt from its event stream."""

    def __init__(self) -> None:
        self.spans: Dict[int, Span] = {}
        self.run_end_ts: Optional[int] = None
        self.n_events = 0
        self.n_traced_events = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Dict[str, Any]]) -> "CausalGraph":
        """Build from an iterable of event dicts (JSONL records)."""
        graph = cls()
        for record in events:
            graph._ingest(record)
        return graph

    @classmethod
    def from_jsonl(cls, path: str) -> "CausalGraph":
        """Build from a ``write_jsonl`` file."""
        graph = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    graph._ingest(json.loads(line))
        return graph

    @classmethod
    def from_bus(cls, bus) -> "CausalGraph":
        """Build straight from a live :class:`EventBus`."""
        return cls.from_events(bus.iter_dicts())

    def _span(self, record: Dict[str, Any]) -> Span:
        sid = record["span"]
        span = self.spans.get(sid)
        if span is None:
            span = self.spans[sid] = Span(sid)
        if span.trace is None:
            span.trace = record.get("trace")
        if span.parent is None:
            span.parent = record.get("parent")
        return span

    def _ingest(self, record: Dict[str, Any]) -> None:
        self.n_events += 1
        kind = record["kind"]
        ts = record["ts"]
        if kind == "run-end":
            if self.run_end_ts is None or ts > self.run_end_ts:
                self.run_end_ts = ts
            return
        if "span" not in record:
            return
        self.n_traced_events += 1
        span = self._span(record)
        if kind == "send":
            # Retransmits re-send the same span: the first send is the
            # causal one; later ones only bump the retry count.
            if span.send_ts is None or ts < span.send_ts:
                span.send_ts = ts
                span.src = record["node"]
                span.dest = record.get("dest", span.dest)
                span.priority = record.get("priority", 0)
                if span.name is None:
                    span.name = record.get("name")
        elif kind == "deliver":
            if span.deliver_ts is None or ts < span.deliver_ts:
                span.deliver_ts = ts
                span.dest = record["node"]
                if span.name is None:
                    span.name = record.get("name")
        elif kind == "dispatch":
            if span.start_ts is None or ts < span.start_ts:
                span.start_ts = ts
                span.dest = record["node"]
                if span.name is None:
                    span.name = record.get("name")
        elif kind == "task":
            if span.start_ts is None or ts < span.start_ts:
                span.start_ts = ts
                span.end_ts = ts + record.get("dur", 0)
                span.dest = record["node"]
                span.name = record.get("name", span.name)
                cats = record.get("cats")
                if cats:
                    span.cats = dict(cats)
        elif kind == "thread-end":
            if span.end_ts is None or ts > span.end_ts:
                span.end_ts = ts
        elif kind == "suspend":
            span.suspends.append(ts)
        elif kind == "restart":
            span.restarts.append(ts)
        elif kind == "retry":
            span.retries += 1

    # -- queries -------------------------------------------------------------

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    @property
    def n_traces(self) -> int:
        return len({s.trace for s in self.spans.values()
                    if s.trace is not None})

    def roots(self) -> List[Span]:
        """Spans with no parent (host injections)."""
        return [s for s in self.spans.values() if s.parent is None]

    def children(self) -> Dict[Optional[int], List[int]]:
        """parent span id -> child span ids."""
        out: Dict[Optional[int], List[int]] = {}
        for span in self.spans.values():
            out.setdefault(span.parent, []).append(span.span)
        return out

    def total_work(self) -> int:
        """Sum of node-occupancy cycles over every executed span."""
        return sum(span.executed for span in self.spans.values())

    def n_nodes(self) -> int:
        nodes = {s.dest for s in self.spans.values() if s.dest is not None}
        nodes |= {s.src for s in self.spans.values() if s.src is not None}
        return len(nodes)

    def validate(self) -> List[str]:
        """Structural problems worth surfacing (dangling parents, cycles)."""
        problems = []
        dangling = sum(1 for s in self.spans.values()
                       if s.parent is not None and s.parent not in self.spans)
        if dangling:
            problems.append(
                f"{dangling} spans reference a parent absent from the "
                f"stream (dropped events or a truncated trace?)")
        # Cycle check on parent edges (iterative, path-marking).
        state: Dict[int, int] = {}  # 0 visiting, 1 done
        for start in self.spans:
            if start in state:
                continue
            chain = []
            node: Optional[int] = start
            while node is not None and node in self.spans \
                    and node not in state:
                state[node] = 0
                chain.append(node)
                node = self.spans[node].parent
            if node is not None and state.get(node) == 0:
                problems.append(f"parent cycle through span {node}")
                break
            for sid in chain:
                state[sid] = 1
        return problems

    # -- the critical path ---------------------------------------------------

    def _exec_segments(self, span: Span, enter: int, cut: int,
                       dispatch_cycles: int) -> Dict[str, float]:
        """Split this span's executed portion [enter, cut] by category."""
        segments: Dict[str, float] = {}
        window = cut - enter
        if window <= 0:
            return segments
        if span.cats:
            # Macro level: scale the recorded per-task breakdown to the
            # executed portion so the segments tile [enter, cut] exactly.
            total = sum(span.cats.values())
            if total > 0:
                scale = window / total
                for name, cycles in span.cats.items():
                    key = _CAT_MAP.get(name, "compute")
                    segments[key] = segments.get(key, 0.0) + cycles * scale
                return segments
        # Cycle level: the hardware dispatch, then suspension intervals
        # (sync), then everything else is computation.
        dispatch = float(min(dispatch_cycles, window))
        segments["dispatch"] = dispatch
        suspended = 0.0
        for i, sus in enumerate(span.suspends):
            res = (span.restarts[i] if i < len(span.restarts)
                   else cut)
            lo = max(enter, min(sus, cut))
            hi = max(enter, min(res, cut))
            suspended += hi - lo
        suspended = min(suspended, window - dispatch)
        if suspended > 0:
            segments["sync"] = suspended
        segments["compute"] = window - dispatch - suspended
        return segments

    def critical_path(self, dispatch_cycles: int = 4) -> CriticalPath:
        """Walk back from the last completion to its causal root."""
        executed = [s for s in self.spans.values()
                    if s.start_ts is not None and s.end_ts is not None]
        if not executed:
            return CriticalPath([], self.run_end_ts, 0, 0)

        # Per-node completion index for resource (queue) edges.
        by_node: Dict[int, List[Tuple[int, int]]] = {}
        for span in executed:
            by_node.setdefault(span.dest, []).append(
                (span.end_ts, span.span))
        for entries in by_node.values():
            entries.sort()

        def freeing_span(node: int, start: int, not_span: int
                         ) -> Optional[Span]:
            """Latest span on ``node`` completing at or before ``start``."""
            entries = by_node.get(node)
            if not entries:
                return None
            idx = bisect.bisect_right(entries, (start, float("inf"))) - 1
            while idx >= 0:
                end_ts, sid = entries[idx]
                if sid != not_span:
                    return self.spans[sid]
                idx -= 1
            return None

        terminal = max(executed, key=lambda s: (s.end_ts, s.span))
        steps: List[PathStep] = []
        visited = set()
        cur = terminal
        cut = terminal.end_ts
        while True:
            if cur.span in visited:
                break  # defensive: corrupt stream; keep what we have
            visited.add(cur.span)
            start = cur.start_ts
            ready = cur.deliver_ts if cur.deliver_ts is not None \
                else (cur.send_ts if cur.send_ts is not None else start)
            parent = (self.spans.get(cur.parent)
                      if cur.parent is not None else None)
            if parent is not None and (parent.start_ts is None
                                       or parent.end_ts is None):
                parent = None  # parent never executed; treat as root
            wait = start - ready
            pred = None
            if wait > 0:
                candidate = freeing_span(cur.dest, start, cur.span)
                if candidate is not None and candidate.end_ts >= ready \
                        and candidate.span not in visited:
                    pred = candidate

            segments = self._exec_segments(cur, start, cut, dispatch_cycles)
            if pred is not None:
                # Queue-bound: the node freed at pred.end; any residual
                # gap until dispatch is synchronization.
                gap = start - pred.end_ts
                if gap > 0:
                    segments["sync"] = segments.get("sync", 0.0) + gap
                steps.append(PathStep(cur, pred.end_ts, cut, segments,
                                      "queue"))
                cur, cut = pred, pred.end_ts
                continue
            if parent is not None and cur.send_ts is not None \
                    and parent.span not in visited \
                    and parent.start_ts <= cur.send_ts:
                # Message-bound: wire time then queue wait then execution.
                if wait > 0:
                    segments["sync"] = segments.get("sync", 0.0) + wait
                net = ready - cur.send_ts
                if net > 0:
                    segments["net"] = segments.get("net", 0.0) + net
                steps.append(PathStep(cur, cur.send_ts, cut, segments,
                                      "message"))
                cur, cut = parent, cur.send_ts
                continue
            # Root (or unexplainable): the path starts here.  A root
            # injection still has wire time from its inject-site send.
            enter = start
            if wait > 0:
                segments["sync"] = segments.get("sync", 0.0) + wait
                enter = ready
            if cur.send_ts is not None and ready > cur.send_ts:
                segments["net"] = (segments.get("net", 0.0)
                                   + (ready - cur.send_ts))
                enter = cur.send_ts
            steps.append(PathStep(cur, enter, cut, segments, "inject"))
            break

        steps.reverse()
        return CriticalPath(steps, self.run_end_ts, self.total_work(),
                            self.n_nodes())

    # -- rendering -----------------------------------------------------------

    def summary(self) -> str:
        parts = [
            f"spans: {self.n_spans} (from {self.n_traced_events} traced "
            f"of {self.n_events} events), traces: {self.n_traces}",
        ]
        if self.run_end_ts is not None:
            parts.append(f"run end: t={self.run_end_ts}")
        problems = self.validate()
        for problem in problems:
            parts.append(f"warning: {problem}")
        return "\n".join(parts)
