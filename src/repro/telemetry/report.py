"""SimReport: one JSON artifact summarizing a whole run.

A report is a flat ``{metric-name: number}`` snapshot of a
:class:`~repro.telemetry.metrics.MetricsRegistry` plus a small ``meta``
block (what ran, at what size, for how many cycles).  Because the
registry is pull-based, a report can be taken from *any* machine — one
with a full telemetry rig attached, or a bare one (an ad-hoc registry is
wired on the spot).  Reports serialize to JSON, diff against each other,
and answer "hottest handler" style questions, which gives benchmarks and
the CLI (``python -m repro.telemetry report``) one common currency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = ["SimReport"]

Number = Union[int, float]


class SimReport:
    """An immutable-by-convention snapshot of one simulation run."""

    def __init__(self, metrics: Dict[str, Number],
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.metrics = dict(metrics)
        self.meta = dict(meta or {})

    # -- construction --------------------------------------------------------

    @classmethod
    def from_registry(cls, registry: MetricsRegistry,
                      meta: Optional[Dict[str, Any]] = None) -> "SimReport":
        return cls(registry.snapshot(), meta)

    @classmethod
    def from_machine(cls, machine,
                     meta: Optional[Dict[str, Any]] = None) -> "SimReport":
        """Snapshot a cycle-level :class:`~repro.machine.jmachine.JMachine`.

        Uses the machine's attached telemetry registry when present;
        otherwise wires a throwaway registry (pull sources only, so this
        is safe and cheap at any point of a run).
        """
        from .wiring import register_machine_metrics

        telemetry = getattr(machine, "telemetry", None)
        if telemetry is not None:
            registry = telemetry.registry
        else:
            registry = MetricsRegistry()
            register_machine_metrics(machine, registry)
        full_meta = {
            "kind": "machine",
            "nodes": machine.mesh.n_nodes,
            "cycles": machine.now,
        }
        probe = getattr(machine.fabric, "probe", None)
        if probe is not None:
            from ..network.observatory import FabricReport

            full_meta["fabric"] = FabricReport.from_fabric(
                machine.fabric, machine.now).to_dict()
        full_meta.update(meta or {})
        return cls.from_registry(registry, full_meta)

    @classmethod
    def from_macro(cls, sim,
                   meta: Optional[Dict[str, Any]] = None) -> "SimReport":
        """Snapshot a :class:`~repro.jsim.sim.MacroSimulator`."""
        from .wiring import register_macro_metrics

        telemetry = getattr(sim, "telemetry", None)
        if telemetry is not None:
            registry = telemetry.registry
        else:
            registry = MetricsRegistry()
            register_macro_metrics(sim, registry)
        full_meta = {
            "kind": "macro",
            "nodes": sim.n_nodes,
            "cycles": sim.end_time,
        }
        full_meta.update(meta or {})
        return cls.from_registry(registry, full_meta)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"meta": self.meta, "metrics": self.metrics}

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "SimReport":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return cls(data.get("metrics", {}), data.get("meta", {}))

    # -- queries -------------------------------------------------------------

    def total(self, suffix: str) -> Number:
        """Sum of every metric whose name ends with ``.suffix``."""
        tail = f".{suffix}"
        return sum(v for k, v in self.metrics.items() if k.endswith(tail))

    def top(self, prefix: str, suffix: str, n: int = 5
            ) -> List[Tuple[str, Number]]:
        """The ``n`` largest ``<prefix><middle><suffix>`` metrics.

        ``top("handler.", ".cycles")`` ranks macro handlers by cycles;
        the returned names are the middles (the handler names).
        """
        found = [
            (k[len(prefix):len(k) - len(suffix)], v)
            for k, v in self.metrics.items()
            if k.startswith(prefix) and k.endswith(suffix)
        ]
        found.sort(key=lambda item: (-item[1], item[0]))
        return found[:n]

    def diff(self, other: "SimReport") -> Dict[str, Tuple[Optional[Number],
                                                          Optional[Number]]]:
        """``{name: (self_value, other_value)}`` for every difference.

        Metrics present on only one side appear with ``None`` on the
        other; identical values are omitted.
        """
        out: Dict[str, Tuple[Optional[Number], Optional[Number]]] = {}
        for name in sorted(set(self.metrics) | set(other.metrics)):
            a = self.metrics.get(name)
            b = other.metrics.get(name)
            if a != b:
                out[name] = (a, b)
        return out

    # -- rendering -----------------------------------------------------------

    def format(self, limit: Optional[int] = None) -> str:
        """A human-readable listing (meta block, then sorted metrics)."""
        lines = []
        for k, v in sorted(self.meta.items()):
            if k == "fabric" and isinstance(v, dict):
                links = len(v.get("links", {}))
                lines.append(f"# fabric: {links} links observed "
                             "(see --fabric / FabricReport)")
            else:
                lines.append(f"# {k}: {v}")
        names = sorted(self.metrics)
        shown = names if limit is None else names[:limit]
        width = max((len(n) for n in shown), default=0)
        for name in shown:
            lines.append(f"{name:<{width}}  {_fmt(self.metrics[name])}")
        if limit is not None and len(names) > limit:
            lines.append(f"... {len(names) - limit} more metrics")
        return "\n".join(lines)

    def format_diff(self, other: "SimReport") -> str:
        """A two-column diff listing (self vs other)."""
        diff = self.diff(other)
        if not diff:
            return "(no metric differences)"
        width = max(len(n) for n in diff)
        lines = [f"{'metric':<{width}}  {'a':>14}  {'b':>14}  {'delta':>14}"]
        for name, (a, b) in diff.items():
            delta = "" if a is None or b is None else _fmt(b - a)
            lines.append(
                f"{name:<{width}}  {_fmt(a):>14}  {_fmt(b):>14}  {delta:>14}"
            )
        return "\n".join(lines)


def _fmt(value: Optional[Number]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))
