"""Standard instrumentation wiring for both simulation levels.

This module is the one place that knows *where* every measurement lives
and *what* it is called.  The naming schema (documented in
docs/OBSERVABILITY.md and pinned by tests):

Cycle level (:class:`~repro.machine.jmachine.JMachine`):

* ``machine.cycles``, ``machine.nodes`` — run extent.
* ``node.<i>.proc.<counter>`` — every ``MdpCounters`` field plus the
  derived ``busy_cycles`` (``comm_cycles`` is the paper's send time,
  ``sync_cycles`` its synchronization time, and so on).
* ``node.<i>.queue.p0.*`` / ``.p1.*`` — hardware message queue state
  (``depth``, ``used_words``, ``enqueued``, ``overflows``,
  ``high_water``) and ``node.<i>.queue.spilled`` for the software
  overflow area.
* ``node.<i>.amt.<hits|misses|enters|evictions>`` — name-cache traffic.
* ``net.*`` — fabric totals (``submitted``, ``completed``,
  ``block_cycles``, ``delivery_stalls``, ``bounces``, ``in_flight``)
  and ``net.latency.<count|total|mean|min|max|p50|p99>`` from the
  fabric's :class:`~repro.network.stats.LatencySummary`.

Macro level (:class:`~repro.jsim.sim.MacroSimulator`):

* ``macro.cycles``, ``macro.nodes``, ``macro.messages_sent``.
* ``macro.profile.<category>`` — aggregate Figure 6 categories.
* ``node.<i>.profile.<category>``, ``node.<i>.messages_received``,
  ``node.<i>.queue_high_water``.
* ``handler.<name>.<invocations|instructions|cycles|message_words>``.

Everything here registers *pull sources*: closures over counters the
subsystems maintain anyway, sampled only at snapshot time.  Attaching
telemetry therefore adds no per-cycle work; only event emission (when an
:class:`~repro.telemetry.events.EventBus` is installed) touches the
simulation loop, behind ``is None`` guards at per-message-rate sites.
The functions are duck-typed on purpose — no machine imports — so this
module never participates in an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.registers import Priority
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Telemetry

__all__ = [
    "register_machine_metrics",
    "install_machine_events",
    "instrument_machine",
    "register_macro_metrics",
    "instrument_macro",
]

#: MdpCounters fields exported under ``node.<i>.proc.`` (kept explicit so
#: a renamed counter breaks a test instead of silently vanishing).
MDP_COUNTER_FIELDS = (
    "instructions", "dispatches", "threads_completed", "messages_sent",
    "words_sent", "send_faults", "suspends", "restarts", "spills",
    "compute_cycles", "comm_cycles", "sync_cycles", "xlate_cycles",
    "dispatch_cycles", "fault_cycles", "stall_cycles",
)

PROFILE_FIELDS = ("compute", "xlate", "sync", "comm", "nnr",
                  "instructions", "xlate_count", "xlate_faults")

HANDLER_FIELDS = ("invocations", "instructions", "cycles", "message_words")


# --------------------------------------------------------------- cycle level


def _proc_source(proc):
    def sample():
        counters = proc.counters
        out = {name: getattr(counters, name) for name in MDP_COUNTER_FIELDS}
        out["busy_cycles"] = counters.busy_cycles
        return out

    return sample


def _queue_source(proc):
    def sample():
        out = {}
        for label, queue in (("p0", proc.queues[Priority.P0]),
                             ("p1", proc.queues[Priority.P1])):
            out[f"{label}.depth"] = len(queue)
            out[f"{label}.used_words"] = queue.used_words
            out[f"{label}.enqueued"] = queue.enqueued
            out[f"{label}.overflows"] = queue.overflows
            out[f"{label}.high_water"] = queue.high_water
        out["spilled"] = len(proc._spill)
        return out

    return sample


def _amt_source(proc):
    def sample():
        amt = proc.amt
        return {
            "hits": amt.hits,
            "misses": amt.misses,
            "enters": amt.enters,
            "evictions": amt.evictions,
        }

    return sample


def _fabric_source(fabric):
    def sample():
        stats = fabric.stats
        return {
            "submitted": stats.submitted,
            "completed": stats.completed,
            "block_cycles": stats.block_cycles,
            "delivery_stalls": stats.delivery_stall_cycles,
            "bounces": stats.bounces,
            "drops": stats.drops,
            "in_flight": fabric.worms_in_flight,
        }

    return sample


def _route_cache_source(fabric):
    def sample():
        return {
            "hits": fabric.route_cache_hits,
            "misses": fabric.route_cache_misses,
            "entries": len(fabric._route_cache),
            "max_entries": fabric.route_cache_max,
        }

    return sample


# The fabric-observatory sources below return ``{}`` while no probe is
# attached, so un-probed snapshots carry not a single extra key — the
# ``net.link.*`` / ``net.stall.*`` / ``net.dim.*`` /
# ``net.router.inject_queue.*`` families appear only on probed runs.
# The names are pinned by repro.network.observatory.FABRIC_METRICS and
# the docs/OBSERVABILITY.md §8 sync test.


def _probe_link_source(machine):
    def sample():
        probe = machine.fabric.probe
        if probe is None:
            return {}
        link_phits = probe.link_phits
        peak = max(link_phits.values()) if link_phits else 0
        elapsed = probe.elapsed(machine.now)
        return {
            "observed": len(link_phits),
            "phits": sum(link_phits.values()),
            "messages": sum(probe.link_messages.values()),
            "peak_phits": peak,
            "peak_utilization": round(peak / elapsed, 6),
            "blocked_cycles": sum(probe.link_blocked.values()),
        }

    return sample


def _probe_stall_source(fabric):
    def sample():
        probe = fabric.probe
        if probe is None:
            return {}
        return {
            "channel_busy": probe.stall_channel_busy,
            "link_outage": probe.stall_link_outage,
            "backpressure": probe.stall_backpressure,
        }

    return sample


def _probe_dim_source(fabric):
    def sample():
        probe = fabric.probe
        if probe is None:
            return {}
        out = {}
        for dim, letter in enumerate("xyz"):
            out[f"{letter}.hops"] = probe.dim_hops[dim]
            out[f"{letter}.phits"] = probe.dim_phits[dim]
        return out

    return sample


def _probe_queue_source(fabric):
    def sample():
        probe = fabric.probe
        if probe is None:
            return {}
        return probe.inject_queue_summary()

    return sample


def register_machine_metrics(machine, registry: MetricsRegistry) -> None:
    """Register the standard cycle-level sources for ``machine``."""
    registry.register_source("machine.cycles", lambda: machine.now)
    registry.register_source("machine.nodes", lambda: machine.mesh.n_nodes)
    registry.register_source(
        "machine.parallel", lambda: {"skips": machine._parallel_skips})
    for node in machine.nodes:
        proc = node.proc
        prefix = f"node.{node.node_id}"
        registry.register_source(f"{prefix}.proc", _proc_source(proc))
        registry.register_source(f"{prefix}.queue", _queue_source(proc))
        registry.register_source(f"{prefix}.amt", _amt_source(proc))
    registry.register_source("net", _fabric_source(machine.fabric))
    registry.register_source("net.route_cache",
                             _route_cache_source(machine.fabric))
    registry.register_source("net.latency",
                             lambda: machine.fabric.stats.latency)
    registry.register_source("net.link", _probe_link_source(machine))
    registry.register_source("net.stall", _probe_stall_source(machine.fabric))
    registry.register_source("net.dim", _probe_dim_source(machine.fabric))
    registry.register_source("net.router.inject_queue",
                             _probe_queue_source(machine.fabric))


def install_machine_events(machine, bus) -> None:
    """Point every node's processor and the fabric at the event bus."""
    for node in machine.nodes:
        node.proc._events = bus
    machine.fabric._events = bus


def install_machine_tracing(machine, trace_state) -> None:
    """Enable causal tracing: injects root traces, SENDs forward them.

    Each node's network interface stamps outgoing messages with a child
    of the sending thread's context (``Mdp.current_trace``); host
    injections through :meth:`JMachine.inject` root fresh traces.
    """
    machine._trace_state = trace_state
    for node in machine.nodes:
        node.interface.trace_state = trace_state


def instrument_machine(machine, telemetry: "Telemetry") -> None:
    """Full standard wiring: metrics always, events/tracing when enabled."""
    register_machine_metrics(machine, telemetry.registry)
    if telemetry.events is not None:
        install_machine_events(machine, telemetry.events)
        if telemetry.trace is not None:
            install_machine_tracing(machine, telemetry.trace)


# --------------------------------------------------------------- macro level


def _macro_node_source(node):
    def sample():
        profile = node.profile
        out = {f"profile.{name}": getattr(profile, name)
               for name in PROFILE_FIELDS}
        out["messages_received"] = node.messages_received
        out["queue_high_water"] = node.queue_high_water
        return out

    return sample


def _macro_handler_source(sim):
    # One dynamic source for the whole table: handlers register after
    # construction, so the names are only known at snapshot time.
    def sample():
        out = {}
        for name, stats in sim.handler_stats.items():
            for field in HANDLER_FIELDS:
                out[f"{name}.{field}"] = getattr(stats, field)
        return out

    return sample


def _macro_profile_source(sim):
    def sample():
        total = sim.aggregate_profile()
        return {name: getattr(total, name) for name in PROFILE_FIELDS}

    return sample


def register_macro_metrics(sim, registry: MetricsRegistry) -> None:
    """Register the standard macro-level sources for ``sim``."""
    registry.register_source("macro.cycles", lambda: sim.end_time)
    registry.register_source("macro.nodes", lambda: sim.n_nodes)
    registry.register_source("macro.messages_sent", lambda: sim.messages_sent)
    registry.register_source("macro.profile", _macro_profile_source(sim))
    registry.register_source("handler", _macro_handler_source(sim))
    for node in sim.nodes:
        registry.register_source(f"node.{node.node_id}",
                                 _macro_node_source(node))


def instrument_macro(sim, telemetry: "Telemetry") -> None:
    """Full standard wiring for a macro simulator."""
    register_macro_metrics(sim, telemetry.registry)
    if telemetry.events is not None:
        sim._ebus = telemetry.events
        if telemetry.trace is not None:
            sim._trace = telemetry.trace
